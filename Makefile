PYTHONPATH := src
export PYTHONPATH

.PHONY: check lint typecheck test analyze analyze-smoke chaos-smoke cluster-smoke trace-smoke bench-smoke bench-baseline service-smoke virt-smoke fleet-smoke

# Full gate: lint + typecheck + tier-1 tests.  Lint/typecheck legs skip
# themselves (with a message) when ruff/mypy are not installed.
check:
	bash scripts/check.sh

lint:
	@if command -v ruff >/dev/null 2>&1; then ruff check src tests; \
	else echo "ruff not installed, skipping lint"; fi
	python -m repro.lint

typecheck:
	@if command -v mypy >/dev/null 2>&1; then mypy src/repro/analysis; \
	else echo "mypy not installed, skipping typecheck"; fi

test:
	python -m pytest -x -q tests/

# Convenience: statically verify the headline schedule.
analyze:
	python -m repro.cli check gpt2 --minibatch 64 --mode pp

# Analyzer smoke: project linter + the full static pass set (races,
# lifetime, parametric certificates) over the CNN zoo in both modes,
# leaving machine-readable diagnostics in analyze-<model>-<mode>.json.
analyze-smoke:
	python -m repro.lint
	for model in tiny-cnn resnet1k vgg416; do \
	    for mode in pp dp; do \
	        python -m repro.cli check $$model --minibatch 16 --mode $$mode \
	            --json analyze-$$model-$$mode.json || exit 1; \
	    done; \
	done

# Quick fault-injection sweep on the toy model: exits nonzero if any
# seed hangs (watchdog) or breaks byte accounting.
chaos-smoke:
	python -m repro.cli chaos toy-transformer --minibatch 8 --gpus 2 --seeds 3

# Cluster chaos smoke: multi-server failure domains.  A stage-per-server
# pipeline losing a whole server per seed (replica restore + cross-server
# re-plan + stage shrink over real network links), and a data-parallel
# sweep under a scripted partition window (bounded stall, then heal).
# Exits nonzero on a hang or broken per-network-link byte accounting;
# machine-readable outcomes land in cluster-chaos-*.json.
cluster-smoke:
	python -m repro.cli chaos toy-transformer --minibatch 8 --gpus 2 \
	    --servers 3 --seeds 3 --servers-lost 1 --iterations 3 \
	    --json cluster-chaos-pp.json
	python -m repro.cli chaos toy-transformer --minibatch 9 --gpus 2 \
	    --mode dp --servers 3 --seeds 2 --partition-at 0.001 \
	    --partition-for 0.01 --iterations 2 --json cluster-chaos-dp.json

# Perf-regression gate: run the smoke bench suite and compare against the
# committed baseline (benchmarks/BENCH_baseline.json), normalized by each
# report's calibration loop so it works across machine speeds.  Exits
# nonzero on a >25% regression.
bench-smoke:
	python scripts/perf_gate.py --run --repeats 3

# Re-bless the committed baseline on this machine (run after deliberate
# perf-relevant changes; commit the result).
bench-baseline:
	python scripts/perf_gate.py --run --repeats 5 --update

# Service smoke: a seeded 500-request chaos storm through the hardened
# planning service, plus a no-chaos storm.  Exits nonzero if any request
# is left unresolved, if two identically-seeded runs disagree on any
# metric (bit-identity), or if more than 35% of the storm is shed.
# Machine-readable outcomes land in service-*.json.
service-smoke:
	python -m repro.cli serve --requests 500 --seed 0 --chaos \
	    --intensity 1.0 --check-determinism --max-shed-rate 0.35 \
	    --json service-chaos.json
	python -m repro.cli serve --requests 200 --seed 1 \
	    --check-determinism --max-shed-rate 0.10 --json service-clean.json

# Fleet smoke: multi-tenant co-placement storms on a shared fleet.  A
# clean 2-server storm (mixed widths and memory shares, bit-identity
# checked) and a deliberately contended 1-server storm that must reach
# all three placement kinds (identity / partition / time-slice) and
# shed the overflow with a typed reason.  Exits nonzero on a leaked
# reservation, a determinism mismatch or an excessive shed rate;
# machine-readable outcomes land in fleet-*.json.
fleet-smoke:
	python -m repro.cli serve --requests 60 --seed 0 --fleet-servers 2 \
	    --check-determinism --max-shed-rate 0.35 --json fleet-clean.json
	python -m repro.cli serve --requests 80 --seed 1 --fleet-servers 1 \
	    --workers 4 --check-determinism --max-shed-rate 0.5 \
	    --json fleet-contended.json

# Virtual-device smoke: one 4-logical-GPU plan bound three ways --
# identity (bit-identical), heterogeneous 2-fast/2-slow, and
# oversubscribed onto 2 physical GPUs (time-slice) -- each executed and
# re-certified by the analyzer against per-device memory.  Exits nonzero
# if any bind is rejected or any run fails; machine-readable outcomes
# land in virt-*.json.
virt-smoke:
	python -m repro.cli bind toy-transformer --minibatch 16 --gpus 4 \
	    --run --json virt-identity.json
	python -m repro.cli bind toy-transformer --minibatch 16 --gpus 4 \
	    --hetero 1.5,1.5,0.75,0.75 --run --json virt-hetero.json
	python -m repro.cli bind toy-transformer --minibatch 16 --gpus 4 \
	    --physical 2 --run --json virt-timeslice.json

# Record a traced run (clean + chaos), invariant-check it, and export
# Perfetto JSON; exits nonzero if the trace breaks a runtime invariant.
trace-smoke:
	python -m repro.cli trace toy-transformer --minibatch 8 --gpus 2 \
	    --out trace-clean.json --text
	python -m repro.cli trace toy-transformer --minibatch 8 --gpus 2 \
	    --chaos-seed 1 --out trace-chaos.json
