"""Tests for the tensor lifetime state machine."""

import pytest

from repro.common.errors import SimulationError
from repro.memory.tensor_state import TensorHome, TensorRecord, TensorTable


class TestTensorRecord:
    def test_defaults_to_host_home(self):
        record = TensorRecord(key="W:0", nbytes=100)
        assert record.home is TensorHome.HOST
        assert not record.resident_on(0)

    def test_materialize_and_evict(self):
        record = TensorRecord(key="W:0", nbytes=100)
        record.materialize(1)
        assert record.resident_on(1)
        record.evict(1)
        assert not record.resident_on(1)

    def test_evict_absent_raises(self):
        record = TensorRecord(key="W:0", nbytes=100)
        with pytest.raises(SimulationError):
            record.evict(0)

    def test_dirty_invalidates_other_copies(self):
        record = TensorRecord(key="W:0", nbytes=100)
        record.materialize(0)
        record.materialize(1)
        record.mark_dirty(0)
        assert record.resident_on(0)
        assert not record.resident_on(1)
        assert record.dirty_on == 0

    def test_dirty_without_copy_raises(self):
        record = TensorRecord(key="W:0", nbytes=100)
        with pytest.raises(SimulationError):
            record.mark_dirty(2)

    def test_writeback_clears_dirty(self):
        record = TensorRecord(key="W:0", nbytes=100)
        record.materialize(0)
        record.mark_dirty(0)
        record.writeback()
        assert record.dirty_on is None
        assert record.home is TensorHome.HOST


class TestTensorTable:
    def test_declare_and_get(self):
        table = TensorTable()
        table.declare("W:0", 100)
        assert table.get("W:0").nbytes == 100
        assert "W:0" in table
        assert len(table) == 1

    def test_double_declare_raises(self):
        table = TensorTable()
        table.declare("W:0", 100)
        with pytest.raises(SimulationError):
            table.declare("W:0", 100)

    def test_unknown_get_raises(self):
        with pytest.raises(SimulationError):
            TensorTable().get("nope")

    def test_resident_bytes_per_gpu(self):
        table = TensorTable()
        table.declare("a", 100).materialize(0)
        table.declare("b", 50).materialize(0)
        table.declare("c", 25).materialize(1)
        assert table.resident_bytes(0) == 150
        assert table.resident_bytes(1) == 25
