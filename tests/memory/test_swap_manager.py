"""Tests for the LRU swap manager (the LMS stand-in)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import GpuOutOfMemoryError
from repro.memory.swap_manager import LruSwapManager


class TestBasics:
    def test_first_touch_is_miss(self):
        manager = LruSwapManager(capacity=100)
        decision = manager.touch("a", 40)
        assert not decision.hit
        assert decision.swap_in_bytes == 40

    def test_second_touch_is_hit(self):
        manager = LruSwapManager(capacity=100)
        manager.touch("a", 40)
        decision = manager.touch("a", 40)
        assert decision.hit
        assert decision.swap_in_bytes == 0

    def test_oversized_tensor_rejected(self):
        manager = LruSwapManager(capacity=100)
        with pytest.raises(GpuOutOfMemoryError):
            manager.touch("huge", 101)

    def test_capacity_positive(self):
        with pytest.raises(GpuOutOfMemoryError):
            LruSwapManager(capacity=0)


class TestEviction:
    def test_lru_victim_chosen(self):
        manager = LruSwapManager(capacity=100)
        manager.touch("a", 50)
        manager.touch("b", 50)
        manager.touch("a", 50)       # refresh a
        decision = manager.touch("c", 50)
        assert decision.evicted == ("b",)

    def test_clean_eviction_free_by_default(self):
        manager = LruSwapManager(capacity=100)
        manager.touch("a", 60)
        decision = manager.touch("b", 60)
        assert decision.swap_out_bytes == 0

    def test_dirty_eviction_writes_back(self):
        manager = LruSwapManager(capacity=100)
        manager.touch("a", 60, write=True)
        decision = manager.touch("b", 60)
        assert decision.swap_out_bytes == 60

    def test_lms_mode_writes_back_clean(self):
        manager = LruSwapManager(capacity=100, writeback_clean=True)
        manager.touch("a", 60)
        decision = manager.touch("b", 60)
        assert decision.swap_out_bytes == 60

    def test_pinned_never_evicted(self):
        manager = LruSwapManager(capacity=100)
        manager.touch("keep", 60, pin=True)
        decision = manager.touch("b", 40)
        assert "keep" not in decision.evicted
        manager.unpin("keep")
        decision = manager.touch("c", 60)
        assert "keep" in decision.evicted

    def test_all_pinned_raises(self):
        manager = LruSwapManager(capacity=100)
        manager.touch("a", 90, pin=True)
        with pytest.raises(GpuOutOfMemoryError):
            manager.touch("b", 20)


class TestProduceDropFlush:
    def test_produce_costs_no_swap_in(self):
        manager = LruSwapManager(capacity=100)
        decision = manager.produce("act", 80)
        assert decision.swap_in_bytes == 0
        assert manager.resident("act")

    def test_drop_is_free(self):
        manager = LruSwapManager(capacity=100)
        manager.produce("act", 80)
        manager.discard("act")
        assert not manager.resident("act")
        assert manager.used == 0

    def test_flush_writes_dirty_once(self):
        manager = LruSwapManager(capacity=100)
        manager.produce("grad", 30)
        assert manager.flush("grad") == 30
        assert manager.flush("grad") == 0

    def test_repaper_dp_swap_weight_volume(self):
        """The paper's (4m+2)|W| per GPU: weights thrash when the stash
        displaces them each microbatch."""
        n_layers, w = 10, 10
        capacity = n_layers * w + 5  # weights barely fit; stash evicts them
        manager = LruSwapManager(capacity, writeback_clean=True)
        m = 4
        for mb in range(m):  # forward
            for layer in range(n_layers):
                manager.touch(f"W{layer}", w)
                manager.produce(f"stash{layer}:{mb}", w)
        for mb in reversed(range(m)):  # backward
            for layer in reversed(range(n_layers)):
                manager.touch(f"W{layer}", w)
                manager.touch(f"stash{layer}:{mb}", w)
                manager.discard(f"stash{layer}:{mb}")
        for layer in range(n_layers):  # update
            manager.touch(f"W{layer}", w, write=True)
            manager.flush(f"W{layer}")
        weights = n_layers * w
        # Within 25% of the analytic (4m+2)|W| swap-in volume (stash
        # traffic makes it slightly larger).
        expected = (2 * m + 1) * weights  # swap-ins: 2m passes + update
        assert manager.total_swap_in >= expected * 0.75


class TestInvariants:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 9), st.booleans()),
                    min_size=1, max_size=60))
    def test_used_never_exceeds_capacity(self, touches):
        manager = LruSwapManager(capacity=50)
        for key, write in touches:
            manager.touch(f"t{key}", 10, write=write)
            assert 0 <= manager.used <= 50

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 5), min_size=1, max_size=40))
    def test_hits_plus_misses_equals_touches(self, keys):
        manager = LruSwapManager(capacity=30)
        for key in keys:
            manager.touch(f"t{key}", 10)
        assert manager.hits + manager.misses == len(keys)
