"""Fast-mode smoke tests for every experiment module.

The full settings (and the paper-shape assertions) run under
``benchmarks/``; here we check each module produces well-formed rows
quickly, so a broken experiment fails in the unit suite too.
"""

import importlib

import pytest

from repro.experiments.common import Row, render

MODULES = [
    "fig01_growth",
    "fig02_bottleneck",
    "fig07_packing",
    "fig08_memory",
    "fig09_throughput",
    "fig10_swapload",
    "fig11_zero",
    "fig12_correctness",
    "fig13_ablation",
    "fig15_massive",
    "fig16_scaling",
    "tab01_search",
    "tab04_equifb",
]


@pytest.mark.parametrize("name", MODULES)
def test_fast_mode_produces_rows(name):
    module = importlib.import_module(f"repro.experiments.{name}")
    rows = module.run(fast=True)
    assert rows, name
    assert all(isinstance(row, dict) for row in rows)
    # Rows are renderable and rectangular.
    text = render(rows)
    assert len(text.splitlines()) == len(rows) + 2


def test_render_formats_numbers():
    rows: list[Row] = [{"a": 1234.5678, "b": 0.00123, "c": "x"}]
    text = render(rows)
    assert "1235" in text
    assert "0.00123" in text


def test_render_handles_missing_columns():
    text = render([{"a": 1}, {"b": 2}], columns=["a", "b"])
    assert "a" in text and "b" in text


def test_fig01_headline_mentions_growth():
    from repro.experiments import fig01_growth

    rows = fig01_growth.run()
    assert "grew" in fig01_growth.headline(rows)


def test_fig09_normalized_reference_is_one():
    from repro.experiments import fig09_throughput

    rows = fig09_throughput.run(fast=True)
    for row in fig09_throughput.normalized(rows):
        if row["scheme"] == "harmony-pp":
            assert row["normalized_iteration"] == pytest.approx(1.0)


def test_run_scheme_memoized():
    from repro.experiments.common import run_scheme

    a = run_scheme("harmony-pp", "gpt2", 16)
    b = run_scheme("harmony-pp", "gpt2", 16)
    assert a is b
