"""Tests for the NVLink mesh extension (paper footnote 3)."""

import pytest

from repro.common.errors import SimulationError
from repro.hardware.interconnect import NVLINK2_BW, PcieTree, TopologySpec


@pytest.fixture
def topo():
    return TopologySpec(n_gpus=4, gpus_per_switch=4,
                        nvlink_bandwidth=NVLINK2_BW)


class TestNvlinkTopology:
    def test_flag(self, topo):
        assert topo.has_nvlink
        assert not TopologySpec(n_gpus=4).has_nvlink

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(SimulationError):
            TopologySpec(n_gpus=4, nvlink_bandwidth=-1.0)

    def test_full_mesh_created(self, sim, topo):
        tree = PcieTree(sim, topo)
        assert len(tree.nvlink) == 4 * 3

    def test_p2p_uses_nvlink(self, sim, topo):
        tree = PcieTree(sim, topo)
        path = tree.gpu_to_gpu(0, 2)
        assert len(path) == 1
        assert path[0].name == "nv0->2"
        assert path[0].bandwidth == NVLINK2_BW

    def test_host_swaps_still_use_pcie(self, sim, topo):
        tree = PcieTree(sim, topo)
        names = [l.name for l in tree.gpu_to_host(1)]
        assert names == ["gpu1.up", "sw0.up"]

    def test_nvlink_relieves_pcie_contention(self, sim, topo):
        """A p2p transfer no longer shares any link with host swaps."""
        from repro.sim.links import transfer

        tree = PcieTree(sim, topo)
        one_second = int(topo.uplink_bandwidth)
        sim.process(transfer(sim, tree.gpu_to_host(0), one_second))
        sim.process(transfer(sim, tree.gpu_to_gpu(0, 1),
                             int(NVLINK2_BW)))
        sim.run()
        assert sim.now == pytest.approx(1.0, rel=0.01)


class TestNvlinkExperiment:
    def test_extension_rows(self):
        from repro.experiments import ext_nvlink

        rows = ext_nvlink.run(fast=True)
        by = {(r["scheme"], r["interconnect"]): r for r in rows}
        # DP never uses p2p, so NVLink cannot change it.
        assert by[("harmony-dp", "pcie")]["iteration(s)"] == pytest.approx(
            by[("harmony-dp", "nvlink")]["iteration(s)"]
        )
        # PP must not regress with a strictly faster p2p fabric.
        assert by[("harmony-pp", "nvlink")]["iteration(s)"] <= (
            by[("harmony-pp", "pcie")]["iteration(s)"] * 1.001
        )
        assert by[("harmony-pp", "pcie")]["p2p(GiB)"] > 0
