"""Tests for the GPU device model."""

import pytest

from repro.common.errors import GpuOutOfMemoryError
from repro.common.units import GiB
from repro.hardware.gpu import GTX_1080TI, GpuMemoryPool, GpuSpec


class TestGpuSpec:
    def test_1080ti_matches_paper(self):
        assert GTX_1080TI.memory_bytes == 11 * GiB
        assert GTX_1080TI.peak_flops == pytest.approx(11.34e12)

    def test_sustained_below_peak(self):
        assert GTX_1080TI.sustained_flops < GTX_1080TI.peak_flops

    def test_compute_time_scales_linearly(self):
        one = GTX_1080TI.compute_time(1e12)
        two = GTX_1080TI.compute_time(2e12)
        assert two == pytest.approx(2 * one)

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            GTX_1080TI.compute_time(-1.0)

    def test_custom_efficiency(self):
        gpu = GpuSpec(name="x", memory_bytes=GiB, peak_flops=1e12, efficiency=0.5)
        assert gpu.sustained_flops == pytest.approx(5e11)


class TestGpuMemoryPool:
    def test_alloc_within_capacity(self):
        pool = GpuMemoryPool(capacity=100)
        pool.alloc(60)
        assert pool.used == 60
        assert pool.available == 40

    def test_alloc_over_capacity_raises(self):
        pool = GpuMemoryPool(capacity=100)
        pool.alloc(60)
        with pytest.raises(GpuOutOfMemoryError):
            pool.alloc(50)

    def test_free_returns_capacity(self):
        pool = GpuMemoryPool(capacity=100)
        pool.alloc(60)
        pool.free(60)
        pool.alloc(100)
        assert pool.used == 100

    def test_over_free_raises(self):
        pool = GpuMemoryPool(capacity=100)
        pool.alloc(10)
        with pytest.raises(GpuOutOfMemoryError):
            pool.free(20)

    def test_high_water_tracks_peak(self):
        pool = GpuMemoryPool(capacity=100)
        pool.alloc(80)
        pool.free(50)
        pool.alloc(10)
        assert pool.high_water == 80

    def test_negative_sizes_rejected(self):
        pool = GpuMemoryPool(capacity=100)
        with pytest.raises(ValueError):
            pool.alloc(-1)
        with pytest.raises(ValueError):
            pool.free(-1)
