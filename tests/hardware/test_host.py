"""Tests for the host model."""

import pytest

from repro.common.errors import HostOutOfMemoryError
from repro.common.units import GiB
from repro.hardware.host import COMMODITY_XEON_18C, COMMODITY_XEON_36C, HostMemoryPool, HostSpec


class TestHostSpec:
    def test_paper_testbeds(self):
        assert COMMODITY_XEON_18C.cores == 18
        assert COMMODITY_XEON_18C.memory_bytes == 374 * GiB
        assert COMMODITY_XEON_36C.cores == 36
        assert COMMODITY_XEON_36C.memory_bytes == 750 * GiB

    def test_optimizer_time_scales_with_cores(self):
        full = COMMODITY_XEON_18C.optimizer_time(1e10)
        quarter = COMMODITY_XEON_18C.optimizer_time(1e10, cores_used=4)
        assert quarter > full

    def test_cores_used_capped_at_socket(self):
        capped = COMMODITY_XEON_18C.optimizer_time(1e10, cores_used=100)
        assert capped == COMMODITY_XEON_18C.optimizer_time(1e10)

    def test_zero_cores_rejected(self):
        with pytest.raises(ValueError):
            COMMODITY_XEON_18C.optimizer_time(1e10, cores_used=0)


class TestHostMemoryPool:
    def test_alloc_and_free(self):
        pool = HostMemoryPool(capacity=1000)
        pool.alloc(700)
        pool.free(200)
        assert pool.used == 500
        assert pool.available == 500

    def test_exhaustion_raises(self):
        pool = HostMemoryPool(capacity=1000)
        with pytest.raises(HostOutOfMemoryError):
            pool.alloc(1001)

    def test_high_water(self):
        pool = HostMemoryPool(capacity=1000)
        pool.alloc(900)
        pool.free(900)
        assert pool.high_water == 900

    def test_bad_free_raises(self):
        pool = HostMemoryPool(capacity=1000)
        with pytest.raises(HostOutOfMemoryError):
            pool.free(1)
