"""Tests for the PCIe tree topology."""

import pytest

from repro.common.errors import SimulationError
from repro.hardware.interconnect import (
    PCIE3_SHARED_UPLINK_BW,
    PCIE3_X16_BW,
    PcieTree,
    TopologySpec,
)
from repro.sim.engine import Simulator
from repro.sim.links import transfer


class TestTopologySpec:
    def test_switch_count(self):
        assert TopologySpec(n_gpus=4, gpus_per_switch=4).n_switches == 1
        assert TopologySpec(n_gpus=8, gpus_per_switch=4).n_switches == 2
        assert TopologySpec(n_gpus=5, gpus_per_switch=4).n_switches == 2

    def test_switch_of(self):
        topo = TopologySpec(n_gpus=8, gpus_per_switch=4)
        assert topo.switch_of(0) == 0
        assert topo.switch_of(3) == 0
        assert topo.switch_of(4) == 1

    def test_bad_gpu_index(self):
        topo = TopologySpec(n_gpus=4)
        with pytest.raises(SimulationError):
            topo.switch_of(4)

    def test_degenerate_specs_rejected(self):
        with pytest.raises(SimulationError):
            TopologySpec(n_gpus=0)
        with pytest.raises(SimulationError):
            TopologySpec(n_gpus=4, gpus_per_switch=0)

    def test_effective_pcie_below_raw(self):
        # Effective bandwidth models DMA overhead: below the 16 GB/s raw.
        assert PCIE3_X16_BW < 16e9
        assert PCIE3_X16_BW > 10e9


class TestPaths:
    @pytest.fixture
    def tree(self, sim):
        return PcieTree(sim, TopologySpec(n_gpus=8, gpus_per_switch=4))

    def test_gpu_to_host_crosses_uplink(self, tree):
        path = tree.gpu_to_host(2)
        names = [l.name for l in path]
        assert names == ["gpu2.up", "sw0.up"]

    def test_host_to_gpu_is_reverse_direction(self, tree):
        names = [l.name for l in tree.host_to_gpu(5)]
        assert names == ["sw1.down", "gpu5.down"]

    def test_p2p_same_switch_skips_host(self, tree):
        names = [l.name for l in tree.gpu_to_gpu(0, 3)]
        assert names == ["gpu0.up", "gpu3.down"]
        assert not any("sw" in n for n in names)

    def test_p2p_cross_switch_uses_uplinks(self, tree):
        names = [l.name for l in tree.gpu_to_gpu(1, 6)]
        assert "sw0.up" in names and "sw1.down" in names

    def test_p2p_self_is_empty(self, tree):
        assert tree.gpu_to_gpu(3, 3) == []

    def test_min_bandwidth_is_shared_uplink(self, tree):
        path = tree.gpu_to_host(0)
        assert tree.min_bandwidth(path) == PCIE3_SHARED_UPLINK_BW

    def test_p2p_bandwidth_is_leaf_rate(self, tree):
        path = tree.gpu_to_gpu(0, 1)
        assert tree.min_bandwidth(path) == PCIE3_X16_BW

    def test_min_bandwidth_empty_raises(self, tree):
        with pytest.raises(SimulationError):
            tree.min_bandwidth([])


class TestOversubscription:
    def test_shared_uplink_throttles_concurrent_swaps(self, sim):
        """The Figure 2 effect: 4 GPUs swapping in parallel take ~4x one
        GPU's time because they serialize on the shared uplink."""
        tree = PcieTree(sim, TopologySpec(n_gpus=4, gpus_per_switch=4))
        nbytes = int(PCIE3_SHARED_UPLINK_BW)  # 1 second each, uncontended
        for gpu in range(4):
            sim.process(transfer(sim, tree.gpu_to_host(gpu), nbytes))
        sim.run()
        assert sim.now == pytest.approx(4.0, rel=0.01)

    def test_dedicated_uplinks_do_not_throttle(self, sim):
        tree = PcieTree(sim, TopologySpec(n_gpus=4, gpus_per_switch=1))
        nbytes = int(PCIE3_SHARED_UPLINK_BW)
        for gpu in range(4):
            sim.process(transfer(sim, tree.gpu_to_host(gpu), nbytes))
        sim.run()
        assert sim.now == pytest.approx(1.0, rel=0.01)

    def test_p2p_avoids_swap_contention(self, sim):
        tree = PcieTree(sim, TopologySpec(n_gpus=4, gpus_per_switch=4))
        sim.process(transfer(sim, tree.gpu_to_host(0),
                             int(PCIE3_SHARED_UPLINK_BW)))
        sim.process(transfer(sim, tree.gpu_to_gpu(2, 3), int(PCIE3_X16_BW)))
        sim.run()
        assert sim.now == pytest.approx(1.0, rel=0.01)
