"""Property test: chaos runs leave a complete, well-formed trail.

Sweep the small zoo models x execution modes x chaos seeds and hold every
run to the structural invariants plus bidirectional fault-event equality:
each injected fault / retry / fallback / rebind / restart / replan /
migration the recovery counters report must appear as a trace event, and
every such trace event must be backed by a counter (no silent recovery,
no phantom faults).

Byte/busy reconciliation is deliberately NOT asserted here: an iteration
attempt killed by a fatal fault leaves its time and events on the trace
(the time really elapsed) but its per-GPU counters are discarded with the
attempt, so aggregate accounting only reconciles on restart-free runs --
``test_consistency.py`` covers that side.
"""

import pytest

from conftest import MODES, SMALL_MODELS, traced_run

from repro.faults import FaultPlan, FaultSpec
from repro.trace.invariants import (
    check_compute_exclusivity,
    check_fault_events,
    check_stream_exclusivity,
)

SEEDS = range(5)
INTENSITY = 2.0


@pytest.mark.no_trace_invariants  # this test attaches its own recorder
@pytest.mark.parametrize("model", SMALL_MODELS)
@pytest.mark.parametrize("mode", MODES)
def test_chaos_sweep_fault_ledger_is_complete(model, mode):
    total_injected = 0
    for seed in SEEDS:
        plan = FaultPlan(FaultSpec.chaos(INTENSITY), seed=seed)
        _plan, metrics, recorder = traced_run(
            model, mode, iterations=2, fault_plan=plan,
        )
        assert len(recorder.events) > 0
        check_stream_exclusivity(recorder.events)
        check_compute_exclusivity(recorder.events)
        check_fault_events(recorder.events, metrics)
        total_injected += metrics.recovery.faults_injected
    # The property is vacuous if chaos never fired across the sweep.
    assert total_injected > 0, (
        f"{model}/{mode}: no faults injected across seeds {list(SEEDS)} -- "
        "raise INTENSITY so the sweep exercises recovery"
    )
