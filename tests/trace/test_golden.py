"""Golden-trace regression tests.

Seeded fault-free runs of the small zoo models must replay the exact
event sequence pinned under ``tests/trace/golden/``.  The matrix and the
recording procedure live in ``scripts/regen_golden_traces.py`` -- the
single source of truth, imported here -- so the test can never check a
different run than the one the regeneration script writes.

If a scheduler or runtime change legitimately moves the timeline::

    PYTHONPATH=src python scripts/regen_golden_traces.py

and commit the refreshed goldens with the change that moved them.
"""

import importlib.util
from pathlib import Path

import pytest

_SCRIPT = (
    Path(__file__).resolve().parent.parent.parent
    / "scripts" / "regen_golden_traces.py"
)
_spec = importlib.util.spec_from_file_location("regen_golden_traces", _SCRIPT)
regen = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(regen)


@pytest.mark.parametrize("model,mode", regen.GOLDEN,
                         ids=[f"{m}-{mode}" for m, mode in regen.GOLDEN])
def test_trace_matches_golden(model, mode):
    golden = regen.golden_path(model, mode)
    assert golden.is_file(), (
        f"missing golden {golden.name}; run "
        "PYTHONPATH=src python scripts/regen_golden_traces.py"
    )
    expected = golden.read_text()
    actual = regen.record(model, mode)
    assert actual == expected, (
        f"{model}/{mode}: trace diverged from {golden.name}. If a runtime "
        "change legitimately moved the timeline, regenerate via "
        "scripts/regen_golden_traces.py and commit the new golden with it."
    )


def test_golden_matrix_covers_both_modes():
    models = {m for m, _ in regen.GOLDEN}
    modes = {mode for _, mode in regen.GOLDEN}
    assert len(models) >= 2 and modes == {"pp", "dp"}


def test_goldens_are_canonical_lines():
    """Every golden line parses as the pipe-separated canonical format."""
    for model, mode in regen.GOLDEN:
        for line in regen.golden_path(model, mode).read_text().splitlines():
            fields = line.split("|", 9)
            assert fields[0] in ("span", "instant"), line
            assert len(fields) == 10, line
