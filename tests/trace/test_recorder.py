"""Unit tests for :class:`repro.trace.TraceRecorder` and the event model."""

import pytest

from repro.trace import TraceRecorder
from repro.trace.events import LANES, TraceEvent, make_meta


def test_span_and_instant_recording():
    rec = TraceRecorder()
    rec.span("compute", "FWD0", 0.0, 1.5, device=0, lane="compute", tid=3,
             mb=2)
    rec.instant("fault", "transfer", 2.0, device=1, lane="swap_in")
    assert len(rec) == 2
    span, inst = rec.events
    assert span.kind == "span" and span.cat == "compute"
    assert span.duration == pytest.approx(1.5)
    assert span.tid == 3 and span.meta_dict() == {"mb": 2}
    assert inst.kind == "instant" and inst.t0 == inst.t1 == 2.0
    assert rec.extent == pytest.approx(2.0)


def test_base_offset_and_advance():
    """advance() stitches successive simulator timelines end to end."""
    rec = TraceRecorder()
    rec.span("compute", "a", 0.0, 1.0)
    rec.advance(1.0)
    rec.span("compute", "b", 0.0, 1.0)  # local time restarts at 0
    a, b = rec.events
    assert (a.t0, a.t1) == (0.0, 1.0)
    assert (b.t0, b.t1) == (1.0, 2.0)
    assert rec.base == pytest.approx(1.0)
    assert rec.extent == pytest.approx(2.0)


def test_advance_rejects_negative():
    rec = TraceRecorder()
    with pytest.raises(ValueError):
        rec.advance(-0.5)


def test_ring_mode_bounds_memory():
    rec = TraceRecorder(ring=4)
    for i in range(10):
        rec.span("compute", f"s{i}", float(i), float(i) + 1.0)
    assert len(rec) == 4
    assert rec.dropped == 6
    # The newest events survive; the oldest were evicted.
    assert [e.name for e in rec.events] == ["s6", "s7", "s8", "s9"]
    # extent still covers the whole run, not just the surviving window.
    assert rec.extent == pytest.approx(10.0)


def test_ring_must_be_positive():
    with pytest.raises(ValueError):
        TraceRecorder(ring=0)


def test_clear_resets_everything():
    rec = TraceRecorder(ring=2)
    rec.span("compute", "a", 0.0, 1.0)
    rec.span("compute", "b", 1.0, 2.0)
    rec.span("compute", "c", 2.0, 3.0)
    rec.advance(3.0)
    rec.clear()
    assert len(rec) == 0 and rec.dropped == 0
    assert rec.base == 0.0 and rec.extent == 0.0


def test_seq_is_monotonic_recording_order():
    rec = TraceRecorder()
    # Spans are recorded at completion time; an earlier-starting span can
    # be recorded after a later-starting one.  seq preserves recording
    # order regardless of timestamps.
    rec.span("compute", "late", 5.0, 6.0)
    rec.span("compute", "early", 0.0, 1.0)
    seqs = [e.seq for e in rec.events]
    assert seqs == sorted(seqs) and len(set(seqs)) == 2


def test_canonical_is_stable_text():
    rec = TraceRecorder()
    rec.span("xfer", "WL0", 0.0, 0.25, device=1, lane="swap_in",
             nbytes=1024, links="a+b", wait=0.125)
    line = rec.canonical()
    assert line == (
        "span|xfer|WL0|dev1|swap_in|t-1|1024|0.0|0.25|links=a+b,wait=0.125"
    )


def test_make_meta_sorted_and_stable():
    assert make_meta(z=1, a=2) == (("a", 2), ("z", 1))
    assert make_meta() == ()


def test_event_is_frozen_value_type():
    e = TraceEvent(kind="span", cat="compute", name="x", t0=0.0, t1=1.0)
    with pytest.raises(AttributeError):
        e.name = "y"


def test_lane_taxonomy_covers_streams_and_control():
    assert {"swap_in", "swap_out", "p2p_in", "p2p_out", "compute",
            "cpu", "run", "migration"} <= set(LANES)
