"""Fixtures for the execution-trace test suite.

Small end-to-end traced runs (zoo models on a 2-GPU commodity server)
plus a Chrome ``trace_event`` schema validator shared by the export and
CLI tests.
"""

import pytest

from repro.core.harmony import Harmony, HarmonyOptions
from repro.experiments.common import server_for
from repro.trace import TraceRecorder

#: The two small zoo models the golden/property suites sweep.
SMALL_MODELS = ("toy-transformer", "tiny-cnn")
MODES = ("pp", "dp")


def traced_run(model, mode, iterations=1, gpus=2, minibatch=8,
               fault_plan=None, recorder=None):
    """Plan + execute one traced run; returns (plan, metrics, recorder)."""
    harmony = Harmony(
        model, server_for(gpus), minibatch,
        options=HarmonyOptions(mode=mode),
    )
    recorder = recorder if recorder is not None else TraceRecorder()
    report = harmony.run(iterations=iterations, fault_plan=fault_plan,
                         trace=recorder)
    return harmony.plan(), report.metrics, recorder


@pytest.fixture(scope="session")
def toy_traced():
    """One fault-free traced run of the toy transformer (PP, 2 GPUs)."""
    return traced_run("toy-transformer", "pp")


def validate_chrome_trace(doc):
    """Assert ``doc`` is a well-formed Chrome/Perfetto trace_event JSON.

    Checks the subset of the Trace Event Format the Perfetto importer
    requires: a ``traceEvents`` list whose records carry a known phase,
    integer pid/tid, numeric non-negative timestamps, non-negative
    durations for complete events, a scope for instants, and process /
    thread metadata naming every (pid, tid) the events reference.
    """
    assert isinstance(doc, dict)
    events = doc["traceEvents"]
    assert isinstance(events, list) and events
    named_pids, named_tids, used = set(), set(), set()
    for record in events:
        ph = record["ph"]
        assert ph in ("X", "i", "M"), f"unknown phase {ph!r}"
        assert isinstance(record["pid"], int) and record["pid"] >= 0
        assert isinstance(record["tid"], int) and record["tid"] >= 0
        if ph == "M":
            assert record["name"] in ("process_name", "thread_name")
            assert record["args"]["name"]
            if record["name"] == "process_name":
                named_pids.add(record["pid"])
            else:
                named_tids.add((record["pid"], record["tid"]))
            continue
        assert isinstance(record["name"], str) and record["name"]
        assert isinstance(record["cat"], str) and record["cat"]
        assert isinstance(record["ts"], (int, float)) and record["ts"] >= 0
        used.add((record["pid"], record["tid"]))
        if ph == "X":
            assert isinstance(record["dur"], (int, float))
            assert record["dur"] >= 0
        else:
            assert record["s"] == "t"
    assert {pid for pid, _tid in used} <= named_pids
    assert used <= named_tids


@pytest.fixture
def chrome_validator():
    return validate_chrome_trace
