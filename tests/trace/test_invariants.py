"""Self-tests for the trace invariant checkers.

Each checker gets a synthetic violating timeline (must raise
:class:`TraceInvariantError` with a readable message) and a passing one.
A real traced run exercises the dependency checker both ways: as-is it
passes; with the task lifecycle instants pushed past the end of the run,
every dependent kernel appears to start before its producers finished.
"""

import dataclasses

import pytest

from repro.runtime.metrics import GpuMetrics, RunMetrics
from repro.trace import TraceInvariantError, TraceRecorder, check_trace
from repro.trace.invariants import (
    check_bytes,
    check_compute_busy,
    check_compute_exclusivity,
    check_dependencies,
    check_fault_events,
    check_stream_exclusivity,
)


def _metrics(**gpu_fields):
    return RunMetrics(mode="pp", minibatch=8, iteration_time=1.0,
                      gpus=[GpuMetrics(**gpu_fields)])


# -- structural ---------------------------------------------------------------------


def test_stream_overlap_rejected():
    rec = TraceRecorder()
    rec.span("stream", "a", 0.0, 1.0, device=0, lane="swap_in")
    rec.span("stream", "b", 0.5, 1.5, device=0, lane="swap_in")
    with pytest.raises(TraceInvariantError, match="must not overlap"):
        check_stream_exclusivity(rec.events)


def test_stream_disjoint_lanes_may_overlap():
    rec = TraceRecorder()
    rec.span("stream", "a", 0.0, 1.0, device=0, lane="swap_in")
    rec.span("stream", "b", 0.5, 1.5, device=0, lane="swap_out")
    rec.span("stream", "c", 0.5, 1.5, device=1, lane="swap_in")
    check_stream_exclusivity(rec.events)


def test_compute_overlap_rejected():
    rec = TraceRecorder()
    rec.span("compute", "FWD0", 0.0, 1.0, device=0, lane="compute", tid=1)
    rec.span("compute", "FWD1", 0.9, 2.0, device=0, lane="compute", tid=2)
    with pytest.raises(TraceInvariantError, match="overlaps"):
        check_compute_exclusivity(rec.events)


def test_compute_other_device_or_cpu_ok():
    rec = TraceRecorder()
    rec.span("compute", "FWD0", 0.0, 1.0, device=0, lane="compute", tid=1)
    rec.span("compute", "FWD1", 0.5, 1.5, device=1, lane="compute", tid=2)
    rec.span("compute", "UPD", 0.5, 1.5, device=0, lane="cpu", tid=3)
    check_compute_exclusivity(rec.events)


# -- accounting ---------------------------------------------------------------------


def test_byte_mismatch_rejected():
    rec = TraceRecorder()
    rec.span("xfer", "WL0", 0.0, 0.5, device=0, lane="swap_in", nbytes=100)
    with pytest.raises(TraceInvariantError, match="swap bytes"):
        check_bytes(rec.events, _metrics(swap_in_bytes=50))


def test_byte_reconciliation_passes():
    rec = TraceRecorder()
    rec.span("xfer", "WL0", 0.0, 0.5, device=0, lane="swap_in", nbytes=100)
    rec.span("xfer", "Y0", 0.5, 0.6, device=0, lane="p2p_in", nbytes=7)
    # Migration legs carry bytes but are deliberately outside the
    # training swap/p2p ledger.
    rec.span("xfer", "W3", 0.6, 0.7, device=0, lane="migration", nbytes=999)
    check_bytes(rec.events, _metrics(swap_in_bytes=100, p2p_in_bytes=7))


def test_compute_busy_mismatch_rejected():
    rec = TraceRecorder()
    rec.span("compute", "FWD0", 0.0, 1.0, device=0, lane="compute", tid=1)
    with pytest.raises(TraceInvariantError, match="compute busy"):
        check_compute_busy(rec.events, _metrics(compute_busy=2.0))


def test_faulted_transfer_counts_zero_goodput():
    """A faulted hold records nbytes=0: busy time real, goodput none."""
    rec = TraceRecorder()
    rec.span("xfer", "WL0", 0.0, 0.5, device=0, lane="swap_in", nbytes=0,
             faulted=1)
    check_bytes(rec.events, _metrics())


# -- fault-event completeness -------------------------------------------------------


def test_phantom_fault_event_rejected():
    rec = TraceRecorder()
    rec.instant("fault", "transfer", 0.5, device=0, lane="swap_in")
    with pytest.raises(TraceInvariantError, match="phantom"):
        check_fault_events(rec.events, _metrics())


def test_silent_recovery_rejected():
    rec = TraceRecorder()
    metrics = _metrics()
    metrics.recovery.restarts = 1
    with pytest.raises(TraceInvariantError, match="silent recovery"):
        check_fault_events(rec.events, metrics)


def test_matched_fault_ledger_passes():
    rec = TraceRecorder()
    rec.instant("fault", "task_crash", 0.2, device=0, tid=4)
    rec.instant("retry", "compute", 0.2, device=0, tid=4)
    rec.span("migration", "W3", 0.5, 0.6, device=1, lane="migration")
    metrics = _metrics()
    metrics.recovery.faults_injected = 1
    metrics.recovery.compute_retries = 1
    metrics.elastic.migrations = 1
    check_fault_events(rec.events, metrics)


# -- dependency order, on a real run ------------------------------------------------


def test_dependencies_hold_on_real_run(toy_traced):
    plan, _metrics_, recorder = toy_traced
    check_dependencies(recorder.events, plan.graph)


def test_dependencies_catch_time_travel(toy_traced):
    """Pushing producers' lifecycle instants past the end of the run makes
    every dependent kernel look like it started before its inputs existed."""
    plan, _metrics_, recorder = toy_traced
    late = recorder.extent + 1.0
    tampered = [
        dataclasses.replace(e, t0=late, t1=late)
        if e.kind == "instant" and e.cat == "task" else e
        for e in recorder.events
    ]
    with pytest.raises(TraceInvariantError):
        check_dependencies(tampered, plan.graph)


# -- the full battery ---------------------------------------------------------------


def test_check_trace_full_battery(toy_traced):
    plan, metrics, recorder = toy_traced
    check_trace(recorder.events, graph=plan.graph, metrics=metrics,
                iterations=1, dropped=0)


def test_ring_dropped_trace_skips_accounting():
    """Half a timeline cannot reconcile; structure is still checked."""
    rec = TraceRecorder(ring=1)
    rec.span("xfer", "WL0", 0.0, 0.5, device=0, lane="swap_in", nbytes=100)
    rec.span("xfer", "WL1", 0.5, 1.0, device=0, lane="swap_in", nbytes=100)
    assert rec.dropped == 1
    # Metrics wildly disagree with the surviving suffix -- ignored.
    check_trace(rec.events, metrics=_metrics(), dropped=rec.dropped)
    with pytest.raises(TraceInvariantError):
        check_trace(rec.events, metrics=_metrics(), dropped=0)
