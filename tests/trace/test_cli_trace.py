"""End-to-end tests for the ``repro trace`` CLI subcommand."""

import json

import pytest

from repro.cli import main

ARGS = ["trace", "toy-transformer", "--minibatch", "8", "--gpus", "2",
        "--mode", "pp"]


@pytest.mark.no_trace_invariants  # the CLI attaches its own recorder
def test_trace_writes_perfetto_json(tmp_path, capsys, chrome_validator):
    out = tmp_path / "trace.json"
    rc = main(ARGS + ["--out", str(out), "--text"])
    assert rc == 0
    chrome_validator(json.loads(out.read_text()))
    printed = capsys.readouterr().out
    assert "trace:" in printed          # analytics summary
    assert "timeline over" in printed   # --text ASCII timeline
    assert str(out) in printed          # says where the JSON went


@pytest.mark.no_trace_invariants
def test_trace_ring_mode_bounds_events(tmp_path, chrome_validator):
    out = tmp_path / "ring.json"
    rc = main(ARGS + ["--out", str(out), "--ring", "32"])
    assert rc == 0
    doc = json.loads(out.read_text())
    chrome_validator(doc)
    payload = [r for r in doc["traceEvents"] if r["ph"] != "M"]
    assert len(payload) == 32  # the fault-free toy run records > 32 events


@pytest.mark.no_trace_invariants
def test_trace_chaos_records_faults(tmp_path, capsys, chrome_validator):
    out = tmp_path / "chaos.json"
    rc = main(ARGS + ["--out", str(out), "--chaos-seed", "1",
                      "--intensity", "2.0"])
    assert rc == 0
    chrome_validator(json.loads(out.read_text()))


@pytest.mark.no_trace_invariants
def test_trace_without_out_still_reports(capsys):
    rc = main(ARGS)
    assert rc == 0
    assert "trace:" in capsys.readouterr().out
