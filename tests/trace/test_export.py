"""Exporter tests: Chrome/Perfetto trace_event JSON and the text timeline."""

import io
import json

from conftest import validate_chrome_trace

from repro.trace import (
    TraceRecorder,
    dump_chrome_trace,
    to_chrome_trace,
    to_text_timeline,
)


def _sample_recorder():
    rec = TraceRecorder()
    rec.span("xfer", "WL0", 0.0, 0.25, device=0, lane="swap_in",
             nbytes=1024, links="gpu0.down", wait=0.0)
    rec.span("compute", "FWD0", 0.25, 1.0, device=0, lane="compute", tid=2,
             mb=0, attempt=0)
    rec.span("compute", "UPD", 1.0, 1.5, device=0, lane="cpu", tid=9)
    rec.instant("fault", "transfer", 0.2, device=0, lane="swap_in")
    rec.instant("restart", "iteration0", 1.5, lane="run")
    rec.span("migration", "W3", 1.5, 1.8, device=1, lane="migration",
             nbytes=4096)
    return rec


def test_chrome_trace_schema(chrome_validator):
    doc = to_chrome_trace(_sample_recorder().events)
    chrome_validator(doc)
    # Round-trips through the JSON codec (Perfetto reads files, not dicts).
    chrome_validator(json.loads(json.dumps(doc)))


def test_chrome_trace_timestamps_are_microseconds():
    events = _sample_recorder().events
    doc = to_chrome_trace(events)
    spans = [r for r in doc["traceEvents"] if r["ph"] == "X"]
    fwd = next(r for r in spans if r["name"] == "FWD0")
    assert fwd["ts"] == 0.25e6
    assert fwd["dur"] == 0.75e6


def test_chrome_trace_pid_mapping():
    """pid 0 is the host; GPU d maps to pid d+1."""
    doc = to_chrome_trace(_sample_recorder().events)
    names = {
        r["pid"]: r["args"]["name"]
        for r in doc["traceEvents"]
        if r["ph"] == "M" and r["name"] == "process_name"
    }
    assert "host" in names[0].lower()
    assert "gpu0" in names[1]
    assert "gpu1" in names[2]


def test_chrome_trace_preserves_meta_args():
    doc = to_chrome_trace(_sample_recorder().events)
    fwd = next(r for r in doc["traceEvents"]
               if r["ph"] == "X" and r["name"] == "FWD0")
    assert fwd["args"]["mb"] == 0


def test_dump_chrome_trace_to_path(tmp_path, chrome_validator):
    out = tmp_path / "trace.json"
    dump_chrome_trace(_sample_recorder().events, out)
    chrome_validator(json.loads(out.read_text()))


def test_dump_chrome_trace_to_file_object(chrome_validator):
    buf = io.StringIO()
    dump_chrome_trace(_sample_recorder().events, buf)
    chrome_validator(json.loads(buf.getvalue()))


def test_text_timeline_renders_lanes_and_instants():
    text = to_text_timeline(_sample_recorder().events)
    assert "gpu0/compute" in text or "gpu0.compute" in text
    assert "migration" in text
    # Control-flow instants are listed, not drawn as bars.
    assert "restart" in text
    assert "fault" in text


def test_text_timeline_empty_trace():
    assert to_text_timeline([]) != ""  # says "empty", never crashes


def test_real_run_exports_clean(toy_traced, chrome_validator):
    _plan, _metrics, recorder = toy_traced
    doc = to_chrome_trace(recorder.events)
    chrome_validator(doc)
    assert len([r for r in doc["traceEvents"] if r["ph"] != "M"]) == len(
        recorder.events
    )
    text = to_text_timeline(recorder.events)
    assert "gpu0" in text and "gpu1" in text
