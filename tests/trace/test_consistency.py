"""Metrics/trace consistency and the zero-overhead guarantee.

Two contracts pin the tracing subsystem to the runtime it observes:

1. On a fault-free run, the exact (interval-arithmetic) fractions the
   trace analytics derive agree with the aggregate-counter fallbacks
   ``RunMetrics`` computes without a trace -- same question, two
   independent measurement paths.
2. Attaching a recorder never perturbs the simulation: a traced run's
   schedule and counters are bit-identical to an untraced one, clean or
   under chaos.
"""

import pytest

from conftest import MODES, SMALL_MODELS, traced_run

from repro.core.harmony import Harmony, HarmonyOptions
from repro.experiments.common import server_for
from repro.faults import FaultPlan, FaultSpec
from repro.trace import check_trace


@pytest.mark.parametrize("model", SMALL_MODELS)
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("iterations", [1, 2])
def test_trace_and_aggregate_fractions_agree(model, mode, iterations):
    _plan, metrics, _recorder = traced_run(model, mode,
                                           iterations=iterations)
    analytics = metrics.trace
    assert analytics is not None
    for gpu in range(len(metrics.gpus)):
        exact = metrics.idle_fraction(gpu)  # trace path
        assert exact == analytics.idle_fraction(gpu)
        aggregate = max(
            0.0, 1.0 - metrics.gpus[gpu].compute_busy / metrics.iteration_time
        )
        assert exact == pytest.approx(aggregate, abs=1e-9)
        # The aggregate overlap bound must dominate the exact overlap.
        overlap = metrics.overlap_fraction(gpu)
        assert overlap == analytics.overlap_fraction(gpu)
        swap_busy = metrics.gpus[gpu].swap_busy
        if swap_busy > 0:
            bound = min(metrics.gpus[gpu].compute_busy, swap_busy) / swap_busy
            assert overlap <= bound + 1e-9
        assert 0.0 <= overlap <= 1.0 + 1e-9


def test_full_battery_on_fault_free_run(toy_traced):
    plan, metrics, recorder = toy_traced
    check_trace(recorder.events, graph=plan.graph, metrics=metrics,
                iterations=1, dropped=recorder.dropped)


def test_describe_folds_in_trace_analytics(toy_traced):
    _plan, metrics, _recorder = toy_traced
    text = metrics.describe()
    assert "trace:" in text
    assert "overlap" in text


def _run(model, mode, trace=None, fault_plan=None):
    harmony = Harmony(model, server_for(2), 8,
                      options=HarmonyOptions(mode=mode))
    return harmony.run(iterations=1, fault_plan=fault_plan,
                       trace=trace).metrics


@pytest.mark.no_trace_invariants  # the traced arm brings its own recorder
@pytest.mark.parametrize("model", SMALL_MODELS)
@pytest.mark.parametrize("mode", MODES)
def test_tracing_is_zero_overhead(model, mode):
    """Traced and untraced runs are bit-identical in virtual time."""
    from repro.trace import TraceRecorder

    plain = _run(model, mode)
    traced = _run(model, mode, trace=TraceRecorder())
    assert traced.iteration_time == plain.iteration_time
    assert traced.global_swap_bytes == plain.global_swap_bytes
    assert traced.global_p2p_bytes == plain.global_p2p_bytes
    for a, b in zip(traced.gpus, plain.gpus):
        assert a.compute_busy == b.compute_busy
        assert a.swap_busy == b.swap_busy


@pytest.mark.no_trace_invariants
def test_tracing_is_zero_overhead_under_chaos():
    from repro.trace import TraceRecorder

    plan = lambda: FaultPlan(FaultSpec.chaos(2.0), seed=3)  # noqa: E731
    plain = _run("toy-transformer", "pp", fault_plan=plan())
    traced = _run("toy-transformer", "pp", trace=TraceRecorder(),
                  fault_plan=plan())
    assert traced.iteration_time == plain.iteration_time
    assert traced.recovery.faults_injected == plain.recovery.faults_injected
    assert traced.recovery.restarts == plain.recovery.restarts
    assert traced.global_swap_bytes == plain.global_swap_bytes
