"""The centralized retry/backoff policy (``repro.common.backoff``).

The extraction's contract is *bit-identity*: with the default
``jitter=0``, every migrated call site (executor transfer retries,
runner restarts, RecoveryPolicy.backoff) must compute exactly the
historical ``base * factor ** attempt``.  Jitter, when enabled, must be
seeded, bounded and label-scoped -- a reproducible decorrelator, not a
randomness leak.
"""

import pytest

from repro.common.backoff import (
    DEFAULT_BACKOFF_BASE,
    DEFAULT_BACKOFF_FACTOR,
    DEFAULT_TRANSFER_RETRIES,
    BackoffPolicy,
    exponential,
)
from repro.faults.policy import RecoveryPolicy


class TestExponential:
    def test_exact_formula(self):
        for attempt in range(6):
            assert exponential(attempt, 0.002, 2.0) == 0.002 * 2.0 ** attempt

    def test_default_factor(self):
        assert exponential(3, 0.5) == 0.5 * DEFAULT_BACKOFF_FACTOR ** 3


class TestBitIdentityPins:
    """The historical executor schedule, pinned value by value."""

    def test_defaults_match_historical_constants(self):
        assert DEFAULT_TRANSFER_RETRIES == 3
        assert DEFAULT_BACKOFF_BASE == 0.002
        assert DEFAULT_BACKOFF_FACTOR == 2.0

    def test_default_policy_delay_is_exact_exponential(self):
        policy = BackoffPolicy()
        for attempt in range(8):
            assert policy.delay(attempt) == 0.002 * 2.0 ** attempt

    def test_labels_do_not_change_unjittered_delay(self):
        policy = BackoffPolicy()
        assert policy.delay(2, "dev0", "swap_in") == policy.delay(2)

    def test_recovery_policy_backoff_is_bit_identical(self):
        """RecoveryPolicy.backoff == the pre-extraction inline formula."""
        policy = RecoveryPolicy()
        for attempt in range(policy.max_transfer_retries + 1):
            assert policy.backoff(attempt) == 0.002 * 2.0 ** attempt
        custom = RecoveryPolicy(backoff_base=0.01, backoff_factor=3.0)
        assert custom.backoff(2) == 0.01 * 3.0 ** 2

    def test_restart_backoff_zero_by_default(self):
        """Restarts historically waited 0s; the default must preserve it."""
        restart = RecoveryPolicy().restart_backoff()
        for attempt in range(3):
            assert restart.delay(attempt, "restart", attempt) == 0.0


class TestExhausted:
    def test_budget_boundary(self):
        policy = BackoffPolicy(max_retries=3)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)
        assert policy.exhausted(4)

    def test_zero_budget_always_exhausted(self):
        assert BackoffPolicy(max_retries=0).exhausted(0)


class TestJitter:
    def test_jitter_bounded(self):
        policy = BackoffPolicy(jitter=0.5, seed=7)
        for attempt in range(5):
            base = exponential(attempt, policy.base, policy.factor)
            delay = policy.delay(attempt, "req", attempt)
            assert 0.5 * base <= delay <= 1.5 * base
            assert delay != base or attempt < 0  # swing is never exactly 0

    def test_jitter_deterministic(self):
        a = BackoffPolicy(jitter=0.3, seed=42)
        b = BackoffPolicy(jitter=0.3, seed=42)
        assert [a.delay(i, "x") for i in range(4)] == \
               [b.delay(i, "x") for i in range(4)]

    def test_jitter_label_scoped(self):
        policy = BackoffPolicy(jitter=0.3, seed=42)
        assert policy.delay(1, "req0") != policy.delay(1, "req1")

    def test_jitter_seed_scoped(self):
        assert BackoffPolicy(jitter=0.3, seed=1).delay(1, "r") != \
               BackoffPolicy(jitter=0.3, seed=2).delay(1, "r")


class TestCap:
    def test_cap_bounds_deep_attempts(self):
        policy = BackoffPolicy(base=1.0, factor=2.0, cap=5.0)
        assert policy.delay(0) == 1.0
        assert policy.delay(2) == 4.0
        assert policy.delay(3) == 5.0
        assert policy.delay(10) == 5.0

    def test_zero_cap_means_uncapped(self):
        assert BackoffPolicy(base=1.0, factor=2.0).delay(10) == 1024.0


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_retries": -1},
        {"base": -0.1},
        {"factor": 0.9},
        {"jitter": -0.1},
        {"jitter": 1.0},
        {"cap": -1.0},
    ])
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValueError):
            BackoffPolicy(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"backoff_jitter": 1.0},
        {"restart_backoff_base": -0.1},
    ])
    def test_recovery_policy_validates_new_fields(self, kwargs):
        with pytest.raises(ValueError):
            RecoveryPolicy(**kwargs)
