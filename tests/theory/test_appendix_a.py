"""Tests for the Appendix A machinery: makespan + Partition reduction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import SchedulingError
from repro.theory.makespan import (
    LayerItem,
    SchedulingInstance,
    brute_force_optimum,
    contiguous_partitions,
    makespan,
    total_processing_time,
)
from repro.theory.partition import (
    exact_partition,
    partition_reduction,
    target_makespan,
    witness_packing,
)


def instance(times, sizes=None, b=3, g=2, m=100.0):
    sizes = sizes or [1.0] * len(times)
    return SchedulingInstance(
        layers=tuple(LayerItem(t, s) for t, s in zip(times, sizes)),
        n_microbatches=b, n_gpus=g, memory=m,
    )


class TestMakespan:
    def test_single_pack_serializes_microbatches(self):
        inst = instance([1.0, 2.0], b=3, g=2)
        assert makespan(inst, [[0, 1]]) == pytest.approx(9.0)

    def test_two_packs_pipeline(self):
        inst = instance([1.0, 1.0], b=3, g=2)
        # Pack 0 on GPU 0, pack 1 on GPU 1: classic 2-stage pipeline.
        assert makespan(inst, [[0], [1]]) == pytest.approx(4.0)

    def test_wraparound_reuses_gpus(self):
        inst = instance([1.0, 1.0, 1.0], b=1, g=2)
        # Three packs on two GPUs: pack 2 wraps to GPU 0.
        assert makespan(inst, [[0], [1], [2]]) == pytest.approx(3.0)

    def test_memory_constraint_enforced(self):
        inst = instance([1.0, 1.0], sizes=[3.0, 3.0], m=5.0)
        with pytest.raises(SchedulingError):
            makespan(inst, [[0, 1]])

    def test_lower_bound_total_work_over_gpus(self):
        inst = instance([2.0, 1.0, 3.0], b=2, g=2)
        lower = total_processing_time(inst) / 2
        best, _ = brute_force_optimum(inst)
        assert best >= lower - 1e-12

    def test_contiguous_partition_count(self):
        assert sum(1 for _ in contiguous_partitions(5)) == 2**4

    def test_brute_force_at_least_one_feasible(self):
        inst = instance([1.0], m=10.0)
        cost, packs = brute_force_optimum(inst)
        assert packs == [[0]]

    def test_degenerate_instance_rejected(self):
        with pytest.raises(SchedulingError):
            SchedulingInstance(layers=(), n_microbatches=1, n_gpus=1, memory=1)


class TestReduction:
    def test_table2_layout(self):
        inst = partition_reduction([6, 2, 4])
        assert inst.n_layers == 3 * 3 + 4
        assert inst.memory == 7.0
        assert inst.n_gpus == 2
        assert inst.n_microbatches == 3
        # Bookends are heavy singletons of size 6.
        assert inst.layers[0].size == 6
        assert inst.layers[-1].size == 6
        # The a_i layers carry the Partition values as times, size 2.
        assert inst.layers[3].time == 6.0
        assert inst.layers[3].size == 2

    def test_yes_witness_attains_target(self):
        numbers = [6, 2, 4]
        side = exact_partition(numbers)
        assert side is not None
        inst = partition_reduction(numbers)
        packs = witness_packing(numbers, side)
        assert makespan(inst, packs) == pytest.approx(target_makespan(numbers))

    def test_no_instance_exceeds_target(self):
        numbers = [1, 1, 1]  # odd sum: NO instance
        inst = partition_reduction(numbers)
        best, _ = brute_force_optimum(inst)
        assert best > target_makespan(numbers) + 1e-9

    def test_bookends_force_singletons(self):
        """Memory 7 forbids a heavy bookend (6) from joining anything."""
        inst = partition_reduction([2, 2])
        assert inst.layers[0].size + inst.layers[1].size > inst.memory

    def test_invalid_numbers_rejected(self):
        with pytest.raises(SchedulingError):
            partition_reduction([])
        with pytest.raises(SchedulingError):
            partition_reduction([3, -1])

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(1, 6), min_size=2, max_size=4))
    def test_reduction_correct_both_directions(self, numbers):
        """Proposition A.2 on random small instances: the optimum attains
        T iff the Partition instance is a YES instance."""
        inst = partition_reduction(numbers)
        target = target_makespan(numbers)
        optimum, _ = brute_force_optimum(inst)
        is_yes = exact_partition(numbers) is not None
        attains = abs(optimum - target) < 1e-9
        assert attains == is_yes
        assert optimum >= target - 1e-9  # T is a valid lower bound
