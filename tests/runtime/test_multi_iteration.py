"""Tests for multi-iteration (steady-state) execution."""

import pytest

from repro.core.harmony import Harmony, HarmonyOptions


@pytest.fixture
def harmony(toy_model, small_server):
    return Harmony(toy_model, small_server, 8,
                   HarmonyOptions(capacity_fraction=0.005))


class TestMultiIteration:
    def test_per_iteration_time_stable(self, harmony):
        one = harmony.run(iterations=1).metrics
        three = harmony.run(iterations=3).metrics
        # Flush-separated iterations: the average equals a single one.
        assert three.iteration_time == pytest.approx(
            one.iteration_time, rel=0.02
        )

    def test_counters_reported_per_iteration(self, harmony):
        one = harmony.run(iterations=1).metrics
        four = harmony.run(iterations=4).metrics
        assert four.global_swap_bytes == pytest.approx(
            one.global_swap_bytes, rel=0.01
        )
        assert four.gpus[0].compute_busy == pytest.approx(
            one.gpus[0].compute_busy, rel=0.01
        )

    def test_zero_iterations_rejected(self, harmony):
        from repro.common.errors import SchedulingError

        plan = harmony.plan()
        from repro.hardware.server import SimulatedServer
        from repro.runtime.executor import Executor
        from repro.runtime.timemodel import TrueTimeModel
        from repro.sim.engine import Simulator

        sim = Simulator()
        server = SimulatedServer(sim, harmony.server)
        executor = Executor(
            server,
            TrueTimeModel(plan.decomposed, harmony.server.gpu,
                          harmony.server.host, 2),
        )
        with pytest.raises(SchedulingError):
            executor.run(plan.graph, iterations=0)

    def test_throughput_uses_average(self, harmony):
        report = harmony.run(iterations=2)
        assert report.metrics.throughput == pytest.approx(
            8 / report.metrics.iteration_time
        )
