"""RunMetrics / GpuMetrics / RecoveryMetrics unit behavior.

Covers the degenerate-run edge cases (zero-duration iterations must
yield finite ratios, not ZeroDivisionError) and the recovery-counter
arithmetic the fault-tolerant runner relies on.
"""

import pytest

from repro.runtime.metrics import GpuMetrics, RecoveryMetrics, RunMetrics


def _run(iteration_time, minibatch=8, gpus=1, **gpu_kwargs):
    return RunMetrics(
        mode="test", minibatch=minibatch, iteration_time=iteration_time,
        gpus=[GpuMetrics(**gpu_kwargs) for _ in range(gpus)],
    )


class TestZeroDurationEdgeCases:
    def test_throughput_zero_not_error(self):
        assert _run(0.0).throughput == 0.0
        assert _run(-1.0).throughput == 0.0

    def test_idle_fraction_zero_not_error(self):
        assert _run(0.0, compute_busy=1.0).idle_fraction(0) == 0.0

    def test_describe_survives_degenerate_run(self):
        text = _run(0.0).describe()
        assert "0.00 samples/s" in text
        assert "idle 0%" in text

    def test_positive_duration_unaffected(self):
        metrics = _run(2.0, minibatch=8, compute_busy=1.0)
        assert metrics.throughput == pytest.approx(4.0)
        assert metrics.idle_fraction(0) == pytest.approx(0.5)

    def test_idle_fraction_clamped_at_zero(self):
        # Busy time can exceed wall time when retried attempts re-run
        # kernels; idle must clamp at 0, never go negative.
        assert _run(1.0, compute_busy=1.5).idle_fraction(0) == 0.0


class TestGpuMetricsAccumulate:
    def test_counters_sum_peaks_max(self):
        a = GpuMetrics(swap_in_bytes=10, swap_out_bytes=1, p2p_in_bytes=5,
                       compute_busy=1.0, cpu_busy=0.5,
                       peak_resident_bytes=100)
        b = GpuMetrics(swap_in_bytes=20, swap_out_bytes=2, p2p_in_bytes=7,
                       compute_busy=2.0, cpu_busy=0.25,
                       peak_resident_bytes=50)
        a.accumulate(b)
        assert a.swap_in_bytes == 30
        assert a.swap_out_bytes == 3
        assert a.p2p_in_bytes == 12
        assert a.compute_busy == pytest.approx(3.0)
        assert a.cpu_busy == pytest.approx(0.75)
        assert a.peak_resident_bytes == 100  # max, not sum

    def test_swap_bytes_property(self):
        assert GpuMetrics(swap_in_bytes=3, swap_out_bytes=4).swap_bytes == 7


class TestRecoveryMetrics:
    def test_fresh_counters_report_nothing(self):
        recovery = RecoveryMetrics()
        assert not recovery.any
        assert recovery.total_actions == 0

    def test_any_tracks_injections_without_actions(self):
        assert RecoveryMetrics(faults_injected=3).any
        assert RecoveryMetrics(transfer_retries=1).any

    def test_accumulate_sums_everything(self):
        a = RecoveryMetrics(transfer_retries=1, compute_retries=2,
                            p2p_fallbacks=1, fallback_bytes=100, rebinds=1,
                            restarts=1, faults_injected=9, faults_fatal=1)
        a.accumulate(RecoveryMetrics(transfer_retries=2, fallback_bytes=50,
                                     faults_injected=3))
        assert a.transfer_retries == 3
        assert a.fallback_bytes == 150
        assert a.faults_injected == 12
        assert a.total_actions == 3 + 2 + 1 + 1 + 1

    def test_describe_mentions_all_mechanisms(self):
        text = RecoveryMetrics(transfer_retries=4, p2p_fallbacks=2,
                               fallback_bytes=2**20, rebinds=1,
                               restarts=3, faults_injected=10,
                               faults_fatal=3).describe()
        for fragment in ("4 transfer retries", "2 p2p->swap fallbacks",
                         "1.00 MiB", "1 rebinds", "3 restarts",
                         "10 injected", "3 fatal"):
            assert fragment in text

    def test_run_describe_gates_recovery_line(self):
        quiet = _run(1.0)
        assert "recovery" not in quiet.describe()
        loud = _run(1.0)
        loud.recovery.transfer_retries = 1
        assert "recovery" in loud.describe()
