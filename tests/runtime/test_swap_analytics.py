"""Section 3's analytical swap-volume example, verified mechanically.

The paper derives, for a simplified homogeneous model and weight tensors
only: DP Swap moves ``(4m+2) N |W|`` per iteration, Harmony DP ``3 N |W|``
and Harmony PP ``3 |W|``.  These tests rebuild the same setting (uniform
layers, m microbatches per GPU, N GPUs) and check the *generated
schedules* reproduce those volumes -- the formulas are never hard-coded in
the planners.
"""

import pytest

from repro.core.config import Configuration, even_packs
from repro.core.decomposer import Decomposer
from repro.core.profiler import Profiler
from repro.core.taskgraph import HarmonyGraphBuilder, ScheduleOptions
from repro.core.types import TensorKind
from repro.graph.graph import LayerGraph
from repro.graph.layer import LayerSpec
from repro.hardware.gpu import GpuSpec
from repro.models.spec import ModelSpec

N_GPUS = 4
N_LAYERS = 8
M_MICROBATCHES = 4  # per GPU


@pytest.fixture(scope="module")
def uniform_model():
    layers = [
        LayerSpec(
            index=i, name=f"l{i}", kind="uniform", param_bytes=1_000_000,
            flops_fwd_per_sample=1e9, act_in_bytes_per_sample=1000,
            act_out_bytes_per_sample=1000,
        )
        for i in range(N_LAYERS)
    ]
    graph = LayerGraph.chain("uniform", layers)
    return ModelSpec(name="uniform", graph=graph, optimizer="adam",
                     sample_bytes=1000)


@pytest.fixture(scope="module")
def profiles(uniform_model):
    gpu = GpuSpec(name="g", memory_bytes=16 * 2**20, peak_flops=1e12)
    return Profiler(gpu).profile(Decomposer(0).decompose(uniform_model))


def weight_swap_bytes(graph):
    """Host-crossing weight-family traffic (W in + DW out + W out)."""
    return sum(
        m.nbytes for t in graph.tasks for _d, m in t.moves()
        if m.tensor in (TensorKind.W, TensorKind.DW) and m.channel.via_host
    )


def harmony_graph(profiles, mode, minibatch, u, jit=False):
    """One layer per pack, as in Figure 5.  jit-compute is disabled by
    default because the paper's analytic example schedules every layer's
    forward and backward separately (fusion would *save* one more weight
    fetch than the formula credits)."""
    packs = even_packs(N_LAYERS, N_LAYERS)
    config = Configuration(u_f=u, packs_f=packs, u_b=u, packs_b=packs)
    builder = HarmonyGraphBuilder(
        profiles, N_GPUS, minibatch, ScheduleOptions(mode=mode, jit=jit)
    )
    return builder.build(config)


class TestAnalyticExample:
    def test_harmony_dp_is_3nw(self, profiles):
        """Harmony DP: W in for forward + W in for backward + dW out,
        once per GPU => 3 N |W|."""
        total_w = profiles.total_param_bytes
        graph = harmony_graph(profiles, "dp", minibatch=N_GPUS * M_MICROBATCHES, u=1)
        measured = weight_swap_bytes(graph)
        assert measured == pytest.approx(3 * N_GPUS * total_w, rel=0.02)

    def test_harmony_pp_is_3w(self, profiles):
        """Harmony PP: every layer handled by exactly one GPU => 3 |W|."""
        total_w = profiles.total_param_bytes
        graph = harmony_graph(profiles, "pp", minibatch=N_GPUS * M_MICROBATCHES, u=1)
        measured = weight_swap_bytes(graph)
        assert measured == pytest.approx(3 * total_w, rel=0.02)

    def test_pp_dominates_dp_dominates_grouping_off(self, profiles):
        """The ordering of Figure 5: PP < DP < DP-without-grouping."""
        minibatch = N_GPUS * M_MICROBATCHES
        pp = weight_swap_bytes(harmony_graph(profiles, "pp", minibatch, u=1))
        dp = weight_swap_bytes(harmony_graph(profiles, "dp", minibatch, u=1))
        packs = even_packs(N_LAYERS, N_LAYERS)
        config = Configuration(u_f=1, packs_f=packs, u_b=1, packs_b=packs)
        ungrouped = HarmonyGraphBuilder(
            profiles, N_GPUS, minibatch,
            ScheduleOptions(mode="dp", grouping=False),
        ).build(config)
        assert pp < dp < weight_swap_bytes(ungrouped)

    def test_dp_swap_baseline_is_about_4m_plus_2(self, uniform_model):
        """The DP Swap baseline thrashes weights (4m+2)N|W| when the GPU
        cannot hold weights plus a microbatch's stash."""
        from repro.baselines.dp_swap import DpSwapPlanner
        from repro.hardware.host import HostSpec
        from repro.hardware.interconnect import TopologySpec
        from repro.hardware.server import ServerSpec

        # Capacity just above the weights: the stash forces thrash.
        gpu = GpuSpec(name="tiny", memory_bytes=8_600_000, peak_flops=1e12)
        server = ServerSpec(
            n_gpus=N_GPUS, gpu=gpu,
            host=HostSpec(cores=4, memory_bytes=8 * 2**30),
            topology=TopologySpec(n_gpus=N_GPUS, gpus_per_switch=4),
        )
        planner = DpSwapPlanner(
            uniform_model, server, minibatch=N_GPUS * M_MICROBATCHES,
            microbatch=1,
        )
        plan = planner.plan()
        total_w = uniform_model.weight_bytes
        measured = weight_swap_bytes(plan.graph)
        analytic = (4 * M_MICROBATCHES + 2) * N_GPUS * total_w
        # LRU effects keep it within ~40% of the idealized formula and far
        # above Harmony DP's 3N|W|.
        assert measured > 0.6 * analytic
        assert measured > 4 * (3 * N_GPUS * total_w)
