"""Tests for the ground-truth time model."""

import pytest

from repro.core.types import Task, TaskKind
from repro.runtime.timemodel import TrueTimeModel


@pytest.fixture
def time_model(toy_decomposed, small_server):
    return TrueTimeModel(toy_decomposed, small_server.gpu, small_server.host,
                         n_gpus=small_server.n_gpus)


def make_task(kind, first=1, last=3, fused=False, recompute=True,
              on_cpu=False, flops=0.0):
    return Task(tid=0, kind=kind, first_layer=first, last_layer=last,
                device=0, microbatches=(2, 2), fused=fused,
                recompute=recompute, on_cpu=on_cpu, compute_flops=flops)


class TestMicrobatchTime:
    def test_bwd_with_recompute_costs_fwd_plus_bwd(self, time_model):
        plain = make_task(TaskKind.BWD, recompute=False)
        remat = make_task(TaskKind.BWD, recompute=True)
        fwd = make_task(TaskKind.FWD)
        assert time_model.microbatch_time(remat, 2) == pytest.approx(
            time_model.microbatch_time(plain, 2)
            + time_model.microbatch_time(fwd, 2)
        )

    def test_fused_equals_recompute_cost(self, time_model):
        fused = make_task(TaskKind.BWD, fused=True, recompute=False)
        remat = make_task(TaskKind.BWD, fused=False, recompute=True)
        assert time_model.microbatch_time(fused, 2) == pytest.approx(
            time_model.microbatch_time(remat, 2)
        )

    def test_update_task_rejected_here(self, time_model):
        with pytest.raises(ValueError):
            time_model.microbatch_time(make_task(TaskKind.UPD), 1)


class TestUpdateTime:
    def test_cpu_update_uses_host_model(self, time_model, small_server):
        task = make_task(TaskKind.UPD, on_cpu=True, flops=1e9)
        cores = small_server.host.cores // small_server.n_gpus
        assert time_model.update_time(task) == pytest.approx(
            small_server.host.optimizer_time(1e9, cores)
        )

    def test_gpu_update_sums_layer_times(self, time_model):
        task = make_task(TaskKind.UPD, on_cpu=False)
        assert time_model.update_time(task) > 0

    def test_non_update_rejected(self, time_model):
        with pytest.raises(ValueError):
            time_model.update_time(make_task(TaskKind.FWD))


class TestTaskTotal:
    def test_group_sums_microbatches(self, time_model):
        task = make_task(TaskKind.FWD)
        total = time_model.task_compute_time(task)
        per_mb = time_model.microbatch_time(task, 2)
        assert total == pytest.approx(2 * per_mb)
