"""Tests for the Runtime executor on the simulated server."""

import pytest

from repro.core.config import Configuration
from repro.core.packing import balanced_time_packing
from repro.core.taskgraph import HarmonyGraphBuilder, ScheduleOptions
from repro.core.types import TaskKind
from repro.graph.layer import Phase
from repro.hardware.server import SimulatedServer
from repro.runtime.executor import Executor
from repro.runtime.timemodel import TrueTimeModel
from repro.sim.engine import Simulator


CAPACITY = 1_300_000


@pytest.fixture
def toy_config(toy_profiles):
    packs_b = balanced_time_packing(Phase.BWD, 1, toy_profiles, CAPACITY)
    packs_f = balanced_time_packing(
        Phase.FWD, 2, toy_profiles, CAPACITY, backward_packs=packs_b
    )
    return Configuration(u_f=2, packs_f=packs_f, u_b=1, packs_b=packs_b)


def execute(server_spec, decomposed, profiles, config, mode="pp",
            minibatch=8, prefetch=True, **options):
    graph = HarmonyGraphBuilder(
        profiles, server_spec.n_gpus, minibatch,
        ScheduleOptions(mode=mode, **options),
    ).build(config)
    sim = Simulator()
    server = SimulatedServer(sim, server_spec)
    time_model = TrueTimeModel(decomposed, server_spec.gpu, server_spec.host,
                               server_spec.n_gpus)
    executor = Executor(server, time_model, prefetch=prefetch)
    return executor.run(graph)


class TestExecution:
    def test_iteration_completes(self, small_server, toy_decomposed,
                                 toy_profiles, toy_config):
        metrics = execute(small_server, toy_decomposed, toy_profiles, toy_config)
        assert metrics.iteration_time > 0
        assert metrics.minibatch == 8

    def test_iteration_bounded_below_by_compute(
        self, small_server, toy_decomposed, toy_profiles, toy_config
    ):
        metrics = execute(small_server, toy_decomposed, toy_profiles, toy_config)
        busiest = max(g.compute_busy for g in metrics.gpus)
        assert metrics.iteration_time >= busiest

    def test_deterministic(self, small_server, toy_decomposed, toy_profiles,
                           toy_config):
        a = execute(small_server, toy_decomposed, toy_profiles, toy_config)
        b = execute(small_server, toy_decomposed, toy_profiles, toy_config)
        assert a.iteration_time == b.iteration_time
        assert a.global_swap_bytes == b.global_swap_bytes

    def test_dynamic_swap_matches_static_plan(
        self, small_server, toy_decomposed, toy_profiles, toy_config
    ):
        """Executed link traffic equals the task graph's static accounting
        (message relays count both PCIe hops at run time)."""
        graph = HarmonyGraphBuilder(
            toy_profiles, 2, 8, ScheduleOptions(mode="pp")
        ).build(toy_config)
        sim = Simulator()
        server = SimulatedServer(sim, small_server)
        time_model = TrueTimeModel(toy_decomposed, small_server.gpu,
                                   small_server.host, 2)
        metrics = Executor(server, time_model).run(graph)
        assert metrics.global_swap_bytes == graph.global_swap_bytes()
        assert metrics.global_p2p_bytes == graph.p2p_bytes()

    def test_prefetch_helps_or_ties(self, small_server, toy_decomposed,
                                    toy_profiles, toy_config):
        with_prefetch = execute(small_server, toy_decomposed, toy_profiles,
                                toy_config, prefetch=True)
        without = execute(small_server, toy_decomposed, toy_profiles,
                          toy_config, prefetch=False)
        assert with_prefetch.iteration_time <= without.iteration_time * 1.001

    def test_throughput_definition(self, small_server, toy_decomposed,
                                   toy_profiles, toy_config):
        metrics = execute(small_server, toy_decomposed, toy_profiles, toy_config)
        assert metrics.throughput == pytest.approx(
            8 / metrics.iteration_time
        )

    def test_cpu_updates_tracked(self, small_server, toy_decomposed,
                                 toy_profiles, toy_config):
        metrics = execute(small_server, toy_decomposed, toy_profiles,
                          toy_config, offload_optimizer=True)
        assert sum(g.cpu_busy for g in metrics.gpus) > 0

    def test_gpu_updates_on_compute_stream(self, small_server, toy_decomposed,
                                           toy_profiles, toy_config):
        offloaded = execute(small_server, toy_decomposed, toy_profiles,
                            toy_config, offload_optimizer=True)
        on_gpu = execute(small_server, toy_decomposed, toy_profiles,
                         toy_config, offload_optimizer=False)
        assert sum(g.compute_busy for g in on_gpu.gpus) > (
            sum(g.compute_busy for g in offloaded.gpus)
        )

    def test_dp_mode_runs(self, small_server, toy_decomposed, toy_profiles,
                          toy_config):
        metrics = execute(small_server, toy_decomposed, toy_profiles,
                          toy_config, mode="dp")
        assert metrics.iteration_time > 0
        # Both replicas compute a similar share.
        busy = [g.compute_busy for g in metrics.gpus]
        assert max(busy) < 1.5 * min(busy)

    def test_host_oom_raises(self, small_server, toy_decomposed, toy_profiles,
                             toy_config):
        from repro.common.errors import HostOutOfMemoryError

        graph = HarmonyGraphBuilder(
            toy_profiles, 2, 8, ScheduleOptions(mode="pp")
        ).build(toy_config)
        sim = Simulator()
        server = SimulatedServer(sim, small_server)
        time_model = TrueTimeModel(toy_decomposed, small_server.gpu,
                                   small_server.host, 2)
        executor = Executor(server, time_model,
                            host_state_bytes=small_server.host.memory_bytes * 2)
        with pytest.raises(HostOutOfMemoryError):
            executor.run(graph)

    def test_peak_resident_tracked(self, small_server, toy_decomposed,
                                   toy_profiles, toy_config):
        metrics = execute(small_server, toy_decomposed, toy_profiles, toy_config)
        assert all(g.peak_resident_bytes > 0 for g in metrics.gpus)
        # With double buffering at most two planned task footprints live.
        assert all(
            g.peak_resident_bytes <= 2.1 * CAPACITY + 2**20
            for g in metrics.gpus
        )
