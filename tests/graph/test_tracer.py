"""Tests for the module tracer (the Decomposer's hook mechanism)."""

import pytest

from repro.common.errors import GraphError
from repro.graph.tracer import (
    Add,
    Conv2d,
    Dense,
    Module,
    Pool2d,
    SymbolicTensor,
    trace,
)


class _Mlp(Module):
    def forward(self, x):
        x = Dense(16, 32)(x)
        x = Dense(32, 8)(x)
        return x


class _Skip(Module):
    def forward(self, x):
        x = Conv2d(3, 8, 16)(x)
        skip = x
        y = Conv2d(8, 8, 16)(x)
        y = Conv2d(8, 8, 16)(y)
        return Add()(y, skip)


class TestTrace:
    def test_records_layers_in_call_order(self):
        graph = trace(_Mlp(), input_bytes_per_sample=64, name="mlp")
        assert len(graph) == 2
        assert graph.is_chain()
        assert graph[0].kind == "dense"

    def test_input_size_propagates(self):
        graph = trace(_Mlp(), input_bytes_per_sample=64, name="mlp")
        assert graph[0].act_in_bytes_per_sample == 64
        assert graph[1].act_in_bytes_per_sample == 32 * 4

    def test_branching_recorded(self):
        graph = trace(_Skip(), input_bytes_per_sample=3 * 16 * 16 * 4,
                      name="skip")
        assert len(graph) == 4
        assert not graph.is_chain()
        # Add consumes conv0's output via the skip edge.
        assert 0 in graph.predecessors(3)
        assert 2 in graph.predecessors(3)

    def test_leaf_outside_trace_rejected(self):
        with pytest.raises(GraphError):
            Dense(4, 4)(SymbolicTensor(bytes_per_sample=16))

    def test_trace_not_reentrant(self):
        class _Nested(Module):
            def forward(self, x):
                trace(_Mlp(), 64, name="inner")
                return Dense(16, 4)(x)

        with pytest.raises(GraphError):
            trace(_Nested(), 64, name="outer")

    def test_add_requires_two_inputs(self):
        class _Bad(Module):
            def forward(self, x):
                return Add()(x)

        with pytest.raises(GraphError):
            trace(_Bad(), 64, name="bad")


class TestLeafCosts:
    def test_dense_params_and_flops(self):
        graph = trace(_Mlp(), 64, name="mlp")
        dense = graph[0]
        assert dense.param_bytes == (16 + 1) * 32 * 4
        assert dense.flops_fwd_per_sample == 2 * 16 * 32

    def test_conv_output_spatial(self):
        conv = Conv2d(3, 8, 32, stride=2)
        assert conv.out_spatial == 16

    def test_pool_shrinks_output(self):
        class _P(Module):
            def forward(self, x):
                x = Conv2d(3, 8, 16)(x)
                return Pool2d(8, 16)(x)

        graph = trace(_P(), 3 * 16 * 16 * 4, name="p")
        assert graph[1].act_out_bytes_per_sample == 8 * 8 * 8 * 4
