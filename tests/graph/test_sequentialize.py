"""Tests for the branch-sequentialization pass (Figure 6)."""

import pytest

from repro.graph.graph import Edge, LayerGraph
from repro.graph.layer import LayerSpec
from repro.graph.sequentialize import sequentialize


def spec(i, out_bytes=10):
    return LayerSpec(
        index=i, name=f"l{i}", kind="dense", param_bytes=100,
        flops_fwd_per_sample=10.0, act_in_bytes_per_sample=out_bytes,
        act_out_bytes_per_sample=out_bytes,
    )


class TestSequentialize:
    def test_chain_returned_unchanged(self):
        chain = LayerGraph.chain("c", [spec(i) for i in range(3)])
        assert sequentialize(chain) is chain

    def test_skip_edge_becomes_carried_payload(self):
        # 0 -> 1 -> 2 -> 3 plus a skip 0 -> 3 (residual over 1, 2).
        layers = [spec(i) for i in range(4)]
        edges = [Edge(0, 1), Edge(1, 2), Edge(2, 3), Edge(0, 3)]
        graph = LayerGraph("res", layers, edges)
        chain = sequentialize(graph)
        assert chain.is_chain()
        # Layers 1 and 2 carry layer 0's 10-byte output alongside their own.
        assert chain[1].act_out_bytes_per_sample == 20
        assert chain[2].act_out_bytes_per_sample == 20
        assert chain[2].act_in_bytes_per_sample == 20
        # The destination's input includes the relayed payload.
        assert chain[3].act_in_bytes_per_sample == 20

    def test_boundary_layers_unchanged(self):
        layers = [spec(i) for i in range(4)]
        edges = [Edge(0, 1), Edge(1, 2), Edge(2, 3), Edge(0, 3)]
        chain = sequentialize(LayerGraph("res", layers, edges))
        assert chain[0].act_out_bytes_per_sample == 10
        assert chain[3].act_out_bytes_per_sample == 10

    def test_layer_count_preserved(self):
        layers = [spec(i) for i in range(6)]
        edges = [Edge(i, i + 1) for i in range(5)] + [Edge(1, 4)]
        chain = sequentialize(LayerGraph("g", layers, edges))
        assert len(chain) == 6

    def test_overlapping_skips_accumulate(self):
        layers = [spec(i) for i in range(5)]
        edges = [Edge(i, i + 1) for i in range(4)] + [Edge(0, 3), Edge(1, 4)]
        chain = sequentialize(LayerGraph("g", layers, edges))
        # Layer 2 is inside both skips: carries both payloads.
        assert chain[2].act_out_bytes_per_sample == 30

    def test_compute_costs_untouched(self):
        layers = [spec(i) for i in range(4)]
        edges = [Edge(0, 1), Edge(1, 2), Edge(2, 3), Edge(0, 3)]
        chain = sequentialize(LayerGraph("g", layers, edges))
        for before, after in zip(layers, chain):
            assert after.flops_fwd_per_sample == before.flops_fwd_per_sample
            assert after.param_bytes == before.param_bytes
