"""Tests for the layer DAG."""

import pytest

from repro.common.errors import GraphError
from repro.graph.graph import Edge, LayerGraph, iter_packs, subchain_layers
from repro.graph.layer import LayerSpec


def spec(i, params=100):
    return LayerSpec(
        index=i, name=f"l{i}", kind="dense", param_bytes=params,
        flops_fwd_per_sample=10.0, act_in_bytes_per_sample=8,
        act_out_bytes_per_sample=8,
    )


@pytest.fixture
def chain():
    return LayerGraph.chain("c", [spec(i) for i in range(5)])


class TestConstruction:
    def test_chain_builder_renumbers(self):
        graph = LayerGraph.chain("c", [spec(9), spec(9), spec(9)])
        assert [l.index for l in graph] == [0, 1, 2]

    def test_chain_has_chain_edges(self, chain):
        assert chain.is_chain()
        assert len(chain.edges) == 4

    def test_dense_index_enforced(self):
        with pytest.raises(GraphError):
            LayerGraph("bad", [spec(0), spec(2)], [])

    def test_backward_edge_rejected(self):
        layers = [spec(0), spec(1)]
        with pytest.raises(GraphError):
            LayerGraph("bad", layers, [Edge(1, 0)])

    def test_duplicate_edge_rejected(self):
        layers = [spec(0), spec(1)]
        with pytest.raises(GraphError):
            LayerGraph("bad", layers, [Edge(0, 1), Edge(0, 1)])

    def test_edge_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            LayerGraph("bad", [spec(0)], [Edge(0, 5)])


class TestQueries:
    def test_len_iter_getitem(self, chain):
        assert len(chain) == 5
        assert chain[2].index == 2
        assert [l.index for l in chain] == list(range(5))

    def test_predecessors_successors(self, chain):
        assert chain.predecessors(2) == [1]
        assert chain.successors(2) == [3]
        assert chain.predecessors(0) == []
        assert chain.successors(4) == []

    def test_branching_is_not_chain(self):
        layers = [spec(0), spec(1), spec(2)]
        graph = LayerGraph("b", layers, [Edge(0, 1), Edge(1, 2), Edge(0, 2)])
        assert not graph.is_chain()

    def test_aggregate_stats(self, chain):
        assert chain.total_param_bytes == 500
        assert chain.n_parameters == 125
        assert chain.model_state_bytes(optimizer_slots=2) == 2000

    def test_summary_mentions_name(self, chain):
        assert "c:" in chain.summary()


class TestHelpers:
    def test_subchain_layers(self, chain):
        sub = subchain_layers(chain, 1, 3)
        assert [l.index for l in sub] == [1, 2, 3]

    def test_subchain_bounds_checked(self, chain):
        with pytest.raises(GraphError):
            subchain_layers(chain, 3, 1)
        with pytest.raises(GraphError):
            subchain_layers(chain, 0, 9)

    def test_iter_packs_validates_contiguity(self):
        assert list(iter_packs([(0, 2), (3, 4)])) == [(0, 2), (3, 4)]
        with pytest.raises(GraphError):
            list(iter_packs([(0, 2), (4, 5)]))
        with pytest.raises(GraphError):
            list(iter_packs([(1, 2)]))
