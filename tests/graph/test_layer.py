"""Tests for the per-layer cost model."""

import pytest

from repro.graph.layer import FP32_BYTES, LayerSpec, Phase, identity_layer


@pytest.fixture
def layer():
    return LayerSpec(
        index=3,
        name="block3",
        kind="transformer",
        param_bytes=1000,
        flops_fwd_per_sample=500.0,
        act_in_bytes_per_sample=64,
        act_out_bytes_per_sample=64,
        workspace_bytes_per_sample=16,
    )


class TestFlops:
    def test_forward_linear_in_microbatch(self, layer):
        assert layer.flops(Phase.FWD, 4) == pytest.approx(2000.0)

    def test_backward_default_ratio_is_two(self, layer):
        assert layer.flops(Phase.BWD, 4) == pytest.approx(4000.0)

    def test_custom_bwd_ratio(self, layer):
        from dataclasses import replace

        heavy = replace(layer, bwd_flops_ratio=3.0)
        assert heavy.flops(Phase.BWD, 1) == pytest.approx(1500.0)

    def test_update_independent_of_microbatch(self, layer):
        assert layer.flops(Phase.UPD, 1) == layer.flops(Phase.UPD, 64)

    def test_fixed_cost_component(self, layer):
        from dataclasses import replace

        fixed = replace(layer, flops_fwd_fixed=100.0)
        assert fixed.flops(Phase.FWD, 0) == pytest.approx(100.0)

    def test_negative_microbatch_rejected(self, layer):
        with pytest.raises(ValueError):
            layer.flops(Phase.FWD, -1)


class TestSizes:
    def test_grad_matches_params(self, layer):
        assert layer.grad_bytes == layer.param_bytes

    def test_optimizer_state_slots(self, layer):
        assert layer.optimizer_state_bytes(2) == 2000
        assert layer.optimizer_state_bytes(0) == 0

    def test_activation_scaling(self, layer):
        assert layer.act_in_bytes(3) == 192
        assert layer.act_out_bytes(5) == 320

    def test_bwd_memory_exceeds_fwd(self, layer):
        for u in (1, 4, 16):
            assert layer.bwd_memory_bytes(u) > layer.fwd_memory_bytes(u)

    def test_fwd_memory_composition(self, layer):
        assert layer.fwd_memory_bytes(2) == 1000 + 128 + 128 + 32


class TestIdentity:
    def test_identity_is_free(self):
        relay = identity_layer(5, carried_bytes_per_sample=100)
        assert relay.is_identity()
        assert relay.param_bytes == 0
        assert relay.flops(Phase.FWD, 10) == 0.0
        assert relay.act_in_bytes(2) == 200

    def test_with_index_renumbers(self, layer):
        assert layer.with_index(9).index == 9
