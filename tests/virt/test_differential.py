"""Differential proof: DeviceBinding subsumes the elastic relabel path.

The elastic replanner relabels a survivor plan's logical devices onto the
surviving physical ids via ``relabel_graph``; a ``DeviceBinding`` built
from the same mapping must produce the *same* task graph (dataclass
equality covers tasks, devices, move lists, channels).  This is what
justified deleting the duplicated relabel implementation: both paths now
share ``repro.virt.apply_device_mapping``.
"""

import pytest

from repro.core.harmony import Harmony, HarmonyOptions
from repro.elastic.rebind import rebind_graph, relabel_graph
from repro.experiments.common import server_for
from repro.virt import DeviceBinding, VirtualTopology, apply_device_mapping

#: Survivor subsets of a 4-GPU server: (survivor ids, logical->physical).
SURVIVOR_CASES = (
    ((0, 1, 2), {0: 0, 1: 1, 2: 2}),
    ((0, 2, 3), {0: 0, 1: 2, 2: 3}),
    ((1, 3), {0: 1, 1: 3}),
    ((2,), {0: 2}),
)


@pytest.fixture(scope="module")
def harmony():
    return Harmony("toy-transformer", server_for(4), 16,
                   options=HarmonyOptions(mode="pp"))


@pytest.mark.parametrize("survivors,mapping", SURVIVOR_CASES,
                         ids=["-".join(map(str, s))
                              for s, _ in SURVIVOR_CASES])
def test_binding_matches_relabel_on_survivor_subsets(
        harmony, survivors, mapping):
    plan = harmony.plan_for_server(len(survivors))
    relabeled = relabel_graph(plan.graph, mapping, n_devices=4)
    binding = DeviceBinding.from_mapping(
        mapping, n_logical=len(survivors),
        topology=VirtualTopology.uniform(4),
    )
    assert binding.apply(plan.graph) == relabeled


def test_binding_matches_recovery_rebind(harmony):
    """The recovery rebind (degraded -> spare) is the same rewrite."""
    plan = harmony.plan_for_server(3)
    mapping = {1: 3}  # gpu1 degraded, gpu3 is the spare
    rebound = rebind_graph(plan.graph, mapping, n_devices=4)
    binding = DeviceBinding.from_mapping(
        mapping, n_logical=3, topology=VirtualTopology.uniform(4),
    )
    assert binding.apply(plan.graph) == rebound


def test_relabel_still_requires_injectivity(harmony):
    """relabel_graph keeps its validation; deliberate many-to-one binds
    must go through DeviceBinding (which re-certifies capacity)."""
    plan = harmony.plan_for_server(2)
    with pytest.raises(ValueError, match="injective"):
        relabel_graph(plan.graph, {0: 1, 1: 1}, n_devices=4)
    # ...while the same collapse is a legal time-slice bind.
    merged = apply_device_mapping(plan.graph, {0: 1, 1: 1}, 4)
    assert {t.device for t in merged.tasks} == {1}


def test_wrappers_share_the_virt_rewrite():
    """The duplicated relabel logic is gone: elastic.rebind delegates to
    repro.virt.apply_device_mapping."""
    import inspect

    import repro.elastic.rebind as rebind_module

    assert rebind_module.apply_device_mapping \
        is apply_device_mapping
    source = inspect.getsource(rebind_module)
    assert "def _apply_mapping" not in source
    assert "def _remap_move" not in source
