"""Golden-trace regression for the heterogeneous bind.

The toy transformer planned for 4 logical GPUs, bound onto 2 fast + 2
slow physical devices, must replay the exact pinned timeline.  Matrix
and recording procedure live in ``scripts/regen_golden_traces.py`` (the
same single source of truth the plain goldens use), so a timing-rescale
change surfaces as a reviewable golden diff, never a silent drift.
"""

import importlib.util
from pathlib import Path

_SCRIPT = (
    Path(__file__).resolve().parent.parent.parent
    / "scripts" / "regen_golden_traces.py"
)
_spec = importlib.util.spec_from_file_location("regen_golden_traces", _SCRIPT)
regen = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(regen)


def test_hetero_trace_matches_golden():
    golden = regen.hetero_golden_path()
    assert golden.is_file(), (
        f"missing golden {golden.name}; run "
        "PYTHONPATH=src python scripts/regen_golden_traces.py"
    )
    assert regen.record_hetero() == golden.read_text(), (
        "heterogeneous bind trace diverged from the golden. If a "
        "timing-rescale change legitimately moved the timeline, "
        "regenerate via scripts/regen_golden_traces.py and commit the "
        "new golden with it."
    )


def test_hetero_recording_is_deterministic():
    assert regen.record_hetero() == regen.record_hetero()


def test_hetero_golden_is_canonical_lines():
    for line in regen.hetero_golden_path().read_text().splitlines():
        fields = line.split("|", 9)
        assert fields[0] in ("span", "instant"), line
        assert len(fields) == 10, line


def test_hetero_golden_differs_from_homogeneous_timeline():
    """The rescale must actually show: the bound run's timeline is not
    the unbound 4-GPU run merely relabeled."""
    from repro.core.harmony import Harmony, HarmonyOptions
    from repro.experiments.common import server_for
    from repro.trace import TraceRecorder

    harmony = Harmony(
        regen.HETERO_MODEL, server_for(regen.HETERO_GPUS), regen.MINIBATCH,
        options=HarmonyOptions(mode=regen.HETERO_MODE),
    )
    recorder = TraceRecorder()
    harmony.run(iterations=regen.ITERATIONS, trace=recorder)
    assert recorder.canonical() + "\n" \
        != regen.hetero_golden_path().read_text()
