"""Unit tests for the logical/physical device vocabulary."""

import pytest

from repro.core.types import Channel
from repro.virt import (
    DeviceBinding,
    LogicalDevice,
    PhysicalDevice,
    VirtualTopology,
    server_fingerprint,
)


class TestPhysicalDevice:
    def test_defaults_are_the_planned_gpu(self):
        d = PhysicalDevice(0)
        assert d.flops_scale == 1.0 and d.memory_scale == 1.0

    def test_rejects_nonpositive_scales(self):
        with pytest.raises(ValueError):
            PhysicalDevice(0, flops_scale=0.0)
        with pytest.raises(ValueError):
            PhysicalDevice(0, memory_scale=-1.0)
        with pytest.raises(ValueError):
            LogicalDevice(-1)

    def test_memory_bytes_is_integer_exact(self):
        base = 11 * 2**30
        assert PhysicalDevice(0).memory_bytes(base) == base
        assert PhysicalDevice(0, memory_scale=0.5).memory_bytes(base) \
            == base // 2
        # 0.75 is exactly representable; the Fraction path keeps the
        # product exact instead of round-tripping through float.
        assert PhysicalDevice(0, memory_scale=0.75).memory_bytes(base) \
            == base * 3 // 4


class TestVirtualTopology:
    def test_uniform(self):
        topo = VirtualTopology.uniform(3)
        assert topo.n_physical == 3 and topo.is_uniform
        assert topo.flops_scales() == (1.0, 1.0, 1.0)

    def test_heterogeneous(self):
        topo = VirtualTopology.heterogeneous([1.5, 0.75], [1.0, 0.5])
        assert not topo.is_uniform
        assert topo.devices[1].memory_scale == 0.5

    def test_scale_lists_must_match(self):
        with pytest.raises(ValueError):
            VirtualTopology.heterogeneous([1.0, 1.0], [1.0])

    def test_dense_indexing_enforced(self):
        with pytest.raises(ValueError):
            VirtualTopology((PhysicalDevice(1),))
        with pytest.raises(ValueError):
            VirtualTopology(())

    def test_fingerprint_tracks_scales(self):
        a = VirtualTopology.uniform(2)
        b = VirtualTopology.heterogeneous([1.0, 1.5])
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() == VirtualTopology.uniform(2).fingerprint()


class TestDeviceBinding:
    def test_identity(self):
        b = DeviceBinding.identity(4)
        assert b.is_identity and b.injective
        assert b.n_logical == b.n_physical == 4

    def test_pack_round_robin(self):
        b = DeviceBinding.pack(4, VirtualTopology.uniform(2))
        assert b.assignment == (0, 1, 0, 1)
        assert not b.injective and not b.is_identity
        assert b.logical_on(0) == (0, 2) and b.logical_on(1) == (1, 3)

    def test_pack_equal_counts_is_identity(self):
        assert DeviceBinding.pack(3, VirtualTopology.uniform(3)).is_identity

    def test_heterogeneous_is_not_identity(self):
        b = DeviceBinding.heterogeneous([1.5, 0.75])
        assert b.identity_assignment and not b.is_identity

    def test_embed(self):
        b = DeviceBinding.embed(2, 4)
        assert b.assignment == (0, 1) and b.n_physical == 4
        with pytest.raises(ValueError):
            DeviceBinding.embed(4, 2)

    def test_from_mapping(self):
        b = DeviceBinding.from_mapping({0: 0, 1: 2, 2: 3}, n_logical=3)
        assert b.assignment == (0, 2, 3)
        assert b.injective and b.n_physical == 4

    def test_out_of_range_assignment_rejected(self):
        with pytest.raises(ValueError):
            DeviceBinding(VirtualTopology.uniform(2), (0, 2))

    def test_fingerprint_tracks_assignment_and_topology(self):
        ident = DeviceBinding.identity(2)
        packed = DeviceBinding.pack(2, VirtualTopology.uniform(1))
        hetero = DeviceBinding.heterogeneous([1.0, 1.5])
        prints = {b.fingerprint() for b in (ident, packed, hetero)}
        assert len(prints) == 3
        assert ident.fingerprint() == DeviceBinding.identity(2).fingerprint()


@pytest.fixture(scope="module")
def planned_graph():
    from repro.core.harmony import Harmony, HarmonyOptions
    from repro.experiments.common import server_for

    return Harmony("toy-transformer", server_for(2), 8,
                   options=HarmonyOptions(mode="pp")).plan().graph


class TestApply:
    def test_identity_apply_returns_the_same_graph(self, planned_graph):
        assert DeviceBinding.identity(2).apply(planned_graph) \
            is planned_graph

    def test_shape_mismatch_rejected(self, planned_graph):
        with pytest.raises(ValueError):
            DeviceBinding.identity(3).apply(planned_graph)

    def test_pack_collapses_p2p_to_local(self, planned_graph):
        graph = planned_graph
        bound = DeviceBinding.pack(2, VirtualTopology.uniform(1)).apply(graph)
        assert bound.n_devices == 1
        for task in bound.tasks:
            assert task.device == 0
            for moves in (task.ins, task.outs):
                for move in moves:
                    assert move.channel is not Channel.P2P, (
                        "P2P between devices collapsed onto one physical "
                        "GPU must become LOCAL"
                    )


def test_server_fingerprint_tracks_hardware(small_server, four_gpu_server):
    assert server_fingerprint(small_server) != \
        server_fingerprint(four_gpu_server)
    assert server_fingerprint(small_server) == \
        server_fingerprint(small_server)
