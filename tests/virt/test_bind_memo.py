"""Stale-bind regressions: plan memos must key on physical hardware.

Mirrors ``tests/elastic/test_plan_memo.py`` for the hardware dimension:
after a rebind the *server spec* can change (different GPU memory, a
different count behind the same live indices), and every memo that used
to key only on counts/settings would happily serve a plan searched
against the old hardware.  Both ``Harmony`` memos and both
``ClusterPlanner`` memos now carry a physical fingerprint.
"""

from dataclasses import replace

from repro.cluster import ClusterPlanner, homogeneous_cluster
from repro.core.harmony import Harmony, HarmonyOptions
from repro.experiments.common import server_for


def _harmony(gpus=2):
    return Harmony("toy-transformer", server_for(gpus), 8,
                   options=HarmonyOptions(mode="pp"))


def _shrunk_gpu(server):
    """The same server with half the GPU memory (a hardware downgrade)."""
    gpu = replace(server.gpu, memory_bytes=server.gpu.memory_bytes // 2)
    return replace(server, gpu=gpu)


class TestHarmonyMemos:
    def test_plan_memoizes_on_stable_server(self):
        harmony = _harmony()
        assert harmony.plan() is harmony.plan()

    def test_plan_recomputes_after_server_change(self):
        harmony = _harmony()
        stale = harmony.plan()
        harmony.server = _shrunk_gpu(harmony.server)
        fresh = harmony.plan()
        assert fresh is not stale, (
            "plan() served a plan searched against the old hardware"
        )
        assert fresh.server == harmony.server
        assert harmony.plan() is fresh

    def test_plan_for_server_memoizes_on_stable_server(self):
        harmony = _harmony()
        assert harmony.plan_for_server(1) is harmony.plan_for_server(1)

    def test_plan_for_server_recomputes_after_server_change(self):
        harmony = _harmony()
        stale = harmony.plan_for_server(1)
        harmony.server = _shrunk_gpu(harmony.server)
        fresh = harmony.plan_for_server(1)
        assert fresh is not stale, (
            "plan_for_server() memo key is missing the physical "
            "topology fingerprint"
        )
        assert fresh.server.gpu == harmony.server.gpu


class TestClusterPlannerMemos:
    def test_plan_for_memoizes_on_stable_cluster(self):
        planner = ClusterPlanner(
            "toy-transformer", homogeneous_cluster(2, server_for(2)), 8,
            mode="pp",
        )
        live = (0, 1)
        assert planner.plan_for(live) is planner.plan_for(live)

    def test_plan_for_recomputes_after_hardware_swap(self):
        planner = ClusterPlanner(
            "toy-transformer", homogeneous_cluster(2, server_for(2)), 8,
            mode="pp",
        )
        live = (0, 1)
        stale = planner.plan_for(live)
        swapped = _shrunk_gpu(planner.cluster.servers[1])
        planner.cluster = replace(
            planner.cluster,
            servers=(planner.cluster.servers[0], swapped),
        )
        fresh = planner.plan_for(live)
        assert fresh is not stale, (
            "ClusterPlanner served a placement computed against the old "
            "hardware mix for the same live-index tuple"
        )
        assert planner.plan_for(live) is fresh

    def test_harmony_memo_tracks_server_spec(self):
        planner = ClusterPlanner(
            "toy-transformer", homogeneous_cluster(2, server_for(2)), 8,
            mode="pp",
        )
        model = planner.model
        first = planner._harmony(0, model, 8)
        assert planner._harmony(0, model, 8) is first
        planner.cluster = replace(
            planner.cluster,
            servers=(_shrunk_gpu(planner.cluster.servers[0]),
                     planner.cluster.servers[1]),
        )
        second = planner._harmony(0, model, 8)
        assert second is not first
        assert second.server == planner.cluster.servers[0]
