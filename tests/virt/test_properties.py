"""Property suite: binding never changes what an identity bind executes,
and every non-identity bind is analyzer-certified.

Identity bit-identity is the contract the whole layer rests on: a plan
bound onto hardware identical to what it was planned for must execute
the *exact* run -- same trace events, same float-bit metrics -- as the
unbound plan.  Checked across the small zoo x {dp, pp} x 5 seeds via the
canonical trace text (repr-printed floats) and ``float.hex`` metrics.
"""

import pytest

from repro.core.harmony import Harmony, HarmonyOptions
from repro.experiments.common import server_for
from repro.trace import TraceRecorder
from repro.virt import DeviceBinding, VirtualTopology

MODELS = ("toy-transformer", "tiny-cnn")
MODES = ("pp", "dp")
SEEDS = (0, 1, 2, 3, 4)
GPUS = 4
MINIBATCH = 16


def _harmony(model, mode, seed):
    return Harmony(model, server_for(GPUS), MINIBATCH,
                   options=HarmonyOptions(mode=mode, seed=seed))


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("seed", SEEDS)
def test_identity_bind_is_bit_identical(model, mode, seed):
    harmony = _harmony(model, mode, seed)
    plan = harmony.plan()

    unbound_trace = TraceRecorder()
    unbound = harmony.run(plan=plan, trace=unbound_trace)

    bound_plan = harmony.bind(DeviceBinding.identity(GPUS), plan=plan)
    bound_trace = TraceRecorder()
    bound = harmony.run(plan=bound_plan, trace=bound_trace)

    assert bound_trace.canonical() == unbound_trace.canonical(), (
        f"{model}/{mode}/seed{seed}: identity bind moved the timeline"
    )
    for attr in ("iteration_time", "throughput"):
        assert getattr(bound.metrics, attr).hex() \
            == getattr(unbound.metrics, attr).hex(), (
                f"{model}/{mode}/seed{seed}: identity bind changed "
                f"{attr} at the bit level"
            )


#: The three non-identity topologies of the acceptance matrix: 2-GPU
#: time-slice, heterogeneous FLOPs, and heterogeneous FLOPs + memory.
BINDINGS = {
    "time-slice-2": lambda: DeviceBinding.pack(
        GPUS, VirtualTopology.uniform(2)),
    "hetero-flops": lambda: DeviceBinding.heterogeneous(
        [1.5, 1.5, 0.75, 0.75]),
    "hetero-mixed": lambda: DeviceBinding.heterogeneous(
        [2.0, 1.0, 1.0, 0.5], [1.0, 1.0, 0.75, 0.5]),
}


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("name", sorted(BINDINGS))
def test_bound_plans_pass_the_strict_analyzer(model, mode, name):
    """bind() re-runs the full analyzer (races, lifetimes, capacity
    certificates against per-physical-device memory) and raises on any
    error; a clean return IS the certification."""
    harmony = _harmony(model, mode, seed=0)
    bound = harmony.bind(BINDINGS[name]())
    assert bound.report is not None
    assert not bound.report.errors
    # Capacity/parametric must have actually run against the physical
    # server -- not been skipped for lack of context.
    ran = {r.name for r in bound.report.results if r.skipped is None}
    assert {"capacity", "parametric", "hb", "lifetime"} <= ran


@pytest.mark.parametrize("name", sorted(BINDINGS))
def test_bound_plans_execute(name):
    """Every acceptance topology also runs end to end (the autouse
    conftest fixture re-checks structure + per-device capacity and the
    trace invariants on the way)."""
    harmony = _harmony("toy-transformer", "pp", seed=0)
    report = harmony.run(binding=BINDINGS[name]())
    assert report.metrics.iteration_time > 0
