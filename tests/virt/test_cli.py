"""The ``repro bind`` subcommand and chaos ``--hetero``."""

import json

import pytest

from repro.cli import main

ARGS = ["bind", "toy-transformer", "--minibatch", "16", "--gpus", "4"]


def test_identity_bind(capsys):
    assert main(ARGS) == 0
    out = capsys.readouterr().out
    assert "identity binding" in out
    assert "analyzer: clean" in out


def test_time_slice_bind_runs(tmp_path):
    report = tmp_path / "bind.json"
    assert main(ARGS + ["--physical", "2", "--run",
                        "--json", str(report)]) == 0
    payload = json.loads(report.read_text())
    assert payload["ok"] is True
    assert payload["logical_gpus"] == 4
    assert payload["physical_gpus"] == 2
    assert payload["assignment"] == [0, 1, 0, 1]
    assert payload["iteration_time"] > 0


def test_hetero_bind_runs(tmp_path):
    report = tmp_path / "bind.json"
    assert main(ARGS + ["--hetero", "1.5,1.5,0.75,0.75", "--run",
                        "--json", str(report)]) == 0
    payload = json.loads(report.read_text())
    assert payload["ok"] is True
    assert payload["flops_scales"] == [1.5, 1.5, 0.75, 0.75]
    assert len(payload["device_memory_bytes"]) == 4


def test_rejected_bind_exits_nonzero(tmp_path, capsys):
    report = tmp_path / "bind.json"
    code = main(ARGS + ["--memory-scales", "1.0,1.0,1.0,0.000001",
                        "--json", str(report)])
    assert code == 1
    assert "REJECTED" in capsys.readouterr().out
    payload = json.loads(report.read_text())
    assert payload["ok"] is False
    assert "capacity" in payload["error"]


def test_malformed_scales_exit(tmp_path):
    with pytest.raises(SystemExit):
        main(ARGS + ["--hetero", "fast,slow"])
    with pytest.raises(SystemExit):
        main(ARGS + ["--hetero", "-1.0,1.0,1.0,1.0"])


def test_memory_scales_length_mismatch_is_usage_error():
    """A --memory-scales list that disagrees with the physical device
    count must exit as a usage error, not an uncaught traceback."""
    with pytest.raises(SystemExit) as exc:
        main(ARGS + ["--memory-scales", "1.0,1.0"])
    assert "bad topology" in str(exc.value)
    with pytest.raises(SystemExit) as exc:
        main(ARGS + ["--physical", "2",
                     "--memory-scales", "1.0,1.0,1.0,1.0"])
    assert "bad topology" in str(exc.value)
    with pytest.raises(SystemExit) as exc:
        main(ARGS + ["--hetero", "1.5,1.5,0.75,0.75",
                     "--memory-scales", "1.0"])
    assert "bad topology" in str(exc.value)


def test_memory_scales_must_be_positive_numbers():
    with pytest.raises(SystemExit) as exc:
        main(ARGS + ["--memory-scales", "1.0,1.0,1.0,0.0"])
    assert "positive" in str(exc.value)
    with pytest.raises(SystemExit) as exc:
        main(ARGS + ["--memory-scales", "1.0,1.0,-0.5,1.0"])
    assert "positive" in str(exc.value)
    with pytest.raises(SystemExit) as exc:
        main(ARGS + ["--memory-scales", "big,small,1.0,1.0"])
    assert "malformed" in str(exc.value)


def test_chaos_hetero_sweep(tmp_path):
    report = tmp_path / "chaos.json"
    code = main(["chaos", "toy-transformer", "--minibatch", "16",
                 "--gpus", "4", "--seeds", "2", "--iterations", "1",
                 "--hetero", "1.25,1.0,1.0,0.75", "--json", str(report)])
    assert code == 0
    payload = json.loads(report.read_text())
    assert payload["hetero"] == "1.25,1.0,1.0,0.75"
    assert payload["summary"]["hard_failures"] == 0


def test_chaos_hetero_rejects_cluster_sweeps():
    with pytest.raises(SystemExit):
        main(["chaos", "toy-transformer", "--minibatch", "8",
              "--gpus", "2", "--servers", "2", "--hetero", "1.0,1.0"])


def test_chaos_hetero_scale_count_must_match_gpus():
    with pytest.raises(SystemExit):
        main(["chaos", "toy-transformer", "--minibatch", "16",
              "--gpus", "4", "--hetero", "1.0,1.0"])
