"""Execution semantics of non-identity binds.

Time-slice binds must be deterministic (one driver per physical device
walks the merged task list in global tid order -- FIFO multiplexing, no
new engine machinery); heterogeneous binds must actually rescale compute
times and per-device memory pools; undersized memory must be refused by
the analyzer *before* execution.
"""

import pytest

from repro.common.errors import ScheduleAnalysisError
from repro.core.harmony import Harmony, HarmonyOptions
from repro.experiments.common import server_for
from repro.runtime.timemodel import TrueTimeModel
from repro.trace import TraceRecorder
from repro.virt import DeviceBinding, ScaledTimeModel, VirtualTopology

GPUS = 4
MINIBATCH = 16


@pytest.fixture(scope="module")
def harmony():
    return Harmony("toy-transformer", server_for(GPUS), MINIBATCH,
                   options=HarmonyOptions(mode="pp"))


class TestTimeSlice:
    def test_two_gpu_bind_executes(self, harmony):
        bound = harmony.bind(DeviceBinding.pack(
            GPUS, VirtualTopology.uniform(2)))
        report = harmony.run(plan=bound)
        assert report.metrics.iteration_time > 0

    def test_single_gpu_bind_executes(self, harmony):
        """Full oversubscription: every logical device on one GPU."""
        bound = harmony.bind(DeviceBinding.pack(
            GPUS, VirtualTopology.uniform(1)))
        report = harmony.run(plan=bound)
        assert report.metrics.iteration_time > 0

    def test_time_slice_is_deterministic(self, harmony):
        bound = harmony.bind(DeviceBinding.pack(
            GPUS, VirtualTopology.uniform(2)))
        first, second = TraceRecorder(), TraceRecorder()
        a = harmony.run(plan=bound, trace=first)
        b = harmony.run(plan=bound, trace=second)
        assert first.canonical() == second.canonical()
        assert a.metrics.iteration_time.hex() \
            == b.metrics.iteration_time.hex()

    def test_multiplexing_conserves_gpu_work(self, harmony):
        """Time-slicing reorders GPU kernels, it never changes them: the
        total GPU compute busy time of the 1-GPU bind equals the unbound
        run's across all four devices."""
        def gpu_compute_seconds(recorder):
            return sum(
                e.duration for e in recorder.events
                if e.cat == "compute" and e.lane == "compute"
            )

        unbound = TraceRecorder()
        harmony.run(trace=unbound)
        bound = TraceRecorder()
        harmony.run(binding=DeviceBinding.pack(
            GPUS, VirtualTopology.uniform(1)), trace=bound)
        assert {e.device for e in bound.events if e.lane == "compute"} \
            == {0}
        assert gpu_compute_seconds(bound) \
            == pytest.approx(gpu_compute_seconds(unbound))


class TestHeterogeneous:
    def test_scaled_time_model_divides_by_flops_scale(self, harmony):
        plan = harmony.plan()
        base = TrueTimeModel(plan.decomposed, harmony.server.gpu,
                             harmony.server.host, n_gpus=GPUS)
        scaled = ScaledTimeModel(
            base, DeviceBinding.heterogeneous([2.0, 1.0, 1.0, 0.5]))
        from repro.core.types import TaskKind

        checked = 0
        for task in plan.graph.tasks:
            if task.kind is TaskKind.UPD:
                continue
            for u in task.microbatches:
                checked += 1
                t, s = base.microbatch_time(task, u), \
                    scaled.microbatch_time(task, u)
                if task.device == 0:
                    assert s == t / 2.0
                elif task.device == 3:
                    assert s == t / 0.5
                else:
                    assert s == t  # scale 1.0 is an exact passthrough
        assert checked > 0

    def test_cpu_updates_are_not_scaled(self, harmony):
        plan = harmony.plan()
        base = TrueTimeModel(plan.decomposed, harmony.server.gpu,
                             harmony.server.host, n_gpus=GPUS)
        scaled = ScaledTimeModel(
            base, DeviceBinding.heterogeneous([2.0] * GPUS))
        from repro.core.types import TaskKind

        cpu_updates = [t for t in plan.graph.tasks
                       if t.kind is TaskKind.UPD and t.on_cpu]
        assert cpu_updates, "fixture should offload the optimizer"
        for task in cpu_updates:
            assert scaled.update_time(task) == base.update_time(task)

    def test_uniformly_faster_hardware_is_not_slower(self, harmony):
        planned = harmony.run().metrics.iteration_time
        fast = harmony.run(binding=DeviceBinding.heterogeneous(
            [4.0] * GPUS)).metrics.iteration_time
        assert fast <= planned

    def test_hetero_run_is_deterministic(self, harmony):
        binding = DeviceBinding.heterogeneous([1.5, 1.5, 0.75, 0.75])
        bound = harmony.bind(binding)
        first, second = TraceRecorder(), TraceRecorder()
        harmony.run(plan=bound, trace=first)
        harmony.run(plan=bound, trace=second)
        assert first.canonical() == second.canonical()

    def test_memory_pools_reflect_the_binding(self, harmony):
        from repro.hardware.server import SimulatedServer
        from repro.sim.engine import Simulator
        from repro.virt import physical_server

        binding = DeviceBinding.heterogeneous([1.0] * GPUS,
                                              [1.0, 1.0, 0.5, 0.75])
        spec = physical_server(harmony.server, binding)
        live = SimulatedServer(Simulator(), spec, binding=binding)
        base = spec.gpu.memory_bytes
        assert [p.capacity for p in live.gpu_memory] \
            == [base, base, base // 2, base * 3 // 4]

    def test_undersized_memory_is_refused_before_execution(self, harmony):
        tiny = DeviceBinding.heterogeneous([1.0] * GPUS,
                                           [1.0, 1.0, 1.0, 1e-6])
        with pytest.raises(ScheduleAnalysisError, match="capacity"):
            harmony.bind(tiny)


class TestFaultPath:
    def test_chaos_on_a_hetero_bind_completes(self, harmony):
        from repro.faults import FaultPlan, FaultSpec

        binding = DeviceBinding.heterogeneous([1.25, 1.0, 1.0, 0.75])
        report = harmony.run(
            binding=binding, iterations=2,
            fault_plan=FaultPlan(FaultSpec.chaos(1.0), seed=0),
        )
        assert report.metrics.iteration_time > 0

    def test_chaos_on_a_time_sliced_bind_completes(self, harmony):
        from repro.faults import FaultPlan, FaultSpec

        binding = DeviceBinding.pack(GPUS, VirtualTopology.uniform(2))
        report = harmony.run(
            binding=binding, iterations=2,
            fault_plan=FaultPlan(FaultSpec.chaos(1.0), seed=1),
        )
        assert report.metrics.iteration_time > 0
