"""Property sweep: permanent loss of an in-use GPU with no spare.

Acceptance property for the elastic tentpole: across zoo models x
{DP, PP} x a seed sweep, a fault plan that permanently kills one in-use
GPU (no spare exists -- every device is bound) must still complete
training, with the re-plan verified against the reduced spec and the
migration's bytes/time visible in the run metrics.  Byte-accounting
invariants are audited inside the runner on every completed iteration,
so completion itself certifies them.

Victims are drawn from the devices that own state (UPD placement),
rotating with the seed -- killing a stateless replica exercises rebind,
not migration, and is covered elsewhere.
"""

import pytest

from repro.analysis import analyze
from repro.cli import _loss_victims
from repro.core.harmony import Harmony, HarmonyOptions
from repro.experiments.common import server_for
from repro.faults import ScriptedFaultPlan

SEEDS = range(10)

# (model, gpus, minibatch, mode): every config binds all its GPUs, so a
# loss leaves no spare and must escalate to a re-plan.  (tiny-cnn PP is
# excluded on purpose: its plan leaves a spare device.)
MATRIX = [
    ("toy-transformer", 2, 8, "pp"),
    ("toy-transformer", 2, 8, "dp"),
    ("gpt2", 4, 16, "pp"),
    ("gpt2", 4, 16, "dp"),
]

_harmonies: dict[tuple, Harmony] = {}


def _harmony(config) -> Harmony:
    if config not in _harmonies:
        model, gpus, minibatch, mode = config
        harmony = Harmony(model, server_for(gpus), minibatch,
                          options=HarmonyOptions(mode=mode))
        harmony.plan()
        _harmonies[config] = harmony
    return _harmonies[config]


@pytest.mark.parametrize("config", MATRIX,
                         ids=[f"{m}-{g}gpu-{mode}" for m, g, _, mode in MATRIX])
def test_no_spare_in_use(config):
    used = {t.device for t in _harmony(config).plan().graph.tasks}
    assert used == set(range(config[1]))


@pytest.mark.parametrize("config", MATRIX,
                         ids=[f"{m}-{g}gpu-{mode}" for m, g, _, mode in MATRIX])
@pytest.mark.parametrize("seed", SEEDS)
def test_loss_without_spare_completes_with_migration(config, seed):
    harmony = _harmony(config)
    plan = harmony.plan()
    victims = _loss_victims(plan.graph, 1, seed)
    assert len(victims) == 1
    fault_plan = ScriptedFaultPlan(losses={victims[0]: 1}, seed=seed)
    report = harmony.run(plan=plan, iterations=3, fault_plan=fault_plan)
    metrics = report.metrics
    assert metrics.elastic.devices_lost == 1
    assert metrics.elastic.replans >= 1
    assert metrics.elastic.migrations > 0
    assert metrics.elastic.migration_time > 0.0
    assert metrics.elastic.migration_bytes > 0
    assert "migration" in metrics.describe()
    # the survivors really did all the work: nothing ran on the corpse
    # after the re-plan (its residual counters predate the loss)
    assert metrics.iteration_time > 0


@pytest.mark.parametrize("config", MATRIX,
                         ids=[f"{m}-{g}gpu-{mode}" for m, g, _, mode in MATRIX])
def test_replanned_graph_passes_strict_verifier(config):
    harmony = _harmony(config)
    reduced = harmony.plan_for_server(config[1] - 1)
    report = analyze(
        reduced.graph,
        server=reduced.server,
        options=reduced.options.schedule_options(),
        host_state_bytes=harmony.host_state_bytes,
        prefetch=reduced.options.prefetch,
    )
    assert report.ok, report.describe()
