"""The elastic escalation ladder end to end, under scripted faults.

Each test pins one rung or transition: loss rescued by a spare (rebind,
no re-plan), loss with no spare (re-plan + costed migration), degraded
device condemned after the health monitor's patience, policy gates that
keep a stranded loss fatal, and the pay-for-use bit-identity guarantee.
"""

import pytest

from repro.common.errors import UnrecoveredFaultError
from repro.elastic import ElasticReplanner
from repro.faults import RecoveryPolicy, ScriptedFaultPlan
from repro.experiments.common import server_for

# toy PP plan facts (see tests/faults/conftest.py): 2 devices bound,
# both own state; 'input#0' is a swap chunk of the first forward task.
SWAP_CHUNK = "input#0"


class TestLossWithSpare:
    def test_rebound_not_replanned(self, toy_pp, make_elastic_runner):
        # On a 4-GPU server the 2-device toy plan leaves gpu2/gpu3 idle:
        # a permanent loss is absorbed by the cheap rung (1:1 rebind),
        # never escalating to the scheduler.
        plan = ScriptedFaultPlan(losses={1: 1})
        runner = make_elastic_runner(toy_pp, plan, spec=server_for(4))
        metrics = runner.run(toy_pp.plan().graph, iterations=3)
        assert metrics.recovery.rebinds == 1
        assert metrics.elastic.devices_lost == 1
        assert metrics.elastic.replans == 0
        assert metrics.elastic.migrations == 0


class TestLossWithoutSpare:
    def test_replanned_with_costed_migration(self, toy_pp,
                                             make_elastic_runner):
        # Both devices of the 2-GPU server are in use; gpu1 dies at
        # iteration 1.  The loss surfaces as a fatal fault first (real
        # detection happens at failure), then the re-plan takes over.
        plan = ScriptedFaultPlan(losses={1: 1})
        runner = make_elastic_runner(toy_pp, plan)
        metrics = runner.run(toy_pp.plan().graph, iterations=3)
        assert metrics.elastic.devices_lost == 1
        assert metrics.elastic.replans == 1
        assert metrics.elastic.migrations > 0
        assert metrics.elastic.migration_time > 0
        assert metrics.elastic.migration_bytes > 0
        # gpu1 owned state and is dead: its layers restore from the host
        # checkpoint, so the migration rode the host links
        assert metrics.elastic.migration_host_bytes > 0
        assert metrics.recovery.faults_injected >= 1
        assert metrics.recovery.restarts >= 1
        assert "elastic" in metrics.describe()
        assert "migration" in metrics.elastic.describe()

    def test_migration_time_counts_toward_iteration_time(
            self, toy_pp, make_elastic_runner):
        # The reported time must decompose exactly: one healthy 2-GPU
        # iteration, the migration phase, then two 1-GPU iterations on
        # the re-planned graph.  (The failed detection attempt costs no
        # counted time -- its work is discarded with the restart.)
        graph = toy_pp.plan().graph
        lossy = make_elastic_runner(
            toy_pp, ScriptedFaultPlan(losses={1: 1}),
        ).run(graph, iterations=3)
        t2 = make_elastic_runner(toy_pp, ScriptedFaultPlan()).run(
            graph).iteration_time
        replanned = ElasticReplanner(toy_pp).replan([0]).graph
        t1 = make_elastic_runner(toy_pp, ScriptedFaultPlan()).run(
            replanned).iteration_time
        expected = (t2 + 2 * t1 + lossy.elastic.migration_time) / 3
        assert lossy.iteration_time == pytest.approx(expected, rel=1e-9)
        assert lossy.elastic.migration_time > 0

    def test_dp_loss_replans_on_survivor(self, toy_dp, make_elastic_runner):
        # DP's single reduced update makes gpu0 the sole owner; killing
        # it forces every byte to restore from the host checkpoint.
        plan = ScriptedFaultPlan(losses={0: 1})
        runner = make_elastic_runner(toy_dp, plan)
        metrics = runner.run(toy_dp.plan().graph, iterations=3)
        assert metrics.elastic.replans == 1
        assert metrics.elastic.migration_host_bytes > 0


class TestDegradedCondemnation:
    def test_straggler_with_no_spare_condemned_after_patience(
            self, toy_pp, make_elastic_runner):
        # gpu1 is persistently 3x slow from the start; the 2-GPU server
        # has no spare, so rebind cannot help.  The health monitor takes
        # replan_patience consecutive strikes before condemning it --
        # then the run re-plans onto gpu0 alone, migrating gpu1's state
        # p2p (the device is slow, not dead).
        plan = ScriptedFaultPlan(slowdowns={1: (3.0, True)})
        policy = RecoveryPolicy(replan_patience=2)
        runner = make_elastic_runner(toy_pp, plan, policy=policy)
        metrics = runner.run(toy_pp.plan().graph, iterations=4)
        assert metrics.elastic.replans == 1
        assert metrics.elastic.devices_lost == 0
        assert metrics.elastic.migration_p2p_bytes > 0

    def test_patience_not_yet_exhausted_no_replan(self, toy_pp,
                                                  make_elastic_runner):
        plan = ScriptedFaultPlan(slowdowns={1: (3.0, True)})
        policy = RecoveryPolicy(replan_patience=4)
        runner = make_elastic_runner(toy_pp, plan, policy=policy)
        metrics = runner.run(toy_pp.plan().graph, iterations=3)
        assert metrics.elastic.replans == 0

    def test_late_onset_degradation_condemned(self, toy_pp,
                                              make_elastic_runner):
        # A device that sickens at iteration 2 (healthy before) is
        # condemned once its strikes accumulate -- detection works on
        # histories, not just run-scoped stragglers.
        plan = ScriptedFaultPlan(slowdowns_at={1: (2, 3.0, True)})
        policy = RecoveryPolicy(replan_patience=2)
        runner = make_elastic_runner(toy_pp, plan, policy=policy)
        metrics = runner.run(toy_pp.plan().graph, iterations=6)
        assert metrics.elastic.replans == 1


class TestPolicyGates:
    @pytest.mark.parametrize("policy", [
        RecoveryPolicy(elastic=False),
        RecoveryPolicy(max_replans=0),
    ], ids=["elastic-off", "max-replans-0"])
    def test_stranded_loss_fatal_when_replan_gated(
            self, toy_pp, make_elastic_runner, policy):
        plan = ScriptedFaultPlan(losses={1: 1})
        runner = make_elastic_runner(toy_pp, plan, policy=policy)
        with pytest.raises(UnrecoveredFaultError):
            runner.run(toy_pp.plan().graph, iterations=3)

    def test_stranded_loss_fatal_without_replanner(self, toy_pp,
                                                   make_elastic_runner):
        plan = ScriptedFaultPlan(losses={1: 1})
        runner = make_elastic_runner(toy_pp, plan, replanner=None)
        with pytest.raises(UnrecoveredFaultError):
            runner.run(toy_pp.plan().graph, iterations=3)


class TestPayForUse:
    def test_transient_faults_bit_identical_with_elastic_enabled(
            self, toy_pp, make_elastic_runner):
        # No permanent fault -> the elastic machinery must not perturb a
        # single metric relative to the rebind-only runner (PR 2
        # behavior): probes are stateless, migration never runs.
        graph = toy_pp.plan().graph
        plan = ScriptedFaultPlan(transfer_faults={(SWAP_CHUNK, 0): 0.5})
        with_elastic = make_elastic_runner(toy_pp, plan).run(
            graph, iterations=2)
        without = make_elastic_runner(toy_pp, plan, replanner=None).run(
            graph, iterations=2)
        assert with_elastic.describe() == without.describe()
        assert with_elastic.iteration_time == without.iteration_time
        assert not with_elastic.elastic.any
        assert "elastic" not in with_elastic.describe()

    def test_clean_run_reports_no_elastic_line(self, toy_pp,
                                               make_elastic_runner):
        metrics = make_elastic_runner(toy_pp, ScriptedFaultPlan()).run(
            toy_pp.plan().graph, iterations=2)
        assert not metrics.elastic.any
        assert "elastic" not in metrics.describe()
