"""Plan memoization must key on the settings the plan was searched under.

Regression tests for the memo keys in :class:`repro.core.harmony.Harmony`:
an elastic policy that tightens search settings mid-incident (e.g. caps
microbatch sizes before requesting a re-plan) must get a plan searched
under the *new* settings, never a stale one memoized under the old.
Historically ``plan_for_server`` keyed only on ``(n_gpus, mode)`` and
``plan()`` keyed on nothing, so both served stale plans after an options
override.
"""

from dataclasses import replace

from repro.core.harmony import Harmony, HarmonyOptions
from repro.experiments.common import server_for


def _harmony(mode="pp"):
    return Harmony("toy-transformer", server_for(2), 8,
                   options=HarmonyOptions(mode=mode))


def test_plan_for_server_memoizes_under_stable_settings():
    harmony = _harmony()
    first = harmony.plan_for_server(1)
    assert harmony.plan_for_server(1) is first


def test_plan_for_server_recomputes_after_search_setting_change():
    harmony = _harmony()
    stale = harmony.plan_for_server(1)
    assert stale.config.u_b > 1, "fixture too small to show the cap"

    harmony.options = replace(harmony.options, u_fmax=1, u_bmax=1)
    fresh = harmony.plan_for_server(1)
    assert fresh is not stale
    assert fresh.config.u_f == 1 and fresh.config.u_b == 1, (
        "re-plan ignored the tightened microbatch caps -- the memo key "
        "is missing the search settings"
    )
    # The new settings are now the memoized ones.
    assert harmony.plan_for_server(1) is fresh


def test_plan_for_server_recomputes_after_schedule_option_change():
    harmony = _harmony()
    stale = harmony.plan_for_server(1)
    harmony.options = replace(harmony.options, p2p=False)
    fresh = harmony.plan_for_server(1)
    assert fresh is not stale
    assert fresh.options.p2p is False


def test_full_size_replan_tracks_settings_too():
    """n_gpus == server size takes the plan() shortcut; that path must
    honor settings changes as well."""
    harmony = _harmony()
    stale = harmony.plan_for_server(2)
    harmony.options = replace(harmony.options, u_fmax=1, u_bmax=1)
    fresh = harmony.plan_for_server(2)
    assert fresh is not stale
    assert fresh.config.u_f == 1 and fresh.config.u_b == 1


def test_plan_memo_keys_on_options():
    harmony = _harmony()
    first = harmony.plan()
    assert harmony.plan() is first
    harmony.options = replace(harmony.options, u_fmax=1, u_bmax=1)
    second = harmony.plan()
    assert second is not first
    assert second.config.u_f == 1 and second.config.u_b == 1
    assert harmony.plan() is second
