"""Shared fixtures for the elastic re-planning suite.

Session-scoped Harmony drivers (planning is the expensive part) plus a
runner factory that wires the real :class:`ElasticReplanner` -- the
tests exercise the exact escalation path production chaos runs take.
"""

import pytest

from repro.core.harmony import Harmony, HarmonyOptions
from repro.elastic import ElasticReplanner
from repro.experiments.common import server_for
from repro.faults.policy import RecoveryPolicy
from repro.faults.runner import FaultTolerantRunner
from repro.runtime.timemodel import TrueTimeModel


def _planned(model, gpus, minibatch, mode):
    harmony = Harmony(
        model, server_for(gpus), minibatch,
        options=HarmonyOptions(mode=mode),
    )
    harmony.plan()
    return harmony


@pytest.fixture(scope="session")
def toy_pp():
    """Toy-transformer PP on 2 GPUs: both used, both own state."""
    return _planned("toy-transformer", 2, 8, "pp")


@pytest.fixture(scope="session")
def toy_dp():
    """Toy-transformer DP on 2 GPUs: both used, gpu0 owns all state."""
    return _planned("toy-transformer", 2, 8, "dp")


@pytest.fixture(scope="session")
def toy_pp4():
    """Toy-transformer PP on 4 GPUs (spares exist for rebind tests)."""
    return _planned("toy-transformer", 4, 8, "pp")


@pytest.fixture
def make_elastic_runner():
    """Build a FaultTolerantRunner with the real replanner attached."""

    def build(harmony, plan, policy=None, spec=None, replanner="auto",
              **kwargs):
        spec = spec if spec is not None else harmony.server
        hplan = harmony.plan()
        time_model = TrueTimeModel(
            hplan.decomposed, spec.gpu, spec.host, n_gpus=spec.n_gpus,
        )
        if replanner == "auto":
            replanner = ElasticReplanner(harmony)
        return FaultTolerantRunner(
            spec, time_model, plan,
            policy=policy if policy is not None else RecoveryPolicy(),
            host_state_bytes=harmony.host_state_bytes,
            replanner=replanner,
            **kwargs,
        )

    return build
