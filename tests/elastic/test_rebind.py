"""relabel_graph: the simultaneous logical->physical device relabel.

The recovery rebind (sequential, target-must-be-healthy) is covered in
tests/faults/test_recovery.py; these tests pin the elastic relabel's
distinct semantics -- simultaneous application, injectivity, and the
absence of spurious P2P collapses.
"""

import pytest

from repro.core.types import Channel
from repro.elastic import rebind_graph, relabel_graph


class TestRelabelGraph:
    def test_target_may_equal_another_source(self, toy_pp):
        # {0: 1, 1: 2} relabels simultaneously: old-gpu0 tasks land on
        # gpu1, old-gpu1 tasks on gpu2 -- nothing collapses.  The same
        # mapping is an illegal *rebind* (target 1 is itself a source).
        graph = toy_pp.plan().graph
        moved = relabel_graph(graph, {0: 1, 1: 2}, n_devices=4)
        assert {t.device for t in moved.tasks} == {1, 2}
        assert moved.p2p_bytes() == graph.p2p_bytes()
        moved.validate()
        with pytest.raises(Exception):
            rebind_graph(graph, {0: 1, 1: 2}, n_devices=4)

    def test_swap_is_legal(self, toy_pp):
        graph = toy_pp.plan().graph
        swapped = relabel_graph(graph, {0: 1, 1: 0})
        assert {t.device for t in swapped.tasks} == {0, 1}
        assert swapped.p2p_bytes() == graph.p2p_bytes()
        swapped.validate()

    def test_non_injective_mapping_rejected(self, toy_pp):
        graph = toy_pp.plan().graph
        with pytest.raises(ValueError, match="not injective"):
            relabel_graph(graph, {0: 1, 1: 1}, n_devices=4)

    def test_out_of_range_target_rejected(self, toy_pp):
        graph = toy_pp.plan().graph
        with pytest.raises(ValueError, match="outside"):
            relabel_graph(graph, {0: 5})

    def test_no_spurious_p2p_collapse(self, toy_pp):
        # Distinct targets keep every P2P move a real transfer; only a
        # genuine endpoint collision may become LOCAL, and an injective
        # relabel never creates one.
        graph = toy_pp.plan().graph
        assert graph.p2p_bytes() > 0
        moved = relabel_graph(graph, {0: 3, 1: 2}, n_devices=4)
        channels = [
            m.channel for t in moved.tasks for _, m in t.moves()
        ]
        assert channels.count(Channel.P2P) == [
            m.channel for t in graph.tasks for _, m in t.moves()
        ].count(Channel.P2P)

    def test_original_graph_untouched(self, toy_pp):
        graph = toy_pp.plan().graph
        before = [(t.tid, t.device) for t in graph.tasks]
        relabel_graph(graph, {0: 1, 1: 0})
        assert [(t.tid, t.device) for t in graph.tasks] == before

    def test_n_devices_widens_device_range(self, toy_pp):
        graph = toy_pp.plan().graph
        moved = relabel_graph(graph, {1: 3}, n_devices=4)
        assert moved.n_devices == 4
