"""Online re-planning: reduced servers, memoized subset plans, relabeling.

These tests drive :meth:`Harmony.plan_for_server` and
:class:`ElasticReplanner` directly -- the same entry points the
fault-tolerant runner escalates through when a device is lost with no
spare.
"""

import pytest

from repro.analysis import analyze
from repro.common.errors import SchedulingError
from repro.core.harmony import Harmony, HarmonyOptions
from repro.elastic import ElasticReplanner
from repro.experiments.common import server_for


class TestReducedServer:
    def test_shape(self, toy_pp):
        reduced = toy_pp.reduced_server(1)
        assert reduced.n_gpus == 1
        assert reduced.topology.n_gpus == 1
        assert reduced.gpu is toy_pp.server.gpu
        assert reduced.host is toy_pp.server.host

    def test_range_validated(self, toy_pp):
        with pytest.raises(ValueError):
            toy_pp.reduced_server(0)
        with pytest.raises(ValueError):
            toy_pp.reduced_server(3)


class TestPlanForServer:
    def test_memoized(self, toy_pp):
        first = toy_pp.plan_for_server(1)
        assert toy_pp.plan_for_server(1) is first

    def test_full_count_reuses_base_plan(self, toy_pp):
        assert toy_pp.plan_for_server(2) is toy_pp.plan()

    def test_reduced_plan_fits_survivor_count(self, toy_pp):
        plan = toy_pp.plan_for_server(1)
        assert plan.server.n_gpus == 1
        assert {t.device for t in plan.graph.tasks} == {0}
        # decomposition/profiles reused from the memoized full plan: the
        # model did not change, only the machine shrank
        assert plan.profiles is toy_pp.plan().profiles
        assert plan.decomposed is toy_pp.plan().decomposed

    def test_dp_falls_back_to_pp_when_minibatch_cannot_split(self):
        # minibatch 8 across 3 survivors: DP needs an even split, the
        # wrap-around pipeline does not.
        harmony = Harmony(
            "toy-transformer", server_for(4), minibatch=8,
            options=HarmonyOptions(mode="dp"),
        )
        plan = harmony.plan_for_server(3)
        assert plan.options.mode == "pp"
        assert plan.server.n_gpus == 3

    def test_dp_kept_when_minibatch_splits(self, toy_dp):
        plan = toy_dp.plan_for_server(1)
        assert plan.options.mode == "dp"


class TestElasticReplanner:
    def test_replan_binds_only_survivors(self, toy_pp):
        eplan = ElasticReplanner(toy_pp).replan([1])
        assert eplan.survivors == (1,)
        assert {t.device for t in eplan.graph.tasks} == {1}
        # relabeled graph keeps the *full* server's device range so
        # per-device metric arrays stay sized
        assert eplan.graph.n_devices == toy_pp.server.n_gpus
        assert eplan.mode == "pp"
        assert not eplan.mode_switched

    def test_replan_passes_strict_analysis_on_reduced_spec(self, toy_pp):
        eplan = ElasticReplanner(toy_pp).replan([0])
        report = analyze(
            eplan.plan.graph,
            server=eplan.plan.server,
            options=eplan.plan.options.schedule_options(),
            host_state_bytes=toy_pp.host_state_bytes,
            prefetch=eplan.plan.options.prefetch,
        )
        assert report.ok, report.describe()

    def test_mode_switch_reported(self):
        harmony = Harmony(
            "toy-transformer", server_for(4), minibatch=8,
            options=HarmonyOptions(mode="dp"),
        )
        eplan = ElasticReplanner(harmony).replan([0, 2, 3])
        assert eplan.mode == "pp"
        assert eplan.mode_switched
        assert {t.device for t in eplan.graph.tasks} == {0, 2, 3}
        assert "mode switch" in eplan.describe()

    def test_survivors_deduped_and_sorted(self, toy_pp):
        eplan = ElasticReplanner(toy_pp).replan([1, 1, 0])
        assert eplan.survivors == (0, 1)

    def test_no_survivors_rejected(self, toy_pp):
        with pytest.raises(SchedulingError, match="no surviving"):
            ElasticReplanner(toy_pp).replan([])

    def test_out_of_range_survivor_rejected(self, toy_pp):
        with pytest.raises(SchedulingError, match="outside"):
            ElasticReplanner(toy_pp).replan([0, 7])
