"""State migration: ownership, move planning, and simulated execution.

Migration cost must reflect how much the packing actually changed: same
owner -> no move, live owner -> p2p (or host-staged relay), dead owner
-> host checkpoint restore.  The executor spends real virtual time, so
concurrent moves contend on shared hops.
"""

import pytest

from repro.core.types import TaskKind
from repro.elastic import (
    ElasticReplanner,
    MigrationMove,
    layer_ownership,
    plan_migration,
    rebind_graph,
    total_bytes,
)
from repro.runtime.migration import MigrationExecutor


class TestLayerOwnership:
    def test_every_layer_owned(self, toy_pp):
        plan = toy_pp.plan()
        owners = layer_ownership(plan.graph)
        assert set(owners) == set(range(len(plan.profiles.layers)))

    def test_owner_is_update_device(self, toy_pp):
        graph = toy_pp.plan().graph
        owners = layer_ownership(graph)
        for task in graph.tasks:
            if task.kind is TaskKind.UPD:
                for layer in task.layers:
                    assert owners[layer] == (task.device, task.on_cpu)


class TestPlanMigration:
    def test_unchanged_packing_moves_nothing(self, toy_pp):
        plan = toy_pp.plan()
        assert plan_migration(plan.graph, plan.graph, plan.profiles) == []

    def test_dead_owner_restores_from_host(self, toy_pp):
        # Same packing, but the owner died: its state cannot be sourced
        # p2p, so every one of its layers restores from the checkpoint.
        plan = toy_pp.plan()
        owners = layer_ownership(plan.graph)
        victim = sorted({dev for dev, _cpu in owners.values()})[0]
        moves = plan_migration(plan.graph, plan.graph, plan.profiles,
                               lost=[victim])
        assert moves
        assert all(m.src is None for m in moves)
        assert all(m.dst is not None for m in moves)
        assert total_bytes(moves) > 0

    def test_live_owner_moves_device_to_device(self, toy_pp):
        plan = toy_pp.plan()
        # gpu1's tasks (and state) move to the spare gpu2; gpu1 is alive,
        # so its state travels directly, never via the host checkpoint.
        moved = rebind_graph(plan.graph, {1: 2}, n_devices=4)
        moves = plan_migration(plan.graph, moved, plan.profiles)
        assert moves
        assert all(m.src == 1 and m.dst == 2 for m in moves
                   if m.dst is not None)
        assert total_bytes(moves) > 0

    def test_moves_aggregated_per_endpoint_pair(self, toy_pp):
        plan = toy_pp.plan()
        moved = rebind_graph(plan.graph, {1: 2}, n_devices=4)
        moves = plan_migration(plan.graph, moved, plan.profiles)
        endpoints = [(m.src, m.dst) for m in moves]
        assert len(endpoints) == len(set(endpoints))

    def test_replan_migration_accounts_weights_and_optimizer(self, toy_pp):
        # Kill gpu1: the 1-GPU re-plan re-owns its layers on gpu0, and
        # both W and K bytes of the dead device's layers must move.
        plan = toy_pp.plan()
        eplan = ElasticReplanner(toy_pp).replan([0])
        moves = plan_migration(plan.graph, eplan.graph, plan.profiles,
                               lost=[1])
        restored = sum(m.nbytes for m in moves if m.src is None)
        old = layer_ownership(plan.graph)
        dead_w = sum(
            plan.profiles.layers[layer].param_bytes
            for layer, (dev, _cpu) in old.items() if dev == 1
        )
        assert dead_w > 0
        assert restored >= dead_w  # at least the weights; K rides too

    def test_describe(self):
        move = MigrationMove(src=None, dst=2, nbytes=2**20, label="migrate")
        assert "host->gpu2" in move.describe()
        assert "1.00 MiB" in move.describe()


class TestMigrationExecutor:
    def _one_move(self, nbytes=2**24):
        return [MigrationMove(src=0, dst=1, nbytes=nbytes, label="m")]

    def test_empty_phase_is_free(self, toy_pp):
        report = MigrationExecutor(toy_pp.server).run([])
        assert report.time == 0.0
        assert report.n_moves == 0
        assert report.p2p_bytes == report.host_bytes == 0

    def test_p2p_route(self, toy_pp):
        report = MigrationExecutor(toy_pp.server, p2p=True).run(
            self._one_move())
        assert report.time > 0
        assert report.p2p_bytes == 2**24
        assert report.host_bytes == 0
        assert report.n_moves == 1

    def test_no_p2p_relays_through_host_both_legs(self, toy_pp):
        report = MigrationExecutor(toy_pp.server, p2p=False).run(
            self._one_move())
        assert report.p2p_bytes == 0
        assert report.host_bytes == 2 * 2**24
        slower = MigrationExecutor(toy_pp.server, p2p=True).run(
            self._one_move())
        assert report.time > slower.time

    def test_host_restore_counts_host_bytes(self, toy_pp):
        moves = [MigrationMove(src=None, dst=0, nbytes=2**24, label="r")]
        report = MigrationExecutor(toy_pp.server).run(moves)
        assert report.host_bytes == 2**24
        assert report.p2p_bytes == 0
        assert report.time > 0

    def test_concurrent_restores_contend(self, toy_pp):
        # Two survivors restoring through the shared host link take
        # longer than one: migration time is a makespan under contention,
        # not a free teleport.
        one = MigrationExecutor(toy_pp.server).run(
            [MigrationMove(src=None, dst=0, nbytes=2**24, label="a")])
        two = MigrationExecutor(toy_pp.server).run([
            MigrationMove(src=None, dst=0, nbytes=2**24, label="a"),
            MigrationMove(src=None, dst=1, nbytes=2**24, label="b"),
        ])
        assert two.time > one.time

    def test_more_bytes_take_longer(self, toy_pp):
        small = MigrationExecutor(toy_pp.server).run(self._one_move(2**20))
        large = MigrationExecutor(toy_pp.server).run(self._one_move(2**26))
        assert large.time > small.time
