"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_plan_prints_config(self, capsys):
        assert main(["plan", "toy-transformer", "--minibatch", "8"]) == 0
        out = capsys.readouterr().out
        assert "U_F=" in out
        assert "P_F:" in out

    def test_run_prints_metrics(self, capsys):
        assert main(["run", "toy-transformer", "--minibatch", "8",
                     "--mode", "dp"]) == 0
        out = capsys.readouterr().out
        assert "samples/s" in out

    def test_experiment_fast(self, capsys):
        assert main(["experiment", "fig01", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "AlexNet" in out

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["plan", "gpt5"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_every_experiment_registered(self):
        # The registry covers all evaluation figures and tables.
        assert {"fig09", "fig13", "fig15", "tab01", "tab04"} <= set(EXPERIMENTS)
