"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_plan_prints_config(self, capsys):
        assert main(["plan", "toy-transformer", "--minibatch", "8"]) == 0
        out = capsys.readouterr().out
        assert "U_F=" in out
        assert "P_F:" in out

    def test_run_prints_metrics(self, capsys):
        assert main(["run", "toy-transformer", "--minibatch", "8",
                     "--mode", "dp"]) == 0
        out = capsys.readouterr().out
        assert "samples/s" in out

    def test_experiment_fast(self, capsys):
        assert main(["experiment", "fig01", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "AlexNet" in out

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["plan", "gpt5"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_every_experiment_registered(self):
        # The registry covers all evaluation figures and tables.
        assert {"fig09", "fig13", "fig15", "tab01", "tab04"} <= set(EXPERIMENTS)


class TestClusterChaosCli:
    def test_scripted_server_loss_sweep(self, capsys, tmp_path):
        out = tmp_path / "cluster-chaos.json"
        assert main([
            "chaos", "toy-transformer", "--minibatch", "8", "--gpus", "2",
            "--servers", "3", "--seeds", "2", "--servers-lost", "1",
            "--iterations", "3", "--json", str(out),
        ]) == 0
        printed = capsys.readouterr().out
        assert "cluster chaos summary" in printed
        assert "0 hard failure(s)" in printed

        import json

        payload = json.loads(out.read_text())
        assert payload["servers"] == 3
        assert payload["summary"]["hard_failures"] == 0
        assert payload["summary"]["state_restores"] >= 1
        for record in payload["results"]:
            assert "seed" in record
            cluster = record["cluster"]
            assert set(cluster["fault_counts"]) == {
                "server_crash", "partition", "nic_degrade", "switch_flap"
            }
            if record["outcome"] == "completed":
                assert cluster["servers_lost"] == 1
                assert cluster["cluster_replans"] >= 1

    def test_dp_partition_sweep(self, capsys):
        assert main([
            "chaos", "toy-transformer", "--minibatch", "9", "--gpus", "2",
            "--mode", "dp", "--servers", "3", "--seeds", "1",
            "--partition-at", "0.001", "--partition-for", "0.01",
            "--iterations", "2",
        ]) == 0
        printed = capsys.readouterr().out
        assert "cluster-dp plan" in printed
        assert "0 hard failure(s)" in printed

    def test_single_server_path_unchanged(self, capsys):
        # --servers 1 (the default) keeps the original per-server sweep.
        assert main([
            "chaos", "toy-transformer", "--minibatch", "8", "--gpus", "2",
            "--seeds", "1",
        ]) == 0
        assert "chaos summary" in capsys.readouterr().out
