"""Shared cluster fixtures.

Planners are session-scoped and shared across tests: placements are a
pure function of (model, cluster, minibatch, mode) -- never of the fault
seed -- and every per-server Harmony memoizes its search, so the whole
cluster suite re-plans each (mode, survivor-subset) exactly once.
"""

import pytest

from repro.cluster import ClusterPlanner, homogeneous_cluster
from repro.experiments.common import server_for


@pytest.fixture(scope="session")
def two_gpu_server():
    return server_for(2)


@pytest.fixture(scope="session")
def cluster3(two_gpu_server):
    return homogeneous_cluster(3, two_gpu_server)


@pytest.fixture(scope="session")
def cluster2(two_gpu_server):
    return homogeneous_cluster(2, two_gpu_server)


@pytest.fixture(scope="session")
def _planner_cache():
    return {}


@pytest.fixture(scope="session")
def make_planner(_planner_cache, two_gpu_server):
    """Memoized planner factory: one ClusterPlanner per configuration."""

    def factory(model="toy-transformer", servers=3, minibatch=8, mode="pp"):
        key = (model, servers, minibatch, mode)
        if key not in _planner_cache:
            cluster = homogeneous_cluster(servers, two_gpu_server)
            _planner_cache[key] = ClusterPlanner(
                model, cluster, minibatch, mode=mode
            )
        return _planner_cache[key]

    return factory
