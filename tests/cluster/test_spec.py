"""Cluster hardware model: specs, the fabric, and routing."""

import pytest

from repro.cluster import (
    ETH_25G,
    ETH_100G,
    ClusterFabric,
    ClusterSpec,
    NetworkSpec,
    SimulatedCluster,
    homogeneous_cluster,
)
from repro.common.errors import NetworkPartitionError, SimulationError
from repro.sim.engine import Simulator
from repro.sim.links import NetworkLink, path_time, transfer


class TestSpecs:
    def test_network_spec_validation(self):
        with pytest.raises(SimulationError):
            NetworkSpec(bandwidth=0)
        with pytest.raises(SimulationError):
            NetworkSpec(switch_bandwidth=-1)
        with pytest.raises(SimulationError):
            NetworkSpec(latency=-1e-9)

    def test_presets(self):
        assert ETH_100G.bandwidth > ETH_25G.bandwidth
        assert "Gb/s" in ETH_25G.describe()

    def test_cluster_needs_a_server(self):
        with pytest.raises(SimulationError):
            ClusterSpec(servers=())
        with pytest.raises(SimulationError):
            homogeneous_cluster(0)

    def test_homogeneous_counts(self, cluster3, two_gpu_server):
        assert cluster3.n_servers == 3
        assert cluster3.total_gpus == 3 * two_gpu_server.n_gpus
        assert "3 server(s)" in cluster3.describe()


class TestFabric:
    def test_link_inventory(self, cluster3):
        fabric = ClusterFabric(Simulator(), cluster3)
        links = fabric.network_links()
        assert len(links) == 2 * 3 + 1
        assert all(isinstance(link, NetworkLink) for link in links)
        assert {link.name for link in links} == {
            "s0.nic.up", "s1.nic.up", "s2.nic.up",
            "s0.nic.down", "s1.nic.down", "s2.nic.down",
            "net.switch",
        }

    def test_route_same_server_is_empty(self, cluster3):
        fabric = ClusterFabric(Simulator(), cluster3)
        assert fabric.route(1, 1) == []

    def test_route_cross_server(self, cluster3):
        fabric = ClusterFabric(Simulator(), cluster3)
        path = fabric.route(0, 2)
        assert [link.name for link in path] == [
            "s0.nic.up", "net.switch", "s2.nic.down"
        ]

    def test_route_out_of_range(self, cluster3):
        fabric = ClusterFabric(Simulator(), cluster3)
        with pytest.raises(SimulationError):
            fabric.route(0, 3)
        with pytest.raises(SimulationError):
            fabric.route(-1, 0)

    def test_transfer_includes_nic_latency(self, cluster3):
        sim = Simulator()
        fabric = ClusterFabric(sim, cluster3)
        path = fabric.route(0, 1)
        net = cluster3.network
        nbytes = 10**6
        expected = 2 * net.latency + nbytes / net.bandwidth
        assert path_time(path, nbytes) == pytest.approx(expected)
        sim.process(transfer(sim, path, nbytes))
        sim.run()
        assert sim.now == pytest.approx(expected)

    def test_byte_counters(self, cluster3):
        sim = Simulator()
        fabric = ClusterFabric(sim, cluster3)
        sim.process(transfer(sim, fabric.route(0, 1), 500))
        sim.run()
        counts = fabric.bytes_by_link()
        assert counts["s0.nic.up"] == 500
        assert counts["net.switch"] == 500
        assert counts["s1.nic.down"] == 500
        assert counts["s2.nic.up"] == 0

    def test_partition_guard_raises_typed(self, cluster3):
        fabric = ClusterFabric(Simulator(), cluster3)
        fabric.partition = lambda a, b, now: {a, b} == {0, 2}
        with pytest.raises(NetworkPartitionError) as info:
            fabric.route(0, 2)
        assert info.value.entity == "s0->s2"
        # Unaffected pairs still route.
        assert len(fabric.route(0, 1)) == 3


class TestSimulatedCluster:
    def test_same_server_path_stays_on_pcie(self, cluster2):
        live = SimulatedCluster(Simulator(), cluster2)
        path = live.gpu_path(0, 0, 0, 1)
        assert all(not isinstance(link, NetworkLink) for link in path)

    def test_cross_server_path_traverses_fabric(self, cluster2):
        live = SimulatedCluster(Simulator(), cluster2)
        path = live.gpu_path(0, 0, 1, 1)
        names = [link.name for link in path]
        assert "s0.nic.up" in names
        assert "net.switch" in names
        assert "s1.nic.down" in names
        # PCIe hops on both ends of the network segment.
        assert names.index("s0.nic.up") > 0
        assert names.index("s1.nic.down") < len(names) - 1
