"""Cross-server placement: stage partitioning, planning, migration moves."""

import pytest

from repro.cluster import partition_stages, stage_model
from repro.common.errors import GraphError
from repro.models.zoo import build_model
from repro.runtime.migration import NetworkMove


@pytest.fixture(scope="module")
def model():
    return build_model("toy-transformer")


class TestPartitionStages:
    def test_every_layer_in_exactly_one_stage(self, model):
        n = len(model.graph)
        for n_stages in (1, 2, 3, n):
            ranges = partition_stages(model.graph, n_stages)
            assert len(ranges) == n_stages
            covered = [
                layer for lo, hi in ranges for layer in range(lo, hi)
            ]
            assert covered == list(range(n))

    def test_stages_nonempty_and_contiguous(self, model):
        ranges = partition_stages(model.graph, 3)
        assert all(hi > lo for lo, hi in ranges)
        assert all(
            ranges[k][1] == ranges[k + 1][0] for k in range(len(ranges) - 1)
        )

    def test_flop_balance_beats_worst_case(self, model):
        ranges = partition_stages(model.graph, 2)
        loads = []
        for lo, hi in ranges:
            loads.append(sum(
                layer.flops_fwd_fixed + layer.flops_fwd_per_sample
                for layer in model.graph.layers[lo:hi]
            ))
        # A prefix-balanced cut never puts everything on one stage.
        assert min(loads) > 0

    def test_bad_counts_rejected(self, model):
        with pytest.raises(GraphError):
            partition_stages(model.graph, 0)
        with pytest.raises(GraphError):
            partition_stages(model.graph, len(model.graph) + 1)


class TestStageModel:
    def test_stage0_keeps_sample_bytes(self, model):
        sub = stage_model(model, 0, 3, 0)
        assert sub.sample_bytes == model.sample_bytes
        assert len(sub.graph) == 3

    def test_later_stage_ingests_boundary_activation(self, model):
        sub = stage_model(model, 4, 7, 1)
        assert sub.sample_bytes == \
            model.graph.layers[4].act_in_bytes_per_sample
        assert "[s1]" in sub.name


class TestPlanner:
    def test_mode_validation(self, make_planner):
        with pytest.raises(ValueError):
            make_planner(mode="zero")
        with pytest.raises(ValueError):
            make_planner(minibatch=0)

    def test_pp_assigns_one_stage_per_live_server(self, make_planner):
        planner = make_planner(mode="pp", servers=3)
        plan = planner.plan_for((0, 1, 2))
        assert plan.mode == "pp"
        assert plan.servers == [0, 1, 2]
        # Stage ranges tile the full model.
        assert plan.stages[0].layers[0] == 0
        assert plan.stages[-1].layers[1] == len(planner.model.graph)
        assert plan.stages[-1].boundary_out_bytes == 0
        assert all(
            s.boundary_out_bytes > 0 for s in plan.stages[:-1]
        )

    def test_pp_replans_on_survivors(self, make_planner):
        planner = make_planner(mode="pp", servers=3)
        shrunk = planner.plan_for((0, 2))
        assert shrunk.servers == [0, 2]
        assert len(shrunk.stages) == 2

    def test_plan_memoized(self, make_planner):
        planner = make_planner(mode="pp", servers=3)
        assert planner.plan_for((2, 0)) is planner.plan_for((0, 2))

    def test_dp_shards_the_minibatch(self, make_planner):
        planner = make_planner(mode="dp", servers=3, minibatch=8)
        plan = planner.plan_for((0, 1, 2))
        assert plan.mode == "dp"
        assert sum(s.samples for s in plan.stages) == 8
        assert all(
            s.layers == (0, len(planner.model.graph)) for s in plan.stages
        )

    def test_empty_live_set_rejected(self, make_planner):
        planner = make_planner(mode="pp", servers=3)
        with pytest.raises(GraphError):
            planner.plan_for(())
        with pytest.raises(GraphError):
            planner.plan_for((0, 5))


class TestMigrationMoves:
    def test_dp_needs_no_migration(self, make_planner):
        planner = make_planner(mode="dp", servers=3, minibatch=8)
        old = planner.plan_for((0, 1, 2))
        new = planner.plan_for((0, 1))
        moves, restores, lost = planner.migration_moves(
            old, new, dead={2}, replicas={}
        )
        assert moves == [] and restores == 0 and lost == []

    def test_pp_shrink_moves_overlap_state(self, make_planner):
        planner = make_planner(mode="pp", servers=3)
        old = planner.plan_for((0, 1, 2))
        new = planner.plan_for((0, 1))
        replicas = {0: 1, 1: 2, 2: 0}  # stage k's buddy
        moves, restores, lost = planner.migration_moves(
            old, new, dead={2}, replicas=replicas
        )
        assert lost == []
        # Dead s2's stage restores from its buddy s0.
        assert restores >= 1
        assert all(isinstance(m, NetworkMove) for m in moves)
        assert all(m.nbytes > 0 for m in moves)
        assert all(m.src != m.dst for m in moves)

    def test_dead_owner_without_replica_is_lost(self, make_planner):
        planner = make_planner(mode="pp", servers=3)
        old = planner.plan_for((0, 1, 2))
        new = planner.plan_for((0, 1))
        moves, restores, lost = planner.migration_moves(
            old, new, dead={2}, replicas={}
        )
        assert any(reason == "no-replica" for _, reason in lost)

    def test_dead_owner_and_dead_buddy_is_unrecoverable(self, make_planner):
        planner = make_planner(mode="pp", servers=3)
        old = planner.plan_for((0, 1, 2))
        new = planner.plan_for((0,))
        replicas = {0: 1, 1: 2, 2: 0}
        moves, restores, lost = planner.migration_moves(
            old, new, dead={1, 2}, replicas=replicas
        )
        assert any(reason == "replica-dead" for _, reason in lost)
