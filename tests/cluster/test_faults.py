"""Cluster fault plans: stateless, seeded, reproducible decisions."""

import pytest

from repro.cluster import (
    ClusterFabric,
    ClusterFaultPlan,
    ClusterFaultSpec,
    ClusterInjector,
    PartitionWindow,
    ScriptedClusterFaultPlan,
)
from repro.faults import FaultPlan, FaultSpec
from repro.sim.engine import Simulator


class TestSpecValidation:
    def test_rates_bounded(self):
        with pytest.raises(ValueError):
            ClusterFaultSpec(server_crash_rate=1.5)
        with pytest.raises(ValueError):
            ClusterFaultSpec(partition_rate=-0.1)

    def test_factors_bounded(self):
        with pytest.raises(ValueError):
            ClusterFaultSpec(nic_degrade_factor=0.0)
        with pytest.raises(ValueError):
            ClusterFaultSpec(switch_flap_factor=1.5)

    def test_intervals_positive(self):
        with pytest.raises(ValueError):
            ClusterFaultSpec(partition_interval=0.0)

    def test_none_disables_everything(self):
        spec = ClusterFaultSpec.none()
        assert not spec.any_enabled
        assert not ClusterFaultPlan(spec).enabled
        assert "off" in spec.describe()

    def test_inner_spec_counts_as_enabled(self):
        spec = ClusterFaultSpec(inner=FaultSpec(transfer_fault_rate=0.1))
        assert spec.any_enabled

    def test_chaos_preset_scales(self):
        mild = ClusterFaultSpec.cluster_chaos(0.1)
        wild = ClusterFaultSpec.cluster_chaos(2.0)
        assert mild.server_crash_rate < wild.server_crash_rate
        assert wild.partition_rate <= 1.0
        with pytest.raises(ValueError):
            ClusterFaultSpec.cluster_chaos(-1)


class TestSeededDeterminism:
    def test_same_seed_same_decisions(self):
        spec = ClusterFaultSpec.cluster_chaos(1.0)
        a = ClusterFaultPlan(spec, seed=7)
        b = ClusterFaultPlan(spec, seed=7)
        for server in range(4):
            assert a.server_crash(server) == b.server_crash(server)
        for t in (0.0, 0.03, 0.11, 0.47):
            assert a.partitioned(0, 1, t) == b.partitioned(0, 1, t)
            assert a.nic_degradation(1, "up", int(t * 20)) == \
                b.nic_degradation(1, "up", int(t * 20))

    def test_seeds_decorrelate(self):
        spec = ClusterFaultSpec.cluster_chaos(2.0)
        draws = [
            tuple(ClusterFaultPlan(spec, seed=s).server_crash(i)
                  for i in range(8))
            for s in range(6)
        ]
        assert len(set(draws)) > 1

    def test_crash_iteration_leaves_a_baseline(self):
        # A seeded crash never strikes before iteration 1: the replica
        # baseline needs one healthy iteration to establish.
        spec = ClusterFaultSpec(server_crash_rate=1.0)
        for seed in range(10):
            plan = ClusterFaultPlan(spec, seed=seed)
            for server in range(4):
                assert plan.server_crash(server) >= 1

    def test_inner_plans_derived_per_server(self):
        spec = ClusterFaultSpec(inner=FaultSpec(transfer_fault_rate=0.5))
        plan = ClusterFaultPlan(spec, seed=3)
        p0, p1 = plan.server_plan(0), plan.server_plan(1)
        assert isinstance(p0, FaultPlan)
        assert p0.seed != p1.seed
        assert plan.server_plan(0).seed == p0.seed  # stable

    def test_order_independence(self):
        # Stateless draws: querying in any order gives the same answers.
        spec = ClusterFaultSpec.cluster_chaos(1.0)
        plan = ClusterFaultPlan(spec, seed=11)
        forward = [plan.server_crash(s) for s in range(5)]
        backward = [plan.server_crash(s) for s in reversed(range(5))]
        assert forward == list(reversed(backward))


class TestPartitions:
    def test_pair_with_itself_never_cut(self):
        plan = ClusterFaultPlan(ClusterFaultSpec(partition_rate=1.0))
        assert not plan.partitioned(2, 2, 0.0)

    def test_next_change_always_progresses(self):
        plan = ClusterFaultPlan(ClusterFaultSpec(partition_rate=0.5))
        t = 0.0
        for _ in range(20):
            nxt = plan.next_partition_change(t)
            assert nxt > t
            t = nxt

    def test_scripted_window_cuts_only_inside(self):
        plan = ScriptedClusterFaultPlan(
            partitions=[PartitionWindow(0.1, 0.2, frozenset({0}))]
        )
        assert not plan.partitioned(0, 1, 0.05)
        assert plan.partitioned(0, 1, 0.15)
        assert plan.partitioned(1, 0, 0.15)
        assert not plan.partitioned(1, 2, 0.15)  # same side
        assert not plan.partitioned(0, 1, 0.2)   # half-open window

    def test_scripted_tuple_form(self):
        plan = ScriptedClusterFaultPlan(partitions=[(0.0, 0.1, [1])])
        assert plan.partitioned(0, 1, 0.05)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            PartitionWindow(0.2, 0.2, frozenset({0}))

    def test_scripted_next_change_walks_edges_then_none(self):
        plan = ScriptedClusterFaultPlan(
            partitions=[PartitionWindow(0.1, 0.2, frozenset({0}))]
        )
        assert plan.next_partition_change(0.0) == pytest.approx(0.1)
        assert plan.next_partition_change(0.1) == pytest.approx(0.2)
        # No seeded partitions and no edge ahead: state never changes.
        assert plan.next_partition_change(0.3) is None

    def test_partition_blocked_any_pair(self):
        plan = ScriptedClusterFaultPlan(
            partitions=[PartitionWindow(0.0, 1.0, frozenset({2}))]
        )
        assert plan.partition_blocked({(0, 1), (1, 2)}, 0.5)
        assert not plan.partition_blocked({(0, 1)}, 0.5)


class TestScriptedCrashes:
    def test_scripted_crash_overrides_seed(self):
        plan = ScriptedClusterFaultPlan(crashes={1: 2})
        assert plan.server_crash(1) == 2
        assert plan.server_crash(0) is None  # no seeded rate
        assert plan.enabled


class TestInjector:
    def test_degradation_applies_and_epochs_counted(self):
        spec = ClusterFaultSpec(nic_degrade_rate=1.0, nic_degrade_factor=0.5,
                                switch_flap_rate=1.0, switch_flap_factor=0.5)
        plan = ClusterFaultPlan(spec, seed=0)
        injector = ClusterInjector(plan)
        sim = Simulator()
        from repro.cluster import homogeneous_cluster
        from repro.experiments.common import server_for

        fabric = ClusterFabric(sim, homogeneous_cluster(2, server_for(2)))
        injector.arm(fabric, offset=0.0)
        assert fabric.nic_up[0].effective_bandwidth(0.0) == pytest.approx(
            0.5 * fabric.nic_up[0].bandwidth
        )
        assert fabric.switch.effective_bandwidth(0.0) == pytest.approx(
            0.5 * fabric.switch.bandwidth
        )
        assert (0, "up", 0) in injector.nic_epochs
        assert 0 in injector.switch_epochs

    def test_offset_maps_local_to_global_epochs(self):
        spec = ClusterFaultSpec(nic_degrade_rate=1.0, nic_flap_interval=0.05)
        plan = ClusterFaultPlan(spec, seed=0)
        injector = ClusterInjector(plan)
        sim = Simulator()
        from repro.cluster import homogeneous_cluster
        from repro.experiments.common import server_for

        fabric = ClusterFabric(sim, homogeneous_cluster(2, server_for(2)))
        injector.arm(fabric, offset=0.12)
        fabric.nic_up[1].effective_bandwidth(0.0)
        assert (1, "up", 2) in injector.nic_epochs  # floor(0.12/0.05) == 2
