"""Scripted cluster scenarios: every recovery rung and every typed exit."""

import pytest

from repro.cluster import (
    ClusterPolicy,
    ClusterRunner,
    PartitionWindow,
    ScriptedClusterFaultPlan,
)
from repro.common.errors import ClusterFaultError
from repro.trace import TraceRecorder, check_network_reconciliation


def run_cluster(planner, fault_plan=None, iterations=3, policy=None,
                trace=None):
    runner = ClusterRunner(planner, fault_plan, policy=policy, trace=trace)
    metrics = runner.run(iterations)
    return runner, metrics


class TestFaultFree:
    def test_pp_completes_with_network_traffic(self, make_planner):
        runner, metrics = run_cluster(make_planner(mode="pp", servers=3))
        assert metrics.mode == "cluster-pp"
        assert metrics.iteration_time > 0
        cl = metrics.cluster
        assert cl.network_bytes > 0          # activations + gradients
        assert cl.replication_bytes > 0      # buddy checkpoints
        assert cl.servers_lost == 0
        assert cl.cluster_replans == 0

    def test_dp_completes_with_allreduce_traffic(self, make_planner):
        runner, metrics = run_cluster(
            make_planner(mode="dp", servers=3, minibatch=9)
        )
        assert metrics.mode == "cluster-dp"
        cl = metrics.cluster
        assert cl.network_bytes > 0
        assert cl.replication_bytes == 0     # dp replicates by construction

    def test_describe_includes_cluster_section(self, make_planner):
        _, metrics = run_cluster(make_planner(mode="pp", servers=3))
        assert "cluster:" in metrics.describe()


class TestWholeServerLoss:
    def test_pp_loss_restores_from_replica_and_shrinks(self, make_planner):
        planner = make_planner(mode="pp", servers=3)
        plan = ScriptedClusterFaultPlan(crashes={1: 1})
        runner, metrics = run_cluster(planner, plan, iterations=3)
        cl = metrics.cluster
        assert cl.servers_lost == 1
        assert cl.server_crashes == 1
        assert cl.cluster_replans == 1
        assert cl.stage_shrinks == 1
        assert cl.state_restores >= 1
        # Recovery state moved over REAL network links.
        assert cl.migration_moves >= 1
        assert cl.migration_network_bytes > 0
        assert cl.migration_time > 0

    def test_dp_loss_reshards_without_migration(self, make_planner):
        planner = make_planner(mode="dp", servers=3, minibatch=9)
        plan = ScriptedClusterFaultPlan(crashes={2: 1})
        runner, metrics = run_cluster(planner, plan, iterations=3)
        cl = metrics.cluster
        assert cl.servers_lost == 1
        assert cl.cluster_replans == 1
        assert cl.migration_network_bytes == 0  # replicated by construction
        assert cl.network_bytes > 0

    def test_all_servers_lost_is_typed(self, make_planner):
        planner = make_planner(mode="pp", servers=2)
        plan = ScriptedClusterFaultPlan(crashes={0: 1, 1: 1})
        with pytest.raises(ClusterFaultError):
            run_cluster(planner, plan, iterations=3)

    def test_owner_and_buddy_dead_is_typed(self, make_planner):
        # With 3 servers, stage k replicates to the next stage's server;
        # killing two adjacent servers at once loses a stage and its buddy.
        planner = make_planner(mode="pp", servers=3)
        plan = ScriptedClusterFaultPlan(crashes={1: 1, 2: 1})
        with pytest.raises(ClusterFaultError) as info:
            run_cluster(planner, plan, iterations=3)
        assert "dead" in str(info.value)

    def test_replan_budget_is_typed(self, make_planner):
        planner = make_planner(mode="pp", servers=3)
        plan = ScriptedClusterFaultPlan(crashes={1: 1})
        policy = ClusterPolicy(max_cluster_replans=0)
        with pytest.raises(ClusterFaultError) as info:
            run_cluster(planner, plan, iterations=3, policy=policy)
        assert "budget" in str(info.value)


class TestPartitions:
    def test_finite_window_stalls_then_heals(self, make_planner):
        planner = make_planner(mode="pp", servers=3)
        plan = ScriptedClusterFaultPlan(
            partitions=[PartitionWindow(0.0, 0.01, frozenset({0}))]
        )
        runner, metrics = run_cluster(planner, plan, iterations=2)
        cl = metrics.cluster
        assert cl.partition_stalls >= 1
        assert cl.partition_stall_time > 0
        assert cl.servers_lost == 0  # a partition is not a crash

    def test_permanent_partition_is_typed_not_a_hang(self, make_planner):
        planner = make_planner(mode="pp", servers=3)
        plan = ScriptedClusterFaultPlan(
            partitions=[PartitionWindow(0.0, 1e9, frozenset({0}))]
        )
        with pytest.raises(ClusterFaultError) as info:
            run_cluster(planner, plan, iterations=2)
        assert info.value.entity == "net.partition"
        assert "heal" in str(info.value)

    def test_partition_of_idle_server_is_free(self, make_planner):
        # Cutting a server no live pair talks to must not stall anything.
        planner = make_planner(mode="pp", servers=2)
        plan = ScriptedClusterFaultPlan(
            partitions=[PartitionWindow(0.0, 1e9, frozenset())]
        )
        runner, metrics = run_cluster(planner, plan, iterations=2)
        assert metrics.cluster.partition_stalls == 0


class TestTracing:
    def test_traced_loss_run_reconciles_network_bytes(self, make_planner):
        planner = make_planner(mode="pp", servers=3)
        plan = ScriptedClusterFaultPlan(crashes={1: 1})
        trace = TraceRecorder()
        runner, metrics = run_cluster(planner, plan, iterations=3,
                                      trace=trace)
        # The runner ran the check itself; assert it holds externally too.
        check_network_reconciliation(trace.events, runner.network_link_bytes)
        names = {e.name for e in trace.events if e.lane == "cluster"}
        assert "s1-crash" in names
        assert "replan" in names
        assert "stage-shrink" in names
        assert any(name.endswith(".compute") for name in names)

    def test_reconciliation_catches_tampering(self, make_planner):
        planner = make_planner(mode="pp", servers=3)
        trace = TraceRecorder()
        runner, _ = run_cluster(planner, trace=trace, iterations=2)
        from repro.trace import TraceInvariantError

        forged = dict(runner.network_link_bytes)
        forged["s0.nic.up"] = forged.get("s0.nic.up", 0) + 1
        with pytest.raises(TraceInvariantError):
            check_network_reconciliation(trace.events, forged)


class TestValidation:
    def test_iterations_positive(self, make_planner):
        runner = ClusterRunner(make_planner(mode="pp", servers=2))
        with pytest.raises(ValueError):
            runner.run(0)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ClusterPolicy(server_patience=-1)
        with pytest.raises(ValueError):
            ClusterPolicy(max_partition_wait=0.0)
