"""The seeded cluster property storm.

Model zoo x {dp, pp} x seeds x {partition, whole-server-loss}: every
iteration must end in intra-server recovery, replica restore +
cross-server re-plan, stage shrink, or a *typed* failure -- never a hang,
never an unhandled exception -- with per-network-link byte accounting
reconciled against the trace and every outcome bit-identical on rerun.

Scripted scenario faults ride on top of the full seeded chaos mix (inner
per-server faults, NIC/switch flapping, seeded partition windows), so
each storm cell exercises composed failure domains, not one fault in
isolation.
"""

from dataclasses import replace

import pytest

from repro.cluster import (
    ClusterFaultSpec,
    ClusterRunner,
    PartitionWindow,
    ScriptedClusterFaultPlan,
)
from repro.common.errors import FaultError
from repro.trace import TraceRecorder

# Three servers, not two: with two, a crashed stage's replica buddy IS
# the lone survivor, so every restore is co-located and migration never
# touches the network.  Three makes re-packing move real bytes.
SERVERS = 3
SEEDS = range(5)
#: full chaos mix minus seeded whole-server crashes: the storm scripts
#: its losses deterministically so every cell exercises its scenario.
SPEC = replace(ClusterFaultSpec.cluster_chaos(1.0), server_crash_rate=0.0)


def fault_plan_for(scenario: str, seed: int) -> ScriptedClusterFaultPlan:
    if scenario == "server-loss":
        return ScriptedClusterFaultPlan(
            crashes={seed % SERVERS: 1}, spec=SPEC, seed=seed,
        )
    assert scenario == "partition"
    return ScriptedClusterFaultPlan(
        partitions=[
            PartitionWindow(0.0, 0.002 * (1 + seed % 3),
                            frozenset({seed % SERVERS})),
        ],
        spec=SPEC, seed=seed,
    )


def storm_outcome(planner, scenario: str, seed: int, trace=None):
    """One storm cell -> a comparable, fully typed outcome signature."""
    runner = ClusterRunner(planner, fault_plan_for(scenario, seed),
                           trace=trace)
    try:
        metrics = runner.run(2)
    except FaultError as exc:
        # The acceptable failure mode: typed, attributed, no hang.  A
        # SimulationError (broken accounting, watchdog) would propagate
        # and fail the storm.
        return ("failed", type(exc).__name__, exc.entity, str(exc))
    cl = metrics.cluster
    return (
        "completed",
        metrics.iteration_time,
        metrics.host_peak_bytes,
        tuple(sorted(cl.fault_counts().items())),
        cl.network_bytes,
        cl.replication_bytes,
        cl.migration_network_bytes,
        cl.state_restores,
        cl.cluster_replans,
        cl.partition_stalls,
    )


@pytest.mark.parametrize("model", ["toy-transformer", "tiny-cnn"])
@pytest.mark.parametrize("mode", ["dp", "pp"])
@pytest.mark.parametrize("scenario", ["server-loss", "partition"])
class TestClusterStorm:
    def test_every_seed_typed_and_reproducible(self, make_planner, model,
                                               mode, scenario):
        planner = make_planner(model=model, servers=SERVERS, minibatch=8,
                               mode=mode)
        outcomes = {}
        for seed in SEEDS:
            trace = TraceRecorder()
            # A traced run additionally reconciles per-network-link bytes
            # against the trace inside ClusterRunner.run.
            outcomes[seed] = storm_outcome(planner, scenario, seed,
                                           trace=trace)
        assert len(outcomes) == len(SEEDS)
        # Seeded faults must actually strike somewhere in the storm cell.
        if scenario == "server-loss":
            completions = [o for o in outcomes.values()
                           if o[0] == "completed"]
            for outcome in completions:
                fault_counts = dict(outcome[3])
                assert fault_counts["server_crash"] == 1
        # Bit-identical rerun: same seed, fresh runner, identical outcome
        # (spot-checked on two seeds to bound storm wall-clock).
        for seed in (0, 3):
            assert storm_outcome(planner, scenario, seed) == outcomes[seed]


def test_storm_sees_migration_bytes_somewhere(make_planner):
    """At least one pp loss cell must migrate real bytes over the network."""
    planner = make_planner(model="toy-transformer", servers=SERVERS,
                           minibatch=8, mode="pp")
    migrated = 0
    for seed in SEEDS:
        outcome = storm_outcome(planner, "server-loss", seed)
        if outcome[0] == "completed":
            migrated += outcome[6]
    assert migrated > 0
