"""Integration tests: the paper's headline shapes on the real models.

Small-minibatch versions of the benchmark assertions, so the unit suite
exercises the full pipeline (zoo -> decompose -> profile -> search ->
execute) on the actual evaluation models, not just the toy transformer.
"""

import pytest

from repro.baselines import DpSwapPlanner, ZeroInfinityPlanner
from repro.common.errors import HostOutOfMemoryError
from repro.core.harmony import Harmony, HarmonyOptions
from repro.hardware.server import eight_gpu_commodity_server, four_gpu_commodity_server

MINIBATCH = 16


@pytest.fixture(scope="module")
def server():
    return four_gpu_commodity_server()


@pytest.fixture(scope="module")
def gpt2_cells(server):
    cells = {}
    cells["dp-swap"] = DpSwapPlanner("gpt2", server, MINIBATCH).run()
    for mode in ("dp", "pp"):
        harmony = Harmony("gpt2", server, MINIBATCH,
                          options=HarmonyOptions(mode=mode))
        cells[f"harmony-{mode}"] = harmony.run().metrics
    return cells


class TestHeadlineShapes:
    def test_harmony_beats_dp_swap(self, gpt2_cells):
        for mode in ("harmony-dp", "harmony-pp"):
            speedup = (gpt2_cells["dp-swap"].iteration_time
                       / gpt2_cells[mode].iteration_time)
            assert speedup > 2.0, mode

    def test_swap_reduction_order_of_magnitude(self, gpt2_cells):
        ratio = (gpt2_cells["dp-swap"].global_swap_bytes
                 / gpt2_cells["harmony-pp"].global_swap_bytes)
        assert ratio > 10

    def test_pp_swap_below_dp(self, gpt2_cells):
        assert (gpt2_cells["harmony-pp"].global_swap_bytes
                < gpt2_cells["harmony-dp"].global_swap_bytes / 2)

    def test_searched_config_matches_paper_structure(self, server):
        """GPT2's backward side packs into few large packs at U_B=1
        (Table 5: four packs of 12-14 layers)."""
        harmony = Harmony("gpt2", server, 64, options=HarmonyOptions(mode="pp"))
        config = harmony.plan().config
        assert config.u_b <= 4
        assert 3 <= len(config.packs_b) <= 16
        assert config.jit_compute_aligned

    def test_scheduler_wall_time_reasonable(self, server):
        harmony = Harmony("bert96", server, 32,
                          options=HarmonyOptions(mode="pp"))
        plan = harmony.plan()
        assert plan.search.elapsed_seconds < 60


class TestMassiveModels:
    def test_harmony_trains_40b_where_zero_cannot(self):
        server = eight_gpu_commodity_server()
        harmony = Harmony("gpt2-40b", server, 16,
                          options=HarmonyOptions(mode="pp"))
        metrics = harmony.run().metrics
        assert metrics.throughput > 0

        config = harmony.plan().config
        zero = ZeroInfinityPlanner("gpt2-40b", server, 16,
                                   u_f=config.u_f, u_b=config.u_b)
        with pytest.raises(HostOutOfMemoryError):
            zero.run()

    def test_estimator_tracks_actual_on_bert_large(self):
        server = four_gpu_commodity_server()
        harmony = Harmony("bert-large", server, 60,
                          options=HarmonyOptions(mode="pp"))
        plan = harmony.plan()
        actual = harmony.run(plan=plan).metrics.iteration_time
        assert plan.search.best_estimate == pytest.approx(actual, rel=0.15)


class TestCorrectnessPipeline:
    def test_numeric_equivalence_quick(self):
        from repro.numeric.data import synthetic_mrpc
        from repro.numeric.harmony_exec import HarmonyNumericTrainer
        from repro.numeric.model import make_classifier
        from repro.numeric.optim import Adam
        from repro.numeric.trainer import ReferenceTrainer

        dataset = synthetic_mrpc(n_train=64, n_eval=32)
        base = ReferenceTrainer(make_classifier(seed=0), Adam(lr=2e-3)).train(
            dataset, batch_size=32
        )
        harmony = HarmonyNumericTrainer(
            make_classifier(seed=0), Adam(lr=2e-3), u_f=8, u_b=2, n_workers=2
        ).train(dataset, batch_size=32)
        deviation = max(
            abs(a - b) for a, b in zip(base.losses, harmony.losses)
        )
        assert deviation < 1e-10
