"""Tests for the reference and Harmony numeric trainers.

The headline property (Figures 12/19): training through the Harmony
schedule -- microbatching, checkpoint rematerialization, grouped
execution, DP sharding -- reproduces the baseline's loss on *every*
minibatch to float64 precision.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.numeric.data import synthetic_mrpc, synthetic_wikitext
from repro.numeric.harmony_exec import HarmonyNumericTrainer, default_packs
from repro.numeric.model import make_classifier, make_lm
from repro.numeric.optim import Adam, Sgd
from repro.numeric.trainer import ReferenceTrainer

TOL = 1e-10


@pytest.fixture(scope="module")
def dataset():
    return synthetic_mrpc(n_train=128, n_eval=64)


class TestReferenceTrainer:
    def test_loss_decreases(self, dataset):
        trainer = ReferenceTrainer(make_classifier(seed=0), Adam(lr=2e-3))
        curve = trainer.train(dataset, batch_size=32, epochs=4)
        assert curve.losses[-1] < curve.losses[0] * 0.9

    def test_learns_better_than_chance(self, dataset):
        trainer = ReferenceTrainer(make_classifier(seed=0), Adam(lr=2e-3))
        curve = trainer.train(dataset, batch_size=32, epochs=6)
        assert curve.eval_accuracy > 0.7

    def test_deterministic(self, dataset):
        runs = [
            ReferenceTrainer(make_classifier(seed=0), Adam(lr=2e-3)).train(
                dataset, batch_size=32
            ).losses
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_sgd_also_trains(self, dataset):
        trainer = ReferenceTrainer(make_classifier(seed=0), Sgd(lr=0.05))
        curve = trainer.train(dataset, batch_size=32, epochs=4)
        assert curve.losses[-1] < curve.losses[0]


class TestDefaultPacks:
    def test_tiles_layers(self):
        packs = default_packs(11, 3)
        assert packs[0][0] == 0
        assert packs[-1][1] == 10
        assert sum(last - first + 1 for first, last in packs) == 11


def max_deviation(a, b):
    return max(abs(x - y) for x, y in zip(a.losses, b.losses))


class TestHarmonyMatchesBaseline:
    def _baseline(self, dataset):
        return ReferenceTrainer(make_classifier(seed=0), Adam(lr=2e-3)).train(
            dataset, batch_size=32, epochs=2
        )

    def test_pp_exact(self, dataset):
        base = self._baseline(dataset)
        harmony = HarmonyNumericTrainer(
            make_classifier(seed=0), Adam(lr=2e-3), u_f=8, u_b=4
        ).train(dataset, batch_size=32, epochs=2)
        assert max_deviation(base, harmony) < TOL
        assert harmony.eval_accuracy == base.eval_accuracy

    def test_dp_exact(self, dataset):
        base = self._baseline(dataset)
        harmony = HarmonyNumericTrainer(
            make_classifier(seed=0), Adam(lr=2e-3), u_f=8, u_b=4, n_workers=4
        ).train(dataset, batch_size=32, epochs=2)
        assert max_deviation(base, harmony) < TOL

    def test_lm_task_exact(self):
        data = synthetic_wikitext(n_train=128, n_eval=64)
        base = ReferenceTrainer(make_lm(seed=1), Adam(lr=2e-3)).train(
            data, batch_size=32
        )
        harmony = HarmonyNumericTrainer(
            make_lm(seed=1), Adam(lr=2e-3), u_f=4, u_b=8
        ).train(data, batch_size=32)
        assert max_deviation(base, harmony) < TOL

    @settings(max_examples=10, deadline=None)
    @given(
        u_f=st.sampled_from([1, 2, 4, 8, 16, 32]),
        u_b=st.sampled_from([1, 2, 4, 8, 16, 32]),
        n_packs=st.integers(1, 6),
        workers=st.sampled_from([1, 2, 4]),
    )
    def test_any_schedule_preserves_semantics(self, dataset, u_f, u_b,
                                              n_packs, workers):
        """Property: whatever the four-tuple and worker count, one
        iteration's loss and gradients match the baseline."""
        x = dataset.x_train[:32]
        y = dataset.y_train[:32]
        reference = make_classifier(seed=0)
        ref_trainer = ReferenceTrainer(reference, Adam(lr=2e-3))
        ref_loss = ref_trainer.train_iteration(x, y)

        model = make_classifier(seed=0)
        harmony = HarmonyNumericTrainer(
            model, Adam(lr=2e-3), u_f=u_f, u_b=u_b,
            packs_b=default_packs(model.n_layers, n_packs),
            n_workers=workers,
        )
        loss = harmony.train_iteration(x, y)
        assert loss == pytest.approx(ref_loss, abs=TOL)
        for name, param in reference.parameters().items():
            np.testing.assert_allclose(
                model.parameters()[name], param, atol=1e-9
            )

    def test_mismatched_packs_rejected(self):
        model = make_classifier()
        with pytest.raises(ValueError):
            HarmonyNumericTrainer(model, Adam(), u_f=4, u_b=4,
                                  packs_b=[(0, 3)])

    def test_worker_divisibility_enforced(self, dataset):
        harmony = HarmonyNumericTrainer(
            make_classifier(seed=0), Adam(lr=2e-3), u_f=8, u_b=8, n_workers=3
        )
        with pytest.raises(ValueError):
            harmony.train_iteration(dataset.x_train[:32], dataset.y_train[:32])
