"""Gradient checks for the numeric layers (finite differences)."""

import numpy as np
import pytest

from repro.numeric.layers import (
    CrossEntropyHead,
    Gelu,
    LayerNorm,
    Linear,
    Residual,
)

RNG = np.random.default_rng(42)
EPS = 1e-6


def numeric_grad_input(layer, x, dy):
    grad = np.zeros_like(x)
    flat_x = x.reshape(-1)
    flat_g = grad.reshape(-1)
    for i in range(flat_x.size):
        old = flat_x[i]
        flat_x[i] = old + EPS
        up, _ = layer.forward(x)
        flat_x[i] = old - EPS
        down, _ = layer.forward(x)
        flat_x[i] = old
        flat_g[i] = ((up - down) * dy).sum() / (2 * EPS)
    return grad


def check_input_grad(layer, x):
    y, stash = layer.forward(x)
    dy = RNG.normal(size=y.shape)
    layer.zero_grad()
    dx = layer.backward(dy, stash)
    expected = numeric_grad_input(layer, x, dy)
    np.testing.assert_allclose(dx, expected, rtol=1e-5, atol=1e-7)


class TestLinear:
    def test_input_gradient(self):
        check_input_grad(Linear(5, 3, RNG), RNG.normal(size=(4, 5)))

    def test_weight_gradient(self):
        layer = Linear(4, 3, RNG)
        x = RNG.normal(size=(6, 4))
        y, stash = layer.forward(x)
        dy = RNG.normal(size=y.shape)
        layer.zero_grad()
        layer.backward(dy, stash)
        for i in range(layer.w.size):
            old = layer.w.flat[i]
            layer.w.flat[i] = old + EPS
            up, _ = layer.forward(x)
            layer.w.flat[i] = old - EPS
            down, _ = layer.forward(x)
            layer.w.flat[i] = old
            expected = ((up - down) * dy).sum() / (2 * EPS)
            assert layer.dw.flat[i] == pytest.approx(expected, rel=1e-4,
                                                     abs=1e-7)

    def test_gradients_accumulate(self):
        layer = Linear(4, 3, RNG)
        x = RNG.normal(size=(2, 4))
        y, stash = layer.forward(x)
        dy = np.ones_like(y)
        layer.zero_grad()
        layer.backward(dy, stash)
        once = layer.dw.copy()
        layer.backward(dy, stash)
        np.testing.assert_allclose(layer.dw, 2 * once)


class TestPointwise:
    def test_gelu_gradient(self):
        check_input_grad(Gelu(), RNG.normal(size=(3, 6)))

    def test_layernorm_gradient(self):
        check_input_grad(LayerNorm(8), RNG.normal(size=(4, 8)))

    def test_layernorm_normalizes(self):
        layer = LayerNorm(16)
        y, _ = layer.forward(RNG.normal(size=(5, 16)) * 7 + 3)
        assert np.allclose(y.mean(axis=-1), 0, atol=1e-10)
        assert np.allclose(y.var(axis=-1), 1, atol=1e-3)

    def test_residual_gradient(self):
        block = Residual([Linear(6, 6, RNG), Gelu()])
        check_input_grad(block, RNG.normal(size=(3, 6)))

    def test_residual_parameters_namespaced(self):
        block = Residual([Linear(6, 6, RNG), Gelu(), Linear(6, 6, RNG)])
        names = set(block.parameters())
        assert "0.w" in names and "2.b" in names


class TestCrossEntropy:
    def _head(self, n=5, classes=4, total=None):
        head = CrossEntropyHead()
        targets = RNG.integers(0, classes, size=n)
        head.set_targets(targets, total_weight=total or n)
        return head, targets

    def test_loss_matches_manual(self):
        head, targets = self._head()
        logits = RNG.normal(size=(5, 4))
        loss, _ = head.forward(logits)
        shifted = logits - logits.max(axis=-1, keepdims=True)
        probs = np.exp(shifted) / np.exp(shifted).sum(axis=-1, keepdims=True)
        manual = -np.log(probs[np.arange(5), targets]).mean()
        assert loss[0] == pytest.approx(manual)

    def test_gradient(self):
        head, _ = self._head()
        logits = RNG.normal(size=(5, 4))
        _, stash = head.forward(logits)
        dx = head.backward(np.array([1.0]), stash)
        expected = numeric_grad_input(head, logits, np.array([1.0]))
        np.testing.assert_allclose(dx, expected, rtol=1e-5, atol=1e-8)

    def test_partial_weighting_sums_to_full(self):
        """Microbatch losses with total_weight=D sum to the full-batch
        loss -- the property grouped execution relies on."""
        logits = RNG.normal(size=(6, 4))
        targets = RNG.integers(0, 4, size=6)
        full = CrossEntropyHead()
        full.set_targets(targets, total_weight=6)
        loss_full, _ = full.forward(logits)
        partial = 0.0
        for lo in (0, 3):
            head = CrossEntropyHead()
            head.set_targets(targets[lo:lo + 3], total_weight=6)
            loss, _ = head.forward(logits[lo:lo + 3])
            partial += loss[0]
        assert partial == pytest.approx(loss_full[0])

    def test_targets_required(self):
        head = CrossEntropyHead()
        with pytest.raises(RuntimeError):
            head.forward(RNG.normal(size=(2, 3)))
