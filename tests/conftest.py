"""Shared fixtures: a simulator, a small server, and a profiled toy model."""

import pytest

from repro.analysis import check, verify_graph
from repro.core.decomposer import Decomposer
from repro.core.profiler import Profiler
from repro.hardware.gpu import GpuSpec
from repro.hardware.host import HostSpec
from repro.hardware.interconnect import TopologySpec
from repro.hardware.server import ServerSpec
from repro.models.transformer import tiny_transformer
from repro.runtime.executor import Executor
from repro.sim.engine import Simulator
from repro.trace import TraceRecorder, check_trace


@pytest.fixture(autouse=True)
def _verify_executed_graphs(request, monkeypatch):
    """Statically and dynamically verify every graph the suite executes.

    Any schedule handed to ``Executor.run`` anywhere in the test suite
    must first pass the analyzer's structural passes (structure, deadlock,
    dataflow, channel) in strict mode.  Capacity and ablation passes need
    context a blanket hook cannot reconstruct faithfully -- dedicated
    tests cover those.  Exception: a *bound* graph (the executor's server
    carries a ``repro.virt`` DeviceBinding) additionally gets the
    capacity pass against per-physical-device memory -- the binding
    supplies exactly the context the blanket hook otherwise lacks, so
    every time-sliced or heterogeneous bind executed anywhere in the
    suite is re-certified.  Tests that deliberately execute broken graphs
    opt out with ``@pytest.mark.no_graph_analysis``.

    Additionally, every run is executed with a trace recorder attached
    (unless the test brought its own) and the recorded timeline is held
    to the runtime invariants (:func:`repro.trace.check_trace`): stream
    FIFO/exclusivity, dependency order, byte and busy-time reconciliation,
    and fault-event completeness.  Opt out with
    ``@pytest.mark.no_trace_invariants``.
    """
    check_graphs = not request.node.get_closest_marker("no_graph_analysis")
    check_traces = not request.node.get_closest_marker("no_trace_invariants")
    if not check_graphs and not check_traces:
        yield
        return
    original = Executor.run

    def run(self, graph, iterations=1, **kwargs):
        if check_graphs:
            verify_graph(graph)
            binding = getattr(self.server, "binding", None)
            if binding is not None:
                spec = self.server.spec
                check(graph, server=spec, prefetch=self.prefetch,
                      device_memory=binding.device_memory(
                          spec.gpu.memory_bytes),
                      passes=["capacity"])
        recorder = None
        if check_traces and self.sim.trace is None:
            recorder = TraceRecorder()
            self.sim.trace = recorder
        try:
            metrics = original(self, graph, iterations, **kwargs)
        finally:
            if recorder is not None:
                self.sim.trace = None
        if recorder is not None:
            check_trace(recorder.events, graph=graph, metrics=metrics,
                        iterations=iterations, dropped=recorder.dropped)
        return metrics

    monkeypatch.setattr(Executor, "run", run)
    yield


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture(scope="session")
def small_gpu():
    # 256 MiB, 1 TFLOP sustained: the toy transformer needs packing but
    # fits comfortably per layer.
    return GpuSpec(name="toy-gpu", memory_bytes=256 * 2**20,
                   peak_flops=2e12, efficiency=0.5)


@pytest.fixture(scope="session")
def small_server(small_gpu):
    return ServerSpec(
        n_gpus=2,
        gpu=small_gpu,
        host=HostSpec(cores=8, memory_bytes=64 * 2**30),
        topology=TopologySpec(n_gpus=2, gpus_per_switch=2),
    )


@pytest.fixture(scope="session")
def four_gpu_server(small_gpu):
    return ServerSpec(
        n_gpus=4,
        gpu=small_gpu,
        host=HostSpec(cores=8, memory_bytes=64 * 2**30),
        topology=TopologySpec(n_gpus=4, gpus_per_switch=4),
    )


@pytest.fixture(scope="session")
def toy_model():
    return tiny_transformer(n_blocks=6, hidden=64, seq_len=16)


@pytest.fixture(scope="session")
def toy_decomposed(toy_model):
    return Decomposer(seed=0).decompose(toy_model)


@pytest.fixture(scope="session")
def toy_profiles(toy_decomposed, small_gpu):
    return Profiler(small_gpu).profile(toy_decomposed)
