"""Adversarial tests: hand-built broken schedules must trip exact rules."""

import pytest

from repro.analysis import (
    STRUCTURAL_PASSES,
    ScheduleAnalysisError,
    Severity,
    analyze,
    check,
    registered_passes,
    stream_ref,
    task_ref,
    verify_graph,
)
from repro.core.taskgraph import ScheduleOptions
from repro.core.types import Channel, Move, Task, TaskGraph, TaskKind, TensorKind

MB = 2**20


def task(tid, kind=TaskKind.FWD, device=0, mbs=(1,), **kw):
    return Task(tid=tid, kind=kind, first_layer=0, last_layer=0,
                device=device, microbatches=mbs, **kw)


def graph_of(*tasks, n_devices=2, mode="test"):
    graph = TaskGraph(mode=mode, n_devices=n_devices)
    for t in tasks:
        graph.add(t)
    return graph


class TestRegistry:
    def test_all_passes_registered(self):
        assert set(registered_passes()) == {
            "structure", "deadlock", "dataflow", "hb", "lifetime",
            "capacity", "parametric", "channel", "ablation",
        }

    def test_structural_passes_need_no_context(self):
        assert set(STRUCTURAL_PASSES) <= set(registered_passes())
        report = analyze(graph_of(task(0)), passes=STRUCTURAL_PASSES)
        assert not any(r.skipped for r in report.results)

    def test_context_passes_skip_with_reason(self):
        report = analyze(graph_of(task(0)))
        skipped = {r.name: r.skipped for r in report.results if r.skipped}
        assert skipped == {
            "capacity": "no server spec",
            "parametric": "no server spec",
            "ablation": "no schedule options",
        }


class TestStructure:
    def test_dangling_src(self):
        t = task(0)
        t.ins.append(Move(TensorKind.Y, MB, Channel.MSG, src_task=99))
        report = analyze(graph_of(t))
        assert report.has("structure/dangling-src")

    def test_self_dependency(self):
        t = task(0)
        t.ins.append(Move(TensorKind.Y, MB, Channel.MSG, src_task=0))
        report = analyze(graph_of(t))
        assert report.has("structure/self-dependency")

    def test_bad_device(self):
        report = analyze(graph_of(task(0, device=5)))
        assert report.has("structure/bad-device")

    def test_no_microbatches(self):
        report = analyze(graph_of(task(0, mbs=())))
        assert report.has("structure/no-microbatches")

    def test_dense_tids(self):
        graph = TaskGraph(mode="test", n_devices=1)
        graph.tasks.append(task(3))  # bypass add() to corrupt the list
        report = analyze(graph)
        assert report.has("structure/dense-tids")


class TestDeadlock:
    def test_plain_dependency_cycle(self):
        a, b = task(0), task(1)
        a.ins.append(Move(TensorKind.Y, MB, Channel.MSG, src_task=1))
        b.ins.append(Move(TensorKind.Y, MB, Channel.MSG, src_task=0))
        a.outs.append(Move(TensorKind.Y, MB, Channel.MSG))
        b.outs.append(Move(TensorKind.Y, MB, Channel.MSG))
        report = analyze(graph_of(a, b))
        assert report.has("deadlock/cycle")
        [diag] = report.by_rule("deadlock/cycle")
        assert task_ref(0) in diag.message and task_ref(1) in diag.message

    def test_stream_fifo_inversion(self):
        """Acyclic in src_task edges, yet deadlocked: t0's fetch is queued
        first on gpu0's swap-in stream but waits (through t1) on t2, whose
        own fetch is queued *behind* t0 on the same FIFO stream."""
        t0 = task(0, device=0)
        t0.ins.append(Move(TensorKind.Y, MB, Channel.SWAP, src_task=1))
        t1 = task(1, device=1)
        t1.ins.append(Move(TensorKind.Y, MB, Channel.SWAP, src_task=2))
        t1.outs.append(Move(TensorKind.Y, MB, Channel.MSG))
        t2 = task(2, device=0)
        t2.ins.append(Move(TensorKind.W, MB, Channel.SWAP))
        t2.outs.append(Move(TensorKind.Y, MB, Channel.MSG))
        report = analyze(graph_of(t0, t1, t2))
        assert report.has("deadlock/cycle")
        [diag] = report.by_rule("deadlock/cycle")
        assert stream_ref(0, "swap_in") in diag.message

    def test_same_graph_reordered_is_clean(self):
        """The inversion above disappears when gpu0 issues t2 first."""
        t0 = task(0, device=0)
        t0.ins.append(Move(TensorKind.W, MB, Channel.SWAP))
        t0.outs.append(Move(TensorKind.Y, MB, Channel.MSG))
        t1 = task(1, device=1)
        t1.ins.append(Move(TensorKind.Y, MB, Channel.SWAP, src_task=0))
        t1.outs.append(Move(TensorKind.Y, MB, Channel.MSG))
        t2 = task(2, device=0)
        t2.ins.append(Move(TensorKind.Y, MB, Channel.SWAP, src_task=1))
        report = analyze(graph_of(t0, t1, t2))
        assert not report.has("deadlock/cycle")


class TestDataflow:
    def test_use_before_swap_in(self):
        producer = task(0)  # stages nothing to host
        consumer = task(1)
        consumer.ins.append(
            Move(TensorKind.CKPT, MB, Channel.SWAP, src_task=0)
        )
        report = analyze(graph_of(producer, consumer))
        assert report.has("dataflow/use-before-produce")

    def test_staged_swap_in_is_clean(self):
        producer = task(0)
        producer.outs.append(Move(TensorKind.CKPT, MB, Channel.MSG))
        consumer = task(1)
        consumer.ins.append(
            Move(TensorKind.CKPT, MB, Channel.SWAP, src_task=0)
        )
        report = analyze(graph_of(producer, consumer))
        assert not report.has("dataflow/use-before-produce")

    def test_wrong_producer(self):
        fwd = task(0)
        upd = task(1, kind=TaskKind.UPD)
        upd.ins.append(Move(TensorKind.DW, MB, Channel.MSG, src_task=0))
        report = analyze(graph_of(fwd, upd))
        assert report.has("dataflow/wrong-producer")

    def test_fused_backward_produces_forward_families(self):
        fused = task(0, kind=TaskKind.BWD, fused=True)
        fused.outs.append(Move(TensorKind.Y, MB, Channel.MSG))
        consumer = task(1, kind=TaskKind.BWD)
        consumer.ins.append(Move(TensorKind.X, MB, Channel.SWAP, src_task=0))
        report = analyze(graph_of(fused, consumer))
        assert not report.has("dataflow/wrong-producer")

    def test_double_stash(self):
        t = task(0)
        t.outs.append(Move(TensorKind.CKPT, MB, Channel.MSG, label="ckpt"))
        t.outs.append(Move(TensorKind.CKPT, MB, Channel.MSG, label="ckpt"))
        report = analyze(graph_of(t))
        assert report.has("dataflow/double-stash")

    def test_unaccounted_resident_warns(self):
        t = task(0)
        t.ins.append(Move(TensorKind.W, MB, Channel.SWAP))
        report = analyze(graph_of(t))
        [diag] = report.by_rule("dataflow/unaccounted-resident")
        assert diag.severity is Severity.WARNING
        assert report.ok  # warnings never reject a schedule


class TestCapacity:
    def test_over_capacity_pack(self, small_server):
        tasks = [
            task(i, device=0, resident_bytes=200 * MB) for i in range(3)
        ]
        report = analyze(graph_of(*tasks), server=small_server)
        assert report.has("capacity/gpu")  # 2 x 200 MiB > 256 MiB

    def test_single_buffering_halves_the_window(self, small_server):
        tasks = [
            task(i, device=0, resident_bytes=200 * MB) for i in range(3)
        ]
        report = analyze(graph_of(*tasks), server=small_server,
                         prefetch=False)
        assert not report.has("capacity/gpu")

    def test_cpu_tasks_hold_no_gpu_memory(self, small_server):
        tasks = [
            task(0, device=0, resident_bytes=200 * MB),
            task(1, kind=TaskKind.UPD, device=0, on_cpu=True,
                 resident_bytes=200 * MB),
            task(2, device=0, resident_bytes=10 * MB),
        ]
        report = analyze(graph_of(*tasks), server=small_server)
        assert not report.has("capacity/gpu")

    def test_host_stash_overflow(self, small_server):
        t = task(0)
        t.outs.append(Move(
            TensorKind.CKPT, small_server.host.memory_bytes, Channel.MSG,
        ))
        report = analyze(graph_of(t), server=small_server,
                         host_state_bytes=MB)
        assert report.has("capacity/host")

    def test_host_bound_needs_state_bytes(self, small_server):
        t = task(0)
        t.outs.append(Move(
            TensorKind.CKPT, small_server.host.memory_bytes, Channel.MSG,
        ))
        report = analyze(graph_of(t), server=small_server)
        assert not report.has("capacity/host")


class TestChannel:
    def test_illegal_p2p_hop(self, small_server):
        t = task(0)
        t.ins.append(Move(TensorKind.X, MB, Channel.P2P, peer=7))
        report = analyze(graph_of(t), server=small_server)
        assert report.has("channel/bad-peer")

    def test_p2p_to_self_warns(self):
        t0 = task(0, device=0)
        t0.outs.append(Move(TensorKind.Y, MB, Channel.MSG))
        t1 = task(1, device=0)
        t1.ins.append(Move(TensorKind.X, MB, Channel.P2P, src_task=0))
        report = analyze(graph_of(t0, t1))
        [diag] = report.by_rule("channel/p2p-self")
        assert diag.severity is Severity.WARNING

    def test_cpu_task_cannot_pull_p2p(self):
        t0 = task(0, kind=TaskKind.BWD, device=0)
        t0.outs.append(Move(TensorKind.DW, MB, Channel.MSG))
        upd = task(1, kind=TaskKind.UPD, device=1, on_cpu=True)
        upd.ins.append(Move(TensorKind.DW, MB, Channel.P2P, src_task=0))
        report = analyze(graph_of(t0, upd))
        assert report.has("channel/cpu-p2p")

    def test_local_cross_device(self):
        t0 = task(0, device=0)
        t1 = task(1, device=1)
        t1.ins.append(Move(TensorKind.X, MB, Channel.LOCAL, src_task=0))
        report = analyze(graph_of(t0, t1))
        assert report.has("channel/local-cross-device")

    def test_zero_byte_local_ordering_edges_are_fine(self):
        t0 = task(0, device=0)
        t1 = task(1, device=1)
        t1.ins.append(Move(TensorKind.DW, 0, Channel.LOCAL, src_task=0))
        report = analyze(graph_of(t0, t1))
        assert not report.has("channel/local-cross-device")

    def test_topology_mismatch(self, small_server):
        report = analyze(
            graph_of(task(0), task(1, device=3), n_devices=4),
            server=small_server,
        )
        assert report.has("channel/topology-mismatch")


class TestAblation:
    def test_grouping_off_with_grouped_task(self):
        graph = graph_of(task(0, mbs=(2, 2)))
        report = analyze(
            graph, options=ScheduleOptions(mode="pp", grouping=False)
        )
        assert report.has("ablation/grouping")

    def test_jit_off_with_fused_update(self):
        graph = graph_of(task(0, kind=TaskKind.BWD, fused=True))
        report = analyze(graph, options=ScheduleOptions(mode="pp", jit=False))
        assert report.has("ablation/jit")

    def test_jit_off_with_early_update(self):
        graph = graph_of(
            task(0, kind=TaskKind.UPD), task(1, kind=TaskKind.BWD)
        )
        report = analyze(graph, options=ScheduleOptions(mode="pp", jit=False))
        assert report.has("ablation/jit")

    def test_p2p_off_with_p2p_move(self):
        t = task(0)
        t.ins.append(Move(TensorKind.X, MB, Channel.P2P, peer=1))
        report = analyze(
            graph_of(t), options=ScheduleOptions(mode="pp", p2p=False)
        )
        assert report.has("ablation/p2p")

    def test_offload_on_with_gpu_update(self):
        graph = graph_of(task(0, kind=TaskKind.UPD))
        report = analyze(
            graph,
            options=ScheduleOptions(mode="pp", offload_optimizer=True),
        )
        assert report.has("ablation/offload")

    def test_offload_on_with_optimizer_state_traffic(self):
        t = task(0, kind=TaskKind.UPD, on_cpu=True)
        t.ins.append(Move(TensorKind.K, MB, Channel.SWAP))
        report = analyze(
            graph_of(t),
            options=ScheduleOptions(mode="pp", offload_optimizer=True),
        )
        assert report.has("ablation/offload")


class TestReportApi:
    def test_check_raises_with_rule_and_location(self):
        t = task(0, device=5)
        with pytest.raises(ScheduleAnalysisError, match="structure/bad-device"):
            check(graph_of(t))

    def test_validate_delegates_to_analyzer(self):
        t = task(0)
        t.ins.append(Move(TensorKind.Y, MB, Channel.MSG, src_task=42))
        graph = graph_of(t)
        with pytest.raises(ScheduleAnalysisError):
            graph.validate()

    def test_verify_graph_skips_machine_context(self):
        # Over-capacity is invisible without a server: verify_graph is the
        # structural subset only.
        verify_graph(graph_of(task(0, resident_bytes=2**50)))

    def test_suppression_counts(self):
        t = task(0, device=5)
        report = analyze(graph_of(t), suppress=("structure/bad-device",))
        assert report.ok
        assert any(r.suppressed for r in report.results)

    def test_describe_mentions_verdict(self):
        good = analyze(graph_of(task(0)))
        assert "schedule is safe" in good.describe()
        bad = analyze(graph_of(task(0, device=9)))
        assert "REJECTED" in bad.describe()
