"""Parametric capacity certificates: affine math, binding windows, and
deliberately undersized servers naming a concrete smallest violating N."""

from dataclasses import replace

from repro.analysis import analyze, capacity_certificates
from repro.analysis.context import AnalysisContext
from repro.analysis.parametric import CapacityCertificate
from repro.core.harmony import Harmony, HarmonyOptions
from repro.core.types import Channel, Move, Task, TaskGraph, TaskKind, TensorKind
from repro.experiments.common import server_for
from repro.hardware.gpu import GpuSpec
from repro.hardware.host import HostSpec
from repro.hardware.interconnect import TopologySpec
from repro.hardware.server import ServerSpec


def task(tid, device=0, resident=0, local_in=0, src=None,
         kind=TaskKind.FWD, **kw):
    t = Task(tid=tid, kind=kind, first_layer=0, last_layer=0,
             device=device, microbatches=(1,), resident_bytes=resident, **kw)
    if local_in:
        t.ins.append(Move(TensorKind.Y, local_in, Channel.LOCAL, src_task=src))
    return t


def tiny_server(gpu_bytes=1000, host_bytes=1000, n_gpus=1):
    return ServerSpec(
        n_gpus=n_gpus,
        gpu=GpuSpec(name="tiny", memory_bytes=gpu_bytes, peak_flops=1e12),
        host=HostSpec(cores=4, memory_bytes=host_bytes),
        topology=TopologySpec(n_gpus=n_gpus, gpus_per_switch=max(n_gpus, 1)),
    )


def context(*tasks, n_devices=1, **kw):
    graph = TaskGraph(mode="test", n_devices=n_devices)
    for t in tasks:
        graph.add(t)
    return AnalysisContext(graph, **kw)


class TestCertificateMath:
    def test_affine_peak_and_violating_n(self):
        cert = CapacityCertificate("gpu0", fixed_bytes=10, slope_bytes=5,
                                   capacity_bytes=30)
        assert cert.peak(1) == 15
        assert cert.smallest_violating_n() == 5
        assert cert.peak(4) <= 30 < cert.peak(5)
        assert not cert.safe_for_all
        assert "violates at N = 5" in cert.describe()

    def test_zero_slope_within_budget_is_safe_for_all(self):
        cert = CapacityCertificate("gpu0", fixed_bytes=10, slope_bytes=0,
                                   capacity_bytes=30)
        assert cert.safe_for_all
        assert "safe for all N >= 1" in cert.describe()

    def test_overflow_at_the_plans_own_size(self):
        cert = CapacityCertificate("gpu0", fixed_bytes=40, slope_bytes=1,
                                   capacity_bytes=30)
        assert cert.smallest_violating_n() == 1

    def test_exact_fit_at_one_violates_at_two(self):
        cert = CapacityCertificate("gpu0", fixed_bytes=25, slope_bytes=5,
                                   capacity_bytes=30)
        assert cert.peak(1) == cert.capacity_bytes
        assert cert.smallest_violating_n() == 2


class TestDeviceCertificates:
    def three_task_context(self, **kw):
        # Windows of 2 (prefetch): [150 + 30N], [90 + 50N], [40 + 20N].
        return context(
            task(0, resident=100),
            task(1, resident=80, local_in=30, src=0),
            task(2, resident=60, local_in=20, src=1),
            server=tiny_server(gpu_bytes=1000), **kw,
        )

    def test_binding_window_is_the_earliest_violated(self):
        [cert] = capacity_certificates(self.three_task_context())
        assert (cert.fixed_bytes, cert.slope_bytes) == (90, 50)
        assert cert.smallest_violating_n() == (1000 - 90) // 50 + 1

    def test_single_buffering_shrinks_the_window(self):
        [cert] = capacity_certificates(
            self.three_task_context(prefetch=False)
        )
        assert (cert.fixed_bytes, cert.slope_bytes) == (50, 30)

    def test_cpu_offloaded_tasks_hold_no_gpu_bytes(self):
        ctx = context(
            task(0, resident=100),
            task(1, kind=TaskKind.UPD, on_cpu=True, resident=10**9),
            server=tiny_server(gpu_bytes=1000),
        )
        [cert] = capacity_certificates(ctx)
        assert cert.peak(1) == 100

    def test_empty_device_gets_a_trivial_certificate(self):
        ctx = context(task(0, resident=100), n_devices=2,
                      server=tiny_server(gpu_bytes=1000, n_gpus=2))
        gpu1 = capacity_certificates(ctx)[1]
        assert gpu1.safe_for_all and gpu1.peak(1) == 0


class TestHostCertificate:
    def stashing_context(self, state=100, inputs=40, host_bytes=1000):
        t = task(0, resident=10)
        t.outs.append(Move(TensorKind.CKPT, 7, Channel.MSG))
        return context(t, server=tiny_server(host_bytes=host_bytes),
                       host_state_bytes=state, host_input_bytes=inputs)

    def test_state_splits_into_fixed_and_per_n(self):
        host = capacity_certificates(self.stashing_context())[-1]
        assert host.scope == "host"
        assert (host.fixed_bytes, host.slope_bytes) == (100 - 40, 40 + 7)
        assert host.smallest_violating_n() == (1000 - 60) // 47 + 1

    def test_input_split_is_clamped_to_state(self):
        host = capacity_certificates(
            self.stashing_context(state=100, inputs=500)
        )[-1]
        assert (host.fixed_bytes, host.slope_bytes) == (0, 100 + 7)

    def test_no_host_certificate_without_state_bytes(self):
        ctx = context(task(0, resident=10), server=tiny_server())
        assert [c.scope for c in capacity_certificates(ctx)] == ["gpu0"]


class TestUndersizedServer:
    """The acceptance case: shrink the hardware until the pass names a
    concrete smallest violating N for a real planner schedule."""

    def plan(self, mode="pp"):
        server = server_for(4)
        options = HarmonyOptions(mode=mode)
        harmony = Harmony("toy-transformer", server, 16, options=options)
        return harmony, server, options, harmony.plan()

    def test_gpu_smaller_than_the_plan_is_unsafe_at_n_one(self):
        harmony, server, options, plan = self.plan()
        ctx = AnalysisContext(plan.graph, server=server)
        worst = max(capacity_certificates(ctx), key=lambda c: c.peak(1))
        undersized = replace(
            server, gpu=replace(server.gpu, memory_bytes=worst.peak(1) - 1)
        )
        report = analyze(plan.graph, server=undersized,
                         options=options.schedule_options())
        assert not report.ok
        assert report.has("parametric/gpu-unsafe")
        assert report.has("capacity/gpu")  # the N = 1 point check agrees
        shrunk = AnalysisContext(plan.graph, server=undersized)
        assert any(c.smallest_violating_n() == 1
                   for c in capacity_certificates(shrunk))

    def test_undersized_host_names_the_exact_ceiling(self):
        harmony, server, options, plan = self.plan()
        state = harmony.host_state_bytes
        inputs = harmony.minibatch * harmony.model.sample_bytes
        ctx = AnalysisContext(plan.graph, server=server,
                              host_state_bytes=state,
                              host_input_bytes=inputs)
        host = capacity_certificates(ctx)[-1]
        assert host.slope_bytes > 0  # inputs + stash really scale with N
        # A host that fits exactly two groups' worth violates at N = 3.
        undersized = replace(
            server, host=replace(server.host, memory_bytes=host.peak(2))
        )
        report = analyze(plan.graph, server=undersized,
                         options=options.schedule_options(),
                         host_state_bytes=state, host_input_bytes=inputs)
        assert report.ok  # as built (N = 1) the plan still fits
        [diag] = report.by_rule("parametric/host-ceiling")
        assert "ceiling at N = 2" in diag.message
        shrunk = AnalysisContext(plan.graph, server=undersized,
                                 host_state_bytes=state,
                                 host_input_bytes=inputs)
        assert capacity_certificates(shrunk)[-1].smallest_violating_n() == 3
