"""Runtime/analyzer identity contract: one naming scheme, two detectors.

A schedule the analyzer statically rejects as a stream-FIFO deadlock
really does hang the Executor, and the runtime's error names the same
``t<tid>`` / ``gpu<d>.<stream>`` entities the diagnostic did.
"""

import pytest

from repro.analysis import analyze, stream_ref, task_ref
from repro.common.errors import SimulationError
from repro.core.types import Channel, Move, Task, TaskGraph, TaskKind, TensorKind
from repro.hardware.server import SimulatedServer
from repro.runtime.executor import Executor
from repro.sim.engine import Simulator


class _FlatTime:
    """Constant-duration stand-in for the calibrated time model."""

    def microbatch_time(self, task, u):
        return 1e-3

    def update_time(self, task):
        return 1e-3


def deadlocked_graph():
    """Acyclic src_task edges, deadlocked through gpu0's swap-in FIFO."""
    graph = TaskGraph(mode="test", n_devices=2)
    t0 = Task(0, TaskKind.FWD, 0, 0, 0, (1,),
              ins=[Move(TensorKind.Y, 100, Channel.SWAP, src_task=1)])
    t1 = Task(1, TaskKind.FWD, 0, 0, 1, (1,),
              ins=[Move(TensorKind.Y, 100, Channel.SWAP, src_task=2)],
              outs=[Move(TensorKind.Y, 100, Channel.MSG)])
    t2 = Task(2, TaskKind.FWD, 0, 0, 0, (1,),
              ins=[Move(TensorKind.W, 100, Channel.SWAP)],
              outs=[Move(TensorKind.Y, 100, Channel.MSG)])
    for t in (t0, t1, t2):
        graph.add(t)
    return graph


def test_analyzer_rejects_it():
    report = analyze(deadlocked_graph())
    assert report.has("deadlock/cycle")


@pytest.mark.no_graph_analysis
def test_executor_hangs_with_matching_identifiers(small_server):
    graph = deadlocked_graph()
    sim = Simulator()
    server = SimulatedServer(sim, small_server)
    with pytest.raises(SimulationError) as err:
        Executor(server, _FlatTime()).run(graph)
    message = str(err.value)
    assert "deadlock" in message
    assert task_ref(0) in message
    assert stream_ref(0, "swap_in") in message


@pytest.mark.no_graph_analysis
def test_fixture_optout_marker_respected(small_server):
    """Without the marker the autouse fixture would have raised
    ScheduleAnalysisError before the Executor ever ran; with it, the
    runtime detector is what fires."""
    graph = deadlocked_graph()
    sim = Simulator()
    server = SimulatedServer(sim, small_server)
    with pytest.raises(SimulationError):
        Executor(server, _FlatTime()).run(graph)


class TestNamedEvents:
    def test_unfired_value_read_names_the_event(self):
        from repro.sim.engine import SimEvent

        sim = Simulator()
        event = SimEvent(sim, name="t3.done")
        with pytest.raises(SimulationError, match="t3.done"):
            event.value

    def test_double_fire_names_the_event(self):
        from repro.sim.engine import SimEvent

        sim = Simulator()
        event = SimEvent(sim, name="t7.outs_flushed")
        event.succeed()
        with pytest.raises(SimulationError, match="t7.outs_flushed"):
            event.succeed()

    def test_anonymous_events_keep_terse_messages(self):
        sim = Simulator()
        event = sim.event()
        with pytest.raises(SimulationError, match="event value read"):
            event.value
