"""The static happens-before relation and race detection, on hand-built graphs."""

from repro.analysis import analyze, build_happens_before
from repro.analysis.context import AnalysisContext
from repro.core.types import Channel, Move, Task, TaskGraph, TaskKind, TensorKind

MB = 2**20


def task(tid, kind=TaskKind.FWD, device=0, layers=(0, 0), **kw):
    return Task(tid=tid, kind=kind, first_layer=layers[0],
                last_layer=layers[1], device=device, microbatches=(1,), **kw)


def graph_of(*tasks, n_devices=2):
    graph = TaskGraph(mode="test", n_devices=n_devices)
    for t in tasks:
        graph.add(t)
    return graph


def hb_of(*tasks, n_devices=2):
    return build_happens_before(
        AnalysisContext(graph_of(*tasks, n_devices=n_devices))
    )


class TestHappensBefore:
    def test_intra_task_lifecycle_chain(self):
        hb = hb_of(task(0))
        assert hb.happens_before(("F", 0), ("C", 0))
        assert hb.happens_before(("C", 0), ("O", 0))
        assert hb.happens_before(("F", 0), ("O", 0))  # transitive
        assert not hb.happens_before(("O", 0), ("F", 0))

    def test_host_channel_dependency_waits_on_flush(self):
        producer = task(0, device=0)
        producer.outs.append(Move(TensorKind.Y, MB, Channel.MSG))
        consumer = task(1, device=1)
        consumer.ins.append(Move(TensorKind.X, MB, Channel.SWAP, src_task=0))
        hb = hb_of(producer, consumer)
        assert hb.happens_before(("O", 0), ("F", 1))

    def test_local_dependency_waits_on_compute_not_flush(self):
        producer = task(0)
        producer.outs.append(Move(TensorKind.Y, MB, Channel.MSG))
        consumer = task(1)
        consumer.ins.append(Move(TensorKind.Y, MB, Channel.LOCAL, src_task=0))
        hb = hb_of(producer, consumer)
        assert hb.happens_before(("C", 0), ("F", 1))
        # The consumer does not wait for the producer's host flush.
        assert not hb.happens_before(("O", 0), ("F", 1))

    def test_compute_fifo_orders_same_device_tasks(self):
        hb = hb_of(task(0), task(1))
        assert hb.happens_before(("C", 0), ("C", 1))
        # ...but their fetch phases share no stream and stay unordered.
        assert not hb.ordered(("F", 0), ("F", 1))

    def test_cross_device_tasks_are_unordered(self):
        hb = hb_of(task(0, device=0), task(1, device=1))
        assert not hb.ordered(("C", 0), ("C", 1))

    def test_cpu_offloaded_tasks_skip_the_compute_fifo(self):
        hb = hb_of(task(0, kind=TaskKind.UPD, on_cpu=True),
                   task(1, kind=TaskKind.UPD, on_cpu=True))
        assert not hb.ordered(("C", 0), ("C", 1))

    def test_cycle_reported_as_cyclic_not_ordered(self):
        a, b = task(0), task(1)
        a.ins.append(Move(TensorKind.Y, MB, Channel.MSG, src_task=1))
        b.ins.append(Move(TensorKind.Y, MB, Channel.MSG, src_task=0))
        hb = hb_of(a, b)
        assert hb.cyclic
        assert not hb.happens_before(("C", 0), ("C", 1))


class TestRacePass:
    def run_hb(self, *tasks, n_devices=2):
        return analyze(graph_of(*tasks, n_devices=n_devices), passes=("hb",))

    def test_unordered_cpu_updates_race_waw(self):
        report = self.run_hb(
            task(0, kind=TaskKind.UPD, on_cpu=True),
            task(1, kind=TaskKind.UPD, on_cpu=True),
        )
        assert report.has("hb/waw-race")

    def test_explicitly_ordered_updates_are_clean(self):
        first = task(0, kind=TaskKind.UPD, on_cpu=True)
        second = task(1, kind=TaskKind.UPD, on_cpu=True)
        second.ins.append(Move(TensorKind.W, 0, Channel.LOCAL, src_task=0))
        report = self.run_hb(first, second)
        assert report.ok and not report.diagnostics

    def test_write_unordered_with_earlier_read_is_war(self):
        reader = task(0)
        reader.ins.append(Move(TensorKind.W, MB, Channel.SWAP))
        writer = task(1, kind=TaskKind.UPD, on_cpu=True)
        report = self.run_hb(reader, writer)
        [diag] = report.by_rule("hb/war-race")
        assert "weights" in diag.message

    def test_read_unordered_with_earlier_write_is_rw(self):
        writer = task(0, kind=TaskKind.UPD, on_cpu=True)
        reader = task(1)
        reader.ins.append(Move(TensorKind.W, MB, Channel.SWAP))
        report = self.run_hb(writer, reader)
        assert report.has("hb/rw-race")

    def test_disjoint_layer_spans_do_not_race(self):
        reader = task(0, layers=(1, 1))
        reader.ins.append(Move(TensorKind.W, MB, Channel.SWAP))
        writer = task(1, kind=TaskKind.UPD, on_cpu=True, layers=(0, 0))
        report = self.run_hb(reader, writer)
        assert report.ok and not report.diagnostics

    def test_gradient_buffers_are_not_shared_state(self):
        # Per-replica DW buffers are private: unordered writes are fine.
        a = task(0, kind=TaskKind.BWD, device=0)
        a.outs.append(Move(TensorKind.DW, MB, Channel.MSG))
        b = task(1, kind=TaskKind.BWD, device=1)
        b.outs.append(Move(TensorKind.DW, MB, Channel.MSG))
        report = self.run_hb(a, b)
        assert report.ok and not report.diagnostics

    def test_cyclic_graph_defers_to_deadlock_pass(self):
        a = task(0, kind=TaskKind.UPD, on_cpu=True)
        b = task(1, kind=TaskKind.UPD, on_cpu=True)
        a.ins.append(Move(TensorKind.W, 0, Channel.LOCAL, src_task=1))
        b.ins.append(Move(TensorKind.W, 0, Channel.LOCAL, src_task=0))
        report = self.run_hb(a, b)
        assert not report.diagnostics  # deadlock pass owns cycle reporting
