"""The ``repro.cli check`` subcommand: exit codes and per-pass summary."""

import json

import pytest

from repro.analysis import INJECTIONS
from repro.cli import main

ARGS = ["check", "toy-transformer", "--minibatch", "16", "--mode", "pp"]

#: A rule id each defect's CLI output must name (for multi-rule defects
#: one representative suffices; the exact full set is asserted in
#: test_inject.py).
EXPECTED_RULES = {
    "cycle": "deadlock/cycle",
    "use-before-produce": "dataflow/use-before-produce",
    "over-capacity": "capacity/gpu",
    "illegal-p2p": "channel/bad-peer",
    "ablation": "ablation/",
    "war-race": "hb/war-race",
    "rw-race": "hb/rw-race",
    "waw-race": "hb/waw-race",
    "double-release": "lifetime/double-release",
    "use-after-evict": "lifetime/use-after-evict",
    "use-before-fetch": "lifetime/use-before-fetch",
    "capacity-growth": "parametric/host-unsafe",
}


def test_clean_schedule_exits_zero(capsys):
    assert main(ARGS) == 0
    out = capsys.readouterr().out
    for name in ("structure", "deadlock", "dataflow", "hb", "lifetime",
                 "capacity", "channel", "ablation"):
        assert f"{name:<10} ok" in out
    assert "schedule is safe" in out
    # The parametric certificates are printed alongside the verdict.
    assert "certificate: gpu0" in out
    assert "safe for all N >= 1" in out


def test_every_defect_has_an_injector_and_vice_versa():
    assert set(EXPECTED_RULES) == set(INJECTIONS)


@pytest.mark.parametrize("defect", sorted(INJECTIONS))
def test_injected_defect_exits_nonzero_with_rule_id(defect, capsys):
    assert main(ARGS + ["--inject", defect]) == 1
    out = capsys.readouterr().out
    assert EXPECTED_RULES[defect] in out
    assert "REJECTED" in out


def test_dp_mode_checks_too(capsys):
    assert main(["check", "toy-transformer", "--minibatch", "16",
                 "--mode", "dp"]) == 0
    assert "schedule is safe" in capsys.readouterr().out


def test_pass_subset_flags(capsys):
    assert main(ARGS + ["--races", "--lifetime"]) == 0
    out = capsys.readouterr().out
    assert "hb         ok" in out
    assert "lifetime   ok" in out
    assert "structure" not in out
    assert "certificate:" not in out  # parametric not selected


def test_parametric_flag_prints_certificates(capsys):
    assert main(ARGS + ["--parametric"]) == 0
    out = capsys.readouterr().out
    assert "certificate: gpu0" in out
    assert "certificate: host" in out


def test_json_report(tmp_path, capsys):
    path = tmp_path / "check.json"
    assert main(ARGS + ["--json", str(path)]) == 0
    payload = json.loads(path.read_text())
    assert payload["ok"] is True
    assert {p["name"] for p in payload["passes"]} >= {
        "structure", "hb", "lifetime", "capacity", "parametric",
    }
    scopes = {c["scope"] for c in payload["certificates"]}
    assert scopes == {"gpu0", "gpu1", "gpu2", "gpu3", "host"}
    assert all(
        c["safe_for_all"] or c["smallest_violating_n"] >= 1
        for c in payload["certificates"]
    )


def test_json_report_on_injected_defect(tmp_path, capsys):
    path = tmp_path / "bad.json"
    assert main(ARGS + ["--inject", "waw-race", "--json", str(path)]) == 1
    payload = json.loads(path.read_text())
    assert payload["ok"] is False
    assert payload["injected"] == "waw-race"
    rules = {d["rule"] for d in payload["diagnostics"]}
    assert {"hb/waw-race", "lifetime/double-release"} <= rules
