"""The ``repro.cli check`` subcommand: exit codes and per-pass summary."""

import pytest

from repro.analysis import INJECTIONS
from repro.cli import main

ARGS = ["check", "toy-transformer", "--minibatch", "16", "--mode", "pp"]

EXPECTED_RULES = {
    "cycle": "deadlock/cycle",
    "use-before-produce": "dataflow/use-before-produce",
    "over-capacity": "capacity/gpu",
    "illegal-p2p": "channel/bad-peer",
    "ablation": "ablation/",
}


def test_clean_schedule_exits_zero(capsys):
    assert main(ARGS) == 0
    out = capsys.readouterr().out
    for name in ("structure", "deadlock", "dataflow", "capacity",
                 "channel", "ablation"):
        assert f"{name:<10} ok" in out
    assert "schedule is safe" in out


@pytest.mark.parametrize("defect", sorted(INJECTIONS))
def test_injected_defect_exits_nonzero_with_rule_id(defect, capsys):
    assert main(ARGS + ["--inject", defect]) == 1
    out = capsys.readouterr().out
    assert EXPECTED_RULES[defect] in out
    assert "REJECTED" in out


def test_dp_mode_checks_too(capsys):
    assert main(["check", "toy-transformer", "--minibatch", "16",
                 "--mode", "dp"]) == 0
    assert "schedule is safe" in capsys.readouterr().out
