"""Differential harness: static findings soundly cover the trace invariants.

The analyzer's claim is one-directional soundness: any schedule it
certifies clean must also execute clean -- the runtime trace invariants
(:func:`repro.trace.check_trace`: stream FIFO/exclusivity, dependency
order, byte and busy-time reconciliation) may never catch a violation
the static passes missed.  This sweep exercises the claim across two zoo
models x {pp, dp} x five planner seeds: every plan is first analyzed
with the full pass set and full machine context, then executed with a
trace recorder attached and the recorded timeline re-checked.

(The other direction is deliberately *not* required: static analysis is
conservative and may reject schedules whose one concrete interleaving
would have survived.  The injection corpus in test_inject.py pins the
zero-false-negative side.)
"""

import pytest

from repro.analysis import analyze
from repro.core.harmony import Harmony, HarmonyOptions
from repro.experiments.common import server_for
from repro.trace import TraceRecorder, check_trace

MODELS = ("toy-transformer", "tiny-cnn")
SEEDS = (0, 1, 2, 3, 4)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("mode", ("pp", "dp"))
@pytest.mark.parametrize("model", MODELS)
def test_statically_clean_schedules_execute_clean(model, mode, seed):
    server = server_for(4)
    options = HarmonyOptions(mode=mode, seed=seed)
    harmony = Harmony(model, server, 16, options=options)
    plan = harmony.plan()

    report = analyze(
        plan.graph,
        server=server,
        options=options.schedule_options(),
        host_state_bytes=harmony.host_state_bytes,
        host_input_bytes=harmony.minibatch * harmony.model.sample_bytes,
        prefetch=options.prefetch,
    )
    assert report.ok and not report.warnings, report.describe()

    recorder = TraceRecorder()
    result = harmony.run(plan, iterations=1, trace=recorder)
    check_trace(recorder.events, graph=plan.graph, metrics=result.metrics,
                iterations=1, dropped=recorder.dropped)
