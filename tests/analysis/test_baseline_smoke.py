"""Satellite smoke: every baseline planner's schedule passes the analyzer.

One waiver, documented inline: the ZeRO-Infinity analog models the real
system's memory-throttled transfer engine with the Runtime's two fetch
slots at *pack* granularity.  The real engine prefetches layer by layer
under an allocator watermark, so the pack-level double-buffer bound
over-approximates its true peak -- ``capacity/gpu`` is suppressed for
that scheme only (and the suppression is itself asserted, so the waiver
dies with the violation).
"""

import pytest

from repro.analysis import analyze
from repro.baselines import (
    DpSwapPlanner,
    GpipeSwapPlanner,
    PipeDream2BWPlanner,
    ZeroInfinityPlanner,
)
from repro.experiments.common import server_for

PLANNERS = (
    DpSwapPlanner, GpipeSwapPlanner, PipeDream2BWPlanner, ZeroInfinityPlanner,
)


@pytest.mark.parametrize("planner_cls", PLANNERS,
                         ids=lambda cls: cls.name)
def test_baseline_schedule_analyzes_clean(planner_cls):
    server = server_for(4)
    scheme = planner_cls("bert-large", server, 32)
    plan = scheme.plan()
    suppress = (
        ("capacity/gpu",) if scheme.name == "zero-infinity" else ()
    )
    report = analyze(
        plan.graph,
        server=server,
        host_state_bytes=plan.host_state_bytes,
        prefetch=not scheme.reactive,
        suppress=suppress,
    )
    assert report.ok and not report.warnings, report.describe()
    if suppress:
        # The waiver must still be load-bearing; if the planner stops
        # over-approximating, remove the suppression.
        unsuppressed = analyze(
            plan.graph, server=server, prefetch=not scheme.reactive
        )
        assert unsuppressed.has("capacity/gpu")
