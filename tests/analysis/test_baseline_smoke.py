"""Satellite smoke: every baseline planner's schedule passes the analyzer.

The one exception is declared, not hidden: the ZeRO-Infinity analog
models the real system's memory-throttled transfer engine with the
Runtime's two fetch slots at *pack* granularity, so the pack-level
double-buffer bound (``capacity/gpu`` and its N = 1 parametric twin)
over-approximates the true peak.  The scheme carries explicit
:class:`~repro.analysis.Waiver`s for exactly those rules -- the findings
still surface in the report as INFO with the justification attached, and
the analyzer turns any *unmatched* waiver into an error, so the waiver
dies with the violation it excuses.
"""

import pytest

from repro.analysis import Waiver, analyze
from repro.baselines import (
    DpSwapPlanner,
    GpipeSwapPlanner,
    PipeDream2BWPlanner,
    ZeroInfinityPlanner,
)
from repro.experiments.common import server_for

PLANNERS = (
    DpSwapPlanner, GpipeSwapPlanner, PipeDream2BWPlanner, ZeroInfinityPlanner,
)


def analyzed(planner_cls, waivers=None):
    server = server_for(4)
    scheme = planner_cls("bert-large", server, 32)
    plan = scheme.plan()
    return analyze(
        plan.graph,
        server=server,
        host_state_bytes=plan.host_state_bytes,
        prefetch=not scheme.reactive,
        waivers=scheme.waivers if waivers is None else waivers,
    )


@pytest.mark.parametrize("planner_cls", PLANNERS,
                         ids=lambda cls: cls.name)
def test_baseline_schedule_analyzes_clean(planner_cls):
    report = analyzed(planner_cls)
    assert report.ok and not report.warnings, report.describe()


class TestZeroInfinityWaiver:
    def test_waived_findings_surface_as_info(self):
        report = analyzed(ZeroInfinityPlanner)
        assert report.ok, report.describe()
        # The waived findings are demoted, not silenced: the report
        # names the original rule and carries the justification.
        waived = report.by_rule("waiver/capacity.gpu")
        assert waived and all(
            "watermark" in (d.hint or "") for d in waived
        ), report.describe()
        assert report.has("waiver/parametric.gpu-unsafe")

    def test_waiver_is_load_bearing(self):
        # Without the waivers the violations come back as errors; if the
        # planner stops over-approximating, remove the waivers.
        report = analyzed(ZeroInfinityPlanner, waivers=())
        assert report.has("capacity/gpu"), report.describe()
        assert report.has("parametric/gpu-unsafe")

    def test_unmatched_waiver_is_an_error(self):
        report = analyzed(
            DpSwapPlanner,
            waivers=(Waiver("capacity/gpu", "does not apply here"),),
        )
        assert not report.ok
        assert report.has("waiver/unused"), report.describe()
