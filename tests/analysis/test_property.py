"""Property-style coverage: every schedule the planner emits analyzes clean.

Two sweeps:

- every zoo model x {pp, dp} under default options;
- every single-switch ablation x {pp, dp} on two representative models
  (including ``prefetch`` off, which halves the capacity window).

"Clean" means zero errors *and* zero warnings with the full pass set and
full machine/schedule context -- the planner should never need a waiver
for its own graphs.
"""

import pytest

from repro.analysis import analyze
from repro.core.harmony import Harmony, HarmonyOptions
from repro.experiments.common import server_for
from repro.models.zoo import available_models

ABLATIONS = (
    None, "grouping", "jit", "p2p", "offload_optimizer", "prefetch",
)


def assert_clean(model, options):
    server = server_for(4)
    plan = Harmony(model, server, 16, options=options).plan()
    report = analyze(
        plan.graph,
        server=server,
        options=options.schedule_options(),
        host_state_bytes=None,  # host fit for massive models is Figure 15
        prefetch=options.prefetch,
    )
    assert report.ok and not report.warnings, report.describe()


@pytest.mark.parametrize("model", available_models())
@pytest.mark.parametrize("mode", ("pp", "dp"))
def test_zoo_schedules_analyze_clean(model, mode):
    assert_clean(model, HarmonyOptions(mode=mode))


@pytest.mark.parametrize("model", ("toy-transformer", "gpt2"))
@pytest.mark.parametrize("mode", ("pp", "dp"))
@pytest.mark.parametrize("ablation", ABLATIONS)
def test_ablated_schedules_analyze_clean(model, mode, ablation):
    options = HarmonyOptions(mode=mode)
    if ablation is not None:
        options = options.without(ablation)
    assert_clean(model, options)
