"""The tensor-lifetime lattice pass, on hand-built graphs."""

from repro.analysis import analyze
from repro.core.types import Channel, Move, Task, TaskGraph, TaskKind, TensorKind

MB = 2**20


def task(tid, kind=TaskKind.FWD, device=0, layers=(0, 0), **kw):
    return Task(tid=tid, kind=kind, first_layer=layers[0],
                last_layer=layers[1], device=device, microbatches=(1,), **kw)


def run_lifetime(*tasks, n_devices=2):
    graph = TaskGraph(mode="test", n_devices=n_devices)
    for t in tasks:
        graph.add(t)
    return analyze(graph, passes=("lifetime",))


class TestUseBeforeFetch:
    def test_local_move_with_no_producer(self):
        t = task(0)
        t.ins.append(Move(TensorKind.X, MB, Channel.LOCAL))
        report = run_lifetime(t)
        [diag] = report.by_rule("lifetime/use-before-fetch")
        assert diag.task == 0 and diag.device == 0

    def test_swap_fetch_without_producer_is_not_this_rule(self):
        # Host fetches with no src_task are legal entry points (weights).
        t = task(0)
        t.ins.append(Move(TensorKind.W, MB, Channel.SWAP))
        report = run_lifetime(t)
        assert report.ok and not report.diagnostics

    def test_zero_byte_local_ordering_edge_is_fine(self):
        t = task(0)
        t.ins.append(Move(TensorKind.DW, 0, Channel.LOCAL))
        report = run_lifetime(t)
        assert report.ok and not report.diagnostics


class TestUseAfterEvict:
    def test_third_group_between_producer_and_consumer(self):
        producer = task(0, kind=TaskKind.FWD)
        interloper = task(1, kind=TaskKind.BWD)
        consumer = task(2, kind=TaskKind.FWD)
        consumer.ins.append(Move(TensorKind.Y, MB, Channel.LOCAL, src_task=0))
        report = run_lifetime(producer, interloper, consumer)
        [diag] = report.by_rule("lifetime/use-after-evict")
        assert "t1" in diag.message

    def test_adjacent_producer_and_consumer_are_clean(self):
        producer = task(0, kind=TaskKind.FWD)
        consumer = task(1, kind=TaskKind.BWD)
        consumer.ins.append(Move(TensorKind.Y, MB, Channel.LOCAL, src_task=0))
        report = run_lifetime(producer, consumer)
        assert report.ok and not report.diagnostics

    def test_intervening_task_of_consumer_group_keeps_window(self):
        producer = task(0, kind=TaskKind.FWD)
        same_group = task(1, kind=TaskKind.BWD)
        consumer = task(2, kind=TaskKind.BWD)
        consumer.ins.append(Move(TensorKind.Y, MB, Channel.LOCAL, src_task=0))
        report = run_lifetime(producer, same_group, consumer)
        assert report.ok and not report.diagnostics

    def test_cross_device_producer_is_channel_pass_territory(self):
        producer = task(0, device=0)
        consumer = task(1, device=1)
        consumer.ins.append(Move(TensorKind.Y, MB, Channel.LOCAL, src_task=0))
        report = run_lifetime(producer, consumer)
        assert report.ok and not report.diagnostics


class TestDoubleRelease:
    def test_two_updates_own_the_same_slice(self):
        report = run_lifetime(
            task(0, kind=TaskKind.UPD),
            task(1, kind=TaskKind.UPD),
        )
        [diag] = report.by_rule("lifetime/double-release")
        assert diag.task == 1

    def test_per_device_ownership_does_not_clash(self):
        # dp mode: each replica updates its own whole-model copy.
        report = run_lifetime(
            task(0, kind=TaskKind.UPD, device=0),
            task(1, kind=TaskKind.UPD, device=1),
        )
        assert report.ok and not report.diagnostics

    def test_partial_layer_overlap_still_clashes(self):
        report = run_lifetime(
            task(0, kind=TaskKind.UPD, layers=(0, 2)),
            task(1, kind=TaskKind.UPD, layers=(2, 4)),
        )
        assert report.has("lifetime/double-release")

    def test_disjoint_layer_slices_are_clean(self):
        report = run_lifetime(
            task(0, kind=TaskKind.UPD, layers=(0, 1)),
            task(1, kind=TaskKind.UPD, layers=(2, 3)),
        )
        assert report.ok and not report.diagnostics
