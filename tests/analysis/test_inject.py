"""The seeded-defect injectors and the runtime gates around the analyzer."""

import pytest

from repro.analysis import INJECTIONS, ScheduleAnalysisError, analyze, inject
from repro.core.harmony import Harmony, HarmonyOptions
from repro.experiments.common import server_for


def toy_plan(options):
    server = server_for(4)
    return server, Harmony(
        "toy-transformer", server, 16, options=options
    ).plan()


@pytest.mark.parametrize("defect", sorted(INJECTIONS))
def test_each_injected_defect_trips_exactly_its_rules(defect):
    options = HarmonyOptions(mode="pp")
    server, plan = toy_plan(options)
    harmony = Harmony("toy-transformer", server, 16, options=options)
    sched_options, expected = inject(defect, plan.graph, options.schedule_options())
    report = analyze(
        plan.graph, server=server, options=sched_options,
        host_state_bytes=harmony.host_state_bytes,
        prefetch=sched_options.prefetch,
    )
    # Zero false negatives (every named rule fires) *and* zero
    # collateral findings (nothing else does).
    assert {d.rule for d in report.errors} == set(expected), report.describe()


def test_unknown_defect_rejected():
    options = HarmonyOptions(mode="pp")
    _server, plan = toy_plan(options)
    with pytest.raises(KeyError, match="unknown defect"):
        inject("nonsense", plan.graph, options.schedule_options())


class TestHarmonyGate:
    def test_strict_mode_passes_clean_schedule(self):
        options = HarmonyOptions(mode="pp", analyze="strict")
        _server, plan = toy_plan(options)
        harmony = Harmony("toy-transformer", server_for(4), 16,
                          options=options)
        report = harmony.run(plan)
        assert report.metrics.iteration_time > 0

    def test_strict_mode_rejects_injected_defect(self):
        options = HarmonyOptions(mode="pp", analyze="strict")
        server, plan = toy_plan(options)
        inject("illegal-p2p", plan.graph, options.schedule_options())
        harmony = Harmony("toy-transformer", server, 16, options=options)
        with pytest.raises(ScheduleAnalysisError, match="channel/bad-peer"):
            harmony.run(plan)

    @pytest.mark.no_graph_analysis  # the defect must reach the Executor
    def test_warn_mode_prints_but_runs(self, capsys):
        # use-before-produce is a pure dataflow defect: the simulator
        # happily transfers the phantom bytes, so warn mode can both
        # report it and still complete the run.
        options = HarmonyOptions(mode="pp", analyze="warn")
        server, plan = toy_plan(options)
        inject("use-before-produce", plan.graph, options.schedule_options())
        harmony = Harmony("toy-transformer", server, 16, options=options)
        report = harmony.run(plan)
        assert report.metrics.iteration_time > 0
        assert "dataflow/use-before-produce" in capsys.readouterr().err

    def test_bad_analyze_value_rejected(self):
        with pytest.raises(ValueError, match="analyze"):
            HarmonyOptions(analyze="loud")


class TestRunTaskGraphGate:
    def test_strict_gate(self, small_server, toy_decomposed, toy_profiles):
        from repro.core.config import Configuration
        from repro.core.packing import balanced_time_packing
        from repro.core.taskgraph import HarmonyGraphBuilder, ScheduleOptions
        from repro.graph.layer import Phase
        from repro.hardware.server import SimulatedServer
        from repro.runtime.executor import run_task_graph
        from repro.runtime.timemodel import TrueTimeModel
        from repro.sim.engine import Simulator

        packs_b = balanced_time_packing(Phase.BWD, 1, toy_profiles, 1_300_000)
        packs_f = balanced_time_packing(
            Phase.FWD, 2, toy_profiles, 1_300_000, backward_packs=packs_b
        )
        config = Configuration(u_f=2, packs_f=packs_f, u_b=1, packs_b=packs_b)
        graph = HarmonyGraphBuilder(
            toy_profiles, 2, 8, ScheduleOptions(mode="pp")
        ).build(config)
        sim = Simulator()
        server = SimulatedServer(sim, small_server)
        time_model = TrueTimeModel(
            toy_decomposed, small_server.gpu, small_server.host, 2
        )
        metrics = run_task_graph(
            server, graph, time_model, analyze="strict"
        )
        assert metrics.iteration_time > 0
        with pytest.raises(ValueError, match="analyze"):
            run_task_graph(server, graph, time_model, analyze="nope")
