"""Unit tests for the perf-regression gate (``scripts/perf_gate.py``).

The gate's whole job is to fail when perf regresses and stay quiet when
the machine is merely slower; synthetic reports pin both directions,
including the calibration-normalization that makes the committed
baseline portable across machines, the noise floor, the schema-version
refusal, and the planner-fact tripwire.  The committed baseline itself
is validated last.
"""

import copy
import importlib.util
import json
from pathlib import Path

import pytest

from repro.perf.schema import SCHEMA_VERSION, validate

_REPO = Path(__file__).resolve().parent.parent.parent
_SCRIPT = _REPO / "scripts" / "perf_gate.py"
_spec = importlib.util.spec_from_file_location("perf_gate", _SCRIPT)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


def _case(**overrides):
    case = {
        "model": "gpt2", "mode": "pp", "gpus": 4, "minibatch": 32,
        "iterations": 1,
        "search_seconds": 0.4, "plan_seconds": 0.5, "run_seconds": 0.1,
        "trace_seconds": 0.15, "trace_overhead_seconds": 0.05,
        "n_feasible": 10, "n_infeasible": 2, "n_tasks": 40,
        "best_estimate": 1.5, "iteration_time_sim": 1.6,
    }
    case.update(overrides)
    return case


def _service(**overrides):
    service = {
        "requests": 200, "seed": 0, "chaos_intensity": 1.0,
        "serve_seconds": 0.2, "requests_per_second": 1000.0,
        "cache_hit_rate": 0.95, "shed_rate": 0.0,
        "p50_latency_virtual": 0.02, "p99_latency_virtual": 4.6,
        "breaker_trips": 0,
    }
    service.update(overrides)
    return service


def _fleet(**overrides):
    fleet = {
        "requests": 120, "seed": 0, "servers": 2, "gpus_per_server": 4,
        "serve_seconds": 0.3, "requests_per_second": 400.0,
        "utilization": 0.36, "placements": 120, "identity": 63,
        "partitioned": 57, "timesliced": 0, "certified": 120,
        "rejections": 0, "shed_no_capacity": 0,
    }
    fleet.update(overrides)
    return fleet


def _report(cases=None, calibration=0.03, **overrides):
    report = {
        "schema_version": SCHEMA_VERSION,
        "suite": "smoke",
        "repeats": 3,
        "calibration_seconds": calibration,
        "perf_disabled": False,
        "search_workers": 1,
        "host": {"python": "3.12.0", "platform": "test", "cpus": 1},
        "cases": cases if cases is not None else [_case()],
        "service": _service(),
        "fleet": _fleet(),
    }
    report.update(overrides)
    assert validate(report) == [], "test fixture must be schema-valid"
    return report


def _slowed(report, factor):
    slow = copy.deepcopy(report)
    for case in slow["cases"]:
        for metric in gate.GATED_METRICS + ("trace_seconds",):
            case[metric] *= factor
    return slow


def test_identical_reports_pass():
    base = _report()
    assert gate.compare(base, copy.deepcopy(base)) == []


def test_two_x_slowdown_fails():
    base = _report()
    failures = gate.compare(base, _slowed(base, 2.0))
    assert failures, "gate passed an unambiguous 2x regression"
    assert any("search_seconds" in f for f in failures)


def test_small_drift_within_tolerance_passes():
    base = _report()
    assert gate.compare(base, _slowed(base, 1.2)) == []  # < 25%


def test_slower_machine_passes_via_calibration():
    """2x slower machine: calibration and timings both double, the
    normalized ratio cancels, the gate stays quiet."""
    base = _report()
    slower_machine = _slowed(base, 2.0)
    slower_machine["calibration_seconds"] = base["calibration_seconds"] * 2
    assert gate.compare(base, slower_machine) == []


def test_regression_on_fast_machine_still_caught():
    """Faster machine (half calibration) but timings unchanged: that is
    a 2x normalized regression and must fail."""
    base = _report()
    current = copy.deepcopy(base)
    current["calibration_seconds"] = base["calibration_seconds"] / 2
    assert gate.compare(base, current)


def test_noise_floor_skips_tiny_timings():
    base = _report(cases=[_case(search_seconds=0.001, plan_seconds=0.002,
                                run_seconds=0.003)])
    noisy = _slowed(base, 10.0)  # 10x but still well under 50 ms
    assert gate.compare(base, noisy) == []


def test_schema_version_mismatch_refused():
    base = _report()
    current = copy.deepcopy(base)
    current["schema_version"] = SCHEMA_VERSION  # valid to build...
    current = json.loads(json.dumps(current))
    current["schema_version"] = SCHEMA_VERSION + 1  # ...then forged
    failures = gate.compare(base, current)
    assert len(failures) == 1 and "schema version" in failures[0]


def test_planner_fact_change_fails():
    base = _report()
    current = copy.deepcopy(base)
    current["cases"][0]["n_feasible"] = 99
    failures = gate.compare(base, current)
    assert any("n_feasible" in f for f in failures)


def test_unmatched_cases_fail_loudly():
    base = _report()
    current = copy.deepcopy(base)
    current["cases"][0]["model"] = "bert96"
    failures = gate.compare(base, current)
    assert any("no case" in f for f in failures)


def test_main_pass_and_fail_exit_codes(tmp_path, capsys):
    base = _report()
    base_path = tmp_path / "baseline.json"
    base_path.write_text(json.dumps(base))
    cur_path = tmp_path / "current.json"

    cur_path.write_text(json.dumps(_slowed(base, 1.1)))
    assert gate.main(["--baseline", str(base_path),
                      "--current", str(cur_path)]) == 0
    assert "perf gate passed" in capsys.readouterr().out

    cur_path.write_text(json.dumps(_slowed(base, 2.0)))
    assert gate.main(["--baseline", str(base_path),
                      "--current", str(cur_path)]) == 1
    assert "PERF GATE FAILED" in capsys.readouterr().out


def test_main_update_blesses_baseline(tmp_path):
    current = _report()
    cur_path = tmp_path / "current.json"
    cur_path.write_text(json.dumps(current))
    base_path = tmp_path / "baseline.json"
    assert gate.main(["--baseline", str(base_path),
                      "--current", str(cur_path), "--update"]) == 0
    assert json.loads(base_path.read_text()) == current


def test_committed_baseline_is_schema_valid():
    baseline_path = _REPO / "benchmarks" / "BENCH_baseline.json"
    assert baseline_path.is_file(), (
        "benchmarks/BENCH_baseline.json missing; bless one with "
        "make bench-baseline"
    )
    baseline = json.loads(baseline_path.read_text())
    assert validate(baseline) == []
    assert baseline["schema_version"] == SCHEMA_VERSION
    assert not baseline.get("perf_disabled"), (
        "the committed baseline must be measured with perf caches ON"
    )
    assert baseline.get("injected_slowdown", 1.0) == 1.0, (
        "the committed baseline must not carry an injected slowdown"
    )
    from repro.perf.bench import SUITES

    smoke_keys = {c.key for c in SUITES["smoke"]}
    baseline_keys = {
        f"{c['model']}|{c['mode']}|{c['gpus']}|{c['minibatch']}"
        for c in baseline["cases"]
    }
    assert smoke_keys <= baseline_keys, (
        "baseline does not cover the smoke suite; re-bless it"
    )
