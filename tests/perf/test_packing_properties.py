"""Property tests for Algorithm 2's packing against randomized profiles.

~50 seeds of synthetic per-layer profiles (via :mod:`repro.common.rng`,
so the suite is deterministic) pin three properties:

- the prefix-sum ``pack_memory`` tables equal the naive per-layer sum
  exactly (Python ints, so the equality is bit-level, not approximate);
- balanced time packing never estimates a slower pipeline iteration
  than greedy memory-maximal packing (the Figure 7 claim), under the
  classic wrap-around bound ``sum(pack_times) + (M-1) * max(pack_times)``;
- a single layer exceeding GPU capacity raises
  :class:`InfeasibleConfigError` from both packers -- including on a
  *repeat* call, which exercises the memoized-infeasibility path.

No wall-clock assertions here: timing claims belong to the bench harness
and the perf gate, not the unit suite.
"""

import pytest

from repro.common.errors import InfeasibleConfigError
from repro.common.rng import seeded_rng
from repro.core.config import Pack
from repro.core.packing import balanced_time_packing, greedy_memory_packing
from repro.core.profiler import AffineFit, LayerProfile, ModelProfiles
from repro.graph.layer import Phase
from repro.hardware.gpu import GpuSpec

SEEDS = range(50)
MICROBATCHES = 8

_GPU = GpuSpec(name="prop-gpu", memory_bytes=256 * 2**20,
               peak_flops=2e12, efficiency=0.5)


def make_profiles(seed: int) -> ModelProfiles:
    """Random but reproducible profiles: 6..24 layers, skewed times."""
    rng = seeded_rng(seed, "packing-prop")
    n_layers = rng.randrange(6, 25)
    layers = []
    for i in range(n_layers):
        params = rng.randrange(1 << 16, 1 << 22)
        layers.append(LayerProfile(
            index=i, name=f"layer{i}", param_bytes=params,
            time_fwd=AffineFit(0.0, rng.uniform(1e-4, 5e-3)),
            time_bwd=AffineFit(0.0, rng.uniform(2e-4, 8e-3)),
            time_upd=rng.uniform(1e-5, 1e-4),
            mem_fwd=AffineFit(float(params),
                              float(rng.randrange(1 << 12, 1 << 18))),
            mem_bwd=AffineFit(2.0 * params,
                              float(rng.randrange(1 << 12, 1 << 18))),
            act_in_per_sample=rng.randrange(1 << 10, 1 << 14),
            act_out_per_sample=rng.randrange(1 << 10, 1 << 14),
            workspace_per_sample=rng.randrange(0, 1 << 12),
        ))
    return ModelProfiles(layers, optimizer_slots=2, gpu=_GPU)


def _binding_capacity(profiles: ModelProfiles, phase: Phase, u: int,
                      seed: int) -> int:
    """A capacity that fits every single layer but binds pack growth."""
    rng = seeded_rng(seed, "capacity", phase.value, u)
    worst = max(
        profiles.pack_memory_naive(phase, Pack(i, i), u)
        for i in range(len(profiles))
    )
    return int(worst * rng.uniform(1.2, 6.0))


def _pipeline_estimate(profiles, phase, packs, u) -> float:
    """Wrap-around pipeline bound: fill/drain plus the straggler pack."""
    times = [profiles.pack_time(phase, pack, u) for pack in packs]
    return sum(times) + (MICROBATCHES - 1) * max(times)


@pytest.mark.parametrize("seed", SEEDS)
def test_prefix_pack_memory_equals_naive_sum(seed):
    profiles = make_profiles(seed)
    rng = seeded_rng(seed, "packs")
    n = len(profiles)
    for phase in (Phase.FWD, Phase.BWD, Phase.UPD):
        for u in (1, rng.randrange(2, 17)):
            for _ in range(8):
                first = rng.randrange(n)
                last = rng.randrange(first, n)
                pack = Pack(first, last)
                assert profiles.pack_memory(phase, pack, u) == \
                    profiles.pack_memory_naive(phase, pack, u)
            # The derived per-layer list must match too.
            if phase is not Phase.UPD:
                assert profiles.memory_list(phase, u) == [
                    profiles.pack_memory_naive(phase, Pack(i, i), u)
                    for i in range(n)
                ]


@pytest.mark.parametrize("seed", SEEDS)
def test_balanced_never_estimates_slower_than_greedy(seed):
    profiles = make_profiles(seed)
    u = seeded_rng(seed, "u").choice([1, 2, 4, 8])
    for phase in (Phase.FWD, Phase.BWD):
        capacity = _binding_capacity(profiles, phase, u, seed)
        try:
            balanced = balanced_time_packing(phase, u, profiles, capacity)
            greedy = greedy_memory_packing(phase, u, profiles, capacity)
        except InfeasibleConfigError:
            continue  # capacity draw too tight for this cell; others cover it
        est_balanced = _pipeline_estimate(profiles, phase, balanced, u)
        est_greedy = _pipeline_estimate(profiles, phase, greedy, u)
        assert est_balanced <= est_greedy + 1e-9, (
            f"{phase}: balanced packing ({len(balanced)} packs, "
            f"est {est_balanced:.6f}s) beat by greedy ({len(greedy)} packs, "
            f"est {est_greedy:.6f}s)"
        )


@pytest.mark.parametrize("seed", range(10))
def test_single_layer_overflow_raises(seed):
    profiles = make_profiles(seed)
    u = 4
    smallest = min(
        profiles.pack_memory_naive(Phase.BWD, Pack(i, i), u)
        for i in range(len(profiles))
    )
    capacity = smallest - 1  # not even the cheapest layer fits alone
    with pytest.raises(InfeasibleConfigError):
        balanced_time_packing(Phase.BWD, u, profiles, capacity)
    # Repeat call exercises the memoized-infeasibility path: the cached
    # outcome must re-raise, not silently return a stale pack list.
    with pytest.raises(InfeasibleConfigError):
        balanced_time_packing(Phase.BWD, u, profiles, capacity)
    with pytest.raises(InfeasibleConfigError):
        greedy_memory_packing(Phase.BWD, u, profiles, capacity)


@pytest.mark.parametrize("seed", range(10))
def test_balanced_packing_is_memoized_and_stable(seed):
    """Repeat calls hit the memo and return the identical tuple."""
    profiles = make_profiles(seed)
    u = 2
    capacity = _binding_capacity(profiles, Phase.FWD, u, seed)
    try:
        first = balanced_time_packing(Phase.FWD, u, profiles, capacity)
    except InfeasibleConfigError:
        pytest.skip("capacity draw infeasible for this seed")
    again = balanced_time_packing(Phase.FWD, u, profiles, capacity)
    assert again == first
    # After invalidation the result is recomputed -- same inputs, same
    # packs -- rather than served stale.
    profiles.invalidate_caches()
    assert balanced_time_packing(Phase.FWD, u, profiles, capacity) == first
