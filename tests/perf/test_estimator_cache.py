"""The estimator's shared task-time cache must never serve stale values.

The cache in :class:`RuntimeEstimator` is keyed on
``(kind, first_layer, last_layer, u, recompute)`` and tied to the
profiles' ``cache_token``: mutating a layer profile through
:meth:`ModelProfiles.replace_layer` (or calling ``invalidate_caches``)
bumps the token and must flush every cached task time.  These tests
mutate profiles mid-flight and check the estimator tracks reality, plus
cover the per-graph ``_producer_sizes_cache`` lifecycle and the
``REPRO_PERF_DISABLE=1`` arm.
"""

from dataclasses import replace

import pytest

from repro.core.estimator import RuntimeEstimator
from repro.core.harmony import Harmony, HarmonyOptions
from repro.core.profiler import AffineFit
from repro.core.types import TaskKind
from repro.experiments.common import server_for
from repro.perf import DISABLE_ENV


@pytest.fixture
def planned():
    """A fresh plan per test: these tests mutate its profiles."""
    harmony = Harmony("toy-transformer", server_for(2), 8,
                      options=HarmonyOptions(mode="pp"))
    return harmony.plan()


def _fwd_task(graph):
    return next(t for t in graph.tasks if t.kind is TaskKind.FWD)


def _upd_gpu_task(graph):
    return next(
        (t for t in graph.tasks if t.kind is TaskKind.UPD and not t.on_cpu),
        None,
    )


def test_mb_time_cache_hit_is_identical(planned):
    estimator = RuntimeEstimator(planned.profiles, planned.server)
    task = _fwd_task(planned.graph)
    u = task.microbatches[0]
    first = estimator.mb_time(task, u)
    assert (TaskKind.FWD, task.first_layer, task.last_layer, u, False) \
        in estimator._time_cache
    assert estimator.mb_time(task, u).hex() == first.hex()
    assert estimator.mb_time(task, u) == estimator._mb_time_uncached(task, u)


def test_replace_layer_invalidates_cached_times(planned):
    estimator = RuntimeEstimator(planned.profiles, planned.server)
    task = _fwd_task(planned.graph)
    u = task.microbatches[0]
    before = estimator.mb_time(task, u)

    layer = planned.profiles[task.first_layer]
    doubled = replace(layer, time_fwd=AffineFit(
        2 * layer.time_fwd.intercept, 2 * layer.time_fwd.slope))
    planned.profiles.replace_layer(task.first_layer, doubled)

    after = estimator.mb_time(task, u)
    assert after > before, "estimator served a stale cached task time"
    assert after == estimator._mb_time_uncached(task, u)


def test_invalidate_caches_bumps_token_and_flushes(planned):
    estimator = RuntimeEstimator(planned.profiles, planned.server)
    task = _fwd_task(planned.graph)
    estimator.mb_time(task, task.microbatches[0])
    assert estimator._time_cache
    token = planned.profiles.cache_token
    planned.profiles.invalidate_caches()
    assert planned.profiles.cache_token == token + 1
    # The flush happens lazily on the next timed call.
    estimator.mb_time(task, task.microbatches[0])
    assert estimator._profiles_token == planned.profiles.cache_token


def test_distinct_u_are_distinct_entries(planned):
    estimator = RuntimeEstimator(planned.profiles, planned.server)
    task = _fwd_task(planned.graph)
    t1, t2 = estimator.mb_time(task, 1), estimator.mb_time(task, 2)
    assert t1 != t2
    keys = {k for k in estimator._time_cache if k[0] is TaskKind.FWD}
    assert len(keys) >= 2


def test_update_time_gpu_cached_cpu_not():
    harmony = Harmony(
        "toy-transformer", server_for(2), 8,
        options=HarmonyOptions(mode="pp", offload_optimizer=False),
    )
    planned = harmony.plan()
    estimator = RuntimeEstimator(planned.profiles, planned.server)
    upd = _upd_gpu_task(planned.graph)
    assert upd is not None, "offload disabled, expected a GPU update task"
    first = estimator.update_time(upd, planned.server.n_gpus)
    key = (TaskKind.UPD, upd.first_layer, upd.last_layer, 1, False)
    assert estimator._time_cache[key] == first
    assert estimator.update_time(upd, planned.server.n_gpus) == first


def test_producer_sizes_cache_is_per_graph(planned):
    """``estimate_graph`` populates the producer-size map for its graph
    and clears it afterwards, so one graph's granularities can never
    leak into another's chunk-dependency resolution."""
    estimator = RuntimeEstimator(planned.profiles, planned.server)
    assert estimator._producer_sizes == {}
    estimator.estimate_graph(planned.graph)
    assert estimator._producer_sizes == {}
    estimator.prepare(planned.graph)
    assert set(estimator._producer_sizes) == {
        t.tid for t in planned.graph.tasks
    }


def test_estimates_track_profile_mutation_end_to_end(planned):
    """The headline staleness scenario: estimate, mutate, re-estimate."""
    estimator = RuntimeEstimator(planned.profiles, planned.server)
    before = estimator.estimate_graph(planned.graph)
    layer = planned.profiles[0]
    planned.profiles.replace_layer(0, replace(layer, time_fwd=AffineFit(
        layer.time_fwd.intercept, 10 * layer.time_fwd.slope)))
    after = estimator.estimate_graph(planned.graph)
    assert after > before


def test_disabled_estimator_never_caches(planned, monkeypatch):
    monkeypatch.setenv(DISABLE_ENV, "1")
    estimator = RuntimeEstimator(planned.profiles, planned.server)
    task = _fwd_task(planned.graph)
    value = estimator.mb_time(task, task.microbatches[0])
    assert estimator._time_cache == {}
    assert value == estimator._mb_time_uncached(task, task.microbatches[0])
