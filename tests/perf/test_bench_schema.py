"""The bench report schema is a contract; these tests hold both sides.

``BENCH_SCHEMA`` (Python) and ``scripts/bench_schema.json`` (the export
external tooling consumes) must stay byte-equal; the hand-rolled
validator must catch every violation class the schema can express; and
a real ``run_bench`` report must validate and survive a JSON round trip.
"""

import copy
import json
from pathlib import Path

import pytest

from repro.perf.bench import (
    BenchCase,
    SUITES,
    calibrate,
    default_out_path,
    render_report,
    run_bench,
    write_report,
)
from repro.perf.schema import (
    BENCH_SCHEMA,
    SCHEMA_VERSION,
    check_report,
    validate,
)

_REPO = Path(__file__).resolve().parent.parent.parent
_EXPORT = _REPO / "scripts" / "bench_schema.json"


@pytest.fixture(scope="module")
def report():
    """One real (tiny) bench run shared by the module's tests."""
    case = BenchCase("toy-transformer", "pp", 2, 8)
    return run_bench("smoke", repeats=1, cases=[case])


def test_checked_in_schema_export_matches_source():
    assert _EXPORT.is_file(), (
        "scripts/bench_schema.json missing; regenerate with "
        "python -c \"import json; from repro.perf.schema import "
        "BENCH_SCHEMA; json.dump(BENCH_SCHEMA, "
        "open('scripts/bench_schema.json','w'), indent=2)\""
    )
    assert json.loads(_EXPORT.read_text()) == BENCH_SCHEMA, (
        "scripts/bench_schema.json drifted from repro.perf.schema."
        "BENCH_SCHEMA; regenerate and commit it with the schema change "
        "(and bump SCHEMA_VERSION if a field changed meaning)"
    )


def test_real_report_is_schema_valid(report):
    assert validate(report) == []
    check_report(report)  # must not raise
    assert report["schema_version"] == SCHEMA_VERSION
    # JSON round trip preserves validity (what CI artifacts go through).
    assert validate(json.loads(json.dumps(report))) == []


def test_report_case_fields(report):
    (case,) = report["cases"]
    assert case["model"] == "toy-transformer"
    assert case["mode"] == "pp"
    assert case["n_feasible"] >= 1
    assert case["n_tasks"] >= 1
    assert case["best_estimate"] > 0
    assert case["iteration_time_sim"] > 0
    assert case["trace_overhead_seconds"] >= 0


def test_write_and_render(report, tmp_path):
    out = tmp_path / "BENCH_test.json"
    write_report(report, str(out))
    assert validate(json.loads(out.read_text())) == []
    text = render_report(report)
    assert "toy-transformer pp x2 mb8" in text


def test_validator_catches_violations(report):
    def broken(mutate):
        bad = copy.deepcopy(report)
        mutate(bad)
        return validate(bad)

    assert broken(lambda r: r.pop("suite"))  # missing required
    assert broken(lambda r: r.update(suite=7))  # wrong type
    assert broken(lambda r: r.update(repeats=True))  # bool is not integer
    assert broken(lambda r: r.update(repeats=0))  # below minimum
    assert broken(lambda r: r.update(schema_version=99))  # enum
    assert broken(lambda r: r.update(extra_field=1))  # additionalProperties
    assert broken(lambda r: r["host"].update(cpus="many"))  # nested type
    assert broken(lambda r: r["cases"][0].update(mode="3d"))  # items enum
    assert broken(lambda r: r["cases"][0].pop("run_seconds"))  # items req
    with pytest.raises(ValueError, match="violates the schema"):
        check_report({})


def test_suites_are_well_formed():
    assert set(SUITES) == {"smoke", "zoo"}
    for suite in SUITES.values():
        assert suite, "empty suite"
        for case in suite:
            assert case.mode in ("pp", "dp")
            assert case.gpus >= 1 and case.minibatch >= 1


def test_calibration_and_out_path():
    assert calibrate(scale=10_000, rounds=1) > 0
    assert default_out_path("2026-01-31") == "BENCH_2026-01-31.json"


def test_injected_slowdown_scales_report(monkeypatch):
    """The slowdown hook multiplies timings and is recorded in the
    report, so a doctored report can never masquerade as a real one."""
    from repro.perf import SLOWDOWN_ENV

    monkeypatch.setenv(SLOWDOWN_ENV, "3.0")
    case = BenchCase("toy-transformer", "pp", 2, 8)
    slowed = run_bench("smoke", repeats=1, cases=[case])
    assert slowed["injected_slowdown"] == 3.0
    assert validate(slowed) == []
