"""Bit-identity regression: the perf caches must not move a single bit.

Every optimization behind :func:`repro.perf.perf_enabled` promises that
planner and simulator outputs are *bit-identical* with caches on
(default) and off (``REPRO_PERF_DISABLE=1``).  This suite holds that
promise down to ``float.hex()`` on the small zoo models in both
execution modes: the chosen configuration, the best estimate, every
explored candidate's estimate, the full task graph shape, the simulated
iteration time, and the canonical execution trace.

``perf_enabled`` is consulted at object construction time, so flipping
the environment variable and building a fresh ``Harmony`` per arm is
sufficient -- no subprocess needed.
"""

import pytest

from repro.core.harmony import Harmony, HarmonyOptions
from repro.experiments.common import server_for
from repro.perf import DISABLE_ENV
from repro.trace import TraceRecorder

MATRIX = (
    ("toy-transformer", "pp"),
    ("toy-transformer", "dp"),
    ("tiny-cnn", "pp"),
    ("tiny-cnn", "dp"),
)
GPUS = 2
MINIBATCH = 8


def _fingerprint(model, mode, monkeypatch, disable, workers=1):
    """Plan + run one cell and capture every output, floats as hex."""
    if disable:
        monkeypatch.setenv(DISABLE_ENV, "1")
    else:
        monkeypatch.delenv(DISABLE_ENV, raising=False)
    harmony = Harmony(
        model, server_for(GPUS), MINIBATCH,
        options=HarmonyOptions(mode=mode, search_workers=workers),
    )
    plan = harmony.plan()
    recorder = TraceRecorder()
    report = harmony.run(plan=plan, trace=recorder)
    return {
        "config": plan.search.best,
        "best_estimate": plan.search.best_estimate.hex(),
        "explored": tuple(
            (e.config, e.estimate.hex()) for e in plan.search.explored
        ),
        "n_feasible": plan.search.n_feasible,
        "n_infeasible": plan.search.n_infeasible,
        "tasks": tuple(
            (t.tid, t.kind, t.device, t.first_layer, t.last_layer,
             t.microbatches)
            for t in plan.graph.tasks
        ),
        "iteration_time": report.metrics.iteration_time.hex(),
        "trace": recorder.canonical(),
    }


@pytest.mark.parametrize("model,mode", MATRIX,
                         ids=[f"{m}-{mode}" for m, mode in MATRIX])
def test_caches_are_bit_identical_to_disabled(model, mode, monkeypatch):
    fast = _fingerprint(model, mode, monkeypatch, disable=False)
    slow = _fingerprint(model, mode, monkeypatch, disable=True)
    for field in fast:
        assert fast[field] == slow[field], (
            f"{model}/{mode}: {field} diverged between cached and "
            f"{DISABLE_ENV}=1 runs -- a perf cache changed an output bit"
        )


def test_parallel_search_is_bit_identical_to_serial(monkeypatch):
    """workers=2 fans candidate evaluation over a fork pool; the reduce
    must pick the same winner with the same bits as the serial sweep."""
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable on this platform")
    serial = _fingerprint("toy-transformer", "pp", monkeypatch,
                          disable=False, workers=1)
    parallel = _fingerprint("toy-transformer", "pp", monkeypatch,
                            disable=False, workers=2)
    for field in serial:
        assert serial[field] == parallel[field], (
            f"{field} diverged between serial and workers=2 search"
        )


def test_disable_env_truthy_forms(monkeypatch):
    """The escape hatch accepts the documented truthy spellings."""
    from repro.perf import perf_enabled

    for raw in ("1", "true", "YES", " on "):
        monkeypatch.setenv(DISABLE_ENV, raw)
        assert not perf_enabled(), raw
    for raw in ("", "0", "no", "off"):
        monkeypatch.setenv(DISABLE_ENV, raw)
        assert perf_enabled(), raw
