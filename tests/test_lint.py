"""The project-invariant linter: each rule fires on the bad idiom only."""

from pathlib import Path

import repro.lint as lint
from repro.lint import lint_file, lint_tree, main


def run(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return [f.rule for f in lint_file(path, tmp_path)]


class TestStdlibRandom:
    def test_import_random_flagged(self, tmp_path):
        rules = run(tmp_path, "repro/sim/thing.py", "import random\n")
        assert rules == ["rng/stdlib-random"]

    def test_from_random_flagged(self, tmp_path):
        rules = run(tmp_path, "repro/sim/thing.py",
                    "from random import choice\n")
        assert rules == ["rng/stdlib-random"]

    def test_rng_module_is_exempt(self, tmp_path):
        rules = run(tmp_path, "repro/common/rng.py", "import random\n")
        assert rules == []


class TestNumpyRandom:
    def test_unseeded_module_call_flagged(self, tmp_path):
        rules = run(tmp_path, "repro/numeric/x.py",
                    "import numpy as np\nx = np.random.rand(3)\n")
        assert rules == ["rng/unseeded-numpy"]

    def test_entropy_seeded_default_rng_flagged(self, tmp_path):
        rules = run(tmp_path, "repro/numeric/x.py",
                    "import numpy as np\nrng = np.random.default_rng()\n")
        assert rules == ["rng/unseeded-numpy"]

    def test_seeded_default_rng_ok(self, tmp_path):
        rules = run(tmp_path, "repro/numeric/x.py",
                    "import numpy as np\nrng = np.random.default_rng(7)\n")
        assert rules == []

    def test_generator_method_draws_are_ok(self, tmp_path):
        # rng.random() on a seeded Generator is the sanctioned idiom.
        rules = run(tmp_path, "repro/numeric/x.py",
                    "def f(rng):\n    return rng.random()\n")
        assert rules == []

    def test_from_numpy_random_import_flagged(self, tmp_path):
        rules = run(tmp_path, "repro/numeric/x.py",
                    "from numpy.random import rand\n")
        assert rules == ["rng/unseeded-numpy"]


class TestWallClock:
    def test_time_time_flagged(self, tmp_path):
        rules = run(tmp_path, "repro/sim/x.py",
                    "import time\nt = time.time()\n")
        assert rules == ["time/wall-clock"]

    def test_monotonic_flagged(self, tmp_path):
        rules = run(tmp_path, "repro/sim/x.py",
                    "import time\nt = time.monotonic()\n")
        assert rules == ["time/wall-clock"]

    def test_perf_counter_allowed(self, tmp_path):
        rules = run(tmp_path, "repro/perf/x.py",
                    "import time\nt = time.perf_counter()\n")
        assert rules == []

    def test_datetime_now_flagged(self, tmp_path):
        rules = run(tmp_path, "repro/sim/x.py",
                    "from datetime import datetime\nt = datetime.now()\n")
        assert rules == ["time/wall-clock"]


class TestFrozenTraceEvents:
    def test_unfrozen_dataclass_flagged(self, tmp_path):
        src = ("from dataclasses import dataclass\n"
               "@dataclass\n"
               "class E:\n    x: int\n")
        rules = run(tmp_path, "repro/trace/events.py", src)
        assert rules == ["trace/unfrozen-dataclass"]

    def test_frozen_false_flagged(self, tmp_path):
        src = ("from dataclasses import dataclass\n"
               "@dataclass(frozen=False)\n"
               "class E:\n    x: int\n")
        rules = run(tmp_path, "repro/trace/events.py", src)
        assert rules == ["trace/unfrozen-dataclass"]

    def test_frozen_true_ok(self, tmp_path):
        src = ("from dataclasses import dataclass\n"
               "@dataclass(frozen=True)\n"
               "class E:\n    x: int\n")
        rules = run(tmp_path, "repro/trace/events.py", src)
        assert rules == []

    def test_other_files_may_be_mutable(self, tmp_path):
        src = ("from dataclasses import dataclass\n"
               "@dataclass\n"
               "class E:\n    x: int\n")
        rules = run(tmp_path, "repro/runtime/metrics.py", src)
        assert rules == []


class TestIntegerExact:
    def test_true_division_flagged(self, tmp_path):
        rules = run(tmp_path, "repro/analysis/capacity.py",
                    "def f(a, b):\n    return a / b\n")
        assert rules == ["exact/float-arithmetic"]

    def test_float_call_flagged(self, tmp_path):
        rules = run(tmp_path, "repro/analysis/parametric.py",
                    "def f(a):\n    return float(a)\n")
        assert rules == ["exact/float-arithmetic"]

    def test_fstring_formatting_exempt(self, tmp_path):
        rules = run(tmp_path, "repro/analysis/capacity.py",
                    "def f(a):\n    return f'{a / 2**30:.1f} GiB'\n")
        assert rules == []

    def test_floor_division_ok(self, tmp_path):
        rules = run(tmp_path, "repro/analysis/parametric.py",
                    "def f(a, b):\n    return a // b\n")
        assert rules == []

    def test_other_modules_may_divide(self, tmp_path):
        rules = run(tmp_path, "repro/sim/engine.py",
                    "def f(a, b):\n    return a / b\n")
        assert rules == []


class TestTreeAndMain:
    def test_shipping_tree_is_clean(self):
        src_root = Path(lint.__file__).resolve().parent.parent
        assert list(lint_tree(src_root)) == []

    def test_main_reports_and_counts(self, tmp_path, capsys):
        (tmp_path / "repro").mkdir()
        (tmp_path / "repro" / "bad.py").write_text("import random\n")
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "rng/stdlib-random" in out
        assert "1 finding(s)" in out

    def test_main_clean_exits_zero(self, tmp_path, capsys):
        (tmp_path / "repro").mkdir()
        (tmp_path / "repro" / "good.py").write_text("x = 1\n")
        assert main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_syntax_error_reported_not_raised(self, tmp_path):
        rules = run(tmp_path, "repro/broken.py", "def f(:\n")
        assert rules == ["parse/syntax-error"]
