"""End-to-end tests of the Harmony facade."""

import pytest

from repro.core.harmony import Harmony, HarmonyOptions


@pytest.fixture
def options():
    return HarmonyOptions(capacity_fraction=0.005, u_fmax=8, u_bmax=8)


class TestPlan:
    def test_plan_is_memoized(self, toy_model, small_server, options):
        harmony = Harmony(toy_model, small_server, 8, options)
        assert harmony.plan() is harmony.plan()

    def test_plan_with_config_is_not_memoized(self, toy_model, small_server,
                                              options):
        harmony = Harmony(toy_model, small_server, 8, options)
        base = harmony.plan()
        manual = harmony.plan(config=base.config)
        assert manual is not base
        assert harmony.plan() is base

    def test_describe_mentions_model_and_mode(self, toy_model, small_server,
                                              options):
        harmony = Harmony(toy_model, small_server, 8, options)
        text = harmony.plan().describe()
        assert toy_model.name in text
        assert "PP" in text

    def test_model_by_name(self, small_server, options):
        harmony = Harmony("toy-transformer", small_server, 8, options)
        assert harmony.model.name == "toy-transformer-6"


class TestRun:
    def test_run_produces_metrics(self, toy_model, small_server, options):
        report = Harmony(toy_model, small_server, 8, options).run()
        assert report.metrics.iteration_time > 0
        assert report.metrics.minibatch == 8
        assert len(report.metrics.gpus) == 2

    def test_pp_swap_volume_below_dp(self, toy_model, small_server, options):
        from dataclasses import replace

        pp = Harmony(toy_model, small_server, 8, options).run()
        dp = Harmony(toy_model, small_server, 8,
                     replace(options, mode="dp")).run()
        assert pp.metrics.global_swap_bytes < dp.metrics.global_swap_bytes

    def test_ablation_switch_validation(self):
        with pytest.raises(ValueError):
            HarmonyOptions().without("warp-drive")

    def test_without_flips_exactly_one_flag(self):
        options = HarmonyOptions().without("grouping")
        assert not options.grouping
        assert options.jit and options.p2p and options.prefetch

    def test_report_describe_renders(self, toy_model, small_server, options):
        report = Harmony(toy_model, small_server, 8, options).run()
        text = report.describe()
        assert "iteration" in text
        assert "gpu0" in text
