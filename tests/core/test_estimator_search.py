"""Tests for the Runtime Estimator and the Configuration Search Engine."""

import pytest

from repro.core.config import Configuration
from repro.core.estimator import RuntimeEstimator
from repro.core.harmony import Harmony, HarmonyOptions
from repro.core.packing import balanced_time_packing
from repro.core.search import ConfigurationSearch, SearchSettings, _candidate_sizes
from repro.core.taskgraph import HarmonyGraphBuilder, ScheduleOptions
from repro.graph.layer import Phase


CAPACITY = 1_300_000


@pytest.fixture
def toy_config(toy_profiles):
    packs_b = balanced_time_packing(Phase.BWD, 1, toy_profiles, CAPACITY)
    packs_f = balanced_time_packing(
        Phase.FWD, 2, toy_profiles, CAPACITY, backward_packs=packs_b
    )
    return Configuration(u_f=2, packs_f=packs_f, u_b=1, packs_b=packs_b)


class TestEstimator:
    def test_estimate_positive_and_deterministic(self, toy_profiles,
                                                 small_server, toy_config):
        graph = HarmonyGraphBuilder(
            toy_profiles, 2, 8, ScheduleOptions(mode="pp")
        ).build(toy_config)
        estimator = RuntimeEstimator(toy_profiles, small_server)
        first = estimator.estimate_graph(graph)
        second = estimator.estimate_graph(graph)
        assert first > 0
        assert first == second

    def test_estimate_tracks_actual(self, toy_model, small_server):
        """The Figure 14 property on the toy model: estimate within ~10%
        of the executed time."""
        harmony = Harmony(toy_model, small_server, minibatch=8,
                          options=HarmonyOptions(capacity_fraction=0.005))
        plan = harmony.plan()
        actual = harmony.run(plan=plan).metrics.iteration_time
        # The toy model's microsecond transfer-bound tasks amplify the
        # contention the estimator ignores; require the right ballpark
        # here and the tight (<15%) bound in the Figure 14 benchmark.
        assert 0.4 < plan.search.best_estimate / actual < 1.6

    def test_more_gpus_not_slower(self, toy_profiles, small_server,
                                  four_gpu_server, toy_config):
        est2 = RuntimeEstimator(toy_profiles, small_server).estimate_graph(
            HarmonyGraphBuilder(toy_profiles, 2, 8,
                                ScheduleOptions(mode="pp")).build(toy_config)
        )
        est4 = RuntimeEstimator(toy_profiles, four_gpu_server).estimate_graph(
            HarmonyGraphBuilder(toy_profiles, 4, 8,
                                ScheduleOptions(mode="pp")).build(toy_config)
        )
        assert est4 <= est2 * 1.2


class TestCandidateSizes:
    def test_exhaustive_is_dense(self):
        assert _candidate_sizes(8, 8, exhaustive=True) == list(range(1, 9))

    def test_default_is_divisors_and_powers(self):
        sizes = _candidate_sizes(64, 12, exhaustive=False)
        assert set(sizes) >= {1, 2, 3, 4, 6, 12}
        assert 8 in sizes  # power of two
        assert 5 not in sizes

    def test_capped_by_total(self):
        assert max(_candidate_sizes(64, 4, exhaustive=False)) == 4


class TestSearch:
    def test_finds_feasible_config(self, toy_profiles, small_server):
        search = ConfigurationSearch(
            toy_profiles, small_server, minibatch=8,
            options=ScheduleOptions(mode="pp"),
            settings=SearchSettings(capacity_fraction=0.005, u_fmax=8,
                                    u_bmax=8),
        )
        result = search.search()
        result.best.validate(len(toy_profiles))
        assert result.best_estimate > 0
        assert result.n_feasible >= 1

    def test_best_is_minimum_of_explored(self, toy_profiles, small_server):
        search = ConfigurationSearch(
            toy_profiles, small_server, minibatch=8,
            options=ScheduleOptions(mode="pp"),
            settings=SearchSettings(capacity_fraction=0.005, u_fmax=8,
                                    u_bmax=8),
        )
        result = search.search()
        assert result.best_estimate == min(e.estimate for e in result.explored)

    def test_equi_fb_restricts_space(self, toy_profiles, small_server):
        distinct = ConfigurationSearch(
            toy_profiles, small_server, 8, ScheduleOptions(mode="pp"),
            SearchSettings(capacity_fraction=0.005, u_fmax=8, u_bmax=8),
        ).search()
        equi = ConfigurationSearch(
            toy_profiles, small_server, 8, ScheduleOptions(mode="pp"),
            SearchSettings(capacity_fraction=0.005, u_fmax=8, u_bmax=8,
                           equi_fb=True),
        ).search()
        assert equi.n_feasible <= distinct.n_feasible
        assert equi.best.u_f == equi.best.u_b
        assert equi.best.packs_f == equi.best.packs_b

    def test_dp_requires_divisible_minibatch(self, toy_profiles, small_server):
        from repro.common.errors import SchedulingError

        search = ConfigurationSearch(
            toy_profiles, small_server, minibatch=7,
            options=ScheduleOptions(mode="dp"),
            settings=SearchSettings(capacity_fraction=0.005),
        )
        with pytest.raises(SchedulingError):
            search.search()

    def test_impossible_capacity_raises(self, toy_profiles, small_server):
        from repro.common.errors import InfeasibleConfigError

        search = ConfigurationSearch(
            toy_profiles, small_server, minibatch=8,
            options=ScheduleOptions(mode="pp"),
            settings=SearchSettings(capacity_fraction=1e-6),
        )
        with pytest.raises(InfeasibleConfigError):
            search.search()
