"""Tests for the Profiler and its regressions."""

import pytest

from repro.core.profiler import AffineFit, Profiler
from repro.graph.layer import Phase


class TestAffineFit:
    def test_recovers_exact_affine(self):
        fit = AffineFit.fit([1, 2, 4, 8], [3, 5, 9, 17])  # y = 1 + 2x
        assert fit.intercept == pytest.approx(1.0)
        assert fit.slope == pytest.approx(2.0)
        assert fit(16) == pytest.approx(33.0)

    def test_single_sample_falls_back_to_proportional(self):
        fit = AffineFit.fit([4], [8.0])
        assert fit(8) == pytest.approx(16.0)

    def test_empty_rejected(self):
        with pytest.raises(Exception):
            AffineFit.fit([], [])


class TestProfiler:
    def test_interpolation_accuracy(self, toy_decomposed, small_gpu):
        """Section 4.2's claim: the regression interpolates unsampled
        microbatch sizes 'strikingly accurately'."""
        profiles = Profiler(small_gpu, sample_sizes=(1, 2, 4, 8, 16)).profile(
            toy_decomposed
        )
        for unit, profile in zip(toy_decomposed.units, profiles.layers):
            for u in (3, 6, 12):  # unsampled sizes
                true = unit.run_time(small_gpu, Phase.FWD, u)
                if true == 0:
                    continue
                predicted = profile.time(Phase.FWD, u)
                assert predicted == pytest.approx(true, rel=0.05)

    def test_memory_regression_exact(self, toy_decomposed, small_gpu):
        profiles = Profiler(small_gpu).profile(toy_decomposed)
        for unit, profile in zip(toy_decomposed.units, profiles.layers):
            for u in (3, 7):
                assert profile.memory(Phase.BWD, u) == pytest.approx(
                    unit.memory_bytes(Phase.BWD, u), rel=0.01
                )

    def test_bad_sample_sizes_rejected(self, small_gpu):
        with pytest.raises(Exception):
            Profiler(small_gpu, sample_sizes=())
        with pytest.raises(Exception):
            Profiler(small_gpu, sample_sizes=(0, 2))

    def test_time_lists_cover_all_layers(self, toy_profiles, toy_model):
        assert len(toy_profiles.time_list(Phase.FWD, 2)) == toy_model.n_layers
        assert len(toy_profiles.memory_list(Phase.BWD, 2)) == toy_model.n_layers


class TestPackAggregates:
    def test_pack_time_sums_layers(self, toy_profiles):
        from repro.core.config import Pack

        pack = Pack(1, 3)
        total = sum(toy_profiles[i].time(Phase.FWD, 2) for i in (1, 2, 3))
        assert toy_profiles.pack_time(Phase.FWD, pack, 2) == pytest.approx(total)

    def test_pack_memory_is_per_layer_sum(self, toy_profiles):
        """Algorithm 2 line 13 uses m[p].Sum()."""
        from repro.core.config import Pack

        pack = Pack(0, 2)
        expected = sum(toy_profiles[i].memory(Phase.BWD, 2) for i in range(3))
        assert toy_profiles.pack_bwd_memory(pack, 2) == expected

    def test_bwd_pack_memory_exceeds_fwd(self, toy_profiles):
        from repro.core.config import Pack

        pack = Pack(1, 4)
        assert toy_profiles.pack_bwd_memory(pack, 2) > (
            toy_profiles.pack_fwd_memory(pack, 2)
        )

    def test_boundary_sizes(self, toy_profiles):
        from repro.core.config import Pack

        pack = Pack(2, 4)
        assert toy_profiles.boundary_in_bytes(pack, 3) == (
            toy_profiles[2].act_in_bytes(3)
        )
        assert toy_profiles.boundary_out_bytes(pack, 3) == (
            toy_profiles[4].act_out_bytes(3)
        )

    def test_optimizer_bytes_use_slots(self, toy_profiles):
        from repro.core.config import Pack

        pack = Pack(0, 1)
        assert toy_profiles.pack_optimizer_bytes(pack) == (
            toy_profiles.pack_param_bytes(pack) * toy_profiles.optimizer_slots
        )

    def test_saved_for_backward_includes_workspace(self, toy_profiles):
        block = next(p for p in toy_profiles.layers if p.workspace_per_sample)
        assert block.saved_for_backward_bytes(2) > block.act_out_bytes(2)
