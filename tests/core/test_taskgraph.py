"""Tests for task-graph generation (Algorithm 3)."""

import pytest

from repro.common.errors import SchedulingError
from repro.core.config import Configuration, Pack, even_packs
from repro.core.packing import balanced_time_packing
from repro.core.taskgraph import HarmonyGraphBuilder, ScheduleOptions, mb_dependency
from repro.core.types import Channel, TaskKind, TensorKind
from repro.graph.layer import Phase


@pytest.fixture
def toy_config(toy_profiles):
    # Tight enough that the 10-layer toy transformer needs several packs.
    capacity = 1_300_000
    packs_b = balanced_time_packing(Phase.BWD, 1, toy_profiles, capacity)
    packs_f = balanced_time_packing(
        Phase.FWD, 2, toy_profiles, capacity, backward_packs=packs_b
    )
    assert len(packs_b) >= 3, "fixture should produce a multi-pack config"
    return Configuration(u_f=2, packs_f=packs_f, u_b=1, packs_b=packs_b)


def build(profiles, config, mode="pp", n_gpus=2, minibatch=8, **kwargs):
    options = ScheduleOptions(mode=mode, **kwargs)
    return HarmonyGraphBuilder(profiles, n_gpus, minibatch, options).build(config)


class TestMbDependency:
    def test_equal_sizes_identity(self):
        assert mb_dependency((2, 2, 2), (2, 2, 2)) == [0, 1, 2]

    def test_coarse_to_fine(self):
        assert mb_dependency((4, 4), (2, 2, 2, 2)) == [0, 0, 1, 1]

    def test_fine_to_coarse(self):
        assert mb_dependency((2, 2, 2, 2), (4, 4)) == [1, 3]

    def test_ragged(self):
        assert mb_dependency((3, 3, 2), (4, 4)) == [1, 2]

    def test_mismatch_rejected(self):
        with pytest.raises(SchedulingError):
            mb_dependency((2, 2), (3, 3))


class TestWrapAroundPp:
    def test_kinds_in_order(self, toy_profiles, toy_config):
        graph = build(toy_profiles, toy_config)
        kinds = [t.kind for t in graph.tasks]
        first_bwd = kinds.index(TaskKind.BWD)
        assert all(k is TaskKind.FWD for k in kinds[:first_bwd])
        assert TaskKind.UPD in kinds

    def test_wrap_around_binding(self, toy_profiles, toy_config):
        """P_FB = P_F + reverse(P_B); pack i -> GPU (i mod N)."""
        graph = build(toy_profiles, toy_config, n_gpus=2)
        compute = [t for t in graph.tasks if t.kind is not TaskKind.UPD]
        for i, task in enumerate(compute):
            assert task.device == i % 2, task.label

    def test_jit_fuses_last_pack(self, toy_profiles, toy_config):
        graph = build(toy_profiles, toy_config)
        fused = [t for t in graph.tasks if t.fused]
        assert len(fused) == 1
        pack = toy_config.packs_b[-1]
        assert (fused[0].first_layer, fused[0].last_layer) == (
            pack.first, pack.last)

    def test_jit_off_no_fusion_and_late_updates(self, toy_profiles, toy_config):
        graph = build(toy_profiles, toy_config, jit=False)
        assert not any(t.fused for t in graph.tasks)
        # All updates come after all backward tasks.
        last_bwd = max(t.tid for t in graph.tasks if t.kind is TaskKind.BWD)
        first_upd = min(t.tid for t in graph.tasks if t.kind is TaskKind.UPD)
        assert first_upd > last_bwd

    def test_one_update_per_backward_pack(self, toy_profiles, toy_config):
        graph = build(toy_profiles, toy_config)
        updates = graph.of_kind(TaskKind.UPD)
        assert len(updates) == len(toy_config.packs_b)

    def test_grouping_gives_one_task_per_pack(self, toy_profiles, toy_config):
        graph = build(toy_profiles, toy_config, minibatch=8)
        fwd = graph.of_kind(TaskKind.FWD)
        assert all(len(t.microbatches) == 8 // toy_config.u_f for t in fwd)

    def test_grouping_off_multiplies_tasks_and_weight_traffic(
        self, toy_profiles, toy_config
    ):
        grouped = build(toy_profiles, toy_config, minibatch=8)
        ungrouped = build(toy_profiles, toy_config, minibatch=8, grouping=False)
        assert len(ungrouped) > len(grouped)

        def weight_in(graph):
            return sum(
                m.nbytes for t in graph.tasks for d, m in t.moves()
                if d == "in" and m.tensor is TensorKind.W
            )

        assert weight_in(ungrouped) > 2 * weight_in(grouped)

    def test_p2p_used_for_chain(self, toy_profiles, toy_config):
        graph = build(toy_profiles, toy_config)
        assert graph.p2p_bytes() > 0

    def test_p2p_off_routes_via_host(self, toy_profiles, toy_config):
        graph = build(toy_profiles, toy_config, p2p=False)
        assert graph.p2p_bytes() == 0
        msg_moves = [
            m for t in graph.tasks for _d, m in t.moves()
            if m.channel is Channel.MSG and m.src_task is not None
        ]
        assert msg_moves

    def test_offload_keeps_optimizer_state_off_pcie(self, toy_profiles, toy_config):
        graph = build(toy_profiles, toy_config, offload_optimizer=True)
        k_moves = [
            m for t in graph.tasks for _d, m in t.moves()
            if m.tensor is TensorKind.K and m.nbytes > 0
        ]
        assert not k_moves
        assert all(t.on_cpu for t in graph.of_kind(TaskKind.UPD))

    def test_gpu_update_moves_state(self, toy_profiles, toy_config):
        graph = build(toy_profiles, toy_config, offload_optimizer=False)
        updates = graph.of_kind(TaskKind.UPD)
        assert all(not t.on_cpu for t in updates)
        k_in = sum(
            m.nbytes for t in updates for d, m in t.moves()
            if d == "in" and m.tensor is TensorKind.K
        )
        assert k_in > 0

    def test_checkpoints_stashed_for_interior_boundaries(
        self, toy_profiles, toy_config
    ):
        graph = build(toy_profiles, toy_config)
        ckpt_out = sum(
            m.nbytes for t in graph.tasks for d, m in t.moves()
            if d == "out" and m.tensor is TensorKind.CKPT
        )
        # One checkpoint per interior backward boundary (minus the fused
        # pack), per sample.
        interior = [p for p in toy_config.packs_b[:-1] if p.first != 0]
        expected = sum(
            toy_profiles.boundary_in_bytes(p, 1) * 8 for p in interior
        )
        assert ckpt_out == expected

    def test_validate_passes(self, toy_profiles, toy_config):
        graph = build(toy_profiles, toy_config)
        graph.validate()


class TestHarmonyDp:
    def test_each_gpu_runs_all_packs(self, toy_profiles, toy_config):
        graph = build(toy_profiles, toy_config, mode="dp", minibatch=8)
        for gpu in range(2):
            fwd_layers = {
                (t.first_layer, t.last_layer)
                for t in graph.tasks
                if t.device == gpu and t.kind is TaskKind.FWD
            }
            assert len(fwd_layers) >= len(toy_config.packs_f) - 1

    def test_minibatch_must_divide(self, toy_profiles, toy_config):
        with pytest.raises(SchedulingError):
            build(toy_profiles, toy_config, mode="dp", minibatch=7)

    def test_dp_weight_traffic_is_n_times_pp(self, toy_profiles, toy_config):
        pp = build(toy_profiles, toy_config, mode="pp", minibatch=8)
        dp = build(toy_profiles, toy_config, mode="dp", minibatch=8)

        def weight_in(graph):
            return sum(
                m.nbytes for t in graph.tasks for d, m in t.moves()
                if d == "in" and m.tensor is TensorKind.W and m.channel.via_host
            )

        assert weight_in(dp) == pytest.approx(2 * weight_in(pp), rel=0.01)

    def test_single_update_per_pack_across_gpus(self, toy_profiles, toy_config):
        graph = build(toy_profiles, toy_config, mode="dp", minibatch=8)
        updates = graph.of_kind(TaskKind.UPD)
        assert len(updates) == len(toy_config.packs_b)
        # Each update depends on every GPU's backward task.
        for task in updates:
            deps = [m.src_task for m in task.ins if m.src_task is not None]
            devices = {graph[d].device for d in deps}
            assert devices == {0, 1}

    def test_unknown_mode_rejected(self):
        with pytest.raises(SchedulingError):
            ScheduleOptions(mode="zigzag")
