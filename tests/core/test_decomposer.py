"""Tests for the Decomposer (graph creation + per-layer code)."""

import pytest

from repro.common.errors import GraphError
from repro.core.decomposer import (
    Decomposer,
    KERNEL_NOISE,
    SHAPE_JITTER,
    split_minibatch,
)
from repro.graph.layer import Phase
from repro.models.cnn import tiny_cnn


class TestDecompose:
    def test_units_match_layers(self, toy_model, toy_decomposed):
        assert toy_decomposed.n_layers == toy_model.n_layers
        assert len(toy_decomposed.units) == toy_model.n_layers

    def test_branching_model_sequentialized(self):
        model = tiny_cnn(n_blocks=2)
        decomposed = Decomposer().decompose(model)
        assert decomposed.graph.is_chain()

    def test_deterministic_across_instances(self, toy_model, small_gpu):
        a = Decomposer(seed=3).decompose(toy_model)
        b = Decomposer(seed=3).decompose(toy_model)
        for unit_a, unit_b in zip(a.units, b.units):
            assert unit_a.run_time(small_gpu, Phase.FWD, 4) == (
                unit_b.run_time(small_gpu, Phase.FWD, 4)
            )

    def test_seed_changes_kernel_times(self, toy_model, small_gpu):
        a = Decomposer(seed=0).decompose(toy_model)
        b = Decomposer(seed=1).decompose(toy_model)
        times_a = [u.run_time(small_gpu, Phase.FWD, 4) for u in a.units]
        times_b = [u.run_time(small_gpu, Phase.FWD, 4) for u in b.units]
        assert times_a != times_b

    def test_noise_is_bounded(self, toy_decomposed, small_gpu):
        for unit in toy_decomposed.units:
            for u in (1, 3, 17):
                measured = unit.run_time(small_gpu, Phase.BWD, u)
                exact = small_gpu.compute_time(unit.spec.flops(Phase.BWD, u))
                if exact == 0:
                    continue
                deviation = abs(measured / exact - 1.0)
                assert deviation <= KERNEL_NOISE + SHAPE_JITTER + 1e-9

    def test_memory_bytes_by_phase(self, toy_decomposed):
        unit = toy_decomposed.units[2]
        assert unit.memory_bytes(Phase.BWD, 4) > unit.memory_bytes(Phase.FWD, 4)


class TestSplitMinibatch:
    def test_even_split(self):
        assert split_minibatch(8, 2) == [2, 2, 2, 2]

    def test_remainder_microbatch(self):
        assert split_minibatch(10, 4) == [4, 4, 2]

    def test_single(self):
        assert split_minibatch(3, 8) == [3]

    def test_bad_inputs(self):
        with pytest.raises(GraphError):
            split_minibatch(0, 4)
        with pytest.raises(GraphError):
            split_minibatch(4, 0)
