"""Tests for Algorithm 2 (balanced-time packing) and the greedy strawman."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import InfeasibleConfigError
from repro.core.config import validate_packs
from repro.core.packing import (
    balanced_time_packing,
    greedy_memory_packing,
    pack_imbalance,
)
from repro.graph.layer import Phase


class TestBalancedTimePacking:
    def test_packs_tile_the_chain(self, toy_profiles):
        packs = balanced_time_packing(
            Phase.BWD, 2, toy_profiles, capacity=64 * 2**20
        )
        validate_packs(packs, len(toy_profiles))

    def test_every_pack_fits_capacity(self, toy_profiles):
        capacity = 8 * 2**20
        packs = balanced_time_packing(Phase.BWD, 2, toy_profiles, capacity)
        for pack in packs:
            assert toy_profiles.pack_bwd_memory(pack, 2) <= capacity

    def test_maximizes_pack_size(self, toy_profiles):
        """Looser memory -> fewer (larger) packs."""
        tight = balanced_time_packing(Phase.BWD, 2, toy_profiles, 4 * 2**20)
        loose = balanced_time_packing(Phase.BWD, 2, toy_profiles, 64 * 2**20)
        assert len(loose) <= len(tight)

    def test_balances_time(self, toy_profiles):
        packs = balanced_time_packing(
            Phase.BWD, 2, toy_profiles, 6 * 2**20
        )
        if len(packs) > 1:
            assert pack_imbalance(toy_profiles, Phase.BWD, packs, 2) < 1.8

    def test_min_packs_respected(self, toy_profiles):
        packs = balanced_time_packing(
            Phase.BWD, 2, toy_profiles, 64 * 2**20, min_packs=4
        )
        assert len(packs) >= 4

    def test_forward_mode_appends_backward_tail(self, toy_profiles):
        packs_b = balanced_time_packing(Phase.BWD, 1, toy_profiles, 8 * 2**20)
        packs_f = balanced_time_packing(
            Phase.FWD, 2, toy_profiles, 8 * 2**20, backward_packs=packs_b
        )
        assert packs_f[-1] == packs_b[-1]
        validate_packs(packs_f, len(toy_profiles))

    def test_infeasible_capacity_raises(self, toy_profiles):
        with pytest.raises(InfeasibleConfigError):
            balanced_time_packing(Phase.BWD, 64, toy_profiles, capacity=1024)

    @settings(max_examples=20, deadline=None)
    @given(u=st.integers(1, 8), capacity_mb=st.integers(4, 64))
    def test_always_valid_or_infeasible(self, toy_profiles, u, capacity_mb):
        try:
            packs = balanced_time_packing(
                Phase.BWD, u, toy_profiles, capacity_mb * 2**20
            )
        except InfeasibleConfigError:
            return
        validate_packs(packs, len(toy_profiles))
        for pack in packs:
            assert toy_profiles.pack_bwd_memory(pack, u) <= capacity_mb * 2**20


class TestGreedyPacking:
    def test_tiles_and_fits(self, toy_profiles):
        capacity = 8 * 2**20
        packs = greedy_memory_packing(Phase.FWD, 2, toy_profiles, capacity)
        validate_packs(packs, len(toy_profiles))
        for pack in packs:
            assert toy_profiles.pack_fwd_memory(pack, 2) <= capacity

    def test_greedy_never_more_packs_than_balanced(self, toy_profiles):
        capacity = 8 * 2**20
        greedy = greedy_memory_packing(Phase.BWD, 2, toy_profiles, capacity)
        balanced = balanced_time_packing(Phase.BWD, 2, toy_profiles, capacity)
        assert len(greedy) <= len(balanced) + 1

    def test_oversized_layer_raises(self, toy_profiles):
        with pytest.raises(InfeasibleConfigError):
            greedy_memory_packing(Phase.BWD, 64, toy_profiles, capacity=1024)


class TestImbalanceMetric:
    def test_uniform_packs_near_one(self, toy_profiles):
        from repro.core.config import Pack

        packs = (Pack(1, 2), Pack(3, 4))  # two identical blocks each
        ratio = pack_imbalance(toy_profiles, Phase.FWD, packs, 2)
        assert ratio == pytest.approx(1.0, abs=0.1)
