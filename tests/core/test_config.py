"""Tests for configurations and pack helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import SchedulingError
from repro.core.config import (
    Configuration,
    Pack,
    even_packs,
    microbatch_group,
    packs_from_boundaries,
    validate_packs,
)


class TestPack:
    def test_properties(self):
        pack = Pack(2, 5)
        assert pack.n_layers == 4
        assert list(pack.layers) == [2, 3, 4, 5]
        assert str(pack) == "L2-5"

    def test_singleton_rendering(self):
        assert str(Pack(7, 7)) == "L7"

    def test_bad_bounds_rejected(self):
        with pytest.raises(SchedulingError):
            Pack(3, 2)
        with pytest.raises(SchedulingError):
            Pack(-1, 2)

    def test_ordering(self):
        assert Pack(0, 1) < Pack(2, 3)


class TestValidation:
    def test_valid_tiling(self):
        validate_packs([Pack(0, 2), Pack(3, 3), Pack(4, 9)], 10)

    def test_gap_rejected(self):
        with pytest.raises(SchedulingError):
            validate_packs([Pack(0, 2), Pack(4, 9)], 10)

    def test_overlap_rejected(self):
        with pytest.raises(SchedulingError):
            validate_packs([Pack(0, 3), Pack(3, 9)], 10)

    def test_short_coverage_rejected(self):
        with pytest.raises(SchedulingError):
            validate_packs([Pack(0, 5)], 10)

    def test_empty_rejected(self):
        with pytest.raises(SchedulingError):
            validate_packs([], 3)


class TestBuilders:
    def test_packs_from_boundaries(self):
        packs = packs_from_boundaries([0, 4, 7], 10)
        assert packs == (Pack(0, 3), Pack(4, 6), Pack(7, 9))

    def test_boundaries_must_start_at_zero(self):
        with pytest.raises(SchedulingError):
            packs_from_boundaries([1, 4], 10)

    def test_even_packs(self):
        packs = even_packs(10, 3)
        assert [p.n_layers for p in packs] == [4, 3, 3]

    def test_even_packs_bounds(self):
        with pytest.raises(SchedulingError):
            even_packs(3, 5)

    @given(st.integers(1, 50), st.integers(1, 50))
    def test_even_packs_always_tile(self, n_layers, n_packs):
        if n_packs > n_layers:
            return
        packs = even_packs(n_layers, n_packs)
        validate_packs(packs, n_layers)
        assert len(packs) == n_packs


class TestConfiguration:
    def test_jit_alignment_detection(self):
        packs = (Pack(0, 3), Pack(4, 9))
        config = Configuration(u_f=2, packs_f=packs, u_b=1, packs_b=packs)
        assert config.jit_compute_aligned
        other = Configuration(
            u_f=2, packs_f=(Pack(0, 5), Pack(6, 9)), u_b=1, packs_b=packs
        )
        assert not other.jit_compute_aligned

    def test_validate_checks_both_sides(self):
        config = Configuration(
            u_f=2, packs_f=(Pack(0, 9),), u_b=1, packs_b=(Pack(0, 5),)
        )
        with pytest.raises(SchedulingError):
            config.validate(10)

    def test_describe_and_pack_table(self):
        packs = (Pack(0, 3), Pack(4, 9))
        config = Configuration(u_f=2, packs_f=packs, u_b=1, packs_b=packs)
        assert "U_F=2" in config.describe()
        assert "L0-3" in config.pack_table()

    def test_positive_microbatches_required(self):
        with pytest.raises(SchedulingError):
            Configuration(u_f=0, packs_f=(Pack(0, 1),), u_b=1,
                          packs_b=(Pack(0, 1),))


class TestMicrobatchGroup:
    def test_exact_division(self):
        assert microbatch_group(8, 4) == (4, 4)

    def test_remainder_last(self):
        assert microbatch_group(10, 4) == (4, 4, 2)

    def test_single_large(self):
        assert microbatch_group(3, 100) == (3,)

    @given(st.integers(1, 200), st.integers(1, 64))
    def test_group_always_sums_to_total(self, total, size):
        group = microbatch_group(total, size)
        assert sum(group) == total
        assert all(0 < g <= size for g in group)
