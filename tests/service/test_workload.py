"""Seeded workloads and the service chaos oracle."""

import pytest

from repro.faults.plan import FaultSpec
from repro.service import (
    ScriptedServiceFaultPlan,
    ServiceChaosSpec,
    ServiceFaultPlan,
    scripted_workload,
)


class TestScriptedWorkload:
    def test_deterministic_per_seed(self):
        assert scripted_workload(50, seed=3) == scripted_workload(50, seed=3)
        assert scripted_workload(50, seed=3) != scripted_workload(50, seed=4)

    def test_arrivals_sorted_within_duration(self):
        requests = scripted_workload(40, seed=0, duration=60.0)
        arrivals = [r.arrival for r in requests]
        assert arrivals == sorted(arrivals)
        assert all(0.0 <= a <= 60.0 for a in arrivals)
        assert [r.rid for r in requests] == list(range(40))

    def test_infeasible_dp_demoted_to_pp(self):
        """A DP draw whose minibatch does not divide the GPUs is demoted
        -- the storm probes the service, not infeasibility handling."""
        requests = scripted_workload(
            200, seed=0, modes=("dp",), minibatches=(9,), gpus=(2,)
        )
        assert all(r.mode == "pp" for r in requests)

    def test_execute_fraction(self):
        none = scripted_workload(50, seed=0, execute_fraction=0.0)
        everything = scripted_workload(50, seed=0, execute_fraction=1.0)
        assert not any(r.execute for r in none)
        assert all(r.execute for r in everything)

    @pytest.mark.parametrize("kwargs", [
        {"n_requests": -1},
        {"duration": 0.0},
        {"tenants": 0},
        {"execute_fraction": 1.5},
    ])
    def test_validation(self, kwargs):
        args = {"n_requests": 10, **kwargs}
        n = args.pop("n_requests")
        with pytest.raises(ValueError):
            scripted_workload(n, **args)


class TestChaosSpec:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            ServiceChaosSpec(slow_rate=1.5)
        with pytest.raises(ValueError):
            ServiceChaosSpec(slow_factor=0.5)
        with pytest.raises(ValueError):
            ServiceChaosSpec.chaos(-1.0)

    def test_none_disables_everything(self):
        spec = ServiceChaosSpec.none()
        assert not spec.any_enabled
        plan = ServiceFaultPlan(spec, seed=0)
        assert not any(plan.poisoned(r) or plan.crash(r, 0)
                       or plan.slowdown(r, 0) != 1.0 for r in range(100))

    def test_intensity_scales_rates(self):
        mild, harsh = ServiceChaosSpec.chaos(0.5), ServiceChaosSpec.chaos(2.0)
        assert mild.crash_rate < harsh.crash_rate
        assert harsh.crash_rate <= 1.0

    def test_from_fault_spec_projection(self):
        spec = ServiceChaosSpec.from_fault_spec(FaultSpec.chaos(1.0))
        assert spec.any_enabled
        assert spec.slow_factor >= 1.0


class TestFaultPlanDraws:
    def test_stateless_and_order_independent(self):
        plan = ServiceFaultPlan(ServiceChaosSpec.chaos(1.0), seed=5)
        forward = [plan.crash(rid, 0) for rid in range(50)]
        backward = [plan.crash(rid, 0) for rid in reversed(range(50))]
        assert forward == list(reversed(backward))

    def test_scripted_overrides_and_fallthrough(self):
        plan = ScriptedServiceFaultPlan(
            poisoned_rids={3}, crashes={1: 2, 2: -1}, slowdowns={0: 7.0},
        )
        assert plan.poisoned(3) and not plan.poisoned(0)
        assert plan.slowdown(0, 0) == 7.0
        assert plan.slowdown(9, 0) == 1.0
        assert plan.crash(1, 0) and plan.crash(1, 1) and not plan.crash(1, 2)
        assert plan.crash(2, 99)  # -1 = every attempt
        assert not plan.crash(9, 0)  # unscripted, spec disabled
        assert plan.enabled
