"""The acceptance storm: >= 500 chaos-afflicted requests, zero leaks.

The issue's bar, verbatim: a seeded chaos storm (at least 500 requests
with injected planner slowdowns and crashes) must end with zero
unhandled exceptions, every request terminally resolved (served,
degraded, or shed *with a typed reason*), a monotonically non-increasing
breaker flap rate (non-decreasing open intervals), and deterministic
ServiceMetrics -- bit-identical across two runs of the same seed.
"""

import json

import pytest

from repro.service import (
    Outcome,
    PlannerService,
    ServiceChaosSpec,
    ServiceConfig,
    ServiceFaultPlan,
    scripted_workload,
)

STORM_SIZE = 500
STORM_SEED = 0
#: Intensity chosen so this seed genuinely injects all three fault
#: classes (slowdowns, crashes, poisons) while keeping the shed rate
#: inside the acceptance bound.
STORM_INTENSITY = 2.0


def _storm(seed=STORM_SEED, intensity=STORM_INTENSITY, n=STORM_SIZE,
           execute_fraction=0.0):
    requests = scripted_workload(
        n, seed=seed, execute_fraction=execute_fraction
    )
    service = PlannerService(
        ServiceConfig(),
        chaos=ServiceFaultPlan(ServiceChaosSpec.chaos(intensity), seed=seed),
        seed=seed,
    )
    results = service.run(requests)
    return service, results


@pytest.fixture(scope="module")
def storm():
    """One shared storm run (module-scoped: the expensive part)."""
    return _storm()


class TestEveryRequestResolves:
    def test_no_unhandled_exceptions_and_full_resolution(self, storm):
        service, results = storm
        assert len(results) == STORM_SIZE
        assert service.metrics.resolved == STORM_SIZE
        assert sorted(r.request.rid for r in results) == \
            list(range(STORM_SIZE))

    def test_every_outcome_is_typed(self, storm):
        _, results = storm
        for result in results:
            assert isinstance(result.outcome, Outcome)
            assert result.outcome.group in (
                "served", "degraded", "shed", "failed"
            )

    def test_shed_results_carry_a_reason(self, storm):
        _, results = storm
        for result in results:
            if result.outcome.group == "shed":
                assert result.detail, (
                    f"req{result.request.rid} shed without a reason"
                )

    def test_served_results_carry_plans(self, storm):
        _, results = storm
        for result in results:
            if result.outcome.carries_plan:
                assert result.plan is not None

    def test_chaos_actually_fired(self, storm):
        """The storm must genuinely exercise slowdowns and crashes --
        a chaos test that injects nothing proves nothing."""
        service, _ = storm
        metrics = service.metrics
        assert metrics.chaos_slowdowns > 0
        assert metrics.chaos_crashes > 0
        assert metrics.chaos_poisoned > 0

    def test_shed_rate_bounded(self, storm):
        service, _ = storm
        assert service.metrics.shed_rate <= 0.35

    def test_accounting_identity(self, storm):
        service, _ = storm
        metrics = service.metrics
        assert metrics.served + metrics.degraded + metrics.shed \
            + metrics.failed == STORM_SIZE
        assert metrics.requests == STORM_SIZE


class TestBreakerMonotonicity:
    def test_open_intervals_non_decreasing(self, storm):
        """Consecutive re-opens never shorten: the flap rate is
        monotonically non-increasing while a fault persists."""
        service, _ = storm
        intervals = service.breaker.open_intervals
        # Split at full closes (level resets); within each burst the
        # schedule must be non-decreasing.
        closes = [t for t, s in service.breaker.transitions if s == "closed"]
        assert all(a <= b for a, b in zip(intervals, intervals[1:])) or closes

    def test_harsh_storm_breaker_bursts_are_monotone(self):
        """At 4x intensity the breaker genuinely trips; verify the
        non-decreasing cooldown within the observed burst."""
        service, results = _storm(intensity=4.0, n=200)
        assert len(results) == 200
        intervals = service.breaker.open_intervals
        assert service.breaker.trips == len(intervals)
        transitions = service.breaker.transitions
        # Reconstruct bursts: a full close resets the schedule.
        burst: list[float] = []
        i = 0
        for _, state in transitions:
            if state == "open":
                burst.append(intervals[i])
                assert len(burst) < 2 or burst[-2] <= burst[-1], (
                    f"cooldown shrank within a burst: {burst}"
                )
                i += 1
            elif state == "closed":
                burst = []


class TestDeterminism:
    def test_two_runs_bit_identical(self, storm):
        service, results = storm
        again, results2 = _storm()
        a = json.dumps(service.metrics.snapshot(), sort_keys=True)
        b = json.dumps(again.metrics.snapshot(), sort_keys=True)
        assert a == b
        assert [r.outcome for r in results] == [r.outcome for r in results2]
        assert [r.resolved_at for r in results] == \
               [r.resolved_at for r in results2]

    def test_different_seed_differs(self, storm):
        """The seed must actually matter (guards against a degenerate
        always-identical implementation)."""
        service, _ = storm
        other, _ = _storm(seed=7, n=100)
        assert other.metrics.snapshot() != service.metrics.snapshot()

    def test_execute_requests_deterministic_too(self):
        a, ra = _storm(n=60, execute_fraction=0.3)
        b, rb = _storm(n=60, execute_fraction=0.3)
        assert a.metrics.runs_executed > 0
        assert a.metrics.snapshot() == b.metrics.snapshot()
        assert [r.run_seconds for r in ra] == [r.run_seconds for r in rb]


class TestStormReporting:
    def test_latency_quantiles_over_carried_plans(self, storm):
        service, results = storm
        metrics = service.metrics
        carried = [r.latency for r in results if r.outcome.carries_plan]
        assert sorted(carried) == sorted(metrics.latencies)
        assert metrics.p50_latency <= metrics.p99_latency
        assert metrics.p99_latency <= max(carried)

    def test_cache_hit_rate_reported(self, storm):
        service, _ = storm
        assert 0.0 < service.metrics.cache_hit_rate <= 1.0

    def test_run_metrics_throughput_is_requests_per_second(self, storm):
        service, _ = storm
        run_metrics = service.run_metrics()
        assert run_metrics.throughput == pytest.approx(
            STORM_SIZE / service.metrics.makespan
        )
