"""ServiceMetrics edge cases: quantiles, rates, fleet derivations.

The nearest-rank quantile is the service's only statistics code; its
edges (empty, single sample, exact boundaries) are where a refactor
would silently drift, so each is pinned as a hard equality here.
"""

import pytest

from repro.service import Outcome
from repro.service.metrics import ServiceMetrics


class TestNearestRankQuantiles:
    def test_empty_latencies_quantiles_are_zero(self):
        metrics = ServiceMetrics()
        assert metrics.p50_latency == 0.0
        assert metrics.p99_latency == 0.0
        assert metrics.latency_quantile(0.0) == 0.0
        assert metrics.latency_quantile(1.0) == 0.0

    def test_single_sample_is_every_quantile(self):
        metrics = ServiceMetrics(latencies=[2.5])
        assert metrics.latency_quantile(0.0) == 2.5
        assert metrics.p50_latency == 2.5
        assert metrics.p99_latency == 2.5
        assert metrics.latency_quantile(1.0) == 2.5

    def test_known_list_nearest_rank(self):
        """Nearest rank over [10, 20, 30, 40]: rank = max(1, ceil(q*n)),
        1-indexed -- no interpolation, ever."""
        metrics = ServiceMetrics(latencies=[40.0, 10.0, 30.0, 20.0])
        assert metrics.latency_quantile(0.0) == 10.0   # rank clamps to 1
        assert metrics.latency_quantile(0.25) == 10.0  # ceil(1.0) = 1
        assert metrics.latency_quantile(0.50) == 20.0  # ceil(2.0) = 2
        assert metrics.latency_quantile(0.51) == 30.0  # ceil(2.04) = 3
        assert metrics.latency_quantile(0.99) == 40.0  # ceil(3.96) = 4
        assert metrics.latency_quantile(1.0) == 40.0

    def test_quantile_input_is_not_sorted_in_place(self):
        latencies = [3.0, 1.0, 2.0]
        metrics = ServiceMetrics(latencies=latencies)
        assert metrics.p50_latency == 2.0
        assert latencies == [3.0, 1.0, 2.0]

    @pytest.mark.parametrize("q", (-0.01, 1.01, 2.0))
    def test_out_of_range_quantile_raises(self, q):
        with pytest.raises(ValueError):
            ServiceMetrics(latencies=[1.0]).latency_quantile(q)


class TestRates:
    def test_all_shed_run_has_shed_rate_one(self):
        metrics = ServiceMetrics(requests=3)
        for _ in range(3):
            metrics.count(Outcome.SHED_QUEUE_FULL)
        assert metrics.shed == 3
        assert metrics.shed_rate == 1.0
        assert metrics.p50_latency == 0.0  # sheds carry no latency

    def test_zero_request_rates_are_zero_not_nan(self):
        metrics = ServiceMetrics()
        assert metrics.shed_rate == 0.0
        assert metrics.cache_hit_rate == 0.0
        assert metrics.fleet_utilization == 0.0

    def test_fleet_utilization_guards_zero_makespan(self):
        metrics = ServiceMetrics(fleet_gpus=8, fleet_gpu_seconds=4.0)
        assert metrics.makespan == 0.0
        assert metrics.fleet_utilization == 0.0
        metrics.makespan = 10.0
        assert metrics.fleet_utilization == pytest.approx(0.05)

    def test_fleetless_utilization_is_zero(self):
        metrics = ServiceMetrics(makespan=10.0, fleet_gpu_seconds=4.0)
        assert metrics.fleet_gpus == 0
        assert metrics.fleet_utilization == 0.0


class TestSnapshotEdges:
    def test_empty_snapshot_is_json_clean_and_zeroed(self):
        snap = ServiceMetrics().snapshot()
        assert snap["requests"] == 0
        assert snap["outcomes"] == {}
        assert snap["p50_latency"] == 0.0
        assert snap["shed_rate"] == 0.0
        assert snap["fleet"]["utilization"] == 0.0

    def test_snapshot_outcomes_are_sorted(self):
        metrics = ServiceMetrics()
        metrics.count(Outcome.SHED_QUOTA)
        metrics.count(Outcome.SERVED_FRESH)
        assert list(metrics.snapshot()["outcomes"]) \
            == sorted(metrics.outcomes)
