"""Cross-request plan-cache correctness: the content-addressed key.

The service promise is sharp: two requests agreeing on model *content*,
server spec, minibatch and every search/schedule setting share one plan
(any tenant, any time); a request differing in ANY of those settings
misses.  These tests enumerate the settings one by one.  The single
deliberate exception -- ``search_workers`` -- is pinned too: the forked
search is bit-identical to the serial search, so worker count must NOT
split the cache.
"""

from dataclasses import replace

import pytest

from repro.core.harmony import HarmonyOptions
from repro.experiments.common import server_for
from repro.models.zoo import build_model
from repro.service.cache import (
    PlanCache,
    family_key,
    model_fingerprint,
    options_fingerprint,
    plan_key,
    server_fingerprint,
)


@pytest.fixture(scope="module")
def model():
    return build_model("toy-transformer")


@pytest.fixture(scope="module")
def server():
    return server_for(2)


def _key(model, server, minibatch=8, **option_overrides):
    return plan_key(model, server, minibatch,
                    HarmonyOptions(**option_overrides))


class TestKeyHits:
    def test_identical_requests_share_a_key(self, model, server):
        assert _key(model, server) == _key(model, server)

    def test_key_is_tenant_free(self, model, server):
        """Nothing about the requester enters the key: cross-tenant
        sharing is the point of content addressing."""
        # plan_key has no tenant parameter at all; pin the signature.
        import inspect

        params = inspect.signature(plan_key).parameters
        assert set(params) == {"model", "server", "minibatch", "options"}

    def test_renamed_model_still_hits(self, model, server):
        """The key addresses model *content*, not the zoo name."""
        renamed = replace(model, name="totally-different-name")
        assert model_fingerprint(renamed) == model_fingerprint(model)
        assert _key(renamed, server) == _key(model, server)

    def test_search_workers_normalized_out(self, model, server):
        """Forked search is bit-identical to serial: same plan, same key."""
        assert _key(model, server, search_workers=4) == \
               _key(model, server, search_workers=1)
        assert options_fingerprint(HarmonyOptions(search_workers=8)) == \
               options_fingerprint(HarmonyOptions())


class TestKeyMisses:
    @pytest.mark.parametrize("override", [
        {"mode": "dp"},
        {"grouping": False},
        {"jit": False},
        {"p2p": False},
        {"offload_optimizer": False},
        {"prefetch": False},
        {"u_fmax": 32},
        {"u_bmax": 32},
        {"capacity_fraction": 0.5},
        {"exhaustive_search": True},
        {"equi_fb": True},
        {"seed": 1},
    ])
    def test_any_differing_option_misses(self, model, server, override):
        assert _key(model, server, **override) != _key(model, server)

    def test_minibatch_misses(self, model, server):
        assert _key(model, server, minibatch=16) != \
               _key(model, server, minibatch=8)

    def test_different_model_content_misses(self, server):
        a = build_model("toy-transformer")
        b = build_model("tiny-cnn")
        assert model_fingerprint(a) != model_fingerprint(b)
        assert _key(a, server) != _key(b, server)

    def test_different_server_misses(self, model):
        two, four = server_for(2), server_for(4)
        assert server_fingerprint(two) != server_fingerprint(four)
        assert _key(model, two) != _key(model, four)


class TestFamilyKey:
    def test_family_ignores_server(self, model):
        options = HarmonyOptions()
        assert family_key(model, 8, options) == family_key(model, 8, options)
        # family has no server input at all; differing options still split
        assert family_key(model, 8, options) != \
               family_key(model, 8, HarmonyOptions(mode="dp"))
        assert family_key(model, 8, options) != family_key(model, 16, options)


class TestPlanCacheMechanics:
    def test_hit_miss_counters_and_lru_refresh(self):
        cache = PlanCache(capacity=2)
        cache.put("a", "plan-a")
        cache.put("b", "plan-b")
        assert cache.get("a") == "plan-a"          # refreshes a
        cache.put("c", "plan-c")                   # evicts b (LRU)
        assert cache.get("b") is None
        assert cache.get("a") == "plan-a"
        assert (cache.hits, cache.misses, cache.evictions) == (2, 1, 1)

    def test_reput_refreshes_instead_of_duplicating(self):
        cache = PlanCache(capacity=2)
        cache.put("a", "v1")
        cache.put("b", "plan-b")
        cache.put("a", "v2")
        cache.put("c", "plan-c")                   # evicts b, not a
        assert cache.get("a") == "v2"
        assert cache.get("b") is None

    def test_near_prefers_largest_then_smallest_key(self):
        cache = PlanCache()
        fam = ("fp", 8, "opts")
        cache.put("k1", "one-gpu", family=fam, n_gpus=1)
        cache.put("k2b", "two-gpu-b", family=fam, n_gpus=2)
        cache.put("k2a", "two-gpu-a", family=fam, n_gpus=2)
        n, key, plan = cache.near(fam, gpus=4)
        assert (n, key, plan) == (2, "k2a", "two-gpu-a")
        assert cache.stale_hits == 1

    def test_near_never_returns_a_larger_plan(self):
        cache = PlanCache()
        fam = ("fp", 8, "opts")
        cache.put("k4", "four-gpu", family=fam, n_gpus=4)
        assert cache.near(fam, gpus=2) is None

    def test_near_respects_exclude(self):
        cache = PlanCache()
        fam = ("fp", 8, "opts")
        cache.put("k2", "two-gpu", family=fam, n_gpus=2)
        assert cache.near(fam, gpus=2, exclude="k2") is None

    def test_eviction_cleans_the_family_index(self):
        """A near-spec lookup can never resurrect an evicted plan."""
        cache = PlanCache(capacity=1)
        fam = ("fp", 8, "opts")
        cache.put("k1", "one-gpu", family=fam, n_gpus=1)
        cache.put("k2", "two-gpu", family=fam, n_gpus=2)  # evicts k1
        near = cache.near(fam, gpus=4)
        assert near is not None and near[1] == "k2"
        assert cache.near(fam, gpus=1) is None    # k1 is truly gone

    def test_unknown_family_is_none(self):
        assert PlanCache().near(("nope", 1, "x"), gpus=8) is None

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)
