"""The circuit breaker's state machine and cooldown monotonicity.

The storm acceptance criterion "monotonically non-increasing flap rate"
reduces to: consecutive trips without a full close use non-decreasing
open intervals.  These tests pin that, plus the single-probe HALF_OPEN
discipline and the level reset on a genuine recovery.
"""

import pytest

from repro.common.backoff import BackoffPolicy
from repro.service.breaker import BreakerState, CircuitBreaker


def _tripped(threshold=3, now=0.0):
    breaker = CircuitBreaker(threshold=threshold)
    for _ in range(threshold):
        breaker.record_failure(now)
    return breaker


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(0.0)

    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3)
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(2.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1

    def test_success_clears_the_failure_streak(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure(0.0)
        breaker.record_success(1.0)
        breaker.record_failure(2.0)
        assert breaker.state is BreakerState.CLOSED

    def test_open_refuses_until_cooldown_expires(self):
        breaker = _tripped()
        interval = breaker.open_intervals[0]
        assert not breaker.allow(0.0)
        assert not breaker.allow(interval / 2)
        assert breaker.allow(interval)  # -> HALF_OPEN probe
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_admits_exactly_one_probe(self):
        breaker = _tripped()
        expiry = breaker.open_intervals[0]
        assert breaker.allow(expiry)
        assert not breaker.allow(expiry)
        assert not breaker.allow(expiry + 1.0)

    def test_probe_success_closes_and_releases(self):
        breaker = _tripped()
        expiry = breaker.open_intervals[0]
        assert breaker.allow(expiry)
        breaker.record_success(expiry + 1.0)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(expiry + 2.0)
        assert breaker.flaps == 0

    def test_probe_failure_is_a_flap_and_reopens(self):
        breaker = _tripped()
        expiry = breaker.open_intervals[0]
        assert breaker.allow(expiry)
        breaker.record_failure(expiry + 1.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.flaps == 1
        assert breaker.trips == 2

    def test_failures_while_open_are_ignored(self):
        breaker = _tripped()
        breaker.record_failure(0.5)
        assert breaker.trips == 1

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)


class TestCooldownMonotonicity:
    def test_open_intervals_non_decreasing_under_sustained_failure(self):
        """The acceptance criterion: while the fault persists, each
        re-open waits at least as long as the previous one."""
        breaker = CircuitBreaker(threshold=1)
        now = 0.0
        for _ in range(10):
            breaker.record_failure(now)        # trip (or probe-fail)
            now += breaker.open_intervals[-1]
            assert breaker.allow(now)          # the HALF_OPEN probe
        intervals = breaker.open_intervals
        assert len(intervals) == 10
        assert all(a <= b for a, b in zip(intervals, intervals[1:]))

    def test_cooldown_schedule_is_the_shared_backoff(self):
        cooldown = BackoffPolicy(max_retries=3, base=2.0, factor=3.0)
        breaker = CircuitBreaker(threshold=1, cooldown=cooldown)
        breaker.record_failure(0.0)
        assert breaker.open_intervals == [2.0]

    def test_cap_bounds_deep_levels(self):
        breaker = CircuitBreaker(threshold=1)  # default cap 120s
        now = 0.0
        for _ in range(12):
            breaker.record_failure(now)
            now += breaker.open_intervals[-1]
            breaker.allow(now)
        assert max(breaker.open_intervals) == 120.0

    def test_full_close_resets_the_level(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure(0.0)
        first = breaker.open_intervals[0]
        now = first
        assert breaker.allow(now)
        breaker.record_success(now)            # genuine recovery
        breaker.record_failure(now + 1.0)      # a fresh, unrelated trip
        assert breaker.open_intervals[-1] == first

    def test_transitions_recorded_in_order(self):
        breaker = _tripped()
        expiry = breaker.open_intervals[0]
        breaker.allow(expiry)
        breaker.record_success(expiry)
        states = [s for _, s in breaker.transitions]
        assert states == ["open", "half_open", "closed"]
