"""PlannerService behavior: admission, deadlines, the degradation ladder.

Each test scripts exactly the fault it probes via
:class:`ScriptedServiceFaultPlan` so outcomes are forced, not sampled.
Virtual costs are the defaults (cache 0.02s, stale 0.10s, baseline
0.50s, fresh ~2.4s for the toy transformer), which the deadline tests
lean on.
"""

import pytest

from repro.common.errors import SimulationError
from repro.service import (
    Outcome,
    PlannerService,
    PlanRequest,
    ScriptedServiceFaultPlan,
    ServiceConfig,
)
from repro.service.daemon import StalePlan
from repro.trace import TraceRecorder
from repro.trace.events import LANES


def _request(rid=0, *, tenant="t0", model="toy-transformer", minibatch=8,
             mode="pp", gpus=2, arrival=0.0, deadline=None, execute=False):
    return PlanRequest(rid=rid, tenant=tenant, model=model,
                       minibatch=minibatch, mode=mode, gpus=gpus,
                       arrival=arrival, deadline=deadline, execute=execute)


def _serve(requests, config=None, chaos=None, trace=None, **kwargs):
    service = PlannerService(
        config if config is not None else ServiceConfig(),
        chaos=chaos, trace=trace, **kwargs,
    )
    results = service.run(requests)
    return service, {r.request.rid: r for r in results}


class TestHappyPath:
    def test_fresh_then_cached_across_tenants(self):
        service, by_rid = _serve([
            _request(0, tenant="alice", arrival=0.0),
            _request(1, tenant="bob", arrival=10.0),
        ])
        assert by_rid[0].outcome is Outcome.SERVED_FRESH
        assert by_rid[1].outcome is Outcome.SERVED_CACHED
        assert by_rid[0].plan_key == by_rid[1].plan_key
        assert by_rid[1].plan is by_rid[0].plan
        assert service.metrics.served == 2

    def test_every_result_carries_latency_and_resolution(self):
        _, by_rid = _serve([_request(0, arrival=1.5)])
        result = by_rid[0]
        assert result.resolved_at >= 1.5
        assert result.latency == pytest.approx(result.resolved_at - 1.5)


class TestAdmissionControl:
    def test_tenant_quota_sheds_at_the_door(self):
        config = ServiceConfig(tenant_quota=1, workers=1)
        service, by_rid = _serve([
            _request(0, tenant="greedy", arrival=0.0),
            _request(1, tenant="greedy", arrival=0.1),
            _request(2, tenant="patient", arrival=0.2),
        ], config=config)
        assert by_rid[1].outcome is Outcome.SHED_QUOTA
        assert by_rid[0].outcome is Outcome.SERVED_FRESH
        assert by_rid[2].outcome is Outcome.SERVED_CACHED
        assert service.metrics.admitted == 2

    def test_bounded_queue_sheds_overflow(self):
        config = ServiceConfig(queue_limit=1, workers=1, tenant_quota=0)
        _, by_rid = _serve([
            _request(rid, tenant=f"t{rid}", arrival=0.01 * rid)
            for rid in range(4)
        ], config=config)
        outcomes = [by_rid[r].outcome for r in range(4)]
        assert Outcome.SHED_QUEUE_FULL in outcomes
        # Everyone still resolves terminally.
        assert all(o is not None for o in outcomes)

    def test_quota_slot_frees_on_resolution(self):
        config = ServiceConfig(tenant_quota=1, workers=1)
        _, by_rid = _serve([
            _request(0, tenant="t", arrival=0.0),
            _request(1, tenant="t", arrival=20.0),  # after rid 0 resolved
        ], config=config)
        assert by_rid[1].outcome is Outcome.SERVED_CACHED


class TestDeadlines:
    def test_impossible_deadline_times_out(self):
        """No rung (not even the baseline) fits a 1 ms budget."""
        _, by_rid = _serve([_request(0, deadline=0.001)])
        assert by_rid[0].outcome is Outcome.TIMED_OUT

    def test_deadline_counts_from_arrival_not_service_start(self):
        """Queue wait burns the budget: a worker starved by an earlier
        long request must abandon the attempt it cannot afford."""
        config = ServiceConfig(workers=1)
        chaos = ScriptedServiceFaultPlan(slowdowns={0: 8.0})
        _, by_rid = _serve([
            _request(0, arrival=0.0, deadline=45.0),
            _request(1, model="tiny-cnn", arrival=0.1, deadline=5.0),
        ], config=config, chaos=chaos)
        assert by_rid[1].outcome is Outcome.TIMED_OUT

    def test_generous_deadline_serves(self):
        _, by_rid = _serve([_request(0, deadline=100.0)])
        assert by_rid[0].outcome is Outcome.SERVED_FRESH


class TestPoisonedRequests:
    def test_poisoned_fails_without_touching_the_breaker(self):
        chaos = ScriptedServiceFaultPlan(poisoned_rids={0})
        service, by_rid = _serve([_request(0)], chaos=chaos)
        assert by_rid[0].outcome is Outcome.FAILED_POISONED
        assert service.breaker.trips == 0
        assert service.metrics.chaos_poisoned == 1

    def test_unknown_model_is_poisoned_not_crash(self):
        _, by_rid = _serve([_request(0, model="no-such-model")])
        assert by_rid[0].outcome is Outcome.FAILED_POISONED


class TestDegradationLadder:
    def test_stale_rung_relabels_a_smaller_plan(self):
        """rid 0 caches a 1-gpu plan; rid 1 (2 gpus, planner crashing)
        falls to the stale rung and gets that plan relabeled."""
        chaos = ScriptedServiceFaultPlan(crashes={1: -1})
        service, by_rid = _serve([
            _request(0, gpus=1, arrival=0.0),
            _request(1, gpus=2, arrival=20.0),
        ], chaos=chaos)
        result = by_rid[1]
        assert result.outcome is Outcome.DEGRADED_STALE
        assert isinstance(result.plan, StalePlan)
        assert result.plan.source_gpus == 1
        assert result.plan.gpus == 2
        assert result.plan.graph.n_devices == 2
        assert service.metrics.stale_rebinds == 1

    def test_baseline_rung_when_no_family_plan_exists(self):
        chaos = ScriptedServiceFaultPlan(crashes={0: -1})
        service, by_rid = _serve([_request(0)], chaos=chaos)
        assert by_rid[0].outcome is Outcome.DEGRADED_BASELINE
        assert by_rid[0].plan is not None
        assert service.metrics.baseline_plans == 1

    def test_degradation_disabled_sheds_instead(self):
        config = ServiceConfig(degradation=False)
        chaos = ScriptedServiceFaultPlan(crashes={0: -1, 1: -1, 2: -1})
        service, by_rid = _serve([
            _request(rid, tenant=f"t{rid}", arrival=float(rid))
            for rid in range(3)
        ], config=config, chaos=chaos)
        outcomes = {by_rid[r].outcome for r in range(3)}
        assert outcomes <= {Outcome.SHED_BREAKER, Outcome.TIMED_OUT}
        assert service.breaker.trips >= 1

    def test_crashed_attempts_retry_with_backoff_then_recover(self):
        """Two crashes inside the retry budget still end SERVED_FRESH."""
        chaos = ScriptedServiceFaultPlan(crashes={0: 2})
        service, by_rid = _serve([_request(0)], chaos=chaos)
        assert by_rid[0].outcome is Outcome.SERVED_FRESH
        assert by_rid[0].attempts == 3
        assert service.metrics.retries == 2
        assert service.metrics.chaos_crashes == 2


class TestRunRequests:
    def test_execute_runs_one_iteration_and_memoizes(self):
        service, by_rid = _serve([
            _request(0, execute=True, arrival=0.0, deadline=100.0),
            _request(1, execute=True, arrival=50.0, deadline=100.0),
        ])
        first, second = by_rid[0], by_rid[1]
        assert first.outcome is Outcome.SERVED_FRESH
        assert second.outcome is Outcome.SERVED_CACHED
        assert first.run_seconds > 0
        assert second.run_seconds == first.run_seconds
        assert service.metrics.runs_executed == 2
        assert service.metrics.run_virtual_seconds == pytest.approx(
            2 * first.run_seconds
        )


class TestObservability:
    def test_run_metrics_folds_the_service_section(self):
        service, _ = _serve([_request(0)])
        run_metrics = service.run_metrics()
        assert run_metrics.mode == "service"
        assert run_metrics.minibatch == 1
        assert run_metrics.service is service.metrics
        text = run_metrics.describe()
        assert "service: 1 request(s)" in text
        assert "breaker" in text

    def test_trace_records_service_lane_events(self):
        recorder = TraceRecorder()
        assert "service" in LANES
        _serve([_request(0)], trace=recorder)
        service_events = [e for e in recorder.events if e.cat == "service"]
        assert any(e.kind == "instant" and e.name == "arrive req0"
                   for e in service_events)
        spans = [e for e in service_events if e.kind == "span"]
        assert len(spans) == 1
        assert spans[0].lane == "service"
        assert dict(spans[0].meta)["outcome"] == "served_fresh"

    def test_empty_run_resolves_trivially(self):
        assert PlannerService(ServiceConfig()).run([]) == []

    def test_unresolved_request_is_a_loud_error(self, monkeypatch):
        """A service bug can never silently drop a request: run() raises."""
        def lost(self, wid, request, enqueued):
            return
            yield  # pragma: no cover - makes this a generator

        monkeypatch.setattr(PlannerService, "_serve", lost)
        with pytest.raises(SimulationError):
            PlannerService(ServiceConfig()).run([_request(0)])


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"workers": 0},
        {"queue_limit": 0},
        {"tenant_quota": -1},
        {"default_deadline": 0.0},
        {"plan_cost": -1.0},
        {"breaker_threshold": 0},
    ])
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)

    def test_request_validation(self):
        with pytest.raises(ValueError):
            _request(0, minibatch=0)
        with pytest.raises(ValueError):
            _request(0, deadline=0.0)
        with pytest.raises(ValueError):
            _request(0, mode="zz")
        with pytest.raises(ValueError):
            _request(0, gpus=0)
