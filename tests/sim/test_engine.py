"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.engine import AllOf, Resource, SimEvent, Simulator, Timeout


class TestSimulatorBasics:
    def test_starts_at_time_zero(self, sim):
        assert sim.now == 0.0

    def test_run_with_no_events_returns_zero(self, sim):
        assert sim.run() == 0.0

    def test_schedule_advances_clock(self, sim):
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_schedule_order_is_time_then_fifo(self, sim):
        order = []
        sim.schedule(1.0, lambda: order.append("b"))
        sim.schedule(0.5, lambda: order.append("a"))
        sim.schedule(1.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_run_until_stops_early(self, sim):
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(5.0, lambda: seen.append(5))
        sim.run(until=2.0)
        assert seen == [1]
        assert sim.now == 2.0

    def test_callbacks_can_schedule_more(self, sim):
        seen = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [2.0]


class TestEvents:
    def test_event_starts_pending(self, sim):
        event = sim.event()
        assert not event.fired

    def test_succeed_fires_and_stores_value(self, sim):
        event = sim.event()
        event.succeed(42)
        assert event.fired
        assert event.value == 42

    def test_value_before_fire_raises(self, sim):
        with pytest.raises(SimulationError):
            _ = sim.event().value

    def test_double_succeed_raises(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_callback_on_pending_event(self, sim):
        event = sim.event()
        seen = []
        event.add_callback(seen.append)
        sim.schedule(3.0, event.succeed, "x")
        sim.run()
        assert seen == ["x"]

    def test_callback_on_fired_event_runs_async(self, sim):
        event = sim.event()
        event.succeed("y")
        seen = []
        event.add_callback(seen.append)
        assert seen == []  # deferred to the event loop
        sim.run()
        assert seen == ["y"]


class TestTimeout:
    def test_timeout_fires_after_delay(self, sim):
        timeout = sim.timeout(4.0)
        sim.run()
        assert timeout.fired
        assert sim.now == 4.0

    def test_zero_timeout_allowed(self, sim):
        timeout = sim.timeout(0.0)
        sim.run()
        assert timeout.fired

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimulationError):
            Timeout(sim, -0.1)


class TestAllOf:
    def test_waits_for_every_event(self, sim):
        first, second = sim.timeout(1.0), sim.timeout(3.0)
        gate = sim.all_of([first, second])
        sim.run()
        assert gate.fired
        assert sim.now == 3.0

    def test_empty_fires_immediately(self, sim):
        gate = AllOf(sim, [])
        sim.run()
        assert gate.fired
        assert gate.value == []

    def test_value_preserves_order(self, sim):
        a, b = sim.event(), sim.event()
        gate = sim.all_of([a, b])
        sim.schedule(1.0, b.succeed, "b")
        sim.schedule(2.0, a.succeed, "a")
        sim.run()
        assert gate.value == ["a", "b"]

    def test_already_fired_members(self, sim):
        a = sim.event()
        a.succeed(1)
        gate = sim.all_of([a])
        sim.run()
        assert gate.fired


class TestProcess:
    def test_process_runs_to_completion(self, sim):
        def body():
            yield sim.timeout(1.0)
            yield sim.timeout(2.0)
            return "done"

        proc = sim.process(body())
        sim.run()
        assert proc.fired
        assert proc.value == "done"
        assert sim.now == 3.0

    def test_processes_interleave(self, sim):
        trace = []

        def worker(name, delay):
            yield sim.timeout(delay)
            trace.append((name, sim.now))
            yield sim.timeout(delay)
            trace.append((name, sim.now))

        sim.process(worker("slow", 2.0))
        sim.process(worker("fast", 0.5))
        sim.run()
        assert trace == [("fast", 0.5), ("fast", 1.0), ("slow", 2.0), ("slow", 4.0)]

    def test_process_can_wait_on_process(self, sim):
        def inner():
            yield sim.timeout(1.5)
            return 7

        def outer():
            value = yield sim.process(inner())
            return value * 2

        proc = sim.process(outer())
        sim.run()
        assert proc.value == 14

    def test_yielding_non_event_raises(self, sim):
        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_process_waiting_shared_event(self, sim):
        gate = sim.event()
        woken = []

        def waiter(name):
            yield gate
            woken.append(name)

        sim.process(waiter("a"))
        sim.process(waiter("b"))
        sim.schedule(1.0, gate.succeed)
        sim.run()
        assert sorted(woken) == ["a", "b"]


class TestResource:
    def test_grants_up_to_capacity(self, sim):
        res = Resource(sim, capacity=2)
        first, second, third = res.request(), res.request(), res.request()
        assert first.fired and second.fired
        assert not third.fired

    def test_release_wakes_fifo(self, sim):
        res = Resource(sim, capacity=1)
        res.request()
        second = res.request()
        third = res.request()
        res.release()
        assert second.fired
        assert not third.fired

    def test_release_idle_raises(self, sim):
        res = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_zero_capacity_rejected(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_in_use_tracking(self, sim):
        res = Resource(sim, capacity=3)
        res.request()
        res.request()
        assert res.in_use == 2
        res.release()
        assert res.in_use == 1


class TestProcessRegistry:
    """The live-process registry backs the watchdog's diagnostics; it
    must shed processes as they retire (success or failure) so it stays
    O(live) rather than O(ever-created), and keep registration order
    for deterministic watchdog messages."""

    def test_completed_processes_are_unregistered(self, sim):
        def body():
            yield sim.timeout(1.0)

        procs = [sim.process(body(), name=f"p{i}") for i in range(5)]
        assert list(sim._processes) == procs
        sim.run()
        assert sim._processes == {}

    def test_failed_process_is_unregistered(self, sim):
        def bad():
            yield sim.timeout(1.0)
            raise RuntimeError("boom")

        def watcher(proc):
            try:
                yield proc
            except RuntimeError:
                pass

        proc = sim.process(bad())
        sim.process(watcher(proc))
        sim.run()
        assert proc not in sim._processes

    def test_live_processes_stay_registered_for_watchdog(self, sim):
        def stuck():
            yield sim.event()  # never fires

        sim.process(stuck(), name="stuck-proc")
        sim.run()  # drains the heap; the process is still pending
        assert "stuck-proc" in sim._pending_processes()
