"""Network-hop link semantics and the hardened transfer edge cases.

Regressions this file pins:

- per-hop ``latency`` adds to every hold (and sums over a path), while a
  zero latency is bit-identical to the pre-latency arithmetic;
- a zero-byte transfer never acquires the path (no serialization, no
  busy time) -- an empty tensor must not contend;
- a zero-hop route with real bytes records a trace span so byte totals
  still reconcile, while costing zero virtual time;
- ``path_time`` is deterministically zero-cost for empty paths and
  non-positive byte counts (never a min()/division error).
"""

import pytest

from repro.common.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.links import Link, NetworkLink, path_time, transfer
from repro.trace import TraceRecorder


class TestLatency:
    def test_single_hop_latency_adds_to_hold(self, sim):
        link = Link(sim, "l", bandwidth=100.0, latency=0.5)
        sim.process(transfer(sim, [link], 100))
        sim.run()
        assert sim.now == pytest.approx(1.5)

    def test_path_latency_sums_over_hops(self, sim):
        a = Link(sim, "a", bandwidth=100.0, latency=0.25)
        b = Link(sim, "b", bandwidth=100.0, latency=0.25)
        sim.process(transfer(sim, [a, b], 100))
        sim.run()
        assert sim.now == pytest.approx(1.5)

    def test_zero_latency_matches_pre_latency_arithmetic(self, sim):
        link = Link(sim, "l", bandwidth=100.0)
        sim.process(transfer(sim, [link], 250))
        sim.run()
        assert sim.now == 250 / 100.0  # exact, not approx

    def test_negative_latency_rejected(self, sim):
        with pytest.raises(SimulationError):
            Link(sim, "l", bandwidth=100.0, latency=-1e-6)

    def test_network_link_is_a_link(self, sim):
        nic = NetworkLink(sim, "s0.nic.up", bandwidth=100.0, latency=0.5)
        assert isinstance(nic, Link)
        sim.process(transfer(sim, [nic], 100))
        sim.run()
        assert sim.now == pytest.approx(1.5)
        assert nic.bytes_moved == 100


class TestZeroByteTransfers:
    def test_zero_bytes_does_not_acquire_the_path(self, sim):
        link = Link(sim, "l", bandwidth=100.0)
        blocker = sim.process(transfer(sim, [link], 100))
        free = sim.process(transfer(sim, [link], 0))
        sim.run()
        assert blocker.fired and free.fired
        # The zero-byte move never held the link: one hold's busy time.
        assert link.busy_time == pytest.approx(1.0)
        assert link.bytes_moved == 100

    def test_zero_bytes_records_no_trace_span(self, sim):
        recorder = TraceRecorder()
        sim.trace = recorder
        link = Link(sim, "l", bandwidth=100.0)
        sim.process(transfer(sim, [link], 0))
        sim.run()
        assert not [e for e in recorder.events if e.cat == "xfer"]


class TestZeroHopRoutes:
    def test_zero_hop_with_bytes_is_instant(self, sim):
        proc = sim.process(transfer(sim, [], 100))
        sim.run()
        assert proc.fired
        assert sim.now == 0.0

    def test_zero_hop_with_bytes_traces_for_reconciliation(self, sim):
        recorder = TraceRecorder()
        sim.trace = recorder
        sim.process(transfer(sim, [], 4096, label="colocated", lane="swap"))
        sim.run()
        spans = [e for e in recorder.events if e.cat == "xfer"]
        assert len(spans) == 1
        assert spans[0].nbytes == 4096
        assert spans[0].meta_dict()["links"] == ""

    def test_zero_hop_zero_bytes_traces_nothing(self, sim):
        recorder = TraceRecorder()
        sim.trace = recorder
        sim.process(transfer(sim, [], 0))
        sim.run()
        assert not recorder.events


class TestPathTimeEdges:
    def test_empty_path_any_bytes(self):
        assert path_time([], 0) == 0.0
        assert path_time([], 10**12) == 0.0

    def test_zero_and_negative_bytes(self, sim):
        link = Link(sim, "l", bandwidth=100.0, latency=0.5)
        assert path_time([link], 0) == 0.0
        assert path_time([link], -1) == 0.0

    def test_latency_included(self, sim):
        a = Link(sim, "a", bandwidth=100.0, latency=0.25)
        b = Link(sim, "b", bandwidth=50.0, latency=0.25)
        assert path_time([a, b], 100) == pytest.approx(0.5 + 2.0)

    def test_uses_nominal_bandwidth_not_degraded(self, sim):
        link = Link(sim, "l", bandwidth=100.0)
        link.degradation = lambda now: 0.5
        assert path_time([link], 100) == pytest.approx(1.0)
