"""Tests for bandwidth-arbitrated links and path transfers."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.links import Link, path_time, transfer


def run_transfer(sim, path, nbytes):
    return sim.process(transfer(sim, path, nbytes))


class TestSingleLink:
    def test_duration_is_bytes_over_bandwidth(self, sim):
        link = Link(sim, "l", bandwidth=100.0)
        run_transfer(sim, [link], 250)
        sim.run()
        assert sim.now == pytest.approx(2.5)

    def test_serializes_fifo(self, sim):
        link = Link(sim, "l", bandwidth=100.0)
        first = run_transfer(sim, [link], 100)
        second = run_transfer(sim, [link], 100)
        sim.run()
        assert sim.now == pytest.approx(2.0)
        assert first.fired and second.fired

    def test_accounting(self, sim):
        link = Link(sim, "l", bandwidth=100.0)
        run_transfer(sim, [link], 300)
        sim.run()
        assert link.bytes_moved == 300
        assert link.busy_time == pytest.approx(3.0)

    def test_zero_bytes_is_free(self, sim):
        link = Link(sim, "l", bandwidth=100.0)
        run_transfer(sim, [link], 0)
        sim.run()
        assert sim.now == 0.0
        assert link.bytes_moved == 0

    def test_negative_bytes_rejected(self, sim):
        link = Link(sim, "l", bandwidth=100.0)
        run_transfer(sim, [link], -5)
        with pytest.raises(SimulationError):
            sim.run()

    def test_bad_bandwidth_rejected(self, sim):
        with pytest.raises(SimulationError):
            Link(sim, "l", bandwidth=0.0)


class TestPaths:
    def test_min_bandwidth_governs(self, sim):
        fast = Link(sim, "fast", bandwidth=1000.0)
        slow = Link(sim, "slow", bandwidth=100.0)
        run_transfer(sim, [fast, slow], 100)
        sim.run()
        assert sim.now == pytest.approx(1.0)

    def test_shared_hop_serializes_distinct_paths(self, sim):
        shared = Link(sim, "up", bandwidth=100.0)
        leaf_a = Link(sim, "a", bandwidth=100.0)
        leaf_b = Link(sim, "b", bandwidth=100.0)
        run_transfer(sim, [leaf_a, shared], 100)
        run_transfer(sim, [leaf_b, shared], 100)
        sim.run()
        # Both need the shared uplink: total 2 s, not 1 s.
        assert sim.now == pytest.approx(2.0)

    def test_disjoint_paths_overlap(self, sim):
        a1, a2 = Link(sim, "a1", 100.0), Link(sim, "a2", 100.0)
        b1, b2 = Link(sim, "b1", 100.0), Link(sim, "b2", 100.0)
        run_transfer(sim, [a1, a2], 100)
        run_transfer(sim, [b1, b2], 100)
        sim.run()
        assert sim.now == pytest.approx(1.0)

    def test_opposed_acquisition_order_no_deadlock(self, sim):
        # Canonical id ordering prevents the classic AB/BA deadlock.
        x = Link(sim, "x", bandwidth=100.0)
        y = Link(sim, "y", bandwidth=100.0)
        first = run_transfer(sim, [x, y], 100)
        second = run_transfer(sim, [y, x], 100)
        sim.run()
        assert first.fired and second.fired
        assert sim.now == pytest.approx(2.0)

    def test_empty_path_is_noop(self, sim):
        proc = run_transfer(sim, [], 100)
        sim.run()
        assert proc.fired
        assert sim.now == 0.0


class TestPathTime:
    def test_uncontended_estimate(self, sim):
        fast = Link(sim, "fast", bandwidth=1000.0)
        slow = Link(sim, "slow", bandwidth=100.0)
        assert path_time([fast, slow], 100) == pytest.approx(1.0)

    def test_empty_or_zero(self, sim):
        link = Link(sim, "l", bandwidth=100.0)
        assert path_time([], 100) == 0.0
        assert path_time([link], 0) == 0.0
