"""Tests for the CUDA-stream analog."""

from repro.sim.engine import Simulator
from repro.sim.stream import Stream, StreamSet


class TestStreamOrdering:
    def test_ops_run_serially_in_order(self, sim):
        stream = Stream(sim, "s")
        finishes = []
        for duration in (2.0, 1.0, 3.0):
            event = stream.delay(duration)
            event.add_callback(lambda _v, d=duration: finishes.append((d, sim.now)))
        sim.run()
        assert finishes == [(2.0, 2.0), (1.0, 3.0), (3.0, 6.0)]

    def test_busy_time_accumulates(self, sim):
        stream = Stream(sim, "s")
        stream.delay(1.5)
        stream.delay(2.5)
        sim.run()
        assert stream.busy_time == 4.0

    def test_ops_completed_counter(self, sim):
        stream = Stream(sim, "s")
        stream.delay(1.0)
        stream.delay(1.0)
        sim.run()
        assert stream.ops_completed == 2

    def test_submit_after_drain_restarts(self, sim):
        stream = Stream(sim, "s")
        stream.delay(1.0)
        sim.run()
        done = stream.delay(1.0)
        sim.run()
        assert done.fired
        assert sim.now == 2.0


class TestBarriers:
    def test_barrier_blocks_later_ops(self, sim):
        stream = Stream(sim, "s")
        gate = sim.event()
        stream.barrier(gate)
        done = stream.delay(1.0)
        sim.schedule(5.0, gate.succeed)
        sim.run()
        assert done.fired
        assert sim.now == 6.0

    def test_barrier_on_fired_event_is_cheap(self, sim):
        stream = Stream(sim, "s")
        gate = sim.event()
        gate.succeed()
        stream.barrier(gate)
        done = stream.delay(1.0)
        sim.run()
        assert done.fired
        assert sim.now == 1.0

    def test_cross_stream_event_sync(self, sim):
        producer = Stream(sim, "p")
        consumer = Stream(sim, "c")
        ready = producer.delay(3.0)
        consumer.barrier(ready)
        done = consumer.delay(1.0)
        sim.run()
        assert done.fired
        assert sim.now == 4.0

    def test_barrier_does_not_count_busy(self, sim):
        stream = Stream(sim, "s")
        gate = sim.event()
        stream.barrier(gate)
        sim.schedule(10.0, gate.succeed)
        sim.run()
        assert stream.busy_time == 0.0


class TestHostCallback:
    def test_call_runs_in_stream_order(self, sim):
        stream = Stream(sim, "s")
        seen = []
        stream.delay(2.0)
        stream.call(lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.0]


class TestStreamSet:
    def test_five_streams(self, sim):
        streams = StreamSet(sim, "gpu0")
        assert len(streams.all()) == 5

    def test_by_name(self, sim):
        streams = StreamSet(sim, "gpu0")
        assert streams.by_name("compute") is streams.compute
        assert streams.by_name("p2p_in") is streams.p2p_in

    def test_by_name_rejects_unknown(self, sim):
        import pytest

        streams = StreamSet(sim, "gpu0")
        with pytest.raises(KeyError):
            streams.by_name("bogus")

    def test_streams_are_independent(self, sim):
        streams = StreamSet(sim, "gpu0")
        a = streams.compute.delay(5.0)
        b = streams.swap_in.delay(1.0)
        b.add_callback(lambda _v: None)
        sim.run()
        assert a.fired and b.fired
        assert sim.now == 5.0  # overlapped, not serialized
