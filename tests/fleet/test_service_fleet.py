"""The service's fleet rung: placement, certification, release hygiene.

Each test scripts exact requests against a small fleet so the outcome is
forced, not sampled: saturation sheds with the typed
``SHED_NO_CAPACITY`` reason, carved partitions are certified (or
rejected) by the analyzer at finish time, and every terminal path --
served, shed, chaos-crashed -- releases its reservation, so the fleet
always drains back to zero occupancy.
"""

import json

import pytest

from repro.fleet import FleetPlacer, fleet_of
from repro.service import (
    Outcome,
    PlannerService,
    PlanRequest,
    ServiceChaosSpec,
    ServiceConfig,
    ServiceFaultPlan,
    scripted_workload,
)
from repro.trace import TraceRecorder
from repro.trace.events import LANES


def _request(rid=0, *, tenant="t0", model="toy-transformer", minibatch=8,
             mode="pp", gpus=2, arrival=0.0, deadline=None,
             memory_share=1.0):
    return PlanRequest(rid=rid, tenant=tenant, model=model,
                       minibatch=minibatch, mode=mode, gpus=gpus,
                       arrival=arrival, deadline=deadline,
                       memory_share=memory_share)


def _serve(requests, *, servers=1, gpus=4, config=None, chaos=None,
           trace=None, **fleet_kwargs):
    service = PlannerService(
        config if config is not None else ServiceConfig(workers=4),
        chaos=chaos, trace=trace,
        fleet=FleetPlacer(fleet_of(servers, gpus), **fleet_kwargs),
    )
    results = service.run(requests)
    return service, {r.request.rid: r for r in results}


class TestPlacementOutcomes:
    def test_saturated_fleet_sheds_with_typed_reason(self):
        """Two concurrent full-memory full-width jobs cannot share one
        server: the second is shed at the placement rung."""
        service, by_rid = _serve([
            _request(0, tenant="a", gpus=4, arrival=0.0),
            _request(1, tenant="b", gpus=4, arrival=0.1),
        ], allow_timeslice=False)
        assert by_rid[0].outcome is Outcome.SERVED_FRESH
        assert by_rid[1].outcome is Outcome.SHED_NO_CAPACITY
        assert by_rid[1].outcome.group == "shed"
        assert "no server can host" in by_rid[1].detail
        assert service.metrics.of(Outcome.SHED_NO_CAPACITY) == 1

    def test_half_share_tenants_co_reside_as_partitions(self):
        service, by_rid = _serve([
            _request(0, tenant="a", gpus=4, arrival=0.0, memory_share=0.5),
            _request(1, tenant="b", gpus=4, arrival=0.1, memory_share=0.5),
        ])
        assert by_rid[0].outcome is Outcome.SERVED_FRESH
        assert by_rid[1].outcome.group in ("served", "degraded")
        placed = service.fleet_placed
        assert placed[0].kind == placed[1].kind == "partition"
        assert placed[0].devices == placed[1].devices
        assert service.metrics.fleet_partitioned == 2
        assert service.metrics.fleet_certified == 2

    def test_narrowed_job_time_slices(self):
        """A 4-device job arriving while 2 GPUs are held lands on the
        free pair as a time-slice placement."""
        service, by_rid = _serve([
            _request(0, tenant="a", gpus=2, arrival=0.0),
            _request(1, tenant="b", gpus=4, arrival=0.1),
        ])
        assert by_rid[1].outcome.group in ("served", "degraded")
        res = service.fleet_placed[1]
        assert res.kind == "timeslice"
        assert res.n_logical == 4 and res.n_devices == 2
        assert service.metrics.fleet_timesliced == 1

    def test_sequential_jobs_reuse_the_fleet(self):
        """Non-overlapping arrivals never contend: the first release
        frees the whole server for the second identity placement."""
        service, by_rid = _serve([
            _request(0, tenant="a", gpus=4, arrival=0.0),
            _request(1, tenant="b", gpus=4, arrival=50.0),
        ], allow_timeslice=False, allow_sharing=False)
        assert by_rid[0].outcome is Outcome.SERVED_FRESH
        assert by_rid[1].outcome is Outcome.SERVED_CACHED
        assert service.metrics.fleet_identity == 2
        assert service.metrics.of(Outcome.SHED_NO_CAPACITY) == 0


class TestCertificationGate:
    def test_tiny_partition_is_rejected_by_the_analyzer(self):
        """A declared share too small for the plan passes placement but
        fails certification -- typed shed, rejection counted, capacity
        returned."""
        service, by_rid = _serve([
            _request(0, gpus=4, memory_share=1e-7),
        ])
        assert by_rid[0].outcome is Outcome.SHED_NO_CAPACITY
        assert "analyzer rejected" in by_rid[0].detail
        assert service.metrics.fleet_rejections == 1
        assert service.metrics.fleet_certified == 0
        assert service.fleet.occupancy() == 0

    def test_certification_is_memoized_per_shape(self):
        """Identical (plan, width, share) shapes pay the analyzer once;
        the memo stores the certified bound plan."""
        service, by_rid = _serve([
            _request(rid, tenant=f"t{rid}", gpus=4, arrival=40.0 * rid)
            for rid in range(3)
        ])
        assert all(by_rid[r].outcome.group == "served" for r in range(3))
        assert service.metrics.fleet_certified == 3
        assert len(service.fleet_bounds) == 1
        (bound,) = service.fleet_bounds.values()
        assert bound is not None and bound.binding.is_identity


class TestReleaseHygiene:
    def test_fleet_drains_to_zero_after_a_clean_run(self):
        service, _ = _serve(
            scripted_workload(30, seed=3, gpus=(2, 4), shares=(1.0, 0.5))
        )
        assert service.fleet.occupancy() == 0
        assert service.fleet.active == ()
        assert service.metrics.fleet_placements == service.fleet.releases

    def test_no_reservation_leaks_under_chaos_and_degradation(self):
        """Crashes, slowdowns and poisons all route through _resolve,
        which is the single release point -- so even a chaos storm ends
        with every carved fraction returned."""
        service, results = _serve(
            scripted_workload(60, seed=1, gpus=(2, 4), shares=(1.0, 0.5)),
            servers=2,
            chaos=ServiceFaultPlan(ServiceChaosSpec.chaos(2.0), seed=1),
        )
        assert service.metrics.chaos_crashes > 0
        assert len(results) == 60
        assert service.fleet.occupancy() == 0
        assert service.fleet.active == ()

    def test_placements_tracked_for_reporting_after_release(self):
        service, by_rid = _serve([_request(0, gpus=4)])
        assert 0 in service.fleet_placed
        assert service.fleet_placed[0].kind == "identity"
        assert service.fleet.active == ()


class TestFleetObservability:
    def test_fleet_lane_is_registered(self):
        assert "fleet" in LANES

    def test_trace_carries_place_instants_and_hold_spans(self):
        trace = TraceRecorder()
        service, by_rid = _serve([
            _request(0, tenant="a", gpus=4, arrival=0.0),
            _request(1, tenant="b", gpus=2, arrival=30.0, memory_share=0.5),
        ], trace=trace)
        fleet_events = [e for e in trace.events if e.lane == "fleet"]
        places = [e for e in fleet_events if e.name.startswith("place")]
        holds = [e for e in fleet_events if e.name.startswith("hold")]
        assert {e.name for e in places} == {"place req0", "place req1"}
        assert {e.name for e in holds} == {"hold req0", "hold req1"}
        for hold in holds:
            assert hold.t1 > hold.t0
            meta = hold.meta_dict()
            assert meta["tenant"] in ("a", "b")
            assert meta["kind"] in ("identity", "partition")
            assert meta["server"] == 0

    def test_metrics_snapshot_has_a_fleet_section(self):
        service, _ = _serve([
            _request(0, gpus=4, arrival=0.0),
            _request(1, tenant="t1", gpus=2, arrival=40.0),
        ], servers=2)
        snap = service.metrics.snapshot()
        fleet = snap["fleet"]
        assert fleet["servers"] == 2 and fleet["gpus"] == 8
        assert fleet["placements"] == 2
        assert fleet["certified"] == 2
        assert 0.0 < fleet["utilization"] <= 1.0
        assert 0.0 < fleet["peak_occupancy"] <= 1.0
        assert fleet["utilization"] == pytest.approx(
            service.metrics.fleet_utilization
        )

    def test_fleetless_service_reports_zeroed_fleet_section(self):
        service = PlannerService(ServiceConfig())
        service.run([_request(0)])
        fleet = service.metrics.snapshot()["fleet"]
        assert fleet["servers"] == 0 and fleet["placements"] == 0
        assert service.metrics.fleet_utilization == 0.0

    def test_describe_mentions_the_fleet(self):
        service, _ = _serve([_request(0, gpus=4)])
        assert "fleet" in service.metrics.describe()


class TestDeterminism:
    def test_fleet_backed_runs_are_bit_identical(self):
        def run():
            service, results = _serve(
                scripted_workload(40, seed=0, gpus=(2, 4),
                                  shares=(1.0, 0.5)),
                servers=2,
                chaos=ServiceFaultPlan(ServiceChaosSpec.chaos(1.0), seed=0),
            )
            return (json.dumps(service.metrics.snapshot(), sort_keys=True),
                    [r.outcome for r in results.values()])

        assert run() == run()
