"""FleetPlacer unit properties: exact arithmetic, ladder, determinism.

The placer is pure bookkeeping -- no RNG, no wall clock -- so every test
here is a hard equality: residuals are :class:`~fractions.Fraction`
values that must round-trip exactly through any reserve/release history,
and identical call sequences must produce identical placements.
"""

from fractions import Fraction

import pytest

from repro.common.errors import SimulationError
from repro.common.rng import seeded_rng
from repro.fleet import FleetPlacer, NoCapacityError, fleet_of

HALF = Fraction(1, 2)
QUARTER = Fraction(1, 4)


def placer(servers=2, gpus=4, **kwargs):
    return FleetPlacer(fleet_of(servers, gpus), **kwargs)


class TestReserveLadder:
    def test_full_share_on_free_server_is_identity(self):
        p = placer()
        res = p.reserve("a", 4)
        assert res.kind == "identity"
        assert res.server == 0
        assert res.devices == (0, 1, 2, 3)
        assert res.share == 1
        assert res.binding().is_identity

    def test_second_full_job_lands_on_second_server(self):
        p = placer()
        p.reserve("a", 4)
        res = p.reserve("b", 4)
        assert (res.server, res.devices) == (1, (0, 1, 2, 3))

    def test_fractional_share_is_partition(self):
        p = placer()
        res = p.reserve("a", 4, share=HALF)
        assert res.kind == "partition"
        binding = res.binding()
        assert not binding.topology.is_uniform
        assert all(d.memory_scale == 0.5 for d in binding.topology.devices)
        assert all(d.flops_scale == 1.0 for d in binding.topology.devices)

    def test_partitions_co_reside_on_the_same_gpus(self):
        p = placer(servers=1)
        a = p.reserve("a", 4, share=HALF)
        b = p.reserve("b", 4, share=HALF)
        assert a.devices == b.devices == (0, 1, 2, 3)
        assert p.occupancy() == 1
        assert p.tenants_on(0, 0) == ("a", "b")

    def test_best_fit_fills_carved_gpus_first(self):
        """A second fractional job lands on the already-carved GPUs, not
        on fresh ones -- that keeps whole GPUs free for identity binds."""
        p = placer(servers=1)
        a = p.reserve("a", 2, share=HALF)
        assert a.devices == (0, 1)
        b = p.reserve("b", 2, share=HALF)
        assert b.devices == (0, 1), "best-fit should reuse carved GPUs"
        c = p.reserve("c", 2)
        assert c.devices == (2, 3), "full-share job gets the free GPUs"

    def test_narrow_server_time_slices(self):
        p = placer(servers=1)
        p.reserve("a", 2)
        res = p.reserve("b", 4)
        assert res.kind == "timeslice"
        assert res.devices == (2, 3)
        assert res.n_logical == 4
        binding = res.binding()
        assert binding.n_logical == 4 and binding.n_physical == 2
        assert not binding.injective

    def test_no_capacity_returns_none(self):
        p = placer(servers=1)
        p.reserve("a", 4)
        assert p.reserve("b", 1) is None
        with pytest.raises(NoCapacityError):
            p.require("b", 1)

    def test_allow_timeslice_off_is_full_width_or_nothing(self):
        p = placer(servers=1, allow_timeslice=False)
        p.reserve("a", 2)
        assert p.reserve("b", 4) is None

    def test_allow_sharing_off_blocks_co_residency(self):
        p = placer(servers=1, allow_sharing=False)
        p.reserve("a", 4, share=HALF)
        assert p.reserve("b", 4, share=HALF) is None

    def test_invalid_requests_raise(self):
        p = placer()
        with pytest.raises(SimulationError):
            p.reserve("a", 0)
        with pytest.raises(SimulationError):
            p.reserve("a", 2, share=0)
        with pytest.raises(SimulationError):
            p.reserve("a", 2, share=Fraction(3, 2))


class TestExactAccounting:
    def test_reserve_release_round_trips_exactly(self):
        p = placer()
        history = [
            p.reserve("a", 4),
            p.reserve("b", 3, share=HALF),
            p.reserve("c", 2, share=QUARTER),
            p.reserve("d", 4, share=QUARTER),
        ]
        for res in history:
            assert res is not None
            p.release(res)
        assert p.occupancy() == 0
        for s in range(p.n_servers):
            for g in range(4):
                assert p.residual(s, g) == Fraction(1)

    def test_occupancy_is_exact_fraction(self):
        p = placer(servers=1)
        p.reserve("a", 2, share=HALF)
        assert p.occupancy() == Fraction(1, 4)
        p.reserve("b", 1, share=QUARTER)
        assert p.occupancy() == Fraction(1, 4) + Fraction(1, 16)

    def test_gpu_share_totals(self):
        p = placer()
        res = p.reserve("a", 3, share=HALF)
        assert res.gpu_share == Fraction(3, 2)

    def test_double_release_raises(self):
        p = placer()
        res = p.reserve("a", 2)
        p.release(res)
        with pytest.raises(SimulationError):
            p.release(res)

    def test_residuals_stay_in_unit_interval_under_seeded_churn(self):
        """A seeded storm of random reserve/release churn can never
        drive any GPU's residual outside [0, 1] -- the placer's core
        safety invariant (per-GPU shares always sum to <= 1)."""
        rng = seeded_rng(0, "fleet-churn")
        p = placer(servers=3)
        live = []
        for step in range(300):
            if live and rng.random() < 0.45:
                p.release(live.pop(rng.randrange(len(live))))
            else:
                share = rng.choice([Fraction(1), HALF, QUARTER])
                res = p.reserve(f"t{step % 5}", rng.randrange(1, 5), share)
                if res is not None:
                    live.append(res)
            for s in range(p.n_servers):
                for g in range(4):
                    assert 0 <= p.residual(s, g) <= 1
        for res in live:
            p.release(res)
        assert p.occupancy() == 0


class TestDeterminism:
    def test_identical_histories_place_identically(self):
        def run():
            p = placer(servers=2)
            out = []
            held = {}
            script = [
                ("r", "a", 4, Fraction(1)),
                ("r", "b", 2, HALF),
                ("r", "c", 4, HALF),
                ("x", "b"),
                ("r", "d", 3, QUARTER),
                ("r", "e", 4, Fraction(1)),
            ]
            for op in script:
                if op[0] == "r":
                    res = p.reserve(op[1], op[2], op[3])
                    if res is not None:
                        held[op[1]] = res
                    out.append(res)
                else:
                    p.release(held.pop(op[1]))
            return [(r.server, r.devices, r.share, r.kind)
                    if r is not None else None for r in out]

        assert run() == run()


class TestReporting:
    def test_snapshot_shape(self):
        p = placer()
        p.reserve("a", 4)
        snap = p.snapshot()
        assert snap["servers"] == 2 and snap["gpus"] == 8
        assert snap["placements"] == 1 and snap["active"] == 1
        assert snap["occupancy"] == 0.5
        assert snap["residual"][0] == [0.0] * 4
        assert snap["residual"][1] == [1.0] * 4

    def test_describe_mentions_every_server(self):
        p = placer(servers=3)
        text = p.describe()
        for s in range(3):
            assert f"s{s}:" in text

    def test_active_reservations_in_token_order(self):
        p = placer()
        a = p.reserve("a", 1)
        b = p.reserve("b", 1)
        assert p.active == (a, b)
        p.release(a)
        assert p.active == (b,)
