"""The fleet storm acceptance matrix: seeds x fleet sizes, zero leaks.

The issue's bar: seeded storms of mixed zoo jobs (widths 2 and 4,
memory shares 1 and 1/2) over {2, 4}-server fleets across 5 seeds must
end with every request terminally resolved under a typed outcome, the
fleet drained to zero occupancy, per-tenant GPU work conserved by every
certified bind (a placement may move a task between devices, never
create or destroy FLOPs), and bit-identical metrics on a rerun.
"""

import json
from collections import Counter
from fractions import Fraction

import pytest

from repro.fleet import FleetPlacer, fleet_of
from repro.service import (
    Outcome,
    PlannerService,
    ServiceConfig,
    scripted_workload,
)

SEEDS = (0, 1, 2, 3, 4)
FLEETS = (2, 4)
STORM_SIZE = 80


def _storm(seed, servers):
    requests = scripted_workload(
        STORM_SIZE, seed=seed, gpus=(2, 4), shares=(1.0, 0.5)
    )
    service = PlannerService(
        ServiceConfig(workers=3),
        fleet=FleetPlacer(fleet_of(servers, 4)),
        seed=seed,
    )
    results = service.run(requests)
    return service, results


@pytest.fixture(scope="module")
def storms():
    """All ten storm cells, run once and shared (the expensive part)."""
    return {
        (seed, servers): _storm(seed, servers)
        for seed in SEEDS for servers in FLEETS
    }


@pytest.mark.parametrize("servers", FLEETS)
@pytest.mark.parametrize("seed", SEEDS)
class TestStormCell:
    def test_every_request_resolves_with_a_typed_outcome(
            self, storms, seed, servers):
        service, results = storms[(seed, servers)]
        assert len(results) == STORM_SIZE
        assert service.metrics.resolved == STORM_SIZE
        for result in results:
            assert isinstance(result.outcome, Outcome)
            assert result.outcome.group in (
                "served", "degraded", "shed", "failed"
            )
            if result.outcome.group == "shed":
                assert result.detail

    def test_fleet_drains_and_accounting_balances(
            self, storms, seed, servers):
        service, _ = storms[(seed, servers)]
        assert service.fleet.occupancy() == 0
        assert service.fleet.active == ()
        assert service.metrics.fleet_placements == service.fleet.releases
        assert service.metrics.fleet_certified \
            + service.metrics.fleet_rejections \
            <= service.metrics.fleet_placements
        assert 0.0 <= service.metrics.fleet_utilization <= 1.0

    def test_per_tenant_gpu_work_is_conserved(self, storms, seed, servers):
        """Every plan a tenant was served executed exactly its logical
        GPU work: the certified bound graph's task multiset (kind, FLOPs,
        layer range) equals the logical plan's -- binds relocate tasks,
        they never create or destroy work."""
        service, results = storms[(seed, servers)]
        checked = 0
        for result in results:
            reservation = service.fleet_placed.get(result.request.rid)
            if reservation is None or not result.outcome.carries_plan:
                continue
            shape = (result.plan_key, len(reservation.devices),
                     reservation.share, reservation.n_logical)
            bound = service.fleet_bounds[shape]
            assert bound is not None, (
                f"req{result.request.rid} served off an uncertified bind"
            )
            logical = Counter(
                (t.kind, t.total_flops, t.first_layer, t.last_layer)
                for t in bound.plan.graph.tasks
            )
            physical = Counter(
                (t.kind, t.total_flops, t.first_layer, t.last_layer)
                for t in bound.graph.tasks
            )
            assert physical == logical, (
                f"req{result.request.rid} ({reservation.tenant}): "
                f"bind changed the GPU work"
            )
            checked += 1
        assert checked > 0

    def test_rerun_is_bit_identical(self, storms, seed, servers):
        service, results = storms[(seed, servers)]
        again, results2 = _storm(seed, servers)
        assert json.dumps(service.metrics.snapshot(), sort_keys=True) \
            == json.dumps(again.metrics.snapshot(), sort_keys=True)
        assert [r.outcome for r in results] == \
            [r.outcome for r in results2]
        assert [r.resolved_at for r in results] == \
            [r.resolved_at for r in results2]


class TestAcrossTheMatrix:
    def test_sharing_rungs_are_genuinely_exercised(self, storms):
        """Across the whole matrix the storm must reach identity,
        partition AND time-slice placements, plus at least one capacity
        shed -- a storm that only ever sees free servers proves nothing
        about co-placement."""
        identity = partitioned = timesliced = shed = 0
        for service, _ in storms.values():
            identity += service.metrics.fleet_identity
            partitioned += service.metrics.fleet_partitioned
            timesliced += service.metrics.fleet_timesliced
            shed += service.metrics.of(Outcome.SHED_NO_CAPACITY)
        assert identity > 0 and partitioned > 0 and timesliced > 0
        assert shed > 0

    def test_partition_shares_stay_dyadic_exact(self, storms):
        """The 1/2 shares the storm draws survive as exact Fractions all
        the way into the reservation log (no float drift)."""
        for service, _ in storms.values():
            for reservation in service.fleet_placed.values():
                assert reservation.share in (Fraction(1), Fraction(1, 2))

    def test_bigger_fleet_never_sheds_more(self, storms):
        """For the same seed, doubling the fleet can only reduce (or
        hold) capacity sheds -- a basic sanity on the placer actually
        using the extra servers."""
        for seed in SEEDS:
            small, _ = storms[(seed, 2)]
            big, _ = storms[(seed, 4)]
            assert big.metrics.of(Outcome.SHED_NO_CAPACITY) \
                <= small.metrics.of(Outcome.SHED_NO_CAPACITY)

    def test_seeds_differ(self, storms):
        snapshots = {
            json.dumps(storms[(seed, 2)][0].metrics.snapshot(),
                       sort_keys=True)
            for seed in SEEDS
        }
        assert len(snapshots) == len(SEEDS)
