"""Tenant-isolation harness: co-placement must be invisible to tenants.

The fleet's whole promise is that sharing servers never leaks between
tenants.  Three guarantees, each checked as a hard bit-level fact:

a. a co-placed job whose reservation realizes as an *identity* bind
   executes bit-identically to its solo run (canonical trace text plus
   ``float.hex`` metrics), across the model zoo x {dp, pp} x 5 seeds;
b. a tenant's carved memory partition is *proved* sufficient -- the
   placer's bind re-runs the full static analyzer with the partition as
   the per-device capacity vector, and a partition that is too small is
   rejected up front rather than discovered at run time;
c. chaos injected into one tenant's run never perturbs another tenant's
   virtual-time trace when their devices are disjoint.
"""

from fractions import Fraction

import pytest

from repro.common.errors import ScheduleAnalysisError
from repro.core.harmony import Harmony, HarmonyOptions
from repro.experiments.common import server_for
from repro.faults import FaultPlan, FaultSpec
from repro.fleet import FleetPlacer, fleet_of
from repro.trace import TraceRecorder

MODELS = ("toy-transformer", "tiny-cnn")
MODES = ("pp", "dp")
SEEDS = (0, 1, 2, 3, 4)
GPUS = 4
MINIBATCH = 16
HALF = Fraction(1, 2)


def _harmony(model, mode, seed):
    return Harmony(model, server_for(GPUS), MINIBATCH,
                   options=HarmonyOptions(mode=mode, seed=seed))


def _run(harmony, plan):
    trace = TraceRecorder()
    report = harmony.run(plan=plan, trace=trace)
    return trace.canonical(), report.metrics


def _assert_bit_identical(solo, co, label):
    solo_trace, solo_metrics = solo
    co_trace, co_metrics = co
    assert co_trace == solo_trace, f"{label}: co-placement moved the timeline"
    for attr in ("iteration_time", "throughput"):
        assert getattr(co_metrics, attr).hex() \
            == getattr(solo_metrics, attr).hex(), (
                f"{label}: co-placement changed {attr} at the bit level"
            )


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("seed", SEEDS)
def test_co_placed_identity_tenant_is_bit_identical(model, mode, seed):
    """Guarantee (a): with a neighbour occupying server 0, a tenant
    placed whole onto server 1 gets an identity bind and reproduces its
    solo run bit for bit."""
    harmony = _harmony(model, mode, seed)
    plan = harmony.plan()
    solo = _run(harmony, plan)

    placer = FleetPlacer(fleet_of(2, GPUS))
    neighbour = placer.require("neighbour", GPUS)
    mine = placer.require("tenant", GPUS)
    assert neighbour.server != mine.server
    assert mine.kind == "identity"

    bound = placer.bind(mine, plan)
    _assert_bit_identical(solo, _run(harmony, bound),
                          f"{model}/{mode}/seed{seed}")

    placer.release(neighbour)
    placer.release(mine)
    assert placer.occupancy() == 0


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("mode", MODES)
def test_partition_bind_is_analyzer_certified(model, mode):
    """Guarantee (b): a fractional reservation's bind re-runs the full
    static pass set with the tenant's partition as the capacity vector --
    a clean return proves the job fits inside its share."""
    harmony = _harmony(model, mode, seed=0)
    plan = harmony.plan()

    placer = FleetPlacer(fleet_of(1, GPUS))
    res = placer.require("tenant", GPUS, share=HALF)
    assert res.kind == "partition"

    bound = placer.bind(res, plan)
    assert bound.report is not None and not bound.report.errors
    ran = {r.name for r in bound.report.results if r.skipped is None}
    assert {"capacity", "parametric", "hb", "lifetime"} <= ran

    # The certified capacity vector IS the carved partition: exactly
    # share x the physical card, on every device the tenant holds.
    base = bound.server.gpu.memory_bytes
    assert bound.binding.device_memory(base) \
        == [int(base * HALF)] * GPUS


def test_too_small_partition_is_rejected_up_front():
    """Guarantee (b), negative direction: a partition the job cannot fit
    in fails certification at bind time (capacity analyzer), not at run
    time -- callers release the reservation and shed."""
    harmony = _harmony("toy-transformer", "pp", seed=0)
    plan = harmony.plan()
    placer = FleetPlacer(fleet_of(1, GPUS))
    res = placer.require("tenant", GPUS, share=Fraction(1, 1 << 20))
    with pytest.raises(ScheduleAnalysisError):
        placer.bind(res, plan)
    # The reservation is still live; the caller releases it on shed.
    placer.release(res)
    assert placer.occupancy() == 0


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("seed", SEEDS)
def test_neighbour_chaos_never_perturbs_disjoint_tenant(model, mode, seed):
    """Guarantee (c): a neighbour tenant living through a chaos run on
    server 0 leaves a server-1 tenant's virtual-time trace untouched."""
    harmony = _harmony(model, mode, seed)
    plan = harmony.plan()
    solo = _run(harmony, plan)

    placer = FleetPlacer(fleet_of(2, GPUS))
    noisy = placer.require("noisy", GPUS)
    quiet = placer.require("quiet", GPUS)
    assert set(noisy.devices) and noisy.server != quiet.server

    # The noisy neighbour runs under the standard chaos mix...
    noisy_harmony = _harmony(model, mode, seed)
    noisy_bound = placer.bind(noisy, noisy_harmony.plan())
    noisy_report = noisy_harmony.run(
        plan=noisy_bound,
        fault_plan=FaultPlan(FaultSpec.chaos(1.0), seed=seed),
    )
    assert noisy_report.metrics.iteration_time > 0

    # ...and the quiet tenant's run is still bit-identical to solo.
    quiet_bound = placer.bind(quiet, plan)
    _assert_bit_identical(solo, _run(harmony, quiet_bound),
                          f"{model}/{mode}/seed{seed}")


def test_co_resident_partition_tenants_both_execute():
    """Two half-memory tenants carved onto the SAME four GPUs both
    certify and both run -- co-residency is not mutually destructive."""
    placer = FleetPlacer(fleet_of(1, GPUS))
    reports = []
    held = []
    for tenant, seed in (("a", 0), ("b", 1)):
        harmony = _harmony("toy-transformer", "pp", seed)
        res = placer.require(tenant, GPUS, share=HALF)
        assert res.kind == "partition"
        held.append(res)
        bound = placer.bind(res, harmony.plan())
        reports.append(harmony.run(plan=bound))
    assert held[0].devices == held[1].devices
    assert placer.occupancy() == 1
    for report in reports:
        assert report.metrics.iteration_time > 0
    for res in held:
        placer.release(res)
    assert placer.occupancy() == 0
