"""Tests for the model zoo: layer counts, parameter counts, structure."""

import pytest

from repro.models.cnn import tiny_cnn
from repro.models.transformer import GPT2, custom_gpt2, tiny_transformer
from repro.models.zoo import available_models, build_model


class TestTransformers:
    def test_gpt2_matches_paper_scheduling_range(self):
        # Table 5 shows GPT2 packs spanning L0-51.
        model = build_model("gpt2")
        assert model.n_layers == 52
        assert 1.4e9 < model.n_parameters < 1.8e9

    def test_bert96_spans_l0_to_l99(self):
        assert build_model("bert96").n_layers == 100

    def test_bert_large_size(self):
        model = build_model("bert-large")
        assert 3.0e8 < model.n_parameters < 3.7e8

    def test_custom_gpt2_sizes(self):
        for billions in (10, 20, 30, 40):
            model = build_model(f"gpt2-{billions}b")
            assert model.n_parameters == pytest.approx(billions * 1e9, rel=0.08)

    def test_custom_gpt2_rejects_odd_size(self):
        with pytest.raises(ValueError):
            custom_gpt2(15)

    def test_transformers_use_adam(self):
        assert build_model("gpt2").optimizer == "adam"
        assert build_model("gpt2").optimizer_slots == 2

    def test_chain_structure(self):
        graph = build_model("gpt2").graph
        assert graph.is_chain()
        assert graph[0].kind == "embedding"
        assert graph[len(graph) - 1].kind == "loss"

    def test_blocks_are_uniform(self):
        graph = build_model("gpt2").graph
        blocks = [l for l in graph if l.kind == "transformer"]
        assert len(blocks) == GPT2.n_blocks
        assert len({b.param_bytes for b in blocks}) == 1

    def test_tiny_transformer_parametrized(self):
        model = tiny_transformer(n_blocks=3, hidden=32, seq_len=8)
        assert model.n_layers == 3 + 4


class TestCnns:
    def test_vgg416_spans_l0_to_l416(self):
        assert build_model("vgg416").n_layers == 417

    def test_resnet1k_spans_l0_to_l1029(self):
        assert build_model("resnet1k").n_layers == 1030

    def test_cnns_are_sequentialized_chains(self):
        for name in ("vgg416", "resnet1k"):
            assert build_model(name).graph.is_chain(), name

    def test_cnns_use_sgd(self):
        assert build_model("vgg416").optimizer == "sgd"

    def test_cnn_layer_diversity(self):
        # "CNNs exhibit greater diversity in layer runtime and memory size"
        graph = build_model("vgg416").graph
        flops = [l.flops_fwd_per_sample for l in graph if l.kind == "conv"]
        assert max(flops) / min(flops) > 2.0

    def test_resnet_residual_payload_carried(self):
        # Sequentialization inflates the in-block boundary sizes.
        graph = build_model("resnet1k").graph
        convs = [l for l in graph if l.kind == "conv"]
        widened = [
            l for l in convs
            if l.act_in_bytes_per_sample != l.act_out_bytes_per_sample
        ]
        assert widened  # skip payloads present

    def test_tiny_cnn_builds(self):
        model = tiny_cnn(n_blocks=2)
        assert model.graph.is_chain()


class TestZoo:
    def test_available_models_sorted(self):
        names = available_models()
        assert names == sorted(names)
        assert "gpt2" in names

    def test_unknown_name_lists_options(self):
        with pytest.raises(KeyError, match="available"):
            build_model("gpt5")

    def test_memoization(self):
        assert build_model("gpt2") is build_model("gpt2")

    def test_model_state_exceeds_collective_gpu_memory(self):
        """The premise of the paper: these models exhaust all four GPUs."""
        from repro.hardware.server import four_gpu_commodity_server

        server = four_gpu_commodity_server()
        for name in ("bert96", "gpt2"):
            model = build_model(name)
            assert model.model_state_bytes > server.collective_gpu_memory * 0.4
