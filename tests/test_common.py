"""Tests for shared helpers: units, errors, metrics, model spec."""

import pytest

from repro.common.errors import (
    GpuOutOfMemoryError,
    HostOutOfMemoryError,
    InfeasibleConfigError,
    ReproError,
)
from repro.common.units import GiB, KiB, MiB, fmt_bytes, fmt_time
from repro.runtime.metrics import GpuMetrics, RunMetrics


class TestUnits:
    def test_constants(self):
        assert KiB == 1024
        assert MiB == 1024 * KiB
        assert GiB == 1024 * MiB

    def test_fmt_bytes_picks_suffix(self):
        assert fmt_bytes(3 * GiB) == "3.00 GiB"
        assert fmt_bytes(5 * MiB) == "5.00 MiB"
        assert fmt_bytes(100) == "100 B"

    def test_fmt_bytes_negative(self):
        assert fmt_bytes(-2 * KiB) == "-2.00 KiB"

    def test_fmt_time_ranges(self):
        assert fmt_time(1.5) == "1.5 s"
        assert fmt_time(0.0123).endswith("ms")
        assert fmt_time(3e-6).endswith("us")
        assert fmt_time(2e-9).endswith("ns")


class TestErrors:
    def test_hierarchy(self):
        for exc in (GpuOutOfMemoryError, HostOutOfMemoryError,
                    InfeasibleConfigError):
            assert issubclass(exc, ReproError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise GpuOutOfMemoryError("boom")


class TestRunMetrics:
    def _metrics(self):
        return RunMetrics(
            mode="test", minibatch=10, iteration_time=2.0,
            gpus=[
                GpuMetrics(swap_in_bytes=100, swap_out_bytes=50,
                           p2p_in_bytes=25, compute_busy=1.5),
                GpuMetrics(swap_in_bytes=200, swap_out_bytes=0,
                           p2p_in_bytes=75, compute_busy=2.0),
            ],
        )

    def test_throughput(self):
        assert self._metrics().throughput == pytest.approx(5.0)

    def test_zero_time_throughput(self):
        metrics = RunMetrics(mode="t", minibatch=1, iteration_time=0.0)
        assert metrics.throughput == 0.0

    def test_global_aggregates(self):
        metrics = self._metrics()
        assert metrics.global_swap_bytes == 350
        assert metrics.global_p2p_bytes == 100

    def test_idle_fraction(self):
        metrics = self._metrics()
        assert metrics.idle_fraction(0) == pytest.approx(0.25)
        assert metrics.idle_fraction(1) == pytest.approx(0.0)

    def test_describe_lists_gpus(self):
        text = self._metrics().describe()
        assert "gpu0" in text and "gpu1" in text


class TestModelSpec:
    def test_unknown_optimizer_rejected(self, toy_model):
        from dataclasses import replace

        with pytest.raises(ValueError):
            replace(toy_model, optimizer="lion")

    def test_summary_mentions_state(self, toy_model):
        assert "GiB" in toy_model.summary()

    def test_optimizer_slots(self, toy_model):
        assert toy_model.optimizer == "adam"
        assert toy_model.optimizer_slots == 2
        assert toy_model.model_state_bytes == toy_model.weight_bytes * 4
