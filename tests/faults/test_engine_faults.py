"""Simulator failure propagation and the watchdog.

The contract under test: a failed event always surfaces as a typed
exception -- thrown into waiters, propagated through composites, or
re-raised from ``Simulator.run`` when nobody was listening -- and a
schedule that stops making progress trips the watchdog instead of
spinning forever.
"""

import pytest

from repro.common.errors import SimulationError, TransferFaultError
from repro.sim.engine import SimEvent, Simulator


class TestEventFailure:
    def test_fail_throws_into_waiting_process(self, sim):
        event = SimEvent(sim, name="doomed")
        caught = []

        def waiter():
            try:
                yield event
            except TransferFaultError as exc:
                caught.append(exc)

        def failer():
            yield sim.timeout(1.0)
            event.fail(TransferFaultError("boom", entity="gpu0.swap_in"))

        sim.process(waiter())
        sim.process(failer())
        sim.run()
        assert len(caught) == 1
        assert caught[0].entity == "gpu0.swap_in"

    def test_failed_event_state(self, sim):
        event = SimEvent(sim, name="x")
        exc = TransferFaultError("boom")
        done = []

        def waiter():
            with pytest.raises(TransferFaultError):
                yield event
            done.append(True)

        def failer():
            yield sim.timeout(1.0)
            event.fail(exc)

        sim.process(waiter())
        sim.process(failer())
        sim.run()
        assert done
        assert event.fired and event.failed
        assert event.exception is exc
        with pytest.raises(TransferFaultError):
            event.value

    def test_unhandled_failure_reraised_from_run(self, sim):
        SimEvent(sim, name="orphan").fail(TransferFaultError("lost fault"))
        with pytest.raises(TransferFaultError, match="lost fault"):
            sim.run()
        # The unhandled record is consumed: the next run is clean.
        sim.run()

    def test_fail_after_fire_rejected(self, sim):
        event = SimEvent(sim).succeed()
        with pytest.raises(SimulationError, match="twice"):
            event.fail(RuntimeError("late"))

    def test_value_before_fire_rejected(self, sim):
        with pytest.raises(SimulationError, match="before"):
            SimEvent(sim, name="early").value

    def test_all_of_fails_on_first_constituent_failure(self, sim):
        left = SimEvent(sim, name="left")
        right = SimEvent(sim, name="right")
        caught = []

        def waiter():
            try:
                yield sim.all_of([left, right])
            except TransferFaultError as exc:
                caught.append(exc)

        def driver():
            yield sim.timeout(1.0)
            left.succeed()
            right.fail(TransferFaultError("half dead"))

        sim.process(waiter())
        sim.process(driver())
        sim.run()
        assert len(caught) == 1

    def test_process_failure_propagates_to_its_waiter(self, sim):
        def inner():
            yield sim.timeout(1.0)
            raise TransferFaultError("from inner")

        caught = []

        def outer():
            try:
                yield sim.process(inner())
            except TransferFaultError as exc:
                caught.append(exc)

        sim.process(outer())
        sim.run()
        assert len(caught) == 1


class TestWatchdog:
    def test_max_steps_trips_with_pending_process_names(self):
        sim = Simulator()

        def spinner():
            while True:
                yield sim.timeout(1.0)

        sim.process(spinner(), name="runaway-proc")
        with pytest.raises(SimulationError) as err:
            sim.run(max_steps=16)
        assert "steps" in str(err.value)
        assert "runaway-proc" in str(err.value)

    def test_horizon_trips_on_virtual_time(self):
        sim = Simulator()

        def spinner():
            while True:
                yield sim.timeout(1.0)

        sim.process(spinner(), name="slowpoke")
        with pytest.raises(SimulationError) as err:
            sim.run(horizon=5.0)
        assert "horizon" in str(err.value)
        assert "slowpoke" in str(err.value)

    def test_generous_limits_do_not_fire(self, sim):
        ticks = []

        def worker():
            for _ in range(10):
                yield sim.timeout(0.1)
            ticks.append(True)

        sim.process(worker())
        sim.run(max_steps=10_000, horizon=1e6)
        assert ticks

    def test_until_still_pauses_quietly(self, sim):
        def worker():
            yield sim.timeout(10.0)

        sim.process(worker())
        assert sim.run(until=1.0) == 1.0
