"""Link-layer fault surfaces: aborted transfers and lazy degradation."""

import pytest

from repro.common.errors import SimulationError, TransferFaultError
from repro.sim.links import Link, TransferFault, transfer


def _run(sim, gen):
    result = []

    def proc():
        try:
            yield from gen
        except TransferFaultError as exc:
            result.append(exc)

    sim.process(proc())
    sim.run()
    return result


class TestTransferFault:
    def test_abort_counts_busy_time_not_bytes(self, sim):
        link = Link(sim, "hop", bandwidth=100.0)
        fault = TransferFault(error=TransferFaultError("abort"), fraction=0.5)
        caught = _run(sim, transfer(sim, [link], 100, fault=fault))
        assert len(caught) == 1
        assert link.bytes_moved == 0          # goodput: nothing arrived
        assert link.busy_time == pytest.approx(0.5)  # contention was real
        assert sim.now == pytest.approx(0.5)

    def test_clean_transfer_unchanged(self, sim):
        link = Link(sim, "hop", bandwidth=100.0)
        assert not _run(sim, transfer(sim, [link], 100))
        assert link.bytes_moved == 100
        assert link.busy_time == pytest.approx(1.0)

    def test_fault_releases_the_links(self, sim):
        link = Link(sim, "hop", bandwidth=100.0)
        fault = TransferFault(error=TransferFaultError("abort"), fraction=0.5)
        caught = _run(sim, transfer(sim, [link], 100, fault=fault))
        assert caught
        # A second transfer reuses the link without waiting forever.
        assert not _run(sim, transfer(sim, [link], 100))
        assert link.bytes_moved == 100

    def test_zero_byte_faulted_transfer_still_raises(self, sim):
        fault = TransferFault(error=TransferFaultError("abort"))
        assert _run(sim, transfer(sim, [], 0, fault=fault))

    def test_fraction_validation(self):
        with pytest.raises(SimulationError):
            TransferFault(error=TransferFaultError("x"), fraction=1.5)


class TestDegradation:
    def test_degraded_bandwidth_slows_transfer(self, sim):
        link = Link(sim, "hop", bandwidth=100.0)
        link.degradation = lambda now: 0.5
        assert not _run(sim, transfer(sim, [link], 100))
        assert sim.now == pytest.approx(2.0)  # half bandwidth, double time

    def test_degradation_sampled_at_acquire_time(self, sim):
        link = Link(sim, "hop", bandwidth=100.0)
        # Degraded only from t=1: a transfer starting at t=0 is clean.
        link.degradation = lambda now: 0.25 if now >= 1.0 else 1.0

        def proc():
            yield from transfer(sim, [link], 100)       # t in [0, 1)
            yield from transfer(sim, [link], 100)       # starts at t=1, 4x
        sim.process(proc())
        sim.run()
        assert sim.now == pytest.approx(1.0 + 4.0)

    def test_path_rate_is_min_effective_bandwidth(self, sim):
        fast = Link(sim, "fast", bandwidth=400.0)
        slow = Link(sim, "slow", bandwidth=200.0)
        fast.degradation = lambda now: 0.25  # effective 100 -> new bottleneck
        assert not _run(sim, transfer(sim, [fast, slow], 100))
        assert sim.now == pytest.approx(1.0)

    @pytest.mark.parametrize("factor", [0.0, -0.5, 1.5])
    def test_invalid_factor_rejected(self, sim, factor):
        link = Link(sim, "hop", bandwidth=100.0)
        link.degradation = lambda now: factor
        with pytest.raises(SimulationError, match="degradation factor"):
            link.effective_bandwidth(0.0)

    def test_no_degradation_no_overhead(self, sim):
        link = Link(sim, "hop", bandwidth=100.0)
        assert link.effective_bandwidth(123.0) == 100.0
