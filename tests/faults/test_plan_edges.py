"""FaultPlan edge cases: overlapping windows and restart straddling.

Every plan decision is a stateless hash draw, so two properties must
hold no matter how pathological the window layout gets:

- *determinism / order independence*: the answer to any (entity, epoch,
  context) question is fixed by the seed alone -- asking in a different
  order, or from a fresh plan object, changes nothing;
- *bounded degradation*: overlapping windows (a link flapping while the
  host is under memory pressure) compound multiplicatively but stay in
  (0, 1] -- overlap can never speed a link up or stall it completely.
"""

from repro.faults import FaultPlan, FaultSpec

WINDOW_SPEC = FaultSpec(link_degrade_rate=0.5, host_pressure_rate=0.5)


class TestOverlappingWindows:
    def test_same_link_windows_deterministic_any_query_order(self):
        plan = FaultPlan(WINDOW_SPEC, seed=3)
        link = "uplink0-up"
        forward = [plan.link_degradation(link, e, (0, 0))
                   for e in range(32)]
        backward = [plan.link_degradation(link, e, (0, 0))
                    for e in reversed(range(32))]
        assert forward == backward[::-1]
        assert all(0.0 < f <= 1.0 for f in forward)
        # rate 0.5 over 32 epochs: both healthy and degraded epochs occur
        assert any(f < 1.0 for f in forward)
        assert any(f == 1.0 for f in forward)

    def test_fresh_plan_object_gives_identical_windows(self):
        link = "leaf2-down"
        a = [FaultPlan(WINDOW_SPEC, seed=9).link_degradation(link, e, ())
             for e in range(32)]
        b = [FaultPlan(WINDOW_SPEC, seed=9).link_degradation(link, e, ())
             for e in range(32)]
        assert a == b

    def test_overlap_with_host_pressure_stays_in_unit_interval(self):
        # The uplinks see flap * pressure (see FaultInjector.arm); in
        # epochs where both windows cover the link the compound factor
        # must stay a slowdown, never a speedup or a total stall.
        plan = FaultPlan(WINDOW_SPEC, seed=5)
        compounds = [
            plan.link_degradation("uplink1-up", e, ())
            * plan.host_pressure(e, ())
            for e in range(64)
        ]
        assert all(0.0 < c <= 1.0 for c in compounds)
        # with both rates at 0.5 some epoch overlaps both windows, and
        # the overlap compounds below either single factor
        floor = (WINDOW_SPEC.link_degrade_factor
                 * WINDOW_SPEC.host_pressure_factor)
        assert min(compounds) == floor

    def test_distinct_links_same_epoch_draw_independently(self):
        plan = FaultPlan(FaultSpec(link_degrade_rate=0.5), seed=11)
        factors = [plan.link_degradation(f"leaf{i}-up", 7, ())
                   for i in range(16)]
        assert any(f < 1.0 for f in factors)
        assert any(f == 1.0 for f in factors)


class TestRestartBoundaryStraddling:
    def test_windows_straddling_restart_are_order_independent(self):
        # A degradation window that spans an iteration-restart boundary
        # is really two independent draws -- one per (iteration, attempt)
        # context -- and neither draw may depend on which context asked
        # first or how queries interleave.
        plan = FaultPlan(WINDOW_SPEC, seed=7)
        link = "uplink0-up"
        contexts = [(1, 0), (1, 1), (2, 0)]
        epochs = list(range(16))
        first = {(c, e): plan.link_degradation(link, e, c)
                 for c in contexts for e in epochs}
        second = {}
        for e in reversed(epochs):
            for c in reversed(contexts):
                second[(c, e)] = plan.link_degradation(link, e, c)
        assert first == second

    def test_restart_attempt_rolls_fresh_dice(self):
        # Same iteration, next attempt: the window layout re-draws (else
        # a fault-doomed iteration would deterministically re-fail), yet
        # each context alone stays reproducible.
        plan = FaultPlan(FaultSpec(link_degrade_rate=0.5), seed=9)
        a = [plan.link_degradation("uplink0-up", e, (1, 0))
             for e in range(64)]
        b = [plan.link_degradation("uplink0-up", e, (1, 1))
             for e in range(64)]
        assert a != b
        assert a == [plan.link_degradation("uplink0-up", e, (1, 0))
                     for e in range(64)]

    def test_transfer_decisions_order_independent_across_contexts(self):
        plan = FaultPlan(FaultSpec(transfer_fault_rate=0.3), seed=13)
        keys = [
            (f"gpu{d}:swap-in", "w#0", attempt, (iteration, restart))
            for d in range(2)
            for attempt in range(3)
            for iteration in range(2)
            for restart in range(2)
        ]
        first = {k: plan.transfer_fault(*k) for k in keys}
        second = {k: plan.transfer_fault(*k) for k in reversed(keys)}
        assert first == second
        assert any(v is not None for v in first.values())
        assert any(v is None for v in first.values())

    def test_loss_is_run_scoped_not_context_scoped(self):
        # Restarting an iteration must not resurrect dead hardware: the
        # loss decision takes no context at all.
        plan = FaultPlan(FaultSpec(gpu_loss_rate=1.0), seed=2)
        deaths = {d: plan.gpu_loss(d) for d in range(4)}
        assert all(death is not None and death >= 1
                   for death in deaths.values())
        assert deaths == {d: plan.gpu_loss(d) for d in range(4)}
