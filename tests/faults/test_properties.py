"""Chaos property suite: zoo models x execution modes x fault seeds.

The property: under a seeded chaos fault plan, every run either
*completes* with its byte-accounting invariants intact, or fails with a
typed fault error naming the affected schedule entity.  It never hangs
(the simulator watchdog converts a stall into a typed error, which this
suite treats as a failure -- zero watchdog trips tolerated) and never
silently mis-accounts traffic (the runner audits the byte equations on
every completed iteration).
"""

import re

import pytest

from repro.common.errors import FaultError, SimulationError
from repro.core.harmony import Harmony, HarmonyOptions
from repro.experiments.common import server_for
from repro.faults import FaultPlan, FaultSpec, check_byte_invariants

# Representative zoo slice: the two toy models plus the two real paper
# models that plan in well under a second.  (minibatch, gpus) are sized so
# every configuration fits its server; the larger zoo entries exercise the
# same code paths at 10-100x the wall time, so they stay out of tier 1.
MATRIX = [
    ("toy-transformer", 8, 2),
    ("tiny-cnn", 8, 2),
    ("bert-large", 16, 4),
    ("gpt2", 16, 4),
]
MODES = ("dp", "pp")
SEEDS = range(10)

_ENTITY = re.compile(r"(t\d+|gpu\d+)")

_plans: dict = {}


def _harmony(model: str, minibatch: int, gpus: int, mode: str) -> Harmony:
    key = (model, minibatch, gpus, mode)
    if key not in _plans:
        harmony = Harmony(
            model, server_for(gpus), minibatch,
            options=HarmonyOptions(mode=mode),
        )
        harmony.plan()
        _plans[key] = harmony
    return _plans[key]


@pytest.mark.parametrize("model,minibatch,gpus",
                         MATRIX, ids=[m for m, _, _ in MATRIX])
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_run_completes_or_fails_typed(model, minibatch, gpus, mode,
                                            seed):
    harmony = _harmony(model, minibatch, gpus, mode)
    fault_plan = FaultPlan(FaultSpec.chaos(), seed=seed)
    try:
        report = harmony.run(fault_plan=fault_plan)
    except FaultError as exc:
        # Acceptable outcome: recovery was exhausted, and the typed error
        # names the faulted schedule entity (t<tid> / gpu<d>.<stream>).
        assert _ENTITY.search(exc.entity or str(exc)), (
            f"typed fault without an entity: {exc}"
        )
    except SimulationError as exc:  # pragma: no cover - property violation
        pytest.fail(
            f"hard failure (watchdog trip or broken accounting) for "
            f"{model}/{mode}/seed {seed}: {exc}"
        )
    else:
        metrics = report.metrics
        graph = harmony.plan().graph
        assert metrics.iteration_time > 0
        # Byte invariants hold whatever was injected and recovered.
        check_byte_invariants(graph, metrics)
        # Injection accounting is consistent with the recovery report.
        assert metrics.recovery.faults_injected >= (
            metrics.recovery.transfer_retries
            + metrics.recovery.compute_retries
            + metrics.recovery.p2p_fallbacks
        )


@pytest.mark.parametrize("mode", MODES)
def test_disabled_spec_matches_plain_run_across_modes(mode):
    harmony = _harmony("toy-transformer", 8, 2, mode)
    plain = harmony.run()
    gated = harmony.run(fault_plan=FaultPlan(FaultSpec.none(), seed=99))
    assert plain.metrics.describe() == gated.metrics.describe()


def test_high_intensity_still_terminates():
    """Even absurd fault rates terminate -- with success or a typed error,
    courtesy of bounded retries and the watchdog."""
    harmony = _harmony("toy-transformer", 8, 2, "pp")
    for seed in range(3):
        plan = FaultPlan(FaultSpec.chaos(intensity=20.0), seed=seed)
        try:
            harmony.run(fault_plan=plan)
        except FaultError:
            pass
