"""DeviceHealthMonitor hysteresis, including the window edge cases.

Two regressions this file exists to pin:

- two degraded observations inside the *same* window (an iteration that
  restarts and re-examines the same boundary) must count as ONE strike,
  so a single bad iteration can never burn more than one unit of
  patience however many attempts it takes; and
- ``replan_patience=0`` (hysteresis disabled) must condemn on the first
  degraded observation -- and still never condemn a device it has only
  ever seen healthy.
"""

from repro.faults.monitor import (
    DeviceHealthMonitor,
    HealthMonitor,
    ServerHealthMonitor,
)
from repro.faults.policy import RecoveryPolicy

import pytest


class TestBasicHysteresis:
    def test_condemns_after_patience_consecutive_strikes(self):
        monitor = DeviceHealthMonitor(patience=2)
        assert not monitor.observe(0, degraded=True, window=0)
        assert monitor.observe(0, degraded=True, window=1)
        assert monitor.condemned(0)

    def test_healthy_observation_clears_streak(self):
        monitor = DeviceHealthMonitor(patience=2)
        monitor.observe(0, degraded=True, window=0)
        monitor.observe(0, degraded=False, window=1)
        assert monitor.strikes(0) == 0
        assert not monitor.observe(0, degraded=True, window=2)

    def test_devices_tracked_independently(self):
        monitor = DeviceHealthMonitor(patience=2)
        monitor.observe(0, degraded=True, window=0)
        assert monitor.strikes(1) == 0
        assert not monitor.observe(1, degraded=True, window=0)

    def test_condemned_is_sticky_until_forget(self):
        monitor = DeviceHealthMonitor(patience=1)
        assert monitor.observe(0, degraded=True, window=0)
        assert monitor.observe(0, degraded=False, window=1)
        monitor.forget(0)
        assert not monitor.condemned(0)
        assert monitor.strikes(0) == 0

    def test_negative_patience_rejected(self):
        with pytest.raises(ValueError):
            DeviceHealthMonitor(patience=-1)


class TestSameWindowEdgeCase:
    """Two degradations in one window are one unit of evidence."""

    def test_same_window_adds_single_strike(self):
        monitor = DeviceHealthMonitor(patience=2)
        assert not monitor.observe(0, degraded=True, window=5)
        # A restarted iteration re-examines boundary 5: no second strike.
        assert not monitor.observe(0, degraded=True, window=5)
        assert monitor.strikes(0) == 1
        assert not monitor.condemned(0)
        # The next boundary is fresh evidence and condemns.
        assert monitor.observe(0, degraded=True, window=6)

    def test_many_repeats_in_one_window_still_one_strike(self):
        monitor = DeviceHealthMonitor(patience=3)
        for _ in range(10):
            monitor.observe(0, degraded=True, window=0)
        assert monitor.strikes(0) == 1

    def test_healthy_in_struck_window_does_not_erase_strike(self):
        """A lucky restart attempt is not evidence of recovery."""
        monitor = DeviceHealthMonitor(patience=2)
        monitor.observe(0, degraded=True, window=3)
        monitor.observe(0, degraded=False, window=3)
        assert monitor.strikes(0) == 1
        assert monitor.observe(0, degraded=True, window=4)

    def test_none_window_preserves_historical_per_call_counting(self):
        monitor = DeviceHealthMonitor(patience=2)
        assert not monitor.observe(0, degraded=True)
        assert monitor.observe(0, degraded=True)


class TestZeroPatience:
    """patience=0 disables hysteresis: first degraded strike condemns."""

    def test_first_degraded_observation_condemns(self):
        monitor = DeviceHealthMonitor(patience=0)
        assert monitor.observe(0, degraded=True, window=0)
        assert monitor.condemned(0)

    def test_healthy_only_never_condemns(self):
        monitor = DeviceHealthMonitor(patience=0)
        for window in range(5):
            assert not monitor.observe(0, degraded=False, window=window)
        assert not monitor.condemned(0)

    def test_recovery_policy_accepts_zero_patience(self):
        assert RecoveryPolicy(replan_patience=0).replan_patience == 0


@pytest.mark.parametrize("cls", [DeviceHealthMonitor, ServerHealthMonitor])
class TestEntityKinds:
    """Device- and server-level tracking share ONE parameterized monitor.

    Both are :class:`HealthMonitor` specializations, so the hysteresis
    semantics pinned above hold identically at every failure-domain
    granularity -- this is the refactor's contract.
    """

    def test_is_a_health_monitor(self, cls):
        assert issubclass(cls, HealthMonitor)

    def test_same_hysteresis_semantics(self, cls):
        monitor = cls(patience=2)
        assert not monitor.observe(0, degraded=True, window=0)
        assert not monitor.observe(0, degraded=True, window=0)  # same window
        assert monitor.strikes(0) == 1
        assert monitor.observe(0, degraded=True, window=1)
        assert monitor.condemned(0)

    def test_forget_resets(self, cls):
        monitor = cls(patience=1)
        assert monitor.observe(3, degraded=True, window=0)
        monitor.forget(3)
        assert not monitor.condemned(3)
        assert monitor.strikes(3) == 0

    def test_entities_independent(self, cls):
        monitor = cls(patience=1)
        monitor.observe(0, degraded=True, window=0)
        assert not monitor.condemned(1)
