"""FaultSpec / FaultPlan / RecoveryPolicy unit behavior."""

import pytest

from repro.faults import (
    Crash,
    FaultPlan,
    FaultSpec,
    RecoveryPolicy,
    ScriptedFaultPlan,
)


class TestFaultSpec:
    def test_defaults_disabled(self):
        spec = FaultSpec()
        assert not spec.any_enabled
        assert FaultSpec.none() == spec

    def test_chaos_preset_enabled(self):
        spec = FaultSpec.chaos()
        assert spec.any_enabled
        assert 0 < spec.transfer_fault_rate < 1

    def test_chaos_intensity_scales_and_clamps(self):
        mild = FaultSpec.chaos(0.5)
        wild = FaultSpec.chaos(100.0)
        assert mild.transfer_fault_rate == pytest.approx(0.01)
        assert wild.transfer_fault_rate == 1.0  # clamped

    @pytest.mark.parametrize("field,value", [
        ("transfer_fault_rate", -0.1),
        ("transfer_fault_rate", 1.5),
        ("link_degrade_factor", 0.0),
        ("link_degrade_factor", 1.5),
        ("gpu_slowdown_factor", 0.5),
        ("gpu_persistent_rate", 2.0),
        ("link_flap_interval", 0.0),
        ("host_pressure_interval", -1.0),
    ])
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            FaultSpec(**{field: value})

    def test_chaos_negative_intensity_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec.chaos(-1.0)

    def test_describe_mentions_nondefault_fields(self):
        assert "transfer_fault_rate" in FaultSpec.chaos().describe()
        assert FaultSpec().describe() == "FaultSpec(off)"


class TestFaultPlan:
    def test_disabled_plan_not_enabled(self):
        assert not FaultPlan(FaultSpec.none(), seed=3).enabled
        assert FaultPlan(FaultSpec.chaos(), seed=3).enabled

    def test_decisions_are_deterministic(self):
        a = FaultPlan(FaultSpec.chaos(), seed=42)
        b = FaultPlan(FaultSpec.chaos(), seed=42)
        for attempt in range(8):
            assert a.transfer_fault("gpu0.swap_in", "W3", attempt) == \
                b.transfer_fault("gpu0.swap_in", "W3", attempt)
            assert a.task_crash(5, 1, attempt) == b.task_crash(5, 1, attempt)
        assert a.gpu_slowdown(0) == b.gpu_slowdown(0)
        assert a.link_degradation("gpu0.up", 7) == \
            b.link_degradation("gpu0.up", 7)
        assert a.host_pressure(3) == b.host_pressure(3)

    def test_rate_one_always_faults_rate_zero_never(self):
        always = FaultPlan(FaultSpec(transfer_fault_rate=1.0), seed=0)
        never = FaultPlan(FaultSpec(), seed=0)
        for attempt in range(16):
            fraction = always.transfer_fault("e", "l", attempt)
            assert fraction is not None and 0.05 <= fraction <= 0.95
            assert never.transfer_fault("e", "l", attempt) is None

    def test_context_rolls_fresh_dice(self):
        plan = FaultPlan(FaultSpec(task_crash_rate=0.5), seed=1)
        outcomes = {
            plan.task_crash(0, 0, 0, context=(0, a)) is not None
            for a in range(32)
        }
        # With rate 0.5 and 32 restart contexts, both outcomes must occur.
        assert outcomes == {True, False}

    def test_slowdown_is_run_scoped(self):
        plan = FaultPlan(FaultSpec(gpu_slowdown_rate=1.0,
                                   gpu_slowdown_factor=3.0), seed=9)
        multiplier, _ = plan.gpu_slowdown(1)
        assert multiplier == 3.0
        assert plan.gpu_slowdown(1) == plan.gpu_slowdown(1)

    def test_with_spec_keeps_seed(self):
        plan = FaultPlan(FaultSpec.chaos(), seed=5)
        quiet = plan.with_spec(transfer_fault_rate=0.0)
        assert quiet.seed == 5
        assert quiet.spec.transfer_fault_rate == 0.0
        assert quiet.spec.link_degrade_rate == plan.spec.link_degrade_rate

    def test_describe_names_seed(self):
        assert "seed=7" in FaultPlan(FaultSpec.chaos(), seed=7).describe()


class TestScriptedFaultPlan:
    def test_scripted_overrides_fire(self):
        plan = ScriptedFaultPlan(
            transfer_faults={("W3", 0): 0.25},
            crashes={(2, 1, 0): 0.5},
            slowdowns={1: (2.0, True)},
        )
        assert plan.enabled
        assert plan.transfer_fault("anything", "W3", 0) == 0.25
        assert plan.transfer_fault("anything", "W3", 1) is None
        assert plan.task_crash(2, 1, 0) == Crash(fraction=0.5)
        assert plan.task_crash(2, 1, 1) is None
        assert plan.gpu_slowdown(1) == (2.0, True)
        assert plan.gpu_slowdown(0) == (1.0, False)

    def test_empty_script_disabled(self):
        assert not ScriptedFaultPlan().enabled

    def test_falls_through_to_spec(self):
        plan = ScriptedFaultPlan(spec=FaultSpec(transfer_fault_rate=1.0))
        assert plan.enabled
        assert plan.transfer_fault("e", "l", 0) is not None


class TestRecoveryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RecoveryPolicy(backoff_base=0.001, backoff_factor=2.0)
        assert policy.backoff(0) == pytest.approx(0.001)
        assert policy.backoff(2) == pytest.approx(0.004)

    @pytest.mark.parametrize("field,value", [
        ("max_transfer_retries", -1),
        ("max_task_retries", -1),
        ("max_iteration_restarts", -1),
        ("backoff_base", -0.1),
        ("backoff_factor", 0.5),
        ("rebind_threshold", 0.9),
    ])
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            RecoveryPolicy(**{field: value})
