"""Shared fixtures for the chaos/fault-injection suite.

The recovery tests run the real toy-transformer schedule (planned once
per mode, session-scoped) under scripted or seeded fault plans, so they
exercise the same executor paths production chaos runs do.
"""

import pytest

from repro.core.harmony import Harmony, HarmonyOptions
from repro.experiments.common import server_for
from repro.faults.policy import RecoveryPolicy
from repro.faults.runner import FaultTolerantRunner
from repro.runtime.timemodel import TrueTimeModel


@pytest.fixture(scope="session")
def toy_harmony():
    """Planned toy-transformer in PP mode on the 2-GPU shrunk testbed."""
    harmony = Harmony(
        "toy-transformer", server_for(2), minibatch=8,
        options=HarmonyOptions(mode="pp"),
    )
    harmony.plan()
    return harmony


@pytest.fixture(scope="session")
def toy_harmony_dp():
    harmony = Harmony(
        "toy-transformer", server_for(2), minibatch=8,
        options=HarmonyOptions(mode="dp"),
    )
    harmony.plan()
    return harmony


@pytest.fixture
def make_runner(toy_harmony):
    """Build a FaultTolerantRunner around the toy plan.

    ``spec`` defaults to the plan's own 2-GPU server; the re-bind tests
    pass a larger server so a healthy spare device exists.
    """

    def build(plan, policy=None, spec=None, **kwargs):
        spec = spec if spec is not None else toy_harmony.server
        hplan = toy_harmony.plan()
        time_model = TrueTimeModel(
            hplan.decomposed, spec.gpu, spec.host, n_gpus=spec.n_gpus,
        )
        host_state = (
            toy_harmony.model.model_state_bytes
            + toy_harmony.minibatch * toy_harmony.model.sample_bytes
        )
        return FaultTolerantRunner(
            spec, time_model, plan,
            policy=policy if policy is not None else RecoveryPolicy(),
            host_state_bytes=host_state,
            **kwargs,
        )

    return build
