"""Reproducibility guarantees of chaos runs.

Two contracts: the same model + fault seed produces byte-identical
metrics (all fault decisions are stateless hash draws from the seed),
and an all-faults-disabled plan is bit-identical to no plan at all
(the zero-overhead regression guard).
"""

from repro.faults import FaultPlan, FaultSpec


def _fields(metrics):
    return (
        metrics.iteration_time,
        metrics.host_peak_bytes,
        [(g.swap_in_bytes, g.swap_out_bytes, g.p2p_in_bytes,
          g.compute_busy, g.cpu_busy, g.peak_resident_bytes)
         for g in metrics.gpus],
        metrics.recovery.describe(),
    )


class TestSameSeedSameRun:
    def test_chaos_run_byte_identical_across_repeats(self, toy_harmony):
        plan = FaultPlan(FaultSpec.chaos(), seed=11)
        first = toy_harmony.run(fault_plan=plan, iterations=2)
        second = toy_harmony.run(fault_plan=plan, iterations=2)
        assert first.metrics.describe() == second.metrics.describe()
        assert _fields(first.metrics) == _fields(second.metrics)

    def test_fresh_plan_object_same_seed_identical(self, toy_harmony):
        first = toy_harmony.run(
            fault_plan=FaultPlan(FaultSpec.chaos(), seed=4), iterations=2
        )
        second = toy_harmony.run(
            fault_plan=FaultPlan(FaultSpec.chaos(), seed=4), iterations=2
        )
        assert _fields(first.metrics) == _fields(second.metrics)

    def test_different_seeds_diverge_somewhere(self, toy_harmony):
        # Not guaranteed per seed pair, but across four seeds at chaos
        # intensity, at least two runs must differ -- if they never do,
        # the seed is not reaching the fault decisions.
        outcomes = {
            _fields(
                toy_harmony.run(
                    fault_plan=FaultPlan(FaultSpec.chaos(), seed=s)
                ).metrics
            )[0]
            for s in range(4)
        }
        assert len(outcomes) > 1


class TestDisabledPlanZeroOverhead:
    def test_disabled_plan_bit_identical_to_no_plan(self, toy_harmony):
        plain = toy_harmony.run(iterations=2)
        disabled = toy_harmony.run(
            fault_plan=FaultPlan(FaultSpec.none(), seed=123), iterations=2
        )
        assert _fields(plain.metrics) == _fields(disabled.metrics)
        assert plain.metrics.describe() == disabled.metrics.describe()

    def test_disabled_plan_bit_identical_dp(self, toy_harmony_dp):
        plain = toy_harmony_dp.run(iterations=2)
        disabled = toy_harmony_dp.run(
            fault_plan=FaultPlan(FaultSpec.none(), seed=7), iterations=2
        )
        assert _fields(plain.metrics) == _fields(disabled.metrics)

    def test_no_recovery_line_without_faults(self, toy_harmony):
        plain = toy_harmony.run()
        assert "recovery" not in plain.metrics.describe()
        assert not plain.metrics.recovery.any
