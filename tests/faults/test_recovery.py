"""Recovery mechanisms, driven by scripted (fully explicit) fault plans.

Each test pins one escalation rung: transfer retry, p2p->host-staged
fallback, compute crash retry, iteration checkpoint/restart, and
late-binding re-bind -- and checks both the outcome and the recovery
accounting.
"""

import pytest

from repro.common.errors import (
    GpuDegradedError,
    SimulationError,
    UnrecoveredFaultError,
)
from repro.core.types import Channel
from repro.faults import (
    Crash,
    FaultPlan,
    FaultSpec,
    RecoveryPolicy,
    ScriptedFaultPlan,
    check_byte_invariants,
    rebind_graph,
)
from repro.experiments.common import server_for

# Moves in the session-scoped toy PP plan (see conftest): task 1 pulls
# activation chunks 'XL3-4#<i>' over p2p from task 0; task 0 reads the
# sample batch as swap chunks 'input#<i>'; task 2 is the first backward.
P2P_CHUNK = "XL3-4#0"
SWAP_CHUNK = "input#0"
BWD_TID = 2


class TestTransferRetry:
    def test_transient_p2p_fault_retried(self, toy_harmony, make_runner):
        plan = ScriptedFaultPlan(transfer_faults={(P2P_CHUNK, 0): 0.5})
        metrics = make_runner(plan).run(toy_harmony.plan().graph)
        assert metrics.recovery.transfer_retries == 1
        assert metrics.recovery.p2p_fallbacks == 0
        assert metrics.recovery.faults_injected == 1

    def test_transient_swap_fault_retried(self, toy_harmony, make_runner):
        plan = ScriptedFaultPlan(transfer_faults={(SWAP_CHUNK, 0): 0.5})
        metrics = make_runner(plan).run(toy_harmony.plan().graph)
        assert metrics.recovery.transfer_retries == 1

    def test_retry_costs_time(self, toy_harmony, make_runner):
        graph = toy_harmony.plan().graph
        clean = make_runner(ScriptedFaultPlan()).run(graph)
        faulted = make_runner(
            ScriptedFaultPlan(transfer_faults={(SWAP_CHUNK, 0): 0.9})
        ).run(graph)
        assert faulted.iteration_time > clean.iteration_time


class TestP2pFallback:
    def _exhausting_plan(self, policy):
        return ScriptedFaultPlan(transfer_faults={
            (P2P_CHUNK, attempt): 0.5
            for attempt in range(policy.max_transfer_retries + 1)
        })

    def test_exhausted_p2p_degrades_to_host_staging(self, toy_harmony,
                                                    make_runner):
        policy = RecoveryPolicy()
        graph = toy_harmony.plan().graph
        metrics = make_runner(self._exhausting_plan(policy),
                              policy=policy).run(graph)
        assert metrics.recovery.p2p_fallbacks == 1
        assert metrics.recovery.fallback_bytes > 0
        assert metrics.recovery.transfer_retries == policy.max_transfer_retries
        # Re-accounting: the rescued bytes left the p2p ledger and entered
        # the swap ledger on both endpoints (the runner audits the same
        # equations internally; assert them explicitly here).
        assert metrics.global_p2p_bytes + metrics.recovery.fallback_bytes \
            == graph.p2p_bytes()
        assert metrics.global_swap_bytes == graph.global_swap_bytes() \
            + 2 * metrics.recovery.fallback_bytes

    def test_fallback_disabled_is_fatal(self, toy_harmony, make_runner):
        policy = RecoveryPolicy(p2p_fallback=False, max_iteration_restarts=0)
        runner = make_runner(self._exhausting_plan(policy), policy=policy)
        with pytest.raises(UnrecoveredFaultError) as err:
            runner.run(toy_harmony.plan().graph)
        assert "gpu" in str(err.value)  # names the faulted stream entity


class TestCrashRetry:
    def test_crash_retried_from_resident_inputs(self, toy_harmony,
                                                make_runner):
        plan = ScriptedFaultPlan(crashes={(BWD_TID, 0, 0): 0.5})
        metrics = make_runner(plan).run(toy_harmony.plan().graph)
        assert metrics.recovery.compute_retries == 1
        assert metrics.recovery.restarts == 0

    def test_crash_wastes_compute_time(self, toy_harmony, make_runner):
        graph = toy_harmony.plan().graph
        clean = make_runner(ScriptedFaultPlan()).run(graph)
        crashed = make_runner(
            ScriptedFaultPlan(crashes={(BWD_TID, 0, 0): 0.9})
        ).run(graph)
        clean_busy = sum(g.compute_busy for g in clean.gpus)
        crashed_busy = sum(g.compute_busy for g in crashed.gpus)
        assert crashed_busy > clean_busy


class TestCheckpointRestart:
    class _FirstAttemptCrashPlan(FaultPlan):
        """Crashes one task on restart attempt 0 only -- the restarted
        iteration (fresh context) runs clean, so recovery succeeds."""

        def __init__(self):
            super().__init__(FaultSpec(task_crash_rate=1.0), seed=0)

        def task_crash(self, tid, mb_index, attempt, context=()):
            if tid == BWD_TID and mb_index == 0 and context[1] == 0:
                return Crash(fraction=0.5)
            return None

        def transfer_fault(self, entity, label, attempt, context=()):
            return None

        def gpu_slowdown(self, device):
            return 1.0, False

        def link_degradation(self, link_name, epoch, context=()):
            return 1.0

        def host_pressure(self, epoch, context=()):
            return 1.0

    def test_fatal_crash_restarts_iteration(self, toy_harmony, make_runner):
        policy = RecoveryPolicy(max_task_retries=0)
        runner = make_runner(self._FirstAttemptCrashPlan(), policy=policy)
        metrics = runner.run(toy_harmony.plan().graph)
        assert metrics.recovery.restarts == 1
        assert metrics.recovery.faults_fatal == 1

    def test_restarts_exhausted_raises_typed_error(self, toy_harmony,
                                                   make_runner):
        policy = RecoveryPolicy(max_task_retries=0, max_iteration_restarts=2)
        # Scripted plans ignore restart context: the same crash recurs on
        # every attempt, so every restart is doomed.
        plan = ScriptedFaultPlan(crashes={(BWD_TID, 0, 0): 0.5})
        runner = make_runner(plan, policy=policy)
        with pytest.raises(UnrecoveredFaultError) as err:
            runner.run(toy_harmony.plan().graph)
        assert err.value.entity == f"t{BWD_TID}"
        assert "3 attempt(s)" in str(err.value)


class TestRebind:
    def test_persistent_straggler_rebound_to_spare(self, toy_harmony,
                                                   make_runner):
        # The toy plan binds 2 devices; on a 4-GPU server gpu2/gpu3 are
        # healthy spares for the persistently slow gpu0.
        plan = ScriptedFaultPlan(slowdowns={0: (2.0, True)})
        runner = make_runner(plan, spec=server_for(4))
        metrics = runner.run(toy_harmony.plan().graph, iterations=2)
        assert metrics.recovery.rebinds == 1

    def test_transient_straggler_not_rebound(self, toy_harmony, make_runner):
        plan = ScriptedFaultPlan(slowdowns={0: (2.0, False)})
        runner = make_runner(plan, spec=server_for(4))
        metrics = runner.run(toy_harmony.plan().graph, iterations=2)
        assert metrics.recovery.rebinds == 0

    def test_below_threshold_not_rebound(self, toy_harmony, make_runner):
        plan = ScriptedFaultPlan(slowdowns={0: (1.2, True)})
        runner = make_runner(plan, spec=server_for(4))
        metrics = runner.run(toy_harmony.plan().graph, iterations=2)
        assert metrics.recovery.rebinds == 0

    def test_no_spare_tolerated(self, toy_harmony, make_runner):
        # Both devices of the 2-GPU server are in use: degradation is
        # tolerated (slower, but the run completes).
        plan = ScriptedFaultPlan(slowdowns={0: (2.0, True)})
        metrics = make_runner(plan).run(toy_harmony.plan().graph,
                                        iterations=2)
        assert metrics.recovery.rebinds == 0

    def test_rebind_disabled_by_policy(self, toy_harmony, make_runner):
        plan = ScriptedFaultPlan(slowdowns={0: (2.0, True)})
        runner = make_runner(plan, spec=server_for(4),
                             policy=RecoveryPolicy(rebind=False))
        metrics = runner.run(toy_harmony.plan().graph, iterations=2)
        assert metrics.recovery.rebinds == 0

    def test_two_sequential_degradations_both_rebound(self, toy_harmony,
                                                      make_runner):
        # Regression for the old single-rebind limit: gpu0 sickens at
        # iteration 1 and is rebound to a spare; gpu1 sickens at
        # iteration 3 and must be rescued exactly the same way -- rebind
        # repeats at every boundary as long as spares remain.
        plan = ScriptedFaultPlan(slowdowns_at={
            0: (1, 3.0, True),
            1: (3, 3.0, True),
        })
        runner = make_runner(plan, spec=server_for(4))
        metrics = runner.run(toy_harmony.plan().graph, iterations=5)
        assert metrics.recovery.rebinds == 2

    def test_straggler_slows_the_iteration(self, toy_harmony, make_runner):
        graph = toy_harmony.plan().graph
        clean = make_runner(ScriptedFaultPlan()).run(graph)
        slow = make_runner(
            ScriptedFaultPlan(slowdowns={0: (4.0, False)})
        ).run(graph)
        assert slow.iteration_time > clean.iteration_time


class TestRebindGraph:
    def test_collapsed_p2p_becomes_local(self, toy_harmony):
        graph = toy_harmony.plan().graph
        assert graph.p2p_bytes() > 0
        merged = rebind_graph(graph, {1: 0})
        assert merged.p2p_bytes() == 0
        assert all(task.device == 0 for task in merged.tasks)
        for task in merged.tasks:
            for _, move in task.moves():
                assert move.channel is not Channel.P2P
        merged.validate()  # the analyzer accepts the transformed schedule

    def test_rebind_to_spare_keeps_p2p(self, toy_harmony):
        graph = toy_harmony.plan().graph
        moved = rebind_graph(graph, {0: 2}, n_devices=4)
        assert moved.p2p_bytes() == graph.p2p_bytes()
        assert {t.device for t in moved.tasks} == {1, 2}
        moved.validate()

    def test_rebind_onto_degraded_target_rejected(self, toy_harmony):
        graph = toy_harmony.plan().graph
        with pytest.raises(GpuDegradedError) as err:
            rebind_graph(graph, {0: 1, 1: 2}, n_devices=4)
        assert err.value.entity.startswith("gpu")

    def test_out_of_range_target_rejected(self, toy_harmony):
        graph = toy_harmony.plan().graph
        with pytest.raises(ValueError, match="outside"):
            rebind_graph(graph, {0: 7})

    def test_original_graph_untouched(self, toy_harmony):
        graph = toy_harmony.plan().graph
        before = [(t.tid, t.device) for t in graph.tasks]
        rebind_graph(graph, {1: 0})
        assert [(t.tid, t.device) for t in graph.tasks] == before


class TestByteInvariants:
    def test_clean_run_passes(self, toy_harmony):
        report = toy_harmony.run()
        check_byte_invariants(toy_harmony.plan().graph, report.metrics)

    def test_tampered_swap_detected(self, toy_harmony):
        report = toy_harmony.run()
        report.metrics.gpus[0].swap_in_bytes += 1
        with pytest.raises(SimulationError, match="swap byte accounting"):
            check_byte_invariants(toy_harmony.plan().graph, report.metrics)

    def test_tampered_p2p_detected(self, toy_harmony):
        report = toy_harmony.run()
        report.metrics.gpus[0].p2p_in_bytes += 1
        with pytest.raises(SimulationError, match="p2p byte accounting"):
            check_byte_invariants(toy_harmony.plan().graph, report.metrics)
