"""Tests for the baseline planners (on the toy model for speed)."""

import pytest

from repro.baselines.dp_swap import DpSwapPlanner, layer_chunks
from repro.baselines.gpipe_swap import GpipeSwapPlanner, compute_balanced_stages
from repro.baselines.pipedream_2bw import PipeDream2BWPlanner, one_f_one_b_order
from repro.baselines.zero_infinity import ZeroInfinityPlanner
from repro.core.types import Channel, TaskKind, TensorKind


@pytest.fixture
def args(toy_model, small_server):
    return dict(model=toy_model, server=small_server, minibatch=8)


class TestDpSwap:
    def test_plan_and_run(self, args):
        planner = DpSwapPlanner(**args, microbatch=2)
        plan = planner.plan()
        metrics = planner.run(plan)
        assert metrics.iteration_time > 0
        assert plan.graph.pageable_swaps

    def test_replicas_have_identical_swap(self, args):
        plan = DpSwapPlanner(**args, microbatch=2).plan()
        per_gpu = plan.graph.swap_bytes_by_gpu()
        # Symmetric replicas (the final allreduce row differs only by p2p).
        assert per_gpu[0] == per_gpu[1]

    def test_swap_grows_with_gpus(self, toy_model, small_server,
                                  four_gpu_server):
        two = DpSwapPlanner(toy_model, small_server, 8, microbatch=2).plan()
        four = DpSwapPlanner(toy_model, four_gpu_server, 8, microbatch=2).plan()
        assert four.graph.global_swap_bytes() > 1.5 * two.graph.global_swap_bytes()

    def test_indivisible_minibatch_rejected(self, toy_model, small_server):
        with pytest.raises(ValueError):
            DpSwapPlanner(toy_model, small_server, minibatch=7).plan()

    def test_layer_chunks_cover_model(self, toy_profiles):
        chunks = layer_chunks(toy_profiles, max_bytes=500_000)
        assert chunks[0][0] == 0
        assert chunks[-1][1] == len(toy_profiles) - 1
        for (f1, l1), (f2, _l2) in zip(chunks, chunks[1:]):
            assert f2 == l1 + 1


class TestGpipeSwap:
    def test_stages_balance_compute(self, toy_profiles):
        stages = compute_balanced_stages(toy_profiles, 2)
        assert len(stages) == 2
        assert stages[0].first == 0
        assert stages[-1].last == len(toy_profiles) - 1

    def test_forward_then_backward(self, args):
        plan = GpipeSwapPlanner(**args).plan()
        kinds = [t.kind for t in plan.graph.tasks if t.kind is not TaskKind.UPD]
        first_bwd = kinds.index(TaskKind.BWD)
        assert all(k is TaskKind.FWD for k in kinds[:first_bwd])

    def test_stage_pinning(self, args):
        plan = GpipeSwapPlanner(**args).plan()
        for task in plan.graph.tasks:
            if task.kind is TaskKind.UPD:
                continue
            # Early binding: stage id == device, constant layer range.
            assert task.device in (0, 1)

    def test_recompute_reduces_swap(self, args):
        base = GpipeSwapPlanner(**args).plan()
        remat = GpipeSwapPlanner(**args, recompute=True).plan()
        assert remat.graph.global_swap_bytes() <= base.graph.global_swap_bytes()

    def test_interstage_p2p(self, args):
        plan = GpipeSwapPlanner(**args).plan()
        assert plan.graph.p2p_bytes() > 0


class TestPipeDream2BW:
    def test_1f1b_order_shape(self):
        order = one_f_one_b_order(n_stages=4, stage=0, n_mbs=6)
        assert order[:4] == [("F", 0), ("F", 1), ("F", 2), ("F", 3)]
        assert order.count(("B", 0)) == 1
        assert len(order) == 12

    def test_last_stage_alternates_immediately(self):
        order = one_f_one_b_order(n_stages=4, stage=3, n_mbs=4)
        assert order[0] == ("F", 0)
        assert order[1] == ("B", 0)

    def test_plan_runs(self, args):
        planner = PipeDream2BWPlanner(**args)
        metrics = planner.run()
        assert metrics.iteration_time > 0

    def test_double_weight_version_host_state(self, args):
        single = GpipeSwapPlanner(**args).plan()
        double = PipeDream2BWPlanner(**args).plan()
        assert double.host_state_bytes > single.host_state_bytes


class TestZeroInfinity:
    def test_refetches_per_microbatch(self, args):
        zero = ZeroInfinityPlanner(**args, u_f=2, u_b=2).plan()
        w_in = sum(
            m.nbytes for t in zero.graph.tasks for d, m in t.moves()
            if d == "in" and m.tensor is TensorKind.W
        )
        # 2 GPUs x (fwd + bwd) x 2 microbatches each = 8x the weights.
        assert w_in == pytest.approx(8 * zero.profiles.total_param_bytes,
                                     rel=0.01)

    def test_cpu_optimizer(self, args):
        plan = ZeroInfinityPlanner(**args, u_f=2, u_b=2).plan()
        updates = [t for t in plan.graph.tasks if t.kind is TaskKind.UPD]
        assert updates and all(t.on_cpu for t in updates)

    def test_host_overhead_above_harmony(self, args, toy_model):
        plan = ZeroInfinityPlanner(**args, u_f=2, u_b=2).plan()
        assert plan.host_state_bytes > toy_model.model_state_bytes

    def test_pinned_engine_not_pageable(self, args):
        plan = ZeroInfinityPlanner(**args, u_f=2, u_b=2).plan()
        assert not plan.graph.pageable_swaps
