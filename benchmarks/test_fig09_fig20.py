"""Benchmark regenerating Figure 9 (throughput vs per-GPU swap baselines)
and its companion Figure 20 (normalized iteration time)."""

from repro.experiments import fig09_throughput
from repro.experiments.common import render


def test_fig09_throughput_comparison(once):
    rows = once(fig09_throughput.run)
    print("\n" + render(rows))
    print("\nFigure 20 (normalized to Harmony PP):")
    print(render(fig09_throughput.normalized(rows)))
    print("\nHeadline speedups:")
    speedups = fig09_throughput.speedups(rows)
    print(render(speedups))

    cells: dict[tuple[str, int], dict[str, float]] = {}
    for row in rows:
        cells.setdefault((row["model"], row["minibatch"]), {})[
            row["scheme"]
        ] = row["throughput(samples/s)"]

    for (model, minibatch), cell in cells.items():
        where = f"{model}@{minibatch}"
        # Takeaway 1: DP Swap consistently underperforms everything else.
        others = [v for k, v in cell.items() if k != "dp-swap"]
        assert cell["dp-swap"] <= min(others) * 1.05, where
        # Takeaway 2: recompute wins where stash traffic dominates -- i.e.
        # at the largest batch (at small batches the stash fits and
        # recompute only adds FLOPs).
        if minibatch >= 64:
            assert cell["gp-swap-r"] > cell["gp-swap"] * 0.95, where
        # Takeaways 3-4: both Harmony schemes beat every baseline.
        baselines = max(
            cell[k] for k in ("dp-swap", "gp-swap", "gp-swap-r",
                              "2bw-swap", "2bw-swap-r")
        )
        assert cell["harmony-dp"] > baselines * 0.98, where
        assert cell["harmony-pp"] > baselines * 0.98, where

    # Takeaway 5's mechanism: Harmony's throughput keeps improving with
    # batch size (input-batch grouping amortizes the swaps), where the
    # baselines flat-line or worse.  (The speedup *gap* widens with batch
    # for GPT2/VGG416 in our calibration; for BERT96/ResNet1K our DP Swap
    # is so swap-crushed at small batches that the gap starts even wider
    # than the paper's and narrows -- see EXPERIMENTS.md.)
    for model in {m for m, _ in cells}:
        batches = sorted(b for m, b in cells if m == model)
        pp = [cells[(model, b)]["harmony-pp"] for b in batches]
        assert pp[-1] >= pp[0] * 0.95, (model, pp)

    # Headline: multi-x speedups over DP Swap.
    assert max(r["speedup_vs_dp_swap"] for r in speedups) > 3.0
