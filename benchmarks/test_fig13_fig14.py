"""Benchmarks regenerating Figure 13 (ablation) and Figure 14 (estimator)."""

from repro.experiments import fig13_ablation, fig14_estimator
from repro.experiments.common import render


def test_fig13_efficiency_breakdown(once):
    rows = once(fig13_ablation.run)
    print("\n" + render(rows))
    by = {(r["mode"], r["ablation"]): r["slowdown"] for r in rows}
    for mode in ("harmony-dp", "harmony-pp"):
        # Input-batch grouping is the dominant optimization.
        assert by[(mode, "grouping")] > 1.15, mode
        # Every ablation costs something (within simulation noise).
        for ablation in fig13_ablation.ABLATIONS + ("config_search",):
            assert by[(mode, ablation)] > 0.97, (mode, ablation)
    # Grouping hurts DP more than PP (the paper's 2.2x vs 1.5x pattern).
    assert by[("harmony-dp", "grouping")] >= by[("harmony-pp", "grouping")] * 0.9


def test_fig14_estimator_accuracy(once):
    rows = once(fig14_estimator.run)
    print("\n" + render(rows))
    # Estimates hug the measured times.
    assert fig14_estimator.max_error(rows) < 15.0
    mean_err = sum(r["error(%)"] for r in rows) / len(rows)
    assert mean_err < 7.5
