"""Benchmark harness configuration.

Every benchmark regenerates one paper table/figure via its experiment
module, prints the rendered rows (captured into ``bench_output.txt`` by
the top-level run command), and asserts the paper's qualitative shape.
Experiments are deterministic simulations, so a single round suffices.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the measured callable exactly once (simulations are
    deterministic; repeated rounds would only re-add wall time)."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  iterations=1, rounds=1)

    return runner
