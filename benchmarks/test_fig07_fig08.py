"""Benchmarks regenerating Figure 7 (packing) and Figures 8/18 (memory)."""

from repro.experiments import fig07_packing, fig08_memory
from repro.experiments.common import render


def test_fig07_greedy_vs_balanced(once):
    rows = once(fig07_packing.run)
    print("\n" + render(rows))
    balanced = next(r for r in rows if r["method"] == "balanced-time")
    greedy = next(r for r in rows if r["method"] == "greedy-max")
    # Greedy picks larger (fewer) packs...
    assert greedy["|P_F|"] <= balanced["|P_F|"]
    # ...but its time imbalance and iteration time are worse.
    assert greedy["bwd_time_imbalance"] >= balanced["bwd_time_imbalance"]
    assert greedy["iteration(s)"] > balanced["iteration(s)"]


def test_fig08_memory_footprint(once):
    rows = once(fig08_memory.run)
    print("\n" + render(rows))
    for row in rows:
        # Realistic minibatches exceed a single GPU's memory (the deep
        # CNNs squeeze under at minibatch 1, as in the paper's Figure 18).
        if row["minibatch"] >= 32:
            assert row["x_single_gpu"] > 1.0, row
    # ...and the large-model larger-batch settings exceed even the
    # collective memory of all four GPUs.
    worst = max(rows, key=lambda r: r["x_all_gpus"])
    assert worst["x_all_gpus"] > 1.0
    # Footprint grows with minibatch within each model.
    by_model = {}
    for row in rows:
        by_model.setdefault(row["model"], []).append(row["total(GiB)"])
    for model, totals in by_model.items():
        assert totals == sorted(totals), model
