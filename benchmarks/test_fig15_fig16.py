"""Benchmarks regenerating Figure 15 (massive models) and 16 (scaling)."""

from repro.experiments import fig15_massive, fig16_scaling
from repro.experiments.common import render


def test_fig15_massive_models(once):
    rows = once(fig15_massive.run)
    print("\n" + render(rows))
    by = {(r["model"], r["scheme"]): r for r in rows}
    # Harmony trains every size, including 40B.
    for mode in ("harmony-dp", "harmony-pp"):
        assert by[("gpt2-40b", mode)]["status"] == "ok"
        assert by[("gpt2-40b", mode)]["throughput(samples/s)"] > 0
    # ZeRO-Infinity trains 10-30B but OOMs host memory at 40B.
    assert by[("gpt2-10b", "zero-infinity")]["status"] == "ok"
    assert by[("gpt2-40b", "zero-infinity")]["status"].startswith("OOM")
    # Harmony at least matches ZeRO where both run.
    for billions in (10, 20, 30):
        model = f"gpt2-{billions}b"
        if (model, "zero-infinity") not in by:
            continue
        zero = by[(model, "zero-infinity")]["throughput(samples/s)"]
        assert by[(model, "harmony-pp")]["throughput(samples/s)"] > zero * 0.9


def test_fig16_scalability(once):
    rows = once(fig16_scaling.run)
    print("\n" + render(rows))
    for model in {r["model"] for r in rows}:
        for mode in ("harmony-dp", "harmony-pp"):
            series = sorted(
                (r["gpus"], r["speedup_vs_1gpu"])
                for r in rows
                if r["model"] == model and r["scheme"] == mode
            )
            if len(series) < 2:
                continue
            # Throughput increases with GPU count...
            speedups = [s for _, s in series]
            assert speedups == sorted(speedups), (model, mode, series)
            # ...and PP's 8-GPU scaling is at least near-linear (the paper
            # reports super-linear thanks to reduced swapping).
            if mode == "harmony-pp" and series[-1][0] == 8:
                assert series[-1][1] > 5.0, (model, series)
