"""Benchmark exercising the Appendix A NP-hardness reduction."""

from repro.experiments.common import render
from repro.theory import (
    brute_force_optimum,
    makespan,
    partition_reduction,
    target_makespan,
    witness_packing,
)
from repro.theory.partition import exact_partition


def _cases():
    yes_cases = [[6, 2, 4], [1, 1], [3, 5, 2, 4], [2, 2, 2, 2]]
    no_cases = [[1, 1, 1], [2, 3], [1, 2, 4], [5, 1, 1]]
    rows = []
    for numbers in yes_cases + no_cases:
        instance = partition_reduction(numbers)
        target = target_makespan(numbers)
        optimum, _packs = brute_force_optimum(instance)
        side = exact_partition(numbers)
        rows.append({
            "numbers": str(numbers),
            "partition": "YES" if side is not None else "NO",
            "target_T": target,
            "optimum": optimum,
            "attains_T": abs(optimum - target) < 1e-9,
        })
        if side is not None:
            witness = witness_packing(numbers, side)
            assert abs(makespan(instance, witness) - target) < 1e-9
    return rows


def test_appendix_a_reduction(once):
    rows = once(_cases)
    print("\n" + render(rows))
    for row in rows:
        # YES instances attain T; NO instances strictly exceed it.
        assert row["attains_T"] == (row["partition"] == "YES"), row
