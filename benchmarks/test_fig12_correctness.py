"""Benchmark regenerating Figures 12/19 and Table 3 (correctness)."""

from repro.experiments import fig12_correctness
from repro.experiments.common import render


def test_fig12_fig19_tab03_correctness(once):
    rows = once(fig12_correctness.run)
    print("\n" + render(rows))
    # Synchronous-SGD semantics: every scheme's per-minibatch losses match
    # the single-device baseline (float64: to ~1e-12).
    assert fig12_correctness.exact_match(rows)
    # Table 3: evaluation accuracy identical across schemes per task.
    for task in {row["task"] for row in rows}:
        accs = {row["eval_accuracy(%)"] for row in rows if row["task"] == task}
        assert len(accs) == 1, (task, accs)
    # And training actually converged (loss dropped substantially).
    for row in rows:
        assert row["final_loss"] < row["first_loss"] * 0.8, row
