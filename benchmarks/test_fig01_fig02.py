"""Benchmarks regenerating Figure 1 (growth) and Figure 2 (bottleneck)."""

from repro.experiments import fig01_growth, fig02_bottleneck
from repro.experiments.common import render


def test_fig01_growth(once):
    rows = once(fig01_growth.run)
    print("\n" + render(rows))
    print(fig01_growth.headline(rows))
    # Model state outgrew GPU memory: the latest model's state exceeds the
    # contemporary flagship GPU by orders of magnitude.
    assert rows[-1]["state/gpu_ratio"] > 50
    # And the earliest fit comfortably.
    assert rows[0]["state/gpu_ratio"] < 1


def test_fig02_swap_bottleneck(once):
    rows = once(fig02_bottleneck.run)
    print("\n" + render(rows))
    dp = [r for r in rows if r["panel"] == "b:dp-swap"]
    # (b) DP swap volume grows ~linearly with GPU count...
    ratio = dp[-1]["global_swap(GiB)"] / dp[0]["global_swap(GiB)"]
    assert ratio > 0.7 * (dp[-1]["gpus"] / dp[0]["gpus"])
    # ...while throughput flat-lines (sublinear scaling).
    tput_ratio = dp[-1]["throughput(samples/s)"] / dp[0]["throughput(samples/s)"]
    assert tput_ratio < 0.8 * (dp[-1]["gpus"] / dp[0]["gpus"])
    # (c) Pipeline stages have unbalanced swap loads (head > tail): the
    # head stage holds the deepest in-flight stash under 1F1B.
    stages = sorted(
        (r for r in rows if r["panel"] == "c:pp-swap-stage"),
        key=lambda r: r["gpus"],
    )
    head, tail = stages[0], stages[-1]
    assert head["global_swap(GiB)"] > 1.2 * tail["global_swap(GiB)"]
