"""Benchmarks regenerating Tables 1/5 (search results) and 4 (Equi-FB)."""

from repro.experiments import tab01_search, tab04_equifb
from repro.experiments.common import render


def test_tab01_tab05_configuration_search(once):
    rows = once(tab01_search.run)
    print("\n" + render(rows))
    for model, table in tab01_search.pack_details().items():
        print(f"\n== {model} packs (Table 5) ==\n{table}")
    by = {r["model"]: r for r in rows}
    # Scheduling completes within the paper's ~32 s budget for every model.
    assert all(r["scheduler_time(s)"] < 60 for r in rows)
    # Transformers schedule much faster than the deep, irregular CNNs.
    transformer_time = max(by[m]["scheduler_time(s)"] for m in ("bert96", "gpt2"))
    cnn_time = max(by[m]["scheduler_time(s)"] for m in ("vgg416", "resnet1k"))
    assert cnn_time > transformer_time
    # Backward packs outnumber... GPT2's backward packs are few and large
    # (the paper found |P_B|=4); sanity-band the counts.
    assert 2 <= by["gpt2"]["|P_B|"] <= 16
    assert by["resnet1k"]["|P_B|"] >= 2


def test_tab04_equi_vs_distinct(once):
    rows = once(tab04_equifb.run)
    print("\n" + render(rows))
    # Distinct-FB never loses materially, and the CNNs gain the most.
    for row in rows:
        assert row["improvement(%)"] > -5.0, row
    cnn_gain = max(r["improvement(%)"] for r in rows
                   if r["model"] in ("vgg416", "resnet1k"))
    transformer_gain = max(r["improvement(%)"] for r in rows
                           if r["model"] in ("bert96", "gpt2"))
    assert cnn_gain >= transformer_gain - 2.0
