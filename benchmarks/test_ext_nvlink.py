"""Benchmark for the NVLink extension (paper footnote 3).

"NVLink will only enhance Harmony's advantages due to p2p transfers":
with an NVLink mesh, PP's inter-pack activations leave the PCIe tree;
Harmony DP, which never uses p2p, is untouched.  In our calibration PP's
p2p traffic already hides behind compute, so the gain is bounded but
never negative -- the claim's direction holds.
"""

from repro.experiments import ext_nvlink
from repro.experiments.common import render


def test_ext_nvlink(once):
    rows = once(ext_nvlink.run)
    print("\n" + render(rows))
    for model in {r["model"] for r in rows}:
        pp_gain = ext_nvlink.nvlink_gain(rows, model, "pp")
        dp_gain = ext_nvlink.nvlink_gain(rows, model, "dp")
        print(f"{model}: NVLink gain PP={pp_gain:.3f}x DP={dp_gain:.3f}x")
        # DP unchanged; PP never regresses.
        assert dp_gain == 1.0
        assert pp_gain >= 0.999
