"""Benchmarks regenerating Figure 10 (swap load) and Figure 11 (ZeRO)."""

from repro.experiments import fig10_swapload, fig11_zero
from repro.experiments.common import render


def test_fig10_swap_load(once):
    rows = once(fig10_swapload.run)
    print("\n" + render(rows))
    ratio = fig10_swapload.swap_ratio(rows)
    print(f"dp-swap / harmony-pp global swap @64: {ratio:.0f}x")
    # Harmony PP's swap volume is 1-2 orders of magnitude below DP Swap.
    assert ratio > 10
    # Harmony DP sits roughly an order of magnitude above Harmony PP but
    # well below DP Swap.
    cell = {
        r["scheme"]: r["swap(GiB)"]
        for r in rows
        if r["panel"] == "b:global" and r["minibatch"] == 64
    }
    assert cell["harmony-dp"] < cell["dp-swap"] / 5
    assert cell["harmony-pp"] < cell["harmony-dp"]
    # Baseline swap grows with minibatch; Harmony's stays near-flat
    # (state-dominated).
    dp16 = next(r["swap(GiB)"] for r in rows
                if r["panel"] == "b:global" and r["minibatch"] == 16
                and r["scheme"] == "dp-swap")
    pp16 = next(r["swap(GiB)"] for r in rows
                if r["panel"] == "b:global" and r["minibatch"] == 16
                and r["scheme"] == "harmony-pp")
    assert cell["dp-swap"] / dp16 > 1.5
    assert cell["harmony-pp"] / pp16 < 1.5


def test_fig11_zero_infinity(once):
    rows = once(fig11_zero.run)
    print("\n" + render(rows))
    summary = fig11_zero.summary(rows)
    print(render([summary]))
    # Harmony's swap load is an order of magnitude below ZeRO-Infinity.
    assert summary["swap_ratio_zero_vs_pp"] > 8
    # Harmony DP and PP at least match ZeRO-Infinity's throughput.
    assert summary["dp_speedup_vs_zero"] > 0.95
    assert summary["pp_speedup_vs_zero"] > 0.9
