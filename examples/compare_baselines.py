#!/usr/bin/env python
"""Compare Harmony against per-GPU-virtualization baselines.

Reproduces a single column of the paper's Figure 9 interactively: pick a
model and minibatch size, run DP Swap, GPipe Swap (with and without
recomputation), PipeDream-2BW Swap, the ZeRO-Infinity analog, and both
Harmony schedules, and print throughput, swap volume, and the speedups.

Run:  python examples/compare_baselines.py [model] [minibatch]
      python examples/compare_baselines.py bert96 32
"""

import sys

from repro import Harmony, HarmonyOptions, four_gpu_commodity_server
from repro.baselines import (
    DpSwapPlanner,
    GpipeSwapPlanner,
    PipeDream2BWPlanner,
    ZeroInfinityPlanner,
)
from repro.experiments.common import render


def main(model: str = "gpt2", minibatch: int = 32) -> None:
    server = four_gpu_commodity_server()
    rows = []

    def record(name, metrics):
        rows.append({
            "scheme": name,
            "iteration(s)": metrics.iteration_time,
            "throughput(samples/s)": metrics.throughput,
            "global_swap(GiB)": metrics.global_swap_bytes / 2**30,
        })

    record("dp-swap", DpSwapPlanner(model, server, minibatch).run())
    record("gp-swap", GpipeSwapPlanner(model, server, minibatch).run())
    record("gp-swap (R)",
           GpipeSwapPlanner(model, server, minibatch, recompute=True).run())
    record("2bw-swap", PipeDream2BWPlanner(model, server, minibatch).run())
    record("2bw-swap (R)",
           PipeDream2BWPlanner(model, server, minibatch, recompute=True).run())

    harmony_dp = Harmony(model, server, minibatch,
                         options=HarmonyOptions(mode="dp"))
    config = harmony_dp.plan().config
    record("zero-infinity", ZeroInfinityPlanner(
        model, server, minibatch, u_f=config.u_f, u_b=config.u_b).run())
    record("harmony-dp", harmony_dp.run().metrics)
    harmony_pp = Harmony(model, server, minibatch,
                         options=HarmonyOptions(mode="pp"))
    record("harmony-pp", harmony_pp.run().metrics)

    print(f"== {model}, minibatch {minibatch}, {server.describe()} ==")
    print(render(rows))
    pp = next(r for r in rows if r["scheme"] == "harmony-pp")
    dp_swap = next(r for r in rows if r["scheme"] == "dp-swap")
    print(f"\nHarmony PP is {dp_swap['iteration(s)'] / pp['iteration(s)']:.1f}x "
          f"faster than DP Swap, with "
          f"{dp_swap['global_swap(GiB)'] / pp['global_swap(GiB)']:.0f}x less "
          "swap traffic.")


if __name__ == "__main__":
    model = sys.argv[1] if len(sys.argv) > 1 else "gpt2"
    minibatch = int(sys.argv[2]) if len(sys.argv) > 2 else 32
    main(model, minibatch)
