#!/usr/bin/env python
"""Push to the CPU-memory limit: 10-40 billion parameter models.

Section 5.7 of the paper: on an 8-GPU server with 750 GB of host memory,
Harmony trains customized GPT2 variants up to 40 B parameters -- a model
whose state alone is ~600 GiB -- while the ZeRO-Infinity analog runs out
of host memory at 40 B.  This example sweeps the model sizes and GPU
counts and prints throughput scaling.

Run:  python examples/massive_models.py
"""

from repro import Harmony, HarmonyOptions, build_model, eight_gpu_commodity_server
from repro.baselines import ZeroInfinityPlanner
from repro.common.errors import HostOutOfMemoryError
from repro.experiments.common import render, scaling_server


def main() -> None:
    server = eight_gpu_commodity_server()
    print(f"server: {server.describe()}\n")

    rows = []
    for billions in (10, 20, 30, 40):
        name = f"gpt2-{billions}b"
        model = build_model(name)
        harmony = Harmony(model, server, minibatch=32,
                          options=HarmonyOptions(mode="pp"))
        metrics = harmony.run().metrics
        try:
            config = harmony.plan().config
            zero = ZeroInfinityPlanner(model, server, 32,
                                       u_f=config.u_f, u_b=config.u_b).run()
            zero_tput = f"{zero.throughput:.3f}"
        except HostOutOfMemoryError:
            zero_tput = "OOM (host)"
        rows.append({
            "model": name,
            "state(GiB)": model.model_state_bytes / 2**30,
            "harmony-pp(samples/s)": metrics.throughput,
            "zero-infinity(samples/s)": zero_tput,
        })
    print(render(rows))

    print("\nScaling Harmony PP on gpt2-10b from 1 to 8 GPUs:")
    scale_rows = []
    base = None
    for n in (1, 2, 4, 8):
        harmony = Harmony("gpt2-10b", scaling_server(n), minibatch=16,
                          options=HarmonyOptions(mode="pp"))
        tput = harmony.run().metrics.throughput
        base = base or tput
        scale_rows.append({
            "gpus": n,
            "throughput(samples/s)": tput,
            "speedup": tput / base,
        })
    print(render(scale_rows))


if __name__ == "__main__":
    main()
