#!/usr/bin/env python
"""Quickstart: train a model larger than your GPUs.

GPT2 (1.5B parameters, ~24 GiB of model state) does not fit the 44 GiB of
collective GPU memory on the paper's 4x GTX-1080Ti testbed once
activations and workspace are counted -- yet Harmony trains it.  This
script plans and executes one training iteration with both Harmony
schedules and prints what the Scheduler decided and what it cost.

Run:  python examples/quickstart.py
"""

from repro import Harmony, HarmonyOptions, build_model, four_gpu_commodity_server


def main() -> None:
    server = four_gpu_commodity_server()
    model = build_model("gpt2")

    print(f"server : {server.describe()}")
    print(f"model  : {model.summary()}")
    print(f"         (collective GPU memory: "
          f"{server.collective_gpu_memory / 2**30:.0f} GiB)")
    print()

    for mode in ("dp", "pp"):
        harmony = Harmony(model, server, minibatch=32,
                          options=HarmonyOptions(mode=mode))

        # The Scheduler: decompose -> profile -> search configurations.
        plan = harmony.plan()
        print(plan.describe())

        # The Runtime: execute one iteration on the simulated server.
        report = harmony.run(plan=plan)
        print(report.metrics.describe())
        print()


if __name__ == "__main__":
    main()
