#!/usr/bin/env python
"""Verify Harmony preserves synchronous-SGD semantics, end to end.

Fine-tunes the numeric "BERT-tiny" classifier on a synthetic MRPC-style
task three ways -- single-device baseline, Harmony PP (microbatched with
checkpoint rematerialization), Harmony DP (4 workers) -- and prints the
per-minibatch loss curves side by side.  In float64 they coincide to
machine precision: the paper's Figure 12 "exact match".

Run:  python examples/finetune_correctness.py
"""

from repro.numeric.data import synthetic_mrpc
from repro.numeric.harmony_exec import HarmonyNumericTrainer
from repro.numeric.model import make_classifier
from repro.numeric.optim import Adam
from repro.numeric.trainer import ReferenceTrainer


def main() -> None:
    dataset = synthetic_mrpc()
    batch, epochs = 32, 2

    baseline = ReferenceTrainer(make_classifier(seed=0), Adam(lr=2e-3))
    base = baseline.train(dataset, batch, epochs)

    pp = HarmonyNumericTrainer(
        make_classifier(seed=0), Adam(lr=2e-3), u_f=8, u_b=4
    ).train(dataset, batch, epochs)

    dp = HarmonyNumericTrainer(
        make_classifier(seed=0), Adam(lr=2e-3), u_f=8, u_b=4, n_workers=4
    ).train(dataset, batch, epochs)

    print(f"{'minibatch':>9}  {'baseline':>12}  {'harmony-pp':>12}  "
          f"{'harmony-dp':>12}")
    for i, (a, b, c) in enumerate(zip(base.losses, pp.losses, dp.losses)):
        marker = "" if abs(a - b) < 1e-10 and abs(a - c) < 1e-10 else "  <-- MISMATCH"
        if i % 4 == 0 or marker:
            print(f"{i:>9}  {a:>12.8f}  {b:>12.8f}  {c:>12.8f}{marker}")

    dev_pp = max(abs(a - b) for a, b in zip(base.losses, pp.losses))
    dev_dp = max(abs(a - b) for a, b in zip(base.losses, dp.losses))
    print(f"\nmax |loss difference| vs baseline: PP {dev_pp:.2e}, DP {dev_dp:.2e}")
    print(f"eval accuracy: baseline {base.eval_accuracy:.4f}, "
          f"PP {pp.eval_accuracy:.4f}, DP {dp.eval_accuracy:.4f}")
    assert dev_pp < 1e-10 and dev_dp < 1e-10
    print("Harmony schedules preserve synchronous SGD semantics. ✓")


if __name__ == "__main__":
    main()
