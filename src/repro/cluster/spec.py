"""Multi-server cluster descriptions and the instantiated fabric.

A :class:`ClusterSpec` joins several
:class:`~repro.hardware.server.ServerSpec` machines through a
:class:`NetworkSpec` -- per-server full-duplex NIC links feeding a shared
switch, each modeled as a :class:`~repro.sim.links.NetworkLink` with the
same bandwidth arbitration the PCIe tree uses plus propagation latency.
:class:`SimulatedCluster` binds the spec to a simulator: one
:class:`~repro.hardware.server.SimulatedServer` per machine plus a
:class:`~repro.cluster.fabric.ClusterFabric` for the cross-server hops.

The routing model is host-to-host: Harmony's execution model flushes all
state to host memory at every iteration boundary (synchronous SGD), so
cross-server traffic -- pipeline activations, DP all-reduce shards,
checkpoint replicas, migrated state -- always originates and terminates
in host RAM.  A cross-server path is therefore
``[src NIC up, switch, dst NIC down]``; GPU-to-GPU paths additionally
traverse each end's PCIe tree (:meth:`SimulatedCluster.gpu_path`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import SimulationError
from repro.common.units import GB
from repro.hardware.server import ServerSpec, SimulatedServer, four_gpu_commodity_server
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class NetworkSpec:
    """The cluster interconnect: NIC and switch capacity plus latency.

    Bandwidths are bytes/second per direction; ``latency`` is the per-NIC
    propagation delay added to every network hold (switch latency is
    folded into the NIC figure, which is how datacenter RTTs are usually
    quoted).  The switch is a single shared full-duplex fabric: all
    cross-server transfers contend on it, the cluster analog of the
    paper's oversubscribed PCIe uplink.
    """

    #: per-server NIC bandwidth, bytes/s each direction
    bandwidth: float = 25 * GB / 8
    #: per-hop propagation delay on NIC links, seconds
    latency: float = 10e-6
    #: shared switch fabric bandwidth, bytes/s each direction
    switch_bandwidth: float = 100 * GB / 8

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise SimulationError(
                f"NIC bandwidth must be positive, got {self.bandwidth}"
            )
        if self.switch_bandwidth <= 0:
            raise SimulationError(
                f"switch bandwidth must be positive, got {self.switch_bandwidth}"
            )
        if self.latency < 0:
            raise SimulationError(
                f"network latency cannot be negative, got {self.latency}"
            )

    def describe(self) -> str:
        return (
            f"{self.bandwidth * 8 / GB:.0f} Gb/s NICs, "
            f"{self.switch_bandwidth * 8 / GB:.0f} Gb/s switch, "
            f"{self.latency * 1e6:.0f}us latency"
        )


#: 25 GbE with a 100 GbE switch: the commodity-cluster baseline.
ETH_25G = NetworkSpec()

#: 100 GbE with a 400 GbE switch: the upgraded fabric.
ETH_100G = NetworkSpec(bandwidth=100 * GB / 8, latency=5e-6,
                       switch_bandwidth=400 * GB / 8)


@dataclass(frozen=True)
class ClusterSpec:
    """Several servers joined by a network: the multi-machine testbed."""

    servers: tuple[ServerSpec, ...]
    network: NetworkSpec = field(default_factory=NetworkSpec)

    def __post_init__(self) -> None:
        if not self.servers:
            raise SimulationError("a cluster needs at least one server")

    @property
    def n_servers(self) -> int:
        return len(self.servers)

    @property
    def total_gpus(self) -> int:
        return sum(s.n_gpus for s in self.servers)

    def describe(self) -> str:
        return (
            f"{self.n_servers} server(s) / {self.total_gpus} GPUs over "
            f"{self.network.describe()}:\n" + "\n".join(
                f"  s{i}: {s.describe()}" for i, s in enumerate(self.servers)
            )
        )


def homogeneous_cluster(
    n_servers: int,
    server: ServerSpec = None,  # type: ignore[assignment]
    network: NetworkSpec = ETH_25G,
) -> ClusterSpec:
    """``n_servers`` identical machines (default: the paper's testbed)."""
    if n_servers < 1:
        raise SimulationError(f"need at least one server, got {n_servers}")
    spec = server if server is not None else four_gpu_commodity_server()
    return ClusterSpec(servers=tuple(spec for _ in range(n_servers)),
                       network=network)


class SimulatedCluster:
    """Live cluster: per-server machines plus the network fabric.

    All servers share one simulator, so intra-server PCIe traffic and
    cross-server network traffic contend on a single virtual clock.  The
    cluster runner normally simulates phases on *separate* simulators
    (per-server compute is independent between synchronization points);
    this class exists for whole-cluster experiments and path queries.
    """

    def __init__(self, sim: Simulator, spec: ClusterSpec):
        from repro.cluster.fabric import ClusterFabric

        self.sim = sim
        self.spec = spec
        self.servers = [SimulatedServer(sim, s) for s in spec.servers]
        self.fabric = ClusterFabric(sim, spec)

    def gpu_path(self, src_server: int, src_gpu: int,
                 dst_server: int, dst_gpu: int) -> list:
        """The link path from one GPU's memory to another's, cross-server.

        Same-server pairs ride the local PCIe tree (p2p path); different
        servers ride GPU -> host tree, NIC up, switch, NIC down, host ->
        GPU tree -- the host-staged route every cross-server tensor takes.
        """
        if src_server == dst_server:
            return self.servers[src_server].tree.gpu_to_gpu(src_gpu, dst_gpu)
        return (
            self.servers[src_server].tree.gpu_to_host(src_gpu)
            + self.fabric.route(src_server, dst_server)
            + self.servers[dst_server].tree.host_to_gpu(dst_gpu)
        )
