"""Multi-server clusters: failure domains above the single machine.

The paper's Harmony trains massive models on ONE commodity server; this
package composes those per-server plans across a simulated cluster --
stage-per-server pipelines or data-parallel replicas over NIC + switch
network links -- and extends the fault/recovery ladder one failure
domain up: whole-server crashes, network partitions, NIC degradation,
and switch flapping, recovered by replica restore, cross-server
re-planning, and pipeline stage shrinking (DESIGN.md section 14).
"""

from repro.cluster.fabric import ClusterFabric
from repro.cluster.faults import (
    ClusterFaultKind,
    ClusterFaultPlan,
    ClusterFaultSpec,
    ClusterInjector,
    PartitionWindow,
    ScriptedClusterFaultPlan,
)
from repro.cluster.placement import (
    ClusterPlan,
    ClusterPlanner,
    StagePlan,
    partition_stages,
    stage_model,
)
from repro.cluster.runner import ClusterPolicy, ClusterRunner
from repro.cluster.spec import (
    ETH_25G,
    ETH_100G,
    ClusterSpec,
    NetworkSpec,
    SimulatedCluster,
    homogeneous_cluster,
)

__all__ = [
    "ETH_25G",
    "ETH_100G",
    "ClusterFabric",
    "ClusterFaultKind",
    "ClusterFaultPlan",
    "ClusterFaultSpec",
    "ClusterInjector",
    "ClusterPlan",
    "ClusterPlanner",
    "ClusterPolicy",
    "ClusterRunner",
    "ClusterSpec",
    "NetworkSpec",
    "PartitionWindow",
    "ScriptedClusterFaultPlan",
    "SimulatedCluster",
    "StagePlan",
    "homogeneous_cluster",
    "partition_stages",
    "stage_model",
]
