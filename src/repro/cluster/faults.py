"""Cluster-scoped fault models: what can kill a whole failure domain.

Extends the per-server taxonomy (:mod:`repro.faults.plan`) one level up.
All decisions are the same *stateless* hash draws
(:mod:`repro.common.rng`): a decision depends only on ``(seed, fault
kind, entity labels, epoch)``, never on question order, so a cluster
chaos run is byte-for-byte reproducible from its seed alone.

The cluster fault taxonomy (DESIGN.md section 14):

- **whole-server crash** -- a machine permanently dies at an iteration
  boundary (power/kernel/fabric failure); its pipeline stage must be
  restored from a replica on a survivor;
- **network partition** -- for a time window, the servers split into two
  disconnected components; transfers across the cut cannot start until
  the window heals (the runner stalls, bounded by policy);
- **NIC degradation** -- a server's NIC runs at reduced bandwidth for an
  epoch (flaky optics, congestion); lazy time-indexed multiplier exactly
  like PCIe link flapping;
- **switch flap** -- the shared switch fabric degrades for an epoch,
  slowing *all* cross-server traffic at once.

Each server also carries its own inner :class:`~repro.faults.FaultSpec`
(GPU losses, stragglers, transfer faults...), derived per-server from the
cluster seed, so intra-server chaos and cluster chaos compose.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, fields
from typing import Iterable, Optional, Sequence

from repro.common.rng import unit
from repro.faults.plan import FaultPlan, FaultSpec


class ClusterFaultKind(enum.Enum):
    """Cluster-level fault classes the injector can deliver."""

    SERVER_CRASH = "server_crash"
    PARTITION = "partition"
    NIC_DEGRADE = "nic_degrade"
    SWITCH_FLAP = "switch_flap"


_RATES = (
    "server_crash_rate",
    "partition_rate",
    "nic_degrade_rate",
    "switch_flap_rate",
)


@dataclass(frozen=True)
class ClusterFaultSpec:
    """Rates and magnitudes for each cluster fault class (rates in [0, 1])."""

    #: probability a given server permanently crashes during the run
    server_crash_rate: float = 0.0
    #: probability a given window epoch is a network partition
    partition_rate: float = 0.0
    #: virtual seconds per partition window epoch
    partition_interval: float = 0.05
    #: probability a NIC direction spends a given epoch degraded
    nic_degrade_rate: float = 0.0
    #: bandwidth multiplier while a NIC is degraded
    nic_degrade_factor: float = 0.25
    #: virtual seconds per NIC degradation epoch
    nic_flap_interval: float = 0.05
    #: probability the switch spends a given epoch degraded
    switch_flap_rate: float = 0.0
    #: bandwidth multiplier while the switch is degraded
    switch_flap_factor: float = 0.5
    #: per-server (intra-machine) fault mix
    inner: FaultSpec = field(default_factory=FaultSpec)

    def __post_init__(self) -> None:
        for name in _RATES:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        for name in ("nic_degrade_factor", "switch_flap_factor"):
            factor = getattr(self, name)
            if not 0.0 < factor <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {factor}")
        for name in ("partition_interval", "nic_flap_interval"):
            interval = getattr(self, name)
            if interval <= 0:
                raise ValueError(f"{name} must be positive, got {interval}")

    @property
    def any_enabled(self) -> bool:
        return (
            any(getattr(self, name) > 0.0 for name in _RATES)
            or self.inner.any_enabled
        )

    # -- presets -----------------------------------------------------------------

    @classmethod
    def none(cls) -> "ClusterFaultSpec":
        """All cluster faults off."""
        return cls()

    @classmethod
    def cluster_chaos(cls, intensity: float = 1.0) -> "ClusterFaultSpec":
        """The standard cluster chaos mix, scaled by ``intensity``.

        At intensity 1.0 a multi-server run typically sees a partition
        window or two, flapping NICs, and a whole-server crash every few
        seeds -- enough to exercise every cluster recovery rung without
        making completion unlikely.  The inner per-server mix runs at
        half intensity so cluster-level faults dominate the storm.
        """
        if intensity < 0:
            raise ValueError(f"intensity must be >= 0, got {intensity}")
        clamp = lambda r: min(1.0, r * intensity)  # noqa: E731
        return cls(
            server_crash_rate=clamp(0.25),
            partition_rate=clamp(0.15),
            nic_degrade_rate=clamp(0.10),
            switch_flap_rate=clamp(0.10),
            inner=FaultSpec.chaos(0.5 * intensity),
        )

    def describe(self) -> str:
        parts = [
            f"{f.name}={getattr(self, f.name):g}"
            for f in fields(self)
            if f.name != "inner"
            and getattr(self, f.name) != getattr(type(self)(), f.name)
        ]
        if self.inner.any_enabled:
            parts.append(f"inner={self.inner.describe()}")
        return (
            "ClusterFaultSpec(" + ", ".join(parts) + ")"
            if parts else "ClusterFaultSpec(off)"
        )


class ClusterFaultPlan:
    """A seeded, reproducible oracle for every cluster fault decision."""

    def __init__(self, spec: ClusterFaultSpec, seed: int = 0):
        self.spec = spec
        self.seed = seed

    @property
    def enabled(self) -> bool:
        return self.spec.any_enabled

    # -- per-server inner chaos --------------------------------------------------

    def server_plan(self, server: int) -> FaultPlan:
        """The inner (intra-server) fault plan for ``server``.

        Seeds are derived per server from the cluster seed, so two
        servers never see correlated inner dice and the whole cluster
        run still reproduces from one number.
        """
        derived = int(unit(self.seed, "server-seed", server) * 2**31)
        return FaultPlan(self.spec.inner, seed=derived)

    # -- whole-server crash ------------------------------------------------------

    def server_crash(self, server: int) -> Optional[int]:
        """Iteration at which ``server`` permanently crashes, or None.

        Run-scoped like GPU loss: dead hardware stays dead across
        retries.  Drawn from ``[1, 4]`` so a crash always strikes after
        at least one healthy iteration established the replica baseline.
        """
        if unit(self.seed, "server-loss", server) >= self.spec.server_crash_rate:
            return None
        return 1 + int(unit(self.seed, "server-loss-iter", server) * 4.0)

    # -- network partition -------------------------------------------------------

    def partition_sides(self, now: float) -> Optional[int]:
        """The active partition epoch at ``now``, or None if connected."""
        epoch = int(math.floor(now / self.spec.partition_interval))
        if unit(self.seed, "partition", epoch) < self.spec.partition_rate:
            return epoch
        return None

    def partitioned(self, a: int, b: int, now: float) -> bool:
        """Are servers ``a`` and ``b`` in different components at ``now``?

        During an active partition epoch every server is hashed onto one
        of two sides; a pair is cut iff the sides differ.  Side draws are
        epoch-scoped, so consecutive partition windows can cut different
        pairs.
        """
        if a == b:
            return False
        epoch = self.partition_sides(now)
        if epoch is None:
            return False
        side = lambda s: int(unit(self.seed, "partition-side", epoch, s) * 2)  # noqa: E731
        return side(a) != side(b)

    def partition_blocked(self, pairs: Iterable[tuple[int, int]],
                          now: float) -> bool:
        """Is any of ``pairs`` cut by a partition at ``now``?"""
        return any(self.partitioned(a, b, now) for a, b in pairs)

    def next_partition_change(self, now: float) -> Optional[float]:
        """The next time the partition state can change after ``now``.

        The base plan flips only at window-epoch boundaries; scripted
        plans override this with their window edges.  Always strictly
        greater than ``now``, so heal scans make progress.
        """
        interval = self.spec.partition_interval
        return (math.floor(now / interval) + 1.0) * interval

    # -- link degradation --------------------------------------------------------

    def nic_degradation(self, server: int, direction: str, epoch: int,
                        context: tuple = ()) -> float:
        """Bandwidth multiplier for one NIC direction during ``epoch``."""
        if unit(self.seed, "nic-flap", context, server, direction, epoch) < \
                self.spec.nic_degrade_rate:
            return self.spec.nic_degrade_factor
        return 1.0

    def switch_degradation(self, epoch: int, context: tuple = ()) -> float:
        """Bandwidth multiplier for the shared switch during ``epoch``."""
        if unit(self.seed, "switch-flap", context, epoch) < \
                self.spec.switch_flap_rate:
            return self.spec.switch_flap_factor
        return 1.0

    def describe(self) -> str:
        return f"ClusterFaultPlan(seed={self.seed}, {self.spec.describe()})"


@dataclass(frozen=True)
class PartitionWindow:
    """A scripted partition: servers in ``side`` vs everyone else."""

    t0: float
    t1: float
    side: frozenset[int]

    def __post_init__(self) -> None:
        if self.t1 <= self.t0:
            raise ValueError(f"empty partition window [{self.t0}, {self.t1})")

    def cuts(self, a: int, b: int, now: float) -> bool:
        return (
            self.t0 <= now < self.t1
            and ((a in self.side) != (b in self.side))
        )


class ScriptedClusterFaultPlan(ClusterFaultPlan):
    """Cluster fault decisions spelled out explicitly (for tests).

    ``crashes`` maps ``server -> death iteration``; ``partitions`` is a
    sequence of :class:`PartitionWindow` (or ``(t0, t1, side_iterable)``
    tuples); ``server_plans`` overrides the inner plan per server.
    """

    def __init__(
        self,
        crashes: Optional[dict[int, int]] = None,
        partitions: Sequence = (),
        server_plans: Optional[dict[int, FaultPlan]] = None,
        spec: Optional[ClusterFaultSpec] = None,
        seed: int = 0,
    ):
        super().__init__(spec if spec is not None else ClusterFaultSpec(),
                         seed=seed)
        self.crashes = dict(crashes or {})
        self.windows = [
            w if isinstance(w, PartitionWindow)
            else PartitionWindow(w[0], w[1], frozenset(w[2]))
            for w in partitions
        ]
        self.server_plans = dict(server_plans or {})

    @property
    def enabled(self) -> bool:
        return bool(
            self.crashes or self.windows or self.server_plans
            or self.spec.any_enabled
        )

    def server_plan(self, server: int) -> FaultPlan:
        if server in self.server_plans:
            return self.server_plans[server]
        return super().server_plan(server)

    def server_crash(self, server: int) -> Optional[int]:
        if server in self.crashes:
            return self.crashes[server]
        return super().server_crash(server)

    def partitioned(self, a: int, b: int, now: float) -> bool:
        if any(w.cuts(a, b, now) for w in self.windows):
            return True
        return super().partitioned(a, b, now)

    def next_partition_change(self, now: float) -> Optional[float]:
        edges = [t for w in self.windows for t in (w.t0, w.t1) if t > now]
        base = super().next_partition_change(now)
        if self.spec.partition_rate > 0 and base is not None:
            edges.append(base)
        if not edges:
            # No seeded partitions and no scripted edge ahead: the state
            # never changes again.
            return None
        return min(edges)


class ClusterInjector:
    """Arms a comm-phase fabric with seeded degradation and counts epochs.

    Comm phases run on private simulators whose clocks start at zero;
    ``offset`` maps local time back to the run's global clock so epoch
    draws line up across phases.  Distinct degraded ``(link, epoch)``
    pairs are accumulated across all phases the injector arms, feeding
    :class:`~repro.runtime.metrics.ClusterMetrics` fault counters.
    """

    def __init__(self, plan: ClusterFaultPlan, context: tuple = ()):
        self.plan = plan
        self.context = context
        self.nic_epochs: set[tuple[int, str, int]] = set()
        self.switch_epochs: set[int] = set()

    def arm(self, fabric, offset: float = 0.0) -> None:
        """Attach degradation closures and the partition guard."""
        for server, link in enumerate(fabric.nic_up):
            link.degradation = self._nic(server, "up", offset)
        for server, link in enumerate(fabric.nic_down):
            link.degradation = self._nic(server, "down", offset)
        fabric.switch.degradation = self._switch(offset)
        fabric.partition = (
            lambda a, b, now: self.plan.partitioned(a, b, now + offset)
        )

    def _nic(self, server: int, direction: str, offset: float):
        interval = self.plan.spec.nic_flap_interval
        def degradation(now: float) -> float:
            epoch = int(math.floor((now + offset) / interval))
            factor = self.plan.nic_degradation(server, direction, epoch,
                                               self.context)
            if factor < 1.0:
                self.nic_epochs.add((server, direction, epoch))
            return factor
        return degradation

    def _switch(self, offset: float):
        interval = self.plan.spec.nic_flap_interval
        def degradation(now: float) -> float:
            epoch = int(math.floor((now + offset) / interval))
            factor = self.plan.switch_degradation(epoch, self.context)
            if factor < 1.0:
                self.switch_epochs.add(epoch)
            return factor
        return degradation
