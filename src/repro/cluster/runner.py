"""Cluster execution under failure domains: the server-level ladder.

The :class:`ClusterRunner` drives a :class:`~repro.cluster.placement.ClusterPlan`
iteration by iteration.  Each cluster iteration has three phases:

1. **boundary** -- detect whole-server crashes (seeded, run-scoped, like
   GPU loss one level down) and re-plan on the survivors when the
   current placement uses a dead or retired server.  Re-planning
   migrates checkpointed stage state over the real network links
   (:class:`~repro.runtime.migration.NetworkMigrationExecutor`), sourcing
   a dead owner's state from its replica buddy;
2. **compute** -- every stage runs one iteration of its own per-server
   fault-tolerant runner (:class:`~repro.faults.runner.FaultTolerantRunner`
   stepped with a shared :class:`~repro.faults.runner.RunnerState`), so
   the whole intra-server ladder -- transfer retry, p2p fallback,
   compute retry, restart, rebind, elastic re-plan -- still applies
   inside each machine.  A stage that exhausts its inner ladder
   escalates here: the server is condemned, the cluster re-plans on the
   survivors, and the iteration retries once on the new placement;
3. **comm** -- the cross-server traffic of the iteration (pipeline
   boundary activations and gradients, or the DP ring all-reduce, plus
   buddy checkpoint replication) moves over the simulated network
   fabric, with seeded NIC/switch degradation armed and partition
   windows pre-checked: a cut pair stalls the phase until the window
   heals (bounded by policy, then a typed failure).

The escalation ladder one level up from the per-server one, cheapest
rung first: intra-server recovery -> replica restore + cross-server
re-plan -> pipeline stage shrink -> typed
:class:`~repro.common.errors.ClusterFaultError`.  Every outcome is
typed; nothing hangs (every phase simulator runs under a watchdog, every
stall scan is bounded).

Timing model: pipeline stages execute sequentially within a cluster
iteration (the conservative GPipe-style flush -- no cross-iteration
overlap), DP replicas execute concurrently; the cluster iteration time
is the stage sum (pp) or max (dp) plus communication, stalls, and
migration.  Failed compute attempts contribute no time (fail-stop at
the boundary); their recovery effort still lands in the counters.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import (
    ClusterFaultError,
    FaultError,
    ReproError,
    SimulationError,
    UnrecoveredFaultError,
)
from repro.cluster.fabric import ClusterFabric
from repro.cluster.faults import ClusterFaultPlan, ClusterFaultSpec, ClusterInjector
from repro.cluster.placement import ClusterPlan, ClusterPlanner
from repro.elastic.replanner import ElasticReplanner
from repro.faults.monitor import ServerHealthMonitor
from repro.faults.policy import RecoveryPolicy
from repro.faults.runner import FaultTolerantRunner, RunnerState
from repro.runtime.metrics import (
    ClusterMetrics,
    ElasticMetrics,
    RecoveryMetrics,
    RunMetrics,
)
from repro.runtime.migration import NetworkMigrationExecutor
from repro.runtime.timemodel import TrueTimeModel
from repro.sim.engine import Simulator
from repro.sim.links import transfer

#: Watchdog for one comm/migration phase: a handful of bulk transfers.
COMM_MAX_STEPS = 1_000_000


@dataclass(frozen=True)
class ClusterPolicy:
    """Tunables for the server-level recovery ladder."""

    #: per-server recovery policy (the intra-server ladder)
    inner: RecoveryPolicy = field(default_factory=RecoveryPolicy)
    #: consecutive degraded iterations (heavy inner recovery) before a
    #: *live* server is retired; a crashed or hard-failed server
    #: escalates immediately, like GPU loss one level down
    server_patience: int = 2
    #: cluster-level re-plans allowed per run
    max_cluster_replans: int = 4
    #: virtual seconds a comm phase may stall waiting for a partition
    #: window to heal before the run fails typed
    max_partition_wait: float = 1.0
    #: total partition stalls tolerated per run
    max_partition_stalls: int = 8
    #: replicate each pipeline stage's checkpoint to a buddy server
    #: every iteration (the state source for whole-server-loss recovery)
    replicate: bool = True

    def __post_init__(self) -> None:
        if self.server_patience < 0:
            raise ValueError("server_patience must be >= 0")
        if self.max_cluster_replans < 0:
            raise ValueError("max_cluster_replans must be >= 0")
        if self.max_partition_wait <= 0:
            raise ValueError("max_partition_wait must be positive")
        if self.max_partition_stalls < 0:
            raise ValueError("max_partition_stalls must be >= 0")


class ClusterRunner:
    """Run cluster iterations under a cluster fault plan, recovering
    where policy allows; every outcome is typed."""

    def __init__(
        self,
        planner: ClusterPlanner,
        fault_plan: Optional[ClusterFaultPlan] = None,
        policy: Optional[ClusterPolicy] = None,
        trace=None,
        check_invariants: bool = True,
    ):
        self.planner = planner
        self.fault_plan = (
            fault_plan if fault_plan is not None
            else ClusterFaultPlan(ClusterFaultSpec.none())
        )
        self.policy = policy if policy is not None else ClusterPolicy()
        self.trace = trace
        self.check_invariants = check_invariants
        self.metrics = ClusterMetrics()
        self.monitor: ServerHealthMonitor = ServerHealthMonitor(
            self.policy.server_patience
        )
        self.dead: set[int] = set()
        self.retired: set[int] = set()
        #: current plan's stage index -> buddy server holding its replica
        self.replicas: dict[int, int] = {}
        self.injector = ClusterInjector(self.fault_plan)
        #: accumulated per-network-link goodput across all phases, for
        #: byte reconciliation against the trace
        self.network_link_bytes: dict[str, int] = {}
        self._plan: Optional[ClusterPlan] = None
        self._runtimes: list[tuple[FaultTolerantRunner, RunnerState]] = []

    # -- trace helpers ------------------------------------------------------------

    def _mark(self, name: str, **meta) -> None:
        """A cluster-level control instant at the current global time."""
        if self.trace is not None:
            self.trace.instant("cluster", name, 0.0, lane="cluster", **meta)

    # -- plan binding -------------------------------------------------------------

    def _survivors(self) -> tuple[int, ...]:
        gone = self.dead | self.retired
        return tuple(
            s for s in range(self.planner.cluster.n_servers) if s not in gone
        )

    def _bind(self, plan: ClusterPlan) -> None:
        """Install a plan: build one stepped per-server runner per stage."""
        self._plan = plan
        self._runtimes = []
        for stage in plan.stages:
            spec = self.planner.cluster.servers[stage.server]
            time_model = TrueTimeModel(
                stage.plan.decomposed, spec.gpu, spec.host,
                n_gpus=spec.n_gpus,
            )
            runner = FaultTolerantRunner(
                spec, time_model, self.fault_plan.server_plan(stage.server),
                policy=self.policy.inner,
                prefetch=stage.harmony.options.prefetch,
                host_state_bytes=stage.harmony.host_state_bytes,
                replanner=ElasticReplanner(stage.harmony),
                trace=None,  # device ids collide across servers; the
                # cluster lane carries the cross-server timeline instead
            )
            state = RunnerState(self.policy.inner.replan_patience)
            self._runtimes.append((runner, state))
        self.replicas = {}

    # -- fabric + connectivity ----------------------------------------------------

    def _fabric(self, sim: Simulator, offset: float) -> ClusterFabric:
        """A fresh fabric for a phase starting at global time ``offset``,
        armed with seeded degradation and the partition guard."""
        fabric = ClusterFabric(sim, self.planner.cluster)
        if self.fault_plan.enabled:
            self.injector.arm(fabric, offset=offset)
        return fabric

    def _await_connectivity(
        self, pairs: set[tuple[int, int]], t_global: float, what: str,
    ) -> float:
        """Stall until no needed pair is partitioned; typed on budget.

        The scan walks partition-state change points (window-epoch
        boundaries / scripted window edges), so it terminates after at
        most ``max_partition_wait / interval`` steps -- never a hang.
        """
        if not self.fault_plan.enabled or not pairs:
            return t_global
        t = t_global
        epochs = 0
        while self.fault_plan.partition_blocked(pairs, t):
            nxt = self.fault_plan.next_partition_change(t)
            if nxt is None or nxt - t_global > self.policy.max_partition_wait:
                self.metrics.partition_stalls += 1
                self.metrics.partition_epochs += max(epochs, 1)
                raise ClusterFaultError(
                    f"network partition blocking {what} did not heal within "
                    f"{self.policy.max_partition_wait:g}s "
                    f"(cut pairs: {sorted(pairs)})",
                    entity="net.partition",
                )
            epochs += 1
            t = nxt
        if epochs:
            stall = t - t_global
            self.metrics.partition_stalls += 1
            self.metrics.partition_stall_time += stall
            self.metrics.partition_epochs += epochs
            self._mark("partition-stall", stall=stall, what=what)
            if self.trace is not None:
                self.trace.advance(stall)
            if self.metrics.partition_stalls > self.policy.max_partition_stalls:
                raise ClusterFaultError(
                    f"partition stall budget exhausted "
                    f"({self.metrics.partition_stalls} > "
                    f"{self.policy.max_partition_stalls})",
                    entity="net.partition",
                )
        return t

    def _run_transfers(
        self, moves: list[tuple[int, int, int, str]], t_global: float,
    ) -> float:
        """Execute cross-server transfers concurrently on a fresh fabric.

        Returns the phase duration; reconciles the fabric's per-link byte
        counters against the independently computed expectation and
        accumulates them for the trace-side check.
        """
        expected: Counter = Counter()
        sim = Simulator()
        sim.trace = self.trace
        fabric = self._fabric(sim, t_global)
        launched = 0
        for src, dst, nbytes, label in moves:
            if src == dst or nbytes <= 0:
                continue
            for name in (f"s{src}.nic.up", "net.switch", f"s{dst}.nic.down"):
                expected[name] += nbytes
            sim.process(
                transfer(sim, fabric.route(src, dst), nbytes,
                         label=label, device=-1, lane="cluster"),
                name=label,
            )
            launched += 1
        if not launched:
            return 0.0
        sim.run(max_steps=COMM_MAX_STEPS)
        actual = fabric.bytes_by_link()
        for name in sorted(set(expected) | set(actual)):
            if expected.get(name, 0) != actual.get(name, 0):
                raise SimulationError(
                    f"network link {name!r} byte accounting broken: "
                    f"expected {expected.get(name, 0)}, "
                    f"fabric counted {actual.get(name, 0)}"
                )
        for name, nbytes in actual.items():
            if nbytes:
                self.network_link_bytes[name] = (
                    self.network_link_bytes.get(name, 0) + nbytes
                )
        if self.trace is not None:
            self.trace.advance(sim.now)
        return sim.now

    # -- boundary: crash detection + re-plan --------------------------------------

    def _detect_crashes(self, iteration: int) -> None:
        if not self.fault_plan.enabled:
            return
        for server in range(self.planner.cluster.n_servers):
            if server in self.dead:
                continue
            death = self.fault_plan.server_crash(server)
            if death is not None and death <= iteration:
                self.dead.add(server)
                self.metrics.servers_lost += 1
                self.metrics.server_crashes += 1
                self.monitor.forget(server)
                self._mark(f"s{server}-crash", iteration=iteration)

    def _replan(self, iteration: int, t_global: float) -> float:
        """Re-plan on the survivors and migrate state; typed on failure."""
        survivors = self._survivors()
        if not survivors:
            raise ClusterFaultError(
                f"all {self.planner.cluster.n_servers} servers lost by "
                f"iteration {iteration}",
                entity="cluster",
            )
        if self.metrics.cluster_replans >= self.policy.max_cluster_replans:
            raise ClusterFaultError(
                f"cluster re-plan budget exhausted "
                f"({self.policy.max_cluster_replans}) at iteration {iteration}",
                entity="cluster",
            )
        old = self._plan
        assert old is not None
        try:
            new = self.planner.plan_for(survivors)
        except FaultError:
            raise
        except ReproError as exc:
            raise ClusterFaultError(
                f"cluster re-plan on {len(survivors)} survivor(s) failed "
                f"at iteration {iteration}: {exc}",
                entity="cluster",
            ) from exc
        gone = self.dead | self.retired
        moves, restores, lost = self.planner.migration_moves(
            old, new, gone, self.replicas,
        )
        for stage, reason in lost:
            if reason == "replica-dead":
                raise ClusterFaultError(
                    f"stage {stage} state lost at iteration {iteration}: "
                    f"owner and replica buddy both dead",
                    entity=f"stage{stage}",
                )
            # no-replica: the owner crashed before the first replication
            # round ever ran -- the stage re-initializes locally from the
            # iteration-0 checkpoint baseline (zero network bytes).
            restores += 1
            self._mark(f"stage{stage}-reinit", iteration=iteration)
        if moves:
            pairs = {(m.src, m.dst) for m in moves}
            t_global = self._await_connectivity(pairs, t_global, "migration")
            executor = NetworkMigrationExecutor(
                lambda sim: self._fabric(sim, t_global), trace=self.trace,
            )
            report = executor.run(moves, max_steps=COMM_MAX_STEPS)
            for name, nbytes in executor.link_bytes.items():
                if nbytes:
                    self.network_link_bytes[name] = (
                        self.network_link_bytes.get(name, 0) + nbytes
                    )
            self.metrics.migration_moves += report.n_moves
            self.metrics.migration_network_bytes += sum(
                m.nbytes for m in moves
            )
            self.metrics.migration_time += report.time
            t_global += report.time
        self.metrics.cluster_replans += 1
        self.metrics.state_restores += restores
        if len(new.stages) < len(old.stages):
            self.metrics.stage_shrinks += 1
            self._mark("stage-shrink", before=len(old.stages),
                       after=len(new.stages))
        self._mark("replan", iteration=iteration,
                   survivors=len(survivors), stages=len(new.stages))
        self._bind(new)
        return t_global

    def _boundary(self, iteration: int, t_global: float) -> float:
        self._detect_crashes(iteration)
        plan = self._plan
        assert plan is not None
        gone = self.dead | self.retired
        if gone & set(plan.servers):
            t_global = self._replan(iteration, t_global)
        return t_global

    # -- compute phase ------------------------------------------------------------

    def _compute(
        self, iteration: int, t_global: float,
        recovery: RecoveryMetrics, elastic: ElasticMetrics,
    ) -> tuple[float, int]:
        """One cluster iteration of per-server compute.

        Returns ``(new t_global, host peak bytes)``.  A stage whose inner
        ladder is exhausted condemns its server, re-plans, and retries
        the iteration on the new placement; the retry loop is bounded by
        the re-plan budget (each retry permanently removes a server).
        """
        while True:
            plan = self._plan
            assert plan is not None
            times: list[tuple[int, float]] = []
            host_peak = 0
            failed: Optional[int] = None
            try:
                for stage, (runner, state) in zip(plan.stages,
                                                  self._runtimes):
                    failed = stage.server
                    graph = (
                        state.graph if state.graph is not None
                        else stage.plan.graph
                    )
                    m = runner.run(graph, iterations=1,
                                   start_iteration=iteration, state=state)
                    recovery.accumulate(m.recovery)
                    elastic.accumulate(m.elastic)
                    host_peak = max(host_peak, m.host_peak_bytes)
                    times.append((stage.server, m.iteration_time))
                    # Soft signal: heavy inner recovery earns a strike;
                    # enough consecutive strikes retire the server at
                    # this boundary (re-plan fires below via retry or at
                    # the next iteration's boundary check).
                    degraded = m.recovery.restarts > 0
                    if (self.monitor.observe(stage.server, degraded,
                                             window=iteration)
                            and stage.server not in self.retired):
                        self.retired.add(stage.server)
                        self.metrics.servers_retired += 1
                        self.monitor.forget(stage.server)
                        self._mark(f"s{stage.server}-retired",
                                   iteration=iteration)
            except UnrecoveredFaultError as exc:
                # The server's whole intra-server ladder failed: condemn
                # it (dead hardware semantics -- no patience) and retry
                # the iteration on a re-planned placement.
                assert failed is not None
                if failed not in self.retired:
                    self.retired.add(failed)
                    self.metrics.servers_retired += 1
                self.monitor.forget(failed)
                self._mark(f"s{failed}-failed", iteration=iteration,
                           cause=type(exc).__name__)
                t_global = self._replan(iteration, t_global)
                continue
            break
        if plan.mode == "pp":
            # Conservative GPipe-style flush: stages run sequentially.
            t = 0.0
            for server, duration in times:
                if self.trace is not None:
                    self.trace.span("cluster", f"s{server}.compute",
                                    t, t + duration, lane="cluster",
                                    iteration=iteration)
                t += duration
            phase = t
        else:
            # DP replicas run concurrently; the slowest paces the step.
            for server, duration in times:
                if self.trace is not None:
                    self.trace.span("cluster", f"s{server}.compute",
                                    0.0, duration, lane="cluster",
                                    iteration=iteration)
            phase = max((d for _, d in times), default=0.0)
        if self.trace is not None:
            self.trace.advance(phase)
        return t_global + phase, host_peak

    # -- comm phase ---------------------------------------------------------------

    def _comm_moves(self) -> tuple[list[tuple[int, int, int, str]],
                                   int, dict[int, int]]:
        """The iteration's cross-server traffic: ``(moves, replication
        bytes, new replica map)``."""
        plan = self._plan
        assert plan is not None
        moves: list[tuple[int, int, int, str]] = []
        repl_bytes = 0
        replicas: dict[int, int] = {}
        stages = plan.stages
        if plan.mode == "pp":
            for k in range(len(stages) - 1):
                src, dst = stages[k].server, stages[k + 1].server
                nbytes = stages[k].boundary_out_bytes
                moves.append((src, dst, nbytes, f"act.s{src}->s{dst}"))
                moves.append((dst, src, nbytes, f"grad.s{dst}->s{src}"))
            if self.policy.replicate and len(stages) > 1:
                for k, stage in enumerate(stages):
                    buddy = stages[(k + 1) % len(stages)].server
                    if buddy == stage.server:
                        continue
                    replicas[k] = buddy
                    moves.append((stage.server, buddy, stage.state_bytes,
                                  f"repl.stage{k}"))
                    repl_bytes += stage.state_bytes
        else:
            n = len(stages)
            if n > 1:
                # Ring all-reduce: each participant ships 2(n-1)/n of the
                # gradient bytes to its ring successor per iteration.
                ring = int(
                    2 * (n - 1) * self.planner.model.weight_bytes / n
                )
                for i, stage in enumerate(stages):
                    dst = stages[(i + 1) % n].server
                    moves.append((stage.server, dst, ring,
                                  f"allreduce.s{stage.server}->s{dst}"))
            # DP state is replicated by construction: no explicit moves.
        return moves, repl_bytes, replicas

    def _comm(self, iteration: int, t_global: float) -> float:
        moves, repl_bytes, replicas = self._comm_moves()
        real = [(s, d, b, lbl) for s, d, b, lbl in moves
                if s != d and b > 0]
        if not real:
            self.replicas = replicas
            return t_global
        pairs = {(s, d) for s, d, _, _ in real}
        t_global = self._await_connectivity(pairs, t_global,
                                            f"iteration {iteration} comm")
        duration = self._run_transfers(real, t_global)
        self.metrics.network_bytes += sum(b for _, _, b, _ in real)
        self.metrics.replication_bytes += repl_bytes
        self.replicas = replicas
        return t_global + duration

    # -- the run loop -------------------------------------------------------------

    def run(self, iterations: int = 1) -> RunMetrics:
        """Execute ``iterations`` cluster iterations under the fault plan.

        Every outcome is typed: success returns metrics; an exhausted
        recovery ladder raises :class:`ClusterFaultError` (or the inner
        typed fault); an accounting violation raises
        :class:`SimulationError`.  Nothing hangs: all phase simulators
        run under watchdogs and all stall scans are bounded.
        """
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        plan = self.planner.plan_for(self._survivors())
        self._bind(plan)
        recovery = RecoveryMetrics()
        elastic = ElasticMetrics()
        t_global = 0.0
        host_peak = 0
        try:
            for iteration in range(iterations):
                t_global = self._boundary(iteration, t_global)
                t_global, peak = self._compute(iteration, t_global,
                                               recovery, elastic)
                host_peak = max(host_peak, peak)
                t_global = self._comm(iteration, t_global)
        finally:
            self.metrics.nic_degrade_epochs = len(self.injector.nic_epochs)
            self.metrics.switch_flap_epochs = len(self.injector.switch_epochs)
        if self.trace is not None and self.check_invariants:
            from repro.trace.invariants import check_network_reconciliation

            check_network_reconciliation(self.trace.events,
                                         self.network_link_bytes)
        assert self._plan is not None
        return RunMetrics(
            mode=f"cluster-{self.planner.mode}",
            minibatch=self.planner.minibatch,
            iteration_time=t_global / iterations,
            gpus=[],  # per-GPU detail lives in the per-server runs
            host_peak_bytes=host_peak,
            recovery=recovery,
            elastic=elastic,
            cluster=self.metrics,
        )
