"""Cross-server placement: composing per-server Harmony plans.

Two cluster modes, both *compositions* of the single-server scheduler
(each server still runs its own full Harmony plan internally -- the
wrap-around pipeline, swaps, p2p, everything):

- **dp** -- data parallelism: every live server holds the full model and
  trains its shard of the minibatch; a ring all-reduce over the network
  synchronizes gradients each iteration.  State is replicated by
  construction, so a crashed server costs a re-shard, never a state
  migration.
- **pp** -- a DAPPLE-style stage-per-server pipeline: the layer chain is
  split into contiguous stages balanced by forward FLOPs, one stage per
  live server; boundary activations flow forward and boundary gradients
  backward over the network each iteration.  Each stage's checkpoint
  state is replicated to a *buddy* (the next live server) so a crashed
  stage restores from its replica.

A full joint DP-within-PP search across servers is future work
(ROADMAP); this module plans the two pure compositions and re-plans them
on arbitrary survivor subsets, which is what the failure-domain recovery
ladder needs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Union

from repro.common.errors import GraphError, ReproError
from repro.cluster.spec import ClusterSpec
from repro.core.harmony import Harmony, HarmonyOptions, HarmonyPlan
from repro.graph.graph import LayerGraph
from repro.models.spec import ModelSpec
from repro.models.zoo import build_model
from repro.virt.devices import server_fingerprint

CLUSTER_MODES = ("dp", "pp")


def partition_stages(graph: LayerGraph, n_stages: int) -> list[tuple[int, int]]:
    """Split a layer chain into ``n_stages`` contiguous ``[lo, hi)`` ranges.

    Balanced by per-sample forward FLOPs via prefix sums: each cut lands
    at the first layer boundary reaching its share of the total, while
    always leaving at least one layer for every remaining stage.
    Deterministic, and every layer lands in exactly one stage.
    """
    n_layers = len(graph)
    if not 1 <= n_stages <= n_layers:
        raise GraphError(
            f"cannot split {n_layers} layers into {n_stages} stage(s)"
        )
    prefix = [0.0]
    for layer in graph:
        prefix.append(
            prefix[-1] + layer.flops_fwd_fixed + layer.flops_fwd_per_sample
        )
    total = prefix[-1]
    cuts = [0]
    for k in range(1, n_stages):
        target = total * k / n_stages
        i = cuts[-1] + 1
        limit = n_layers - (n_stages - k)
        while i < limit and prefix[i] < target:
            i += 1
        cuts.append(min(i, limit))
    cuts.append(n_layers)
    return [(cuts[j], cuts[j + 1]) for j in range(n_stages)]


def stage_model(model: ModelSpec, lo: int, hi: int, stage: int) -> ModelSpec:
    """The sub-model a pipeline stage trains: layers ``[lo, hi)``.

    Stage 0 ingests the real input samples; later stages ingest their
    first layer's input activation (that is what arrives over the
    network and must be host-resident while the stage trains).
    """
    sub = LayerGraph.chain(
        f"{model.name}[s{stage}]", model.graph.layers[lo:hi]
    )
    sample = (
        model.sample_bytes if stage == 0
        else model.graph.layers[lo].act_in_bytes_per_sample
    )
    return ModelSpec(
        name=sub.name,
        graph=sub,
        optimizer=model.optimizer,
        sample_bytes=sample,
        description=f"layers {lo}..{hi - 1} of {model.name}",
    )


@dataclass
class StagePlan:
    """One server's share of a cluster plan."""

    #: physical server index this stage is placed on
    server: int
    #: the (sub-)model this server trains
    model: ModelSpec
    #: per-server scheduler bound to this stage (memoizes its plans)
    harmony: Harmony
    #: the planned single-server schedule
    plan: HarmonyPlan
    #: layer range ``[lo, hi)`` of the full model (dp: the whole chain)
    layers: tuple[int, int]
    #: samples this server pushes through per iteration
    samples: int
    #: activation bytes shipped to the next stage per iteration (pp only)
    boundary_out_bytes: int
    #: checkpointed stage state (weights + optimizer) for replication
    state_bytes: int


@dataclass
class ClusterPlan:
    """A full cross-server placement: one StagePlan per participating server."""

    mode: str
    minibatch: int
    stages: list[StagePlan]
    #: live servers this plan was made for (participants are a subset)
    live: tuple[int, ...]
    #: True when the planner had to switch modes (dp infeasible -> pp)
    mode_switched: bool = False

    @property
    def servers(self) -> list[int]:
        return [s.server for s in self.stages]

    def describe(self) -> str:
        lines = [
            f"cluster-{self.mode} plan: {len(self.stages)} stage(s) on "
            f"servers {self.servers}, minibatch {self.minibatch}"
        ]
        for i, s in enumerate(self.stages):
            lines.append(
                f"  stage {i} @ s{s.server}: layers "
                f"[{s.layers[0]}, {s.layers[1]}), {s.samples} sample(s), "
                f"state {s.state_bytes / 2**20:.1f} MiB"
            )
        return "\n".join(lines)


def _state_bytes(model: ModelSpec, lo: int, hi: int) -> int:
    """Checkpoint bytes for layers ``[lo, hi)``: weights + optimizer.

    Gradients are transient within an iteration and not checkpointed,
    so the replicated state is ``(1 + slots) * params``, not the full
    ``model_state_bytes`` footprint.
    """
    params = sum(
        layer.param_bytes for layer in model.graph.layers[lo:hi]
    )
    return params * (1 + model.optimizer_slots)


class ClusterPlanner:
    """Plans (and re-plans) cross-server placements on live-server subsets.

    Plans are memoized per ``(mode, live subset)``; the per-server
    :class:`Harmony` instances memoize their own searches, so replaying
    a seeded storm re-derives bit-identical plans without re-searching.
    """

    def __init__(
        self,
        model: Union[str, ModelSpec],
        cluster: ClusterSpec,
        minibatch: int,
        mode: str = "pp",
        options: HarmonyOptions = HarmonyOptions(),
    ):
        if mode not in CLUSTER_MODES:
            raise ValueError(
                f"cluster mode must be one of {CLUSTER_MODES}, got {mode!r}"
            )
        if minibatch < 1:
            raise ValueError(f"minibatch must be >= 1, got {minibatch}")
        self.model = build_model(model) if isinstance(model, str) else model
        self.cluster = cluster
        self.minibatch = minibatch
        self.mode = mode
        #: per-server plans always use the wrap-around pipeline internally
        #: (it works for any GPU count); cluster dp/pp is the cross-server
        #: composition, not the intra-server mode.
        self.options = replace(options, mode="pp")
        self._plans: dict[tuple, ClusterPlan] = {}
        #: Harmony instances memoized per (server, stage model, samples,
        #: hardware fingerprint): a re-plan on survivors reuses each
        #: survivor's scheduler state, but never across a hardware swap.
        self._harmonies: dict[tuple, Harmony] = {}

    def _harmony(self, server: int, model: ModelSpec,
                 samples: int) -> Harmony:
        spec = self.cluster.servers[server]
        key = (server, model.name, samples, server_fingerprint(spec))
        if key not in self._harmonies:
            self._harmonies[key] = Harmony(
                model, spec, samples, self.options
            )
        return self._harmonies[key]

    def _topology_key(self, live: tuple[int, ...]) -> tuple[str, ...]:
        """Physical fingerprints of the live servers (+ the network).

        Part of every plan memo key: a placement computed against one
        hardware mix must never be served after the cluster's specs
        change (e.g. a server swapped for a different GPU count), even
        though the live-index tuple looks identical.
        """
        return tuple(
            server_fingerprint(self.cluster.servers[s]) for s in live
        ) + (server_fingerprint(self.cluster.network),)

    def plan_for(self, live: tuple[int, ...]) -> ClusterPlan:
        """The placement for the given live-server subset; memoized.

        Raises :class:`~repro.common.errors.ReproError` subclasses when
        no placement fits (no live servers, or every composition
        infeasible) -- the runner converts that into a typed
        cluster-level failure.
        """
        live = tuple(sorted(live))
        if not live:
            raise GraphError("cannot plan a cluster with no live servers")
        for server in live:
            if not 0 <= server < self.cluster.n_servers:
                raise GraphError(f"live server s{server} out of range")
        key = (self.mode, live, self._topology_key(live))
        if key in self._plans:
            return self._plans[key]
        if self.mode == "dp":
            try:
                plan = self._plan_dp(live)
            except ReproError:
                # DP cannot shard this minibatch over these survivors;
                # the stage pipeline works for any live count >= 1.
                plan = self._plan_pp(live)
                plan.mode_switched = True
        else:
            plan = self._plan_pp(live)
        self._plans[key] = plan
        return plan

    def _plan_dp(self, live: tuple[int, ...]) -> ClusterPlan:
        n = len(live)
        base, rem = divmod(self.minibatch, n)
        shares = [base + (1 if i < rem else 0) for i in range(n)]
        stages: list[StagePlan] = []
        n_layers = len(self.model.graph)
        state = _state_bytes(self.model, 0, n_layers)
        for i, server in enumerate(live):
            if shares[i] == 0:
                continue  # minibatch smaller than the cluster: idle server
            harmony = self._harmony(server, self.model, shares[i])
            stages.append(StagePlan(
                server=server,
                model=self.model,
                harmony=harmony,
                plan=harmony.plan(),
                layers=(0, n_layers),
                samples=shares[i],
                boundary_out_bytes=0,
                state_bytes=state,
            ))
        return ClusterPlan(mode="dp", minibatch=self.minibatch,
                           stages=stages, live=live)

    def _plan_pp(self, live: tuple[int, ...]) -> ClusterPlan:
        n_stages = min(len(live), len(self.model.graph))
        ranges = partition_stages(self.model.graph, n_stages)
        stages: list[StagePlan] = []
        for k, (lo, hi) in enumerate(ranges):
            server = live[k]
            sub = stage_model(self.model, lo, hi, k)
            harmony = self._harmony(server, sub, self.minibatch)
            boundary = (
                self.model.graph.layers[hi - 1].act_out_bytes_per_sample
                * self.minibatch
                if k < n_stages - 1 else 0
            )
            stages.append(StagePlan(
                server=server,
                model=sub,
                harmony=harmony,
                plan=harmony.plan(),
                layers=(lo, hi),
                samples=self.minibatch,
                boundary_out_bytes=boundary,
                state_bytes=_state_bytes(self.model, lo, hi),
            ))
        return ClusterPlan(mode="pp", minibatch=self.minibatch,
                           stages=stages, live=live)

    def migration_moves(
        self, old: ClusterPlan, new: ClusterPlan,
        dead: set[int], replicas: dict[int, int],
    ) -> tuple[list, int, list[tuple[int, str]]]:
        """Plan cross-server state moves from ``old`` to ``new`` packing.

        For every (old stage, new stage) layer-range overlap, the
        overlapping checkpoint bytes move from the old owner to the new
        owner over the network.  A dead old owner sources from its
        replica buddy (``replicas``: old stage index -> buddy server).

        Returns ``(moves, restores, lost)``:

        - ``moves`` -- executable :class:`~repro.runtime.migration.NetworkMove`
          list (co-located source/destination elided);
        - ``restores`` -- overlaps sourced from a replica instead of the
          (dead) owner, including co-located ones;
        - ``lost`` -- ``(old stage index, reason)`` for overlaps with no
          recoverable source: ``"no-replica"`` (crash before the first
          replication round -- re-initializable) or ``"replica-dead"``
          (owner and buddy both gone -- unrecoverable from peers).

        DP-to-anything migrations move nothing: DP state is replicated
        on every participant by construction, so any survivor sources
        locally.
        """
        from repro.runtime.migration import NetworkMove

        moves: list = []
        lost: list[tuple[int, str]] = []
        restores = 0
        if old.mode == "dp":
            return moves, restores, lost
        for j, ns in enumerate(new.stages):
            for i, os_ in enumerate(old.stages):
                lo = max(ns.layers[0], os_.layers[0])
                hi = min(ns.layers[1], os_.layers[1])
                if lo >= hi:
                    continue
                nbytes = _state_bytes(self.model, lo, hi)
                src: Optional[int] = os_.server
                if os_.server in dead:
                    buddy = replicas.get(i)
                    if buddy is None:
                        lost.append((i, "no-replica"))
                        continue
                    if buddy in dead:
                        lost.append((i, "replica-dead"))
                        continue
                    src = buddy
                    restores += 1
                if src == ns.server:
                    continue
                moves.append(NetworkMove(
                    src=src, dst=ns.server, nbytes=nbytes,
                    label=f"stage{i}->stage{j}",
                ))
        return moves, restores, lost
