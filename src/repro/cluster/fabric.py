"""The cluster network fabric: NIC links, the shared switch, routing.

Every server gets a full-duplex NIC pair (``s<i>.nic.up`` toward the
switch, ``s<i>.nic.down`` from it); one shared ``net.switch`` link
carries all cross-server traffic, so concurrent transfers between
different server pairs still contend -- the cluster-scale analog of the
paper's oversubscribed PCIe uplink.  Links are
:class:`~repro.sim.links.NetworkLink` instances, so the fault subsystem's
degradation hooks and the byte counters work unchanged.

An optional *partition guard* models network partitions: when armed
(a callable ``(src, dst, now) -> bool``), :meth:`ClusterFabric.route`
raises :class:`~repro.common.errors.NetworkPartitionError` for pairs in
different components instead of returning a path.  The cluster runner
pre-checks partitions and stalls until the window heals, so an armed
guard firing means the stall logic is broken -- it turns a silent wrong
schedule into a typed error.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.common.errors import NetworkPartitionError, SimulationError
from repro.cluster.spec import ClusterSpec
from repro.sim.engine import Simulator
from repro.sim.links import NetworkLink


class ClusterFabric:
    """The instantiated network: per-server NIC pairs plus the switch."""

    def __init__(self, sim: Simulator, spec: ClusterSpec):
        self.sim = sim
        self.spec = spec
        net = spec.network
        self.nic_up = [
            NetworkLink(sim, f"s{i}.nic.up", net.bandwidth, net.latency)
            for i in range(spec.n_servers)
        ]
        self.nic_down = [
            NetworkLink(sim, f"s{i}.nic.down", net.bandwidth, net.latency)
            for i in range(spec.n_servers)
        ]
        self.switch = NetworkLink(sim, "net.switch", net.switch_bandwidth)
        #: optional partition oracle ``(src, dst, now) -> bool``; armed by
        #: the chaos injector for comm phases
        self.partition: Optional[Callable[[int, int, float], bool]] = None

    def _check(self, server: int) -> None:
        if not 0 <= server < self.spec.n_servers:
            raise SimulationError(
                f"server s{server} out of range "
                f"(cluster has {self.spec.n_servers})"
            )

    def route(self, src: int, dst: int) -> list[NetworkLink]:
        """Host-to-host network path from server ``src`` to ``dst``.

        Empty for ``src == dst`` (co-located endpoints move no network
        bytes).  Raises :class:`NetworkPartitionError` when an armed
        partition guard puts the pair in different components.
        """
        self._check(src)
        self._check(dst)
        if src == dst:
            return []
        if self.partition is not None and self.partition(src, dst, self.sim.now):
            raise NetworkPartitionError(
                f"s{src} and s{dst} are in different partition components "
                f"at t={self.sim.now:.6g}",
                entity=f"s{src}->s{dst}",
            )
        return [self.nic_up[src], self.switch, self.nic_down[dst]]

    def network_links(self) -> list[NetworkLink]:
        """All fabric links in canonical (name-stable) order."""
        return [*self.nic_up, *self.nic_down, self.switch]

    def bytes_by_link(self) -> dict[str, int]:
        """Per-link goodput counters, keyed by link name."""
        return {link.name: link.bytes_moved for link in self.network_links()}
