"""Chaos engineering for the simulated runtime (DESIGN.md section 8).

Seeded, reproducible fault injection -- transfer faults, link
degradation/flapping, straggler GPUs, task crashes, host memory pressure
-- plus the recovery machinery that fights back: retry with backoff,
p2p->host-staged fallback, iteration-boundary checkpoint/restart, and
late-binding re-bind of persistently degraded GPUs.

Typical use::

    from repro.faults import FaultPlan, FaultSpec

    plan = FaultPlan(FaultSpec.chaos(), seed=7)
    report = harmony.run(fault_plan=plan, iterations=2)
    print(report.metrics.recovery.describe())

or from the command line: ``python -m repro.cli chaos gpt2 --seeds 10``.
"""

from repro.faults.injector import CrashFault, FaultInjector
from repro.faults.monitor import (
    DeviceHealthMonitor,
    HealthMonitor,
    ServerHealthMonitor,
)
from repro.faults.plan import (
    Crash,
    FaultKind,
    FaultPlan,
    FaultSpec,
    ScriptedFaultPlan,
)
from repro.faults.policy import RecoveryPolicy
from repro.faults.runner import (
    FaultTolerantRunner,
    check_byte_invariants,
    rebind_graph,
)

__all__ = [
    "Crash",
    "CrashFault",
    "DeviceHealthMonitor",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FaultTolerantRunner",
    "HealthMonitor",
    "RecoveryPolicy",
    "ScriptedFaultPlan",
    "ServerHealthMonitor",
    "check_byte_invariants",
    "rebind_graph",
]
