"""Fault-tolerant execution: checkpoint/restart, re-bind, invariants.

The :class:`FaultTolerantRunner` wraps the plain executor with the two
recovery mechanisms that live *above* a single iteration:

- **iteration-boundary checkpoint/restart** -- synchronous SGD flushes all
  state to host at every iteration boundary (that is the Harmony execution
  model), so the last completed iteration is always a consistent
  checkpoint.  An iteration attempt killed by an escalated fault is simply
  re-run on a fresh simulated server, with fresh (still seed-deterministic)
  fault dice for the ``(iteration, attempt)`` context -- otherwise the
  identical fault would deterministically recur forever;
- **late-binding re-bind** -- tasks carry a device *binding*, not an
  identity (Section 4.3.2's late binding), so at an iteration boundary the
  tasks of a persistently degraded or dead GPU can be re-bound to a
  healthy spare device.  P2P moves whose endpoints collapse onto one
  device become LOCAL (no traffic), exactly the transformation
  :func:`repro.elastic.rebind.rebind_graph` performs.  Re-binding repeats
  as often as trouble appears: a second device degrading later in the run
  is rescued exactly like the first, as long as spares remain;
- **elastic re-plan** -- when a device is permanently *lost* (or a
  degraded device has struck out past the health monitor's patience) and
  no spare exists, the runner escalates past binding patches entirely:
  the Harmony scheduler re-plans on the surviving device subset
  (:class:`repro.elastic.ElasticReplanner`), the re-planned graph is
  verified strictly against the reduced spec, and the checkpointed
  model/optimizer state migrates from the old packing to the new one
  over the real simulated links
  (:class:`repro.runtime.migration.MigrationExecutor`) -- the migration's
  time and bytes land in :class:`~repro.runtime.metrics.ElasticMetrics`.

The escalation ladder, cheapest rung first: transfer retry -> p2p->swap
fallback -> compute retry -> iteration restart -> re-bind -> re-plan.

The runner also audits every completed iteration with
:func:`check_byte_invariants`: whatever faults were injected and recovered,
the bytes that actually moved must still reconcile with the task graph's
static totals (fallback traffic re-accounted, nothing lost, nothing
double-counted).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.common.errors import (
    FaultError,
    ReproError,
    SimulationError,
    UnrecoveredFaultError,
)
from repro.core.types import Channel, TaskGraph
from repro.elastic.migration import plan_migration
from repro.elastic.rebind import rebind_graph
from repro.faults.injector import FaultInjector
from repro.faults.monitor import DeviceHealthMonitor
from repro.faults.plan import FaultPlan
from repro.faults.policy import RecoveryPolicy
from repro.hardware.server import ServerSpec, SimulatedServer
from repro.runtime.executor import DEFAULT_MAX_STEPS, Executor
from repro.runtime.metrics import (
    ElasticMetrics,
    GpuMetrics,
    RecoveryMetrics,
    RunMetrics,
)
from repro.runtime.migration import MigrationExecutor
from repro.runtime.timemodel import TrueTimeModel
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.elastic.replanner import ElasticReplanner

__all__ = [
    "FaultTolerantRunner",
    "RunnerState",
    "check_byte_invariants",
    "rebind_graph",  # re-exported from repro.elastic.rebind
]


class RunnerState:
    """Recovery state carried across :meth:`FaultTolerantRunner.run` calls.

    The runner is normally self-contained: one ``run()`` call owns the
    health monitor, the dead/retired device sets, and the current
    (possibly rebound or re-planned) graph.  A caller that steps a run
    iteration-by-iteration -- the cluster runner interleaves per-server
    compute with cross-server communication every iteration -- passes a
    ``RunnerState`` instead, so strikes, losses, and graph rescues
    persist between calls exactly as they would inside one long run.
    ``graph`` holds the current executable graph after each call; the
    caller passes it back in as the next call's input graph.
    """

    def __init__(self, patience: int):
        self.monitor = DeviceHealthMonitor(patience)
        self.dead: set[int] = set()
        self.retired: set[int] = set()
        self.graph: Optional[TaskGraph] = None


def check_byte_invariants(graph: TaskGraph, metrics: RunMetrics) -> None:
    """Reconcile one iteration's measured traffic with the graph's totals.

    Holds fault or no fault:

    - p2p bytes that actually moved, plus bytes rescued by the
      p2p->host-staged fallback, equal the graph's static p2p total;
    - swap bytes equal the graph's static host-link total, plus the extra
      relay leg of each MSG move (the executor counts both hops of the
      GPU->host->GPU relay), plus *twice* the fallback bytes (a fallback
      rides both hops of the same relay route).

    Raises :class:`~repro.common.errors.SimulationError` on mismatch --
    a recovery path that lost or double-counted traffic.
    """
    fallback = metrics.recovery.fallback_bytes
    actual_p2p = metrics.global_p2p_bytes
    expected_p2p = graph.p2p_bytes()
    if actual_p2p + fallback != expected_p2p:
        raise SimulationError(
            f"p2p byte accounting broken: moved {actual_p2p} + fallback "
            f"{fallback} != static {expected_p2p}"
        )
    msg_relay = sum(
        m.nbytes
        for task in graph.tasks
        for m in task.ins
        if m.channel is Channel.MSG and m.src_task is not None
    )
    actual_swap = metrics.global_swap_bytes
    expected_swap = graph.global_swap_bytes() + msg_relay + 2 * fallback
    if actual_swap != expected_swap:
        raise SimulationError(
            f"swap byte accounting broken: moved {actual_swap} != static "
            f"{graph.global_swap_bytes()} + msg relay {msg_relay} + "
            f"2*fallback {2 * fallback}"
        )


class FaultTolerantRunner:
    """Run a task graph under a fault plan, recovering where policy allows.

    Each iteration attempt executes on a fresh :class:`Simulator` and
    :class:`SimulatedServer` -- the simulated analog of restarting from
    the iteration-boundary checkpoint.  This is timing-faithful because
    iterations are flush-separated anyway (synchronous SGD): the plain
    multi-iteration executor also starts every iteration from an all-idle,
    all-flushed state.
    """

    def __init__(
        self,
        spec: ServerSpec,
        time_model: TrueTimeModel,
        plan: FaultPlan,
        policy: Optional[RecoveryPolicy] = None,
        prefetch: bool = True,
        host_state_bytes: int = 0,
        max_steps: Optional[int] = DEFAULT_MAX_STEPS,
        horizon: Optional[float] = None,
        check_invariants: bool = True,
        replanner: Optional["ElasticReplanner"] = None,
        trace=None,
        binding=None,
    ):
        self.spec = spec
        self.time_model = time_model
        self.plan = plan
        self.policy = policy if policy is not None else RecoveryPolicy()
        self.prefetch = prefetch
        self.host_state_bytes = host_state_bytes
        self.max_steps = max_steps
        self.horizon = horizon
        self.check_invariants = check_invariants
        #: elastic escalation target; None leaves only rebind-level rescue
        #: (anything with ``.replan(survivors) -> ElasticPlan`` works)
        self.replanner = replanner
        #: optional :class:`~repro.trace.recorder.TraceRecorder`; attached
        #: to every attempt's fresh simulator and advanced by each phase's
        #: duration so all attempts/migrations form one global timeline
        self.trace = trace
        #: optional :class:`repro.virt.DeviceBinding` (duck-typed): every
        #: simulated server this runner builds carries it, so per-GPU
        #: memory pools reflect a heterogeneous bind across retries and
        #: checkpoint restarts too
        self.binding = binding

    def _mark(self, cat: str, name: str, **meta) -> None:
        """A run-level control instant at the current global trace time."""
        if self.trace is not None:
            self.trace.instant(cat, name, 0.0, lane="run", **meta)

    # -- re-bind planning ---------------------------------------------------------

    def _rebind_mapping(self, graph: TaskGraph,
                        injector: FaultInjector) -> dict[int, int]:
        """Map persistently degraded in-use GPUs to healthy spare devices.

        Only devices the graph actually uses need rescuing; only healthy
        devices the graph does *not* use can absorb them (piling two
        devices' tasks onto one GPU would violate the planner's memory
        fit).  Stragglers with no available spare are tolerated: the run
        completes, just slower -- degradation, not failure.
        """
        degraded = {
            device: multiplier
            for device, multiplier, persistent in
            injector.degraded_gpus(self.spec.n_gpus)
            if persistent and multiplier >= self.policy.rebind_threshold
        }
        if not degraded:
            return {}
        used = {task.device for task in graph.tasks}
        spares = [
            d for d in range(self.spec.n_gpus)
            if d not in used and d not in degraded
        ]
        mapping: dict[int, int] = {}
        for device in sorted(d for d in degraded if d in used):
            if not spares:
                break
            mapping[device] = spares.pop(0)
        return mapping

    # -- execution ----------------------------------------------------------------

    def _attempt(self, graph: TaskGraph, iteration: int, attempt: int,
                 recovery: RecoveryMetrics) -> RunMetrics:
        injector = FaultInjector(self.plan, context=(iteration, attempt))
        sim = Simulator()
        sim.trace = self.trace
        live = SimulatedServer(sim, self.spec, binding=self.binding)
        injector.arm(live)
        executor = Executor(
            live, self.time_model,
            prefetch=self.prefetch,
            host_state_bytes=self.host_state_bytes,
            faults=injector,
            recovery=self.policy,
            max_steps=self.max_steps,
            horizon=self.horizon,
        )
        try:
            return executor.run(graph, iterations=1)
        except FaultError:
            # The attempt died, but its recovery effort and injected
            # faults still happened -- fold the partial counters in so
            # the final report reflects the whole fight, not just the
            # winning attempt.
            partial = getattr(executor, "recovery", None)
            if partial is not None:
                recovery.accumulate(partial)
            recovery.faults_injected += injector.total_injected
            raise
        finally:
            # Success or not, the attempt's virtual time really elapsed;
            # later phases continue the global timeline after it.
            if self.trace is not None:
                self.trace.advance(sim.now)

    # -- rescue (re-bind and elastic escalation) ----------------------------------

    def _rescue(
        self,
        current: TaskGraph,
        iteration: int,
        attempt: int,
        recovery: RecoveryMetrics,
        elastic: ElasticMetrics,
        monitor: DeviceHealthMonitor,
        dead: set[int],
        retired: set[int],
    ) -> TaskGraph:
        """Rescue ``current`` from dead/degraded devices before an attempt.

        Called at every iteration boundary (``attempt == 0``) and again
        between restart attempts (``attempt > 0``) so a mid-iteration GPU
        loss is recovered on the very next attempt instead of burning the
        whole restart budget.  The ladder, cheapest rung first:

        1. **re-bind**: troubled in-use devices (lost first, then
           persistently degraded beyond ``rebind_threshold``) move 1:1
           onto idle healthy spares -- repeatable, every boundary;
        2. **re-plan**: devices still stranded after re-binding escalate.
           A *lost* device escalates immediately (dead hardware earns no
           patience); a *degraded* one only after ``replan_patience``
           consecutive strikes on the health monitor.  The scheduler
           re-plans on the survivors and state migrates to the new
           packing at real link cost.

        A device dying at iteration ``i`` is only treated as detected
        once an attempt of iteration ``i`` has actually failed -- the
        loss surfaces as a :class:`GpuLostError` first, like real XID
        detection, so the injected fault is observed, counted, and then
        recovered.
        """
        probe = FaultInjector(self.plan, context=(iteration, attempt))
        horizon = iteration if attempt > 0 else iteration - 1
        for device, death in probe.lost_gpus(self.spec.n_gpus):
            if death <= horizon and device not in dead:
                dead.add(device)
                elastic.devices_lost += 1
                monitor.forget(device)
        used = {t.device for t in current.tasks}
        degraded: dict[int, float] = {}
        if iteration > 0 and attempt == 0 and self.policy.rebind:
            degraded = {
                device: multiplier
                for device, multiplier, persistent in
                probe.degraded_gpus(self.spec.n_gpus)
                if persistent
                and multiplier >= self.policy.rebind_threshold
                and device not in dead and device not in retired
            }
        # Rung 1: 1:1 re-bind onto idle healthy spares, lost devices first.
        if self.policy.rebind:
            spares = [
                d for d in range(self.spec.n_gpus)
                if d not in used and d not in dead and d not in retired
                and d not in degraded
            ]
            mapping: dict[int, int] = {}
            troubled = sorted(dead & used) + sorted(
                d for d in degraded if d in used
            )
            for device in troubled:
                if not spares:
                    break
                mapping[device] = spares.pop(0)
            if mapping:
                current = rebind_graph(current, mapping,
                                       n_devices=self.spec.n_gpus)
                recovery.rebinds += len(mapping)
                for src, dst in sorted(mapping.items()):
                    self._mark("rebind", f"gpu{src}->gpu{dst}",
                               iteration=iteration)
                used = {t.device for t in current.tasks}
        # Rung 2: elastic re-plan for whoever re-binding could not save.
        stranded_lost = sorted(dead & used)
        condemned: set[int] = set()
        if iteration > 0 and attempt == 0:
            for device in sorted(used - dead):
                if monitor.observe(device, device in degraded,
                                   window=iteration):
                    condemned.add(device)
        if not stranded_lost and not condemned:
            return current
        if (
            not self.policy.elastic
            or self.replanner is None
            or elastic.replans >= self.policy.max_replans
        ):
            # No re-plan available: a stranded loss keeps failing until
            # the restart budget surfaces it as UnrecoveredFaultError; a
            # stranded straggler just runs slow (degradation, not death).
            return current
        survivors = [
            d for d in range(self.spec.n_gpus)
            if d not in dead and d not in retired and d not in condemned
        ]
        try:
            eplan = self.replanner.replan(survivors)
            moves = plan_migration(
                current, eplan.graph, eplan.plan.profiles, lost=dead,
            )
            report = MigrationExecutor(
                self.spec, p2p=eplan.plan.options.p2p, trace=self.trace,
            ).run(moves)
        except FaultError:
            raise
        except ReproError as exc:
            stranded = stranded_lost or sorted(condemned)
            raise UnrecoveredFaultError(
                f"elastic re-plan on {len(survivors)} survivor(s) failed "
                f"at iteration {iteration}: {exc}",
                entity=f"gpu{stranded[0]}" if stranded else "",
            ) from exc
        for device in condemned:
            retired.add(device)
            monitor.forget(device)
        elastic.replans += 1
        self._mark("replan", eplan.graph.mode, iteration=iteration,
                   survivors=len(survivors))
        if eplan.mode_switched:
            elastic.mode_switches += 1
        elastic.migrations += report.n_moves
        elastic.migration_time += report.time
        elastic.migration_p2p_bytes += report.p2p_bytes
        elastic.migration_host_bytes += report.host_bytes
        return eplan.graph

    def run(self, graph: TaskGraph, iterations: int = 1,
            start_iteration: int = 0,
            state: Optional[RunnerState] = None) -> RunMetrics:
        """Execute ``iterations`` iterations under the fault plan.

        ``start_iteration`` offsets the iteration numbering: fault-plan
        contexts, loss-detection horizons, and monitor windows all use
        the absolute iteration number, so a caller stepping the run one
        iteration per call (passing a shared ``state``) sees exactly the
        faults and escalations a single ``run(iterations=N)`` call would
        -- run-scoped losses persist, strikes accumulate, and the rescued
        graph carries forward through ``state.graph``.
        """
        if not self.plan.enabled:
            # Zero-overhead path: no injector, no recovery machinery --
            # bit-identical to a plain executor run.
            sim = Simulator()
            sim.trace = self.trace
            live = SimulatedServer(sim, self.spec, binding=self.binding)
            executor = Executor(
                live, self.time_model,
                prefetch=self.prefetch,
                host_state_bytes=self.host_state_bytes,
                max_steps=self.max_steps,
                horizon=self.horizon,
            )
            metrics = executor.run(graph, iterations=iterations)
            if self.trace is not None:
                self.trace.advance(sim.now)
            if state is not None:
                state.graph = graph
            return metrics

        if state is None:
            state = RunnerState(self.policy.replan_patience)
        recovery = RecoveryMetrics()
        elastic = ElasticMetrics()
        monitor = state.monitor
        dead = state.dead
        retired = state.retired
        gpus = [GpuMetrics() for _ in range(self.spec.n_gpus)]
        total_time = 0.0
        host_peak = 0
        minibatch = 0
        current = graph

        def rescue(iteration: int, attempt: int) -> None:
            # Migration is wall-clock the run really spends: fold the
            # phase's virtual time into the total alongside iterations.
            nonlocal current, total_time
            before = elastic.migration_time
            current = self._rescue(current, iteration, attempt, recovery,
                                   elastic, monitor, dead, retired)
            total_time += elastic.migration_time - before

        for iteration in range(start_iteration, start_iteration + iterations):
            rescue(iteration, 0)
            metrics: Optional[RunMetrics] = None
            for attempt in range(self.policy.max_iteration_restarts + 1):
                try:
                    metrics = self._attempt(current, iteration, attempt,
                                            recovery)
                except FaultError as exc:
                    recovery.faults_fatal += 1
                    if attempt >= self.policy.max_iteration_restarts:
                        raise UnrecoveredFaultError(
                            f"iteration {iteration} failed "
                            f"{attempt + 1} attempt(s); last fault: {exc}",
                            entity=getattr(exc, "entity", ""),
                        ) from exc
                    recovery.restarts += 1
                    self._mark("restart", f"iteration{iteration}",
                               attempt=attempt, cause=type(exc).__name__)
                    # Restart backoff rides the shared schedule
                    # (repro.common.backoff); the default zero-delay
                    # policy restarts immediately, bit-identical to the
                    # pre-extraction runner.
                    pause = self.policy.restart_backoff().delay(
                        attempt, "restart", iteration)
                    if pause > 0:
                        total_time += pause
                        if self.trace is not None:
                            self.trace.advance(pause)
                    rescue(iteration, attempt + 1)
                    continue
                break
            assert metrics is not None
            if self.check_invariants:
                check_byte_invariants(current, metrics)
            recovery.accumulate(metrics.recovery)
            for device, g in enumerate(metrics.gpus):
                gpus[device].accumulate(g)
            total_time += metrics.iteration_time
            host_peak = max(host_peak, metrics.host_peak_bytes)
            minibatch = metrics.minibatch
        state.graph = current
        if iterations > 1:
            for g in gpus:
                g.swap_in_bytes //= iterations
                g.swap_out_bytes //= iterations
                g.p2p_in_bytes //= iterations
                g.compute_busy /= iterations
                g.cpu_busy /= iterations
        return RunMetrics(
            mode=graph.mode,
            minibatch=minibatch,
            iteration_time=total_time / iterations,
            gpus=gpus,
            host_peak_bytes=host_peak,
            recovery=recovery,
            elastic=elastic,
        )
