"""Fault-tolerant execution: checkpoint/restart, re-bind, invariants.

The :class:`FaultTolerantRunner` wraps the plain executor with the two
recovery mechanisms that live *above* a single iteration:

- **iteration-boundary checkpoint/restart** -- synchronous SGD flushes all
  state to host at every iteration boundary (that is the Harmony execution
  model), so the last completed iteration is always a consistent
  checkpoint.  An iteration attempt killed by an escalated fault is simply
  re-run on a fresh simulated server, with fresh (still seed-deterministic)
  fault dice for the ``(iteration, attempt)`` context -- otherwise the
  identical fault would deterministically recur forever;
- **late-binding re-bind** -- tasks carry a device *binding*, not an
  identity (Section 4.3.2's late binding), so at an iteration boundary the
  tasks of a persistently degraded GPU can be re-bound to a healthy spare
  device.  P2P moves whose endpoints collapse onto one device become LOCAL
  (no traffic), exactly the transformation :func:`rebind_graph` performs.

The runner also audits every completed iteration with
:func:`check_byte_invariants`: whatever faults were injected and recovered,
the bytes that actually moved must still reconcile with the task graph's
static totals (fallback traffic re-accounted, nothing lost, nothing
double-counted).
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import (
    FaultError,
    GpuDegradedError,
    SimulationError,
    UnrecoveredFaultError,
)
from repro.core.types import Channel, Move, Task, TaskGraph
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.policy import RecoveryPolicy
from repro.hardware.server import ServerSpec, SimulatedServer
from repro.runtime.executor import DEFAULT_MAX_STEPS, Executor
from repro.runtime.metrics import GpuMetrics, RecoveryMetrics, RunMetrics
from repro.runtime.timemodel import TrueTimeModel
from repro.sim.engine import Simulator


def _remap_move(move: Move, task_device: dict[int, int],
                device_map: dict[int, int], new_device: int) -> Move:
    """Re-target one move after its task moved to ``new_device``."""
    peer = move.peer
    if peer is not None:
        peer = device_map.get(peer, peer)
    if move.channel is Channel.P2P:
        src = (
            task_device[move.src_task]
            if move.src_task is not None else peer
        )
        if src == new_device:
            # Producer and consumer collapsed onto one device: the
            # transfer disappears (the analyzer rejects same-device P2P).
            return Move(
                tensor=move.tensor, nbytes=move.nbytes,
                channel=Channel.LOCAL, peer=None,
                src_task=move.src_task, label=move.label,
            )
    if peer is not move.peer:
        return Move(
            tensor=move.tensor, nbytes=move.nbytes, channel=move.channel,
            peer=peer, src_task=move.src_task, label=move.label,
        )
    return move


def rebind_graph(graph: TaskGraph, mapping: dict[int, int],
                 n_devices: Optional[int] = None) -> TaskGraph:
    """Re-bind every task on ``mapping``'s source devices to its target.

    Late binding makes this legal: the schedule's structure (task order,
    dependencies, move lists) is untouched; only device bindings change.
    P2P moves whose endpoints land on the same device are converted to
    LOCAL.  Raises :class:`GpuDegradedError` if a target device is itself
    a mapping source (i.e. still degraded) and ``ValueError`` on an
    out-of-range target.
    """
    bound = n_devices if n_devices is not None else graph.n_devices
    for src, dst in mapping.items():
        if not 0 <= dst < bound:
            raise ValueError(
                f"rebind target gpu{dst} outside device range [0, {bound})"
            )
        if dst in mapping:
            raise GpuDegradedError(
                f"cannot re-bind gpu{src} onto gpu{dst}: the target is "
                f"itself degraded", entity=f"gpu{dst}",
            )
    task_device = {
        t.tid: mapping.get(t.device, t.device) for t in graph.tasks
    }
    rebound = TaskGraph(
        mode=graph.mode,
        n_devices=bound,
        pageable_swaps=graph.pageable_swaps,
    )
    for task in graph.tasks:
        new_device = task_device[task.tid]
        moved: Task = task.with_device(new_device)
        moved.ins = [
            _remap_move(m, task_device, mapping, new_device)
            for m in task.ins
        ]
        moved.outs = [
            _remap_move(m, task_device, mapping, new_device)
            for m in task.outs
        ]
        rebound.add(moved)
    return rebound


def check_byte_invariants(graph: TaskGraph, metrics: RunMetrics) -> None:
    """Reconcile one iteration's measured traffic with the graph's totals.

    Holds fault or no fault:

    - p2p bytes that actually moved, plus bytes rescued by the
      p2p->host-staged fallback, equal the graph's static p2p total;
    - swap bytes equal the graph's static host-link total, plus the extra
      relay leg of each MSG move (the executor counts both hops of the
      GPU->host->GPU relay), plus *twice* the fallback bytes (a fallback
      rides both hops of the same relay route).

    Raises :class:`~repro.common.errors.SimulationError` on mismatch --
    a recovery path that lost or double-counted traffic.
    """
    fallback = metrics.recovery.fallback_bytes
    actual_p2p = metrics.global_p2p_bytes
    expected_p2p = graph.p2p_bytes()
    if actual_p2p + fallback != expected_p2p:
        raise SimulationError(
            f"p2p byte accounting broken: moved {actual_p2p} + fallback "
            f"{fallback} != static {expected_p2p}"
        )
    msg_relay = sum(
        m.nbytes
        for task in graph.tasks
        for m in task.ins
        if m.channel is Channel.MSG and m.src_task is not None
    )
    actual_swap = metrics.global_swap_bytes
    expected_swap = graph.global_swap_bytes() + msg_relay + 2 * fallback
    if actual_swap != expected_swap:
        raise SimulationError(
            f"swap byte accounting broken: moved {actual_swap} != static "
            f"{graph.global_swap_bytes()} + msg relay {msg_relay} + "
            f"2*fallback {2 * fallback}"
        )


class FaultTolerantRunner:
    """Run a task graph under a fault plan, recovering where policy allows.

    Each iteration attempt executes on a fresh :class:`Simulator` and
    :class:`SimulatedServer` -- the simulated analog of restarting from
    the iteration-boundary checkpoint.  This is timing-faithful because
    iterations are flush-separated anyway (synchronous SGD): the plain
    multi-iteration executor also starts every iteration from an all-idle,
    all-flushed state.
    """

    def __init__(
        self,
        spec: ServerSpec,
        time_model: TrueTimeModel,
        plan: FaultPlan,
        policy: Optional[RecoveryPolicy] = None,
        prefetch: bool = True,
        host_state_bytes: int = 0,
        max_steps: Optional[int] = DEFAULT_MAX_STEPS,
        horizon: Optional[float] = None,
        check_invariants: bool = True,
    ):
        self.spec = spec
        self.time_model = time_model
        self.plan = plan
        self.policy = policy if policy is not None else RecoveryPolicy()
        self.prefetch = prefetch
        self.host_state_bytes = host_state_bytes
        self.max_steps = max_steps
        self.horizon = horizon
        self.check_invariants = check_invariants

    # -- re-bind planning ---------------------------------------------------------

    def _rebind_mapping(self, graph: TaskGraph,
                        injector: FaultInjector) -> dict[int, int]:
        """Map persistently degraded in-use GPUs to healthy spare devices.

        Only devices the graph actually uses need rescuing; only healthy
        devices the graph does *not* use can absorb them (piling two
        devices' tasks onto one GPU would violate the planner's memory
        fit).  Stragglers with no available spare are tolerated: the run
        completes, just slower -- degradation, not failure.
        """
        degraded = {
            device: multiplier
            for device, multiplier, persistent in
            injector.degraded_gpus(self.spec.n_gpus)
            if persistent and multiplier >= self.policy.rebind_threshold
        }
        if not degraded:
            return {}
        used = {task.device for task in graph.tasks}
        spares = [
            d for d in range(self.spec.n_gpus)
            if d not in used and d not in degraded
        ]
        mapping: dict[int, int] = {}
        for device in sorted(d for d in degraded if d in used):
            if not spares:
                break
            mapping[device] = spares.pop(0)
        return mapping

    # -- execution ----------------------------------------------------------------

    def _attempt(self, graph: TaskGraph, iteration: int, attempt: int,
                 recovery: RecoveryMetrics) -> RunMetrics:
        injector = FaultInjector(self.plan, context=(iteration, attempt))
        sim = Simulator()
        live = SimulatedServer(sim, self.spec)
        injector.arm(live)
        executor = Executor(
            live, self.time_model,
            prefetch=self.prefetch,
            host_state_bytes=self.host_state_bytes,
            faults=injector,
            recovery=self.policy,
            max_steps=self.max_steps,
            horizon=self.horizon,
        )
        try:
            return executor.run(graph, iterations=1)
        except FaultError:
            # The attempt died, but its recovery effort and injected
            # faults still happened -- fold the partial counters in so
            # the final report reflects the whole fight, not just the
            # winning attempt.
            partial = getattr(executor, "recovery", None)
            if partial is not None:
                recovery.accumulate(partial)
            recovery.faults_injected += injector.total_injected
            raise

    def run(self, graph: TaskGraph, iterations: int = 1) -> RunMetrics:
        """Execute ``iterations`` iterations under the fault plan."""
        if not self.plan.enabled:
            # Zero-overhead path: no injector, no recovery machinery --
            # bit-identical to a plain executor run.
            sim = Simulator()
            live = SimulatedServer(sim, self.spec)
            executor = Executor(
                live, self.time_model,
                prefetch=self.prefetch,
                host_state_bytes=self.host_state_bytes,
                max_steps=self.max_steps,
                horizon=self.horizon,
            )
            return executor.run(graph, iterations=iterations)

        recovery = RecoveryMetrics()
        gpus = [GpuMetrics() for _ in range(self.spec.n_gpus)]
        total_time = 0.0
        host_peak = 0
        minibatch = 0
        current = graph
        rebound_once = False
        for iteration in range(iterations):
            if iteration > 0 and self.policy.rebind and not rebound_once:
                probe = FaultInjector(self.plan)
                mapping = self._rebind_mapping(current, probe)
                if mapping:
                    current = rebind_graph(current, mapping,
                                           n_devices=self.spec.n_gpus)
                    recovery.rebinds += len(mapping)
                    rebound_once = True
            metrics: Optional[RunMetrics] = None
            for attempt in range(self.policy.max_iteration_restarts + 1):
                try:
                    metrics = self._attempt(current, iteration, attempt,
                                            recovery)
                except FaultError as exc:
                    recovery.faults_fatal += 1
                    if attempt >= self.policy.max_iteration_restarts:
                        raise UnrecoveredFaultError(
                            f"iteration {iteration} failed "
                            f"{attempt + 1} attempt(s); last fault: {exc}",
                            entity=getattr(exc, "entity", ""),
                        ) from exc
                    recovery.restarts += 1
                    continue
                break
            assert metrics is not None
            if self.check_invariants:
                check_byte_invariants(current, metrics)
            recovery.accumulate(metrics.recovery)
            for device, g in enumerate(metrics.gpus):
                gpus[device].accumulate(g)
            total_time += metrics.iteration_time
            host_peak = max(host_peak, metrics.host_peak_bytes)
            minibatch = metrics.minibatch
        if iterations > 1:
            for g in gpus:
                g.swap_in_bytes //= iterations
                g.swap_out_bytes //= iterations
                g.p2p_in_bytes //= iterations
                g.compute_busy /= iterations
                g.cpu_busy /= iterations
        return RunMetrics(
            mode=graph.mode,
            minibatch=minibatch,
            iteration_time=total_time / iterations,
            gpus=gpus,
            host_peak_bytes=host_peak,
            recovery=recovery,
        )
