"""Fault models: what can go wrong, and the seeded plan that decides when.

A :class:`FaultSpec` sets *rates* for each fault class; a
:class:`FaultPlan` binds a spec to a seed and answers every "does this
attempt fault?" question the runtime asks.  All decisions are *stateless*
hash draws through :mod:`repro.common.rng`: a decision depends only on
``(seed, fault kind, entity labels, attempt number, restart context)``,
never on the order questions get asked in -- which is what makes a chaos
run byte-for-byte reproducible from its seed alone.

The fault taxonomy (DESIGN.md section 8):

- **transfer faults** -- a swap or p2p transfer attempt dies in flight
  (dropped DMA, ECC hiccup); transient, retryable;
- **link degradation / flapping** -- a PCIe hop's usable bandwidth drops
  for an epoch and recovers (congestion, ASPM misbehavior);
- **GPU slow-down** -- a straggler device whose kernels run a constant
  factor slower (thermal throttling, a noisy neighbor); optionally
  *persistent*, making the device a re-bind candidate;
- **task crashes** -- a compute attempt dies partway (spurious kernel
  fault); retryable from the task's inputs, which are still resident;
- **host memory pressure** -- epochs in which host-side copy engines and
  the oversubscribed uplinks slow down (page-cache churn, NUMA pressure);
- **GPU loss** -- a device permanently dies partway through the run
  (XID error, falls off the bus); never recovers, so the runtime must
  re-bind to a spare or elastically re-plan on the survivors
  (:mod:`repro.elastic`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields, replace
from typing import Optional

from repro.common.rng import unit


class FaultKind(enum.Enum):
    """Fault classes the injector can deliver."""

    TRANSFER = "transfer"
    LINK_DEGRADE = "link_degrade"
    GPU_SLOWDOWN = "gpu_slowdown"
    TASK_CRASH = "task_crash"
    HOST_PRESSURE = "host_pressure"
    GPU_LOSS = "gpu_loss"


_RATES = (
    "transfer_fault_rate",
    "link_degrade_rate",
    "gpu_slowdown_rate",
    "task_crash_rate",
    "host_pressure_rate",
    "gpu_loss_rate",
)


@dataclass(frozen=True)
class FaultSpec:
    """Rates and magnitudes for each fault class.  All rates in [0, 1]."""

    #: probability one transfer attempt fails in flight
    transfer_fault_rate: float = 0.0
    #: probability a link spends a given epoch degraded
    link_degrade_rate: float = 0.0
    #: bandwidth multiplier while a link is degraded
    link_degrade_factor: float = 0.25
    #: virtual seconds per link degradation epoch (flap granularity)
    link_flap_interval: float = 0.05
    #: probability a GPU is a straggler for the whole run
    gpu_slowdown_rate: float = 0.0
    #: kernel-time multiplier of a straggler GPU
    gpu_slowdown_factor: float = 2.0
    #: probability a straggler is persistent (re-bind candidate)
    gpu_persistent_rate: float = 0.5
    #: probability one compute attempt crashes
    task_crash_rate: float = 0.0
    #: probability the host spends a given epoch under memory pressure
    host_pressure_rate: float = 0.0
    #: host-side bandwidth multiplier during a pressure epoch
    host_pressure_factor: float = 0.5
    #: virtual seconds per host pressure epoch
    host_pressure_interval: float = 0.1
    #: probability a GPU permanently dies during the run (hardware loss)
    gpu_loss_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in _RATES:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        for name in ("link_degrade_factor", "host_pressure_factor"):
            factor = getattr(self, name)
            if not 0.0 < factor <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {factor}")
        if self.gpu_slowdown_factor < 1.0:
            raise ValueError(
                f"gpu_slowdown_factor must be >= 1, got {self.gpu_slowdown_factor}"
            )
        if not 0.0 <= self.gpu_persistent_rate <= 1.0:
            raise ValueError(
                f"gpu_persistent_rate must be in [0, 1], "
                f"got {self.gpu_persistent_rate}"
            )
        for name in ("link_flap_interval", "host_pressure_interval"):
            interval = getattr(self, name)
            if interval <= 0:
                raise ValueError(f"{name} must be positive, got {interval}")

    @property
    def any_enabled(self) -> bool:
        return any(getattr(self, name) > 0.0 for name in _RATES)

    # -- presets -----------------------------------------------------------------

    @classmethod
    def none(cls) -> "FaultSpec":
        """All faults off (the zero-overhead baseline)."""
        return cls()

    @classmethod
    def chaos(cls, intensity: float = 1.0) -> "FaultSpec":
        """The standard chaos mix, scaled by ``intensity`` (1.0 = moderate).

        At intensity 1.0 a typical run sees a handful of transfer faults
        and flapping episodes per iteration, a straggler GPU about every
        fifth seed, and occasional task crashes -- enough to exercise
        every recovery path without making completion unlikely.
        """
        if intensity < 0:
            raise ValueError(f"intensity must be >= 0, got {intensity}")
        clamp = lambda r: min(1.0, r * intensity)  # noqa: E731
        return cls(
            transfer_fault_rate=clamp(0.02),
            link_degrade_rate=clamp(0.10),
            link_degrade_factor=0.25,
            gpu_slowdown_rate=clamp(0.20),
            gpu_slowdown_factor=1.0 + 1.0 * max(intensity, 0.1),
            gpu_persistent_rate=0.5,
            task_crash_rate=clamp(0.01),
            host_pressure_rate=clamp(0.10),
            host_pressure_factor=0.5,
        )

    def describe(self) -> str:
        parts = [
            f"{f.name}={getattr(self, f.name):g}"
            for f in fields(self)
            if getattr(self, f.name) != getattr(type(self)(), f.name)
        ]
        return "FaultSpec(" + ", ".join(parts) + ")" if parts else "FaultSpec(off)"


@dataclass(frozen=True)
class Crash:
    """A decided task-crash fault: die after ``fraction`` of the attempt."""

    fraction: float


class FaultPlan:
    """A seeded, reproducible oracle for every fault decision.

    ``context`` distinguishes restart attempts of the same iteration: the
    :class:`~repro.faults.runner.FaultTolerantRunner` re-seeds decisions
    per ``(iteration, attempt)``, so a restarted iteration faces fresh
    (but still deterministic) dice instead of deterministically re-hitting
    the same fault forever.
    """

    def __init__(self, spec: FaultSpec, seed: int = 0):
        self.spec = spec
        self.seed = seed

    @property
    def enabled(self) -> bool:
        """False for an all-faults-disabled plan (zero-overhead mode)."""
        return self.spec.any_enabled

    def with_spec(self, **changes: float) -> "FaultPlan":
        return FaultPlan(replace(self.spec, **changes), seed=self.seed)

    # -- decisions ---------------------------------------------------------------

    def transfer_fault(
        self, entity: str, label: str, attempt: int, context: tuple = ()
    ) -> Optional[float]:
        """Does this transfer attempt fault?  Returns the abort fraction
        (how far through the transfer the fault strikes) or None."""
        key = (self.seed, "xfer", context, entity, label, attempt)
        if unit(*key) >= self.spec.transfer_fault_rate:
            return None
        return 0.05 + 0.9 * unit(self.seed, "xfer-frac", context, entity,
                                 label, attempt)

    def task_crash(
        self, tid: int, mb_index: int, attempt: int, context: tuple = ()
    ) -> Optional[Crash]:
        """Does this compute attempt crash?  Returns the crash point or None."""
        key = (self.seed, "crash", context, tid, mb_index, attempt)
        if unit(*key) >= self.spec.task_crash_rate:
            return None
        return Crash(
            fraction=0.05
            + 0.9 * unit(self.seed, "crash-frac", context, tid, mb_index, attempt)
        )

    def gpu_slowdown(self, device: int) -> tuple[float, bool]:
        """(kernel-time multiplier, persistent?) for ``device``.

        Run-scoped (no context): a straggler stays a straggler across
        iterations and restarts, which is what makes persistent
        degradation detectable and re-bind worthwhile.
        """
        if unit(self.seed, "slow", device) >= self.spec.gpu_slowdown_rate:
            return 1.0, False
        persistent = (
            unit(self.seed, "slow-persist", device) < self.spec.gpu_persistent_rate
        )
        return self.spec.gpu_slowdown_factor, persistent

    def gpu_slowdown_at(self, device: int, iteration: int) -> tuple[float, bool]:
        """(multiplier, persistent?) for ``device`` as of ``iteration``.

        The base plan's stragglers are run-scoped, so this simply
        delegates to :meth:`gpu_slowdown`; subclasses may override it to
        script degradations that begin partway through a run (a device
        that starts healthy and sickens later).  Overriding only
        :meth:`gpu_slowdown` keeps working: the runtime always queries
        through this hook.
        """
        return self.gpu_slowdown(device)

    def gpu_loss(self, device: int) -> Optional[int]:
        """Iteration at which ``device`` permanently dies, or None.

        Run-scoped like :meth:`gpu_slowdown`: a loss is a property of the
        run, not of a restart attempt -- restarting an iteration does not
        resurrect dead hardware.  The death iteration is drawn from
        ``[1, 4]`` so a loss always strikes after at least one healthy
        iteration (iteration 0 establishes the checkpoint baseline).
        """
        if unit(self.seed, "loss", device) >= self.spec.gpu_loss_rate:
            return None
        return 1 + int(unit(self.seed, "loss-iter", device) * 4.0)

    def link_degradation(
        self, link_name: str, epoch: int, context: tuple = ()
    ) -> float:
        """Bandwidth multiplier for ``link_name`` during flap epoch ``epoch``."""
        if unit(self.seed, "flap", context, link_name, epoch) < \
                self.spec.link_degrade_rate:
            return self.spec.link_degrade_factor
        return 1.0

    def host_pressure(self, epoch: int, context: tuple = ()) -> float:
        """Host-side bandwidth multiplier during pressure epoch ``epoch``."""
        if unit(self.seed, "pressure", context, epoch) < \
                self.spec.host_pressure_rate:
            return self.spec.host_pressure_factor
        return 1.0

    def describe(self) -> str:
        return f"FaultPlan(seed={self.seed}, {self.spec.describe()})"


class ScriptedFaultPlan(FaultPlan):
    """A plan whose decisions are spelled out explicitly (for tests).

    ``transfer_faults`` maps ``(label, attempt) -> abort fraction`` (the
    entity is ignored so a script does not need to know device/stream
    placement); ``crashes`` maps ``(tid, mb_index, attempt) -> fraction``;
    ``slowdowns`` maps ``device -> (multiplier, persistent)``;
    ``slowdowns_at`` maps ``device -> (onset iteration, multiplier,
    persistent)`` for degradations that begin partway through a run;
    ``losses`` maps ``device -> death iteration`` for permanent GPU loss.
    Context is ignored: scripted faults fire on every restart attempt
    unless the script keys on ``attempt``.
    """

    def __init__(
        self,
        transfer_faults: Optional[dict[tuple[str, int], float]] = None,
        crashes: Optional[dict[tuple[int, int, int], float]] = None,
        slowdowns: Optional[dict[int, tuple[float, bool]]] = None,
        slowdowns_at: Optional[dict[int, tuple[int, float, bool]]] = None,
        losses: Optional[dict[int, int]] = None,
        spec: Optional[FaultSpec] = None,
        seed: int = 0,
    ):
        super().__init__(spec if spec is not None else FaultSpec(), seed=seed)
        self.transfer_faults = dict(transfer_faults or {})
        self.crashes = dict(crashes or {})
        self.slowdowns = dict(slowdowns or {})
        self.slowdowns_at = dict(slowdowns_at or {})
        self.losses = dict(losses or {})

    @property
    def enabled(self) -> bool:
        return bool(
            self.transfer_faults or self.crashes or self.slowdowns
            or self.slowdowns_at or self.losses or self.spec.any_enabled
        )

    def transfer_fault(
        self, entity: str, label: str, attempt: int, context: tuple = ()
    ) -> Optional[float]:
        if (label, attempt) in self.transfer_faults:
            return self.transfer_faults[(label, attempt)]
        return super().transfer_fault(entity, label, attempt, context)

    def task_crash(
        self, tid: int, mb_index: int, attempt: int, context: tuple = ()
    ) -> Optional[Crash]:
        if (tid, mb_index, attempt) in self.crashes:
            return Crash(fraction=self.crashes[(tid, mb_index, attempt)])
        return super().task_crash(tid, mb_index, attempt, context)

    def gpu_slowdown(self, device: int) -> tuple[float, bool]:
        if device in self.slowdowns:
            return self.slowdowns[device]
        return super().gpu_slowdown(device)

    def gpu_slowdown_at(self, device: int, iteration: int) -> tuple[float, bool]:
        if device in self.slowdowns_at:
            onset, factor, persistent = self.slowdowns_at[device]
            if iteration >= onset:
                return factor, persistent
            return 1.0, False
        return super().gpu_slowdown_at(device, iteration)

    def gpu_loss(self, device: int) -> Optional[int]:
        if device in self.losses:
            return self.losses[device]
        return super().gpu_loss(device)
