"""Recovery policy knobs: how hard the runtime fights injected faults.

Kept free of runtime imports so the executor can import it without
creating a cycle through the :mod:`repro.faults` package.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RecoveryPolicy:
    """Tunables for every recovery mechanism, in escalation order.

    Transient transfer faults retry with exponential backoff; a p2p path
    that keeps failing degrades to a host-staged swap route; a crashed
    compute attempt retries from its still-resident inputs; an iteration
    that dies anyway restarts from the iteration-boundary checkpoint; and
    a persistently slow GPU gets its tasks re-bound to a healthy device
    at the next iteration boundary (late binding makes the same schedule
    valid under the new assignment).
    """

    #: retries per transfer before escalating (fallback or fatal)
    max_transfer_retries: int = 3
    #: virtual seconds of backoff before the first transfer retry
    backoff_base: float = 0.002
    #: multiplier applied to the backoff per further retry
    backoff_factor: float = 2.0
    #: degrade an exhausted p2p transfer to a host-staged swap route
    p2p_fallback: bool = True
    #: compute retries per task attempt before the fault is fatal
    max_task_retries: int = 2
    #: iteration-boundary checkpoint/restart attempts per iteration
    max_iteration_restarts: int = 2
    #: re-bind a persistently degraded GPU's tasks at iteration boundaries
    rebind: bool = True
    #: persistent slow-down multiplier at or above which re-bind triggers
    rebind_threshold: float = 1.5
    #: when re-bind finds no spare, escalate to a full elastic re-plan on
    #: the surviving device subset (requires a replanner on the runner)
    elastic: bool = True
    #: consecutive degraded iteration boundaries before a *degraded*
    #: (still alive) device triggers a re-plan -- hysteresis so one
    #: straggle never pays a migration; a *lost* device re-plans at once
    replan_patience: int = 2
    #: elastic re-plans allowed per run (each loses a device, so this is
    #: naturally bounded by the GPU count as well)
    max_replans: int = 4

    def __post_init__(self) -> None:
        if self.max_transfer_retries < 0:
            raise ValueError("max_transfer_retries must be >= 0")
        if self.max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")
        if self.max_iteration_restarts < 0:
            raise ValueError("max_iteration_restarts must be >= 0")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.rebind_threshold < 1.0:
            raise ValueError("rebind_threshold must be >= 1")
        if self.replan_patience < 1:
            raise ValueError("replan_patience must be >= 1")
        if self.max_replans < 0:
            raise ValueError("max_replans must be >= 0")

    def backoff(self, attempt: int) -> float:
        """Backoff before retry number ``attempt + 1`` (0-indexed)."""
        return self.backoff_base * self.backoff_factor ** attempt
