"""Recovery policy knobs: how hard the runtime fights injected faults.

Kept free of runtime imports so the executor can import it without
creating a cycle through the :mod:`repro.faults` package.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.backoff import (
    DEFAULT_BACKOFF_BASE,
    DEFAULT_BACKOFF_FACTOR,
    DEFAULT_TRANSFER_RETRIES,
    BackoffPolicy,
)


@dataclass(frozen=True)
class RecoveryPolicy:
    """Tunables for every recovery mechanism, in escalation order.

    Transient transfer faults retry with exponential backoff; a p2p path
    that keeps failing degrades to a host-staged swap route; a crashed
    compute attempt retries from its still-resident inputs; an iteration
    that dies anyway restarts from the iteration-boundary checkpoint; and
    a persistently slow GPU gets its tasks re-bound to a healthy device
    at the next iteration boundary (late binding makes the same schedule
    valid under the new assignment).
    """

    #: retries per transfer before escalating (fallback or fatal)
    max_transfer_retries: int = DEFAULT_TRANSFER_RETRIES
    #: virtual seconds of backoff before the first transfer retry
    backoff_base: float = DEFAULT_BACKOFF_BASE
    #: multiplier applied to the backoff per further retry
    backoff_factor: float = DEFAULT_BACKOFF_FACTOR
    #: seeded jitter fraction on every backoff delay (0 = the exact
    #: historical exponential schedule, bit-identical to pre-backoff-
    #: extraction runs; > 0 decorrelates concurrent retriers)
    backoff_jitter: float = 0.0
    #: seed for the jitter draws (only consulted when jitter > 0)
    backoff_seed: int = 0
    #: virtual seconds of backoff before the first iteration restart
    #: (0 = restart immediately, the historical behavior)
    restart_backoff_base: float = 0.0
    #: degrade an exhausted p2p transfer to a host-staged swap route
    p2p_fallback: bool = True
    #: compute retries per task attempt before the fault is fatal
    max_task_retries: int = 2
    #: iteration-boundary checkpoint/restart attempts per iteration
    max_iteration_restarts: int = 2
    #: re-bind a persistently degraded GPU's tasks at iteration boundaries
    rebind: bool = True
    #: persistent slow-down multiplier at or above which re-bind triggers
    rebind_threshold: float = 1.5
    #: when re-bind finds no spare, escalate to a full elastic re-plan on
    #: the surviving device subset (requires a replanner on the runner)
    elastic: bool = True
    #: consecutive degraded iteration boundaries before a *degraded*
    #: (still alive) device triggers a re-plan -- hysteresis so one
    #: straggle never pays a migration; a *lost* device re-plans at
    #: once.  0 disables the hysteresis (the first strike condemns)
    replan_patience: int = 2
    #: elastic re-plans allowed per run (each loses a device, so this is
    #: naturally bounded by the GPU count as well)
    max_replans: int = 4

    def __post_init__(self) -> None:
        if self.max_transfer_retries < 0:
            raise ValueError("max_transfer_retries must be >= 0")
        if self.max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")
        if self.max_iteration_restarts < 0:
            raise ValueError("max_iteration_restarts must be >= 0")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError("backoff_jitter must be in [0, 1)")
        if self.restart_backoff_base < 0:
            raise ValueError("restart_backoff_base must be >= 0")
        if self.rebind_threshold < 1.0:
            raise ValueError("rebind_threshold must be >= 1")
        if self.replan_patience < 0:
            raise ValueError("replan_patience must be >= 0")
        if self.max_replans < 0:
            raise ValueError("max_replans must be >= 0")

    def transfer_backoff(self) -> BackoffPolicy:
        """The transfer-retry schedule as a shared BackoffPolicy."""
        return BackoffPolicy(
            max_retries=self.max_transfer_retries,
            base=self.backoff_base,
            factor=self.backoff_factor,
            jitter=self.backoff_jitter,
            seed=self.backoff_seed,
        )

    def restart_backoff(self) -> BackoffPolicy:
        """The iteration-restart schedule (zero-delay by default)."""
        return BackoffPolicy(
            max_retries=self.max_iteration_restarts,
            base=self.restart_backoff_base,
            factor=self.backoff_factor,
            jitter=self.backoff_jitter,
            seed=self.backoff_seed,
        )

    def backoff(self, attempt: int, *labels: object) -> float:
        """Backoff before retry number ``attempt + 1`` (0-indexed).

        Delegates to :mod:`repro.common.backoff`; with the default
        ``backoff_jitter=0`` the value is bit-identical to the
        historical inline ``base * factor ** attempt``.
        """
        return self.transfer_backoff().delay(attempt, *labels)
