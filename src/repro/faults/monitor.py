"""Health monitors: hysteresis between "degraded" and "re-plan".

A single straggling iteration must never trigger an elastic re-plan --
migration moves real bytes over real links, so the escalation from
"tolerate" to "re-schedule the job" has to be earned.  The monitor keeps
a per-entity strike counter: each iteration boundary at which an entity
(a GPU, or one failure-domain level up, a whole server) is observed
degraded beyond the policy's tolerance adds a strike; a healthy
observation clears the counter.  Only after ``patience`` *consecutive*
strikes does the monitor condemn the entity.  ``patience=0`` disables
the hysteresis entirely: the first degraded observation condemns.

Observations carry an optional *window* identifier (the runner passes
the iteration number): two degraded observations inside the same window
-- e.g. an iteration that restarts and re-examines the same boundary --
count as **one** strike, not two, so a single bad iteration can never
burn more than one unit of patience however many attempts it takes.

Permanent *loss* (a GPU falling off the bus, a server crashing) bypasses
the monitor entirely: dead hardware has no prospect of recovery, so the
runner escalates immediately.

One parameterized implementation serves both failure-domain levels:
:class:`DeviceHealthMonitor` tracks GPU ids within a server,
:class:`ServerHealthMonitor` tracks server indices within a cluster.
They are type aliases of :class:`HealthMonitor`, kept distinct so call
sites say which domain they police.
"""

from __future__ import annotations

from typing import Generic, Hashable, Optional, TypeVar

Entity = TypeVar("Entity", bound=Hashable)


class HealthMonitor(Generic[Entity]):
    """Strike-counting hysteresis for degraded (but alive) entities.

    Generic over the entity key -- anything hashable works; the runner
    uses ints (GPU ids / server indices).
    """

    def __init__(self, patience: int):
        if patience < 0:
            raise ValueError(f"patience must be >= 0, got {patience}")
        self.patience = patience
        self._strikes: dict[Entity, int] = {}
        #: the window whose strike an entity most recently earned, so a
        #: second degraded observation in the same window is a no-op
        self._window: dict[Entity, Hashable] = {}
        #: entities already condemned (strike count reached patience);
        #: they stay condemned until :meth:`forget` -- an entity does not
        #: redeem itself by looking healthy after we decided to drop it.
        self._condemned: set[Entity] = set()

    def observe(self, entity: Entity, degraded: bool,
                window: Optional[Hashable] = None) -> bool:
        """Record one observation; True once the entity is condemned.

        ``window`` scopes the strike: repeated degraded observations
        with the same window value add a single strike (an iteration
        that restarts is still one iteration of evidence).  ``None``
        (the default) treats every observation as a fresh window,
        preserving the historical one-call-per-boundary behavior.
        """
        if entity in self._condemned:
            return True
        same_window = (
            window is not None and self._window.get(entity) == window
        )
        if not degraded:
            # A healthy observation opens a new window of evidence and
            # clears the streak -- unless it lands in the same window
            # that already earned a strike (a restart attempt that got
            # lucky does not erase the boundary's strike).
            if not same_window:
                self._strikes.pop(entity, None)
                self._window.pop(entity, None)
            return False
        if same_window:
            # Second degradation in the same window: already counted.
            return self._condemn_if_due(entity)
        strikes = self._strikes.get(entity, 0) + 1
        self._strikes[entity] = strikes
        if window is not None:
            self._window[entity] = window
        return self._condemn_if_due(entity)

    def _condemn_if_due(self, entity: Entity) -> bool:
        # patience=0 ("no hysteresis") behaves like patience=1: one
        # degraded observation is still required -- the monitor never
        # condemns an entity it has only seen healthy.
        if self._strikes.get(entity, 0) >= max(self.patience, 1):
            self._condemned.add(entity)
            return True
        return False

    def strikes(self, entity: Entity) -> int:
        return self._strikes.get(entity, 0)

    def condemned(self, entity: Entity) -> bool:
        return entity in self._condemned

    def forget(self, entity: Entity) -> None:
        """Drop all state for ``entity`` (it left the active set)."""
        self._strikes.pop(entity, None)
        self._window.pop(entity, None)
        self._condemned.discard(entity)


class DeviceHealthMonitor(HealthMonitor[int]):
    """Strike tracking for GPUs within one server (the historical name)."""


class ServerHealthMonitor(HealthMonitor[int]):
    """Strike tracking for whole servers within a cluster."""
