"""Device health monitor: hysteresis between "degraded" and "re-plan".

A single straggling iteration must never trigger an elastic re-plan --
migration moves real bytes over real links, so the escalation from
"tolerate" to "re-schedule the job" has to be earned.  The monitor keeps
a per-device strike counter: each iteration boundary at which a device
is observed degraded beyond the policy's ``rebind_threshold`` (and could
not be rescued by a cheap 1:1 rebind) adds a strike; a healthy
observation clears the counter.  Only after ``patience`` *consecutive*
strikes does the monitor condemn the device.  ``patience=0`` disables
the hysteresis entirely: the first degraded observation condemns.

Observations carry an optional *window* identifier (the runner passes
the iteration number): two degraded observations inside the same window
-- e.g. an iteration that restarts and re-examines the same boundary --
count as **one** strike, not two, so a single bad iteration can never
burn more than one unit of patience however many attempts it takes.

Permanent GPU *loss* bypasses the monitor entirely: dead hardware has no
prospect of recovery, so the runner escalates immediately.
"""

from __future__ import annotations

from typing import Hashable, Optional


class DeviceHealthMonitor:
    """Strike-counting hysteresis for degraded (but alive) devices."""

    def __init__(self, patience: int):
        if patience < 0:
            raise ValueError(f"patience must be >= 0, got {patience}")
        self.patience = patience
        self._strikes: dict[int, int] = {}
        #: the window whose strike a device most recently earned, so a
        #: second degraded observation in the same window is a no-op
        self._window: dict[int, Hashable] = {}
        #: devices already condemned (strike count reached patience);
        #: they stay condemned until :meth:`forget` -- a device does not
        #: redeem itself by looking healthy after we decided to drop it.
        self._condemned: set[int] = set()

    def observe(self, device: int, degraded: bool,
                window: Optional[Hashable] = None) -> bool:
        """Record one observation; True once the device is condemned.

        ``window`` scopes the strike: repeated degraded observations
        with the same window value add a single strike (an iteration
        that restarts is still one iteration of evidence).  ``None``
        (the default) treats every observation as a fresh window,
        preserving the historical one-call-per-boundary behavior.
        """
        if device in self._condemned:
            return True
        same_window = (
            window is not None and self._window.get(device) == window
        )
        if not degraded:
            # A healthy observation opens a new window of evidence and
            # clears the streak -- unless it lands in the same window
            # that already earned a strike (a restart attempt that got
            # lucky does not erase the boundary's strike).
            if not same_window:
                self._strikes.pop(device, None)
                self._window.pop(device, None)
            return False
        if same_window:
            # Second degradation in the same window: already counted.
            return self._condemn_if_due(device)
        strikes = self._strikes.get(device, 0) + 1
        self._strikes[device] = strikes
        if window is not None:
            self._window[device] = window
        return self._condemn_if_due(device)

    def _condemn_if_due(self, device: int) -> bool:
        # patience=0 ("no hysteresis") behaves like patience=1: one
        # degraded observation is still required -- the monitor never
        # condemns a device it has only seen healthy.
        if self._strikes.get(device, 0) >= max(self.patience, 1):
            self._condemned.add(device)
            return True
        return False

    def strikes(self, device: int) -> int:
        return self._strikes.get(device, 0)

    def condemned(self, device: int) -> bool:
        return device in self._condemned

    def forget(self, device: int) -> None:
        """Drop all state for ``device`` (it left the active set)."""
        self._strikes.pop(device, None)
        self._window.pop(device, None)
        self._condemned.discard(device)
