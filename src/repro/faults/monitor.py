"""Device health monitor: hysteresis between "degraded" and "re-plan".

A single straggling iteration must never trigger an elastic re-plan --
migration moves real bytes over real links, so the escalation from
"tolerate" to "re-schedule the job" has to be earned.  The monitor keeps
a per-device strike counter: each iteration boundary at which a device
is observed degraded beyond the policy's ``rebind_threshold`` (and could
not be rescued by a cheap 1:1 rebind) adds a strike; a healthy
observation clears the counter.  Only after ``replan_patience``
*consecutive* strikes does the monitor condemn the device.

Permanent GPU *loss* bypasses the monitor entirely: dead hardware has no
prospect of recovery, so the runner escalates immediately.
"""

from __future__ import annotations


class DeviceHealthMonitor:
    """Strike-counting hysteresis for degraded (but alive) devices."""

    def __init__(self, patience: int):
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.patience = patience
        self._strikes: dict[int, int] = {}
        #: devices already condemned (strike count reached patience);
        #: they stay condemned until :meth:`forget` -- a device does not
        #: redeem itself by looking healthy after we decided to drop it.
        self._condemned: set[int] = set()

    def observe(self, device: int, degraded: bool) -> bool:
        """Record one iteration-boundary observation; True if condemned."""
        if device in self._condemned:
            return True
        if not degraded:
            self._strikes.pop(device, None)
            return False
        strikes = self._strikes.get(device, 0) + 1
        self._strikes[device] = strikes
        if strikes >= self.patience:
            self._condemned.add(device)
            return True
        return False

    def strikes(self, device: int) -> int:
        return self._strikes.get(device, 0)

    def condemned(self, device: int) -> bool:
        return device in self._condemned

    def forget(self, device: int) -> None:
        """Drop all state for ``device`` (it left the active set)."""
        self._strikes.pop(device, None)
        self._condemned.discard(device)
