"""Binds a :class:`~repro.faults.plan.FaultPlan` to a live simulated server.

The injector is the only object the executor talks to: it answers fault
queries (transfer/crash/slow-down), installs time-varying link degradation
on the server's PCIe tree, and counts every fault it hands out so runs can
report injected vs. recovered vs. fatal.

Link degradation and host memory pressure are delivered *lazily*: each
:class:`~repro.sim.links.Link` gets a ``degradation`` function of virtual
time, sampled when a transfer locks the path.  No free-running flapper
processes exist, so a fault-armed simulator still drains exactly when the
schedule completes -- the event heap is never polluted, and an
all-faults-disabled plan injects nothing at all.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.diagnostics import stream_ref, task_ref
from repro.common.errors import GpuLostError, TaskCrashError, TransferFaultError
from repro.faults.plan import FaultKind, FaultPlan
from repro.hardware.server import SimulatedServer
from repro.sim.links import Link, TransferFault


class CrashFault:
    """A decided compute crash: waste ``fraction`` of the attempt, then
    raise ``error`` (unless the recovery policy retries)."""

    __slots__ = ("error", "fraction")

    def __init__(self, error: TaskCrashError, fraction: float):
        self.error = error
        self.fraction = fraction


class FaultInjector:
    """Per-run-attempt fault delivery and accounting.

    ``context`` is the ``(iteration, restart_attempt)`` salt: the runner
    builds a fresh injector per attempt so a restarted iteration rolls
    fresh dice while staying fully reproducible from the plan seed.
    """

    def __init__(self, plan: FaultPlan, context: tuple = ()):
        self.plan = plan
        self.context = tuple(context)
        self.injected: dict[FaultKind, int] = {kind: 0 for kind in FaultKind}
        self._counted_slow: set[int] = set()
        self._counted_lost: set[int] = set()
        #: live simulator, bound by :meth:`arm` / the executor; lets every
        #: counted fault also land on the execution trace when one is on
        self._sim = None

    def attach_sim(self, sim) -> None:
        """Bind the live simulator so counted faults hit its trace."""
        self._sim = sim

    def _record(self, kind: FaultKind, device: int = -1, tid: int = -1,
                **meta) -> None:
        """Mirror a counter increment as a ``fault`` trace instant.

        Called exactly once per ``self.injected[...] += 1`` site, which is
        what makes the trace's fault events and the recovery counters
        equal by construction (the invariant the test harness asserts).
        """
        sim = self._sim
        if sim is None:
            return
        trace = sim.trace
        if trace is not None:
            trace.instant("fault", kind.value, sim.now,
                          device=device, tid=tid, **meta)

    @property
    def iteration(self) -> int:
        """Iteration this injector serves (from the restart context salt)."""
        return int(self.context[0]) if self.context else 0

    @property
    def enabled(self) -> bool:
        return self.plan.enabled

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    # -- arming ------------------------------------------------------------------

    def arm(self, server: SimulatedServer) -> None:
        """Install link degradation / host pressure on the live server.

        Leaf links see only flapping; the oversubscribed switch uplinks
        and the host staging engine additionally see host-memory-pressure
        epochs (they are the hops that touch host DRAM).
        """
        self._sim = server.sim
        if not self.enabled:
            return
        tree = server.tree
        for link in tree.leaf_up + tree.leaf_down + list(tree.nvlink.values()):
            link.degradation = self._flap_only(link)
        for link in tree.uplink_up + tree.uplink_down:
            link.degradation = self._flap_and_pressure(link)
        server.pageable_staging.degradation = self._pressure_only()

    def _flap_factor(self, link: Link, now: float) -> float:
        epoch = int(now / self.plan.spec.link_flap_interval)
        factor = self.plan.link_degradation(link.name, epoch, self.context)
        if factor < 1.0:
            self.injected[FaultKind.LINK_DEGRADE] += 1
            self._record(FaultKind.LINK_DEGRADE, link=link.name,
                         factor=factor)
        return factor

    def _pressure_factor(self, now: float) -> float:
        epoch = int(now / self.plan.spec.host_pressure_interval)
        factor = self.plan.host_pressure(epoch, self.context)
        if factor < 1.0:
            self.injected[FaultKind.HOST_PRESSURE] += 1
            self._record(FaultKind.HOST_PRESSURE, factor=factor)
        return factor

    def _flap_only(self, link: Link):
        return lambda now: self._flap_factor(link, now)

    def _pressure_only(self):
        return lambda now: self._pressure_factor(now)

    def _flap_and_pressure(self, link: Link):
        return lambda now: self._flap_factor(link, now) * self._pressure_factor(now)

    # -- queries the executor asks ----------------------------------------------

    def transfer_fault(
        self, device: int, stream: str, label: str, attempt: int
    ) -> Optional[TransferFault]:
        """Fault for this transfer attempt, or None to let it through."""
        entity = stream_ref(device, stream)
        fraction = self.plan.transfer_fault(entity, label, attempt, self.context)
        if fraction is None:
            return None
        self.injected[FaultKind.TRANSFER] += 1
        self._record(FaultKind.TRANSFER, device=device, label=label,
                     stream=stream, attempt=attempt)
        return TransferFault(
            error=TransferFaultError(
                f"injected transfer fault on {entity} "
                f"(move {label!r}, attempt {attempt})",
                entity=entity,
            ),
            fraction=fraction,
        )

    def crash_fault(self, tid: int, device: int, mb_index: int,
                    attempt: int) -> Optional[CrashFault]:
        """Crash for this compute attempt, or None to let it run."""
        crash = self.plan.task_crash(tid, mb_index, attempt, self.context)
        if crash is None:
            return None
        self.injected[FaultKind.TASK_CRASH] += 1
        self._record(FaultKind.TASK_CRASH, device=device, tid=tid,
                     mb=mb_index, attempt=attempt)
        entity = task_ref(tid)
        return CrashFault(
            error=TaskCrashError(
                f"injected crash of {entity} microbatch {mb_index} on "
                f"{stream_ref(device, 'compute')} (attempt {attempt})",
                entity=entity,
            ),
            fraction=crash.fraction,
        )

    def compute_multiplier(self, device: int) -> float:
        """Straggler kernel-time multiplier for ``device`` (1.0 = healthy)."""
        multiplier, _persistent = self.plan.gpu_slowdown_at(device, self.iteration)
        if multiplier > 1.0 and device not in self._counted_slow:
            self._counted_slow.add(device)
            self.injected[FaultKind.GPU_SLOWDOWN] += 1
            self._record(FaultKind.GPU_SLOWDOWN, device=device,
                         multiplier=multiplier)
        return multiplier

    def degraded_gpus(self, n_devices: int) -> list[tuple[int, float, bool]]:
        """(device, multiplier, persistent) for every straggler GPU."""
        out = []
        for device in range(n_devices):
            multiplier, persistent = self.plan.gpu_slowdown_at(
                device, self.iteration)
            if multiplier > 1.0:
                out.append((device, multiplier, persistent))
        return out

    def gpu_lost(self, device: int) -> bool:
        """Is ``device`` dead as of this injector's iteration?"""
        death = self.plan.gpu_loss(device)
        return death is not None and death <= self.iteration

    def lost_fault(self, device: int) -> Optional[GpuLostError]:
        """Loss fault for a compute attempt on ``device``, or None.

        Counted once per device per injector: the first kernel scheduled
        on dead hardware surfaces the loss; subsequent queries on the
        same corpse return the error without inflating the tally.
        """
        if not self.gpu_lost(device):
            return None
        if device not in self._counted_lost:
            self._counted_lost.add(device)
            self.injected[FaultKind.GPU_LOSS] += 1
            self._record(FaultKind.GPU_LOSS, device=device)
        entity = f"gpu{device}"
        return GpuLostError(
            f"injected permanent loss of {entity} "
            f"(died at iteration {self.plan.gpu_loss(device)})",
            entity=entity,
        )

    def lost_gpus(self, n_devices: int) -> list[tuple[int, int]]:
        """(device, death iteration) for every planned permanent loss."""
        out = []
        for device in range(n_devices):
            death = self.plan.gpu_loss(device)
            if death is not None:
                out.append((device, death))
        return out
