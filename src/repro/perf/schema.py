"""Schema for ``BENCH_*.json`` reports, plus a dependency-free validator.

The benchmark harness promises machines (CI, the perf gate, dashboards) a
*stable* report shape; this module is the contract.  ``BENCH_SCHEMA`` is
the source of truth -- a JSON-Schema-style document restricted to the
subset of keywords :func:`validate` implements (type, properties,
required, additionalProperties, items, enum, minimum) -- and
``scripts/bench_schema.json`` is its checked-in JSON export, kept equal
by a regression test so external tooling can consume the schema without
importing Python.

Bump ``SCHEMA_VERSION`` whenever a field is added, removed or
re-interpreted; the perf gate refuses to compare reports across schema
versions.
"""

from __future__ import annotations

from typing import Any

SCHEMA_VERSION = 3

#: The service-throughput benchmark: one seeded request storm against
#: :class:`repro.service.PlannerService` (virtual latency/shed numbers
#: are deterministic; ``serve_seconds`` is the wall clock of simulating
#: the storm, the one number a hot-path regression moves).
_SERVICE_SCHEMA: dict[str, Any] = {
    "type": "object",
    "additionalProperties": False,
    "required": [
        "requests", "seed", "chaos_intensity", "serve_seconds",
        "requests_per_second", "cache_hit_rate", "shed_rate",
        "p50_latency_virtual", "p99_latency_virtual", "breaker_trips",
    ],
    "properties": {
        "requests": {"type": "integer", "minimum": 1},
        "seed": {"type": "integer", "minimum": 0},
        "chaos_intensity": {"type": "number", "minimum": 0},
        # Wall seconds to serve the whole storm, min over repeats, after
        # any injected slowdown multiplier.
        "serve_seconds": {"type": "number", "minimum": 0},
        "requests_per_second": {"type": "number", "minimum": 0},
        # Deterministic virtual-time facts of the seeded storm.
        "cache_hit_rate": {"type": "number", "minimum": 0},
        "shed_rate": {"type": "number", "minimum": 0},
        "p50_latency_virtual": {"type": "number", "minimum": 0},
        "p99_latency_virtual": {"type": "number", "minimum": 0},
        "breaker_trips": {"type": "integer", "minimum": 0},
    },
}

#: The fleet co-placement benchmark: a clean seeded storm of mixed-width
#: mixed-share jobs co-placed onto a shared fleet
#: (:class:`repro.fleet.FleetPlacer` feeding the service's placement
#: rung).  ``serve_seconds`` is wall clock; everything else is a
#: deterministic virtual-time fact of the seeded storm.
_FLEET_SCHEMA: dict[str, Any] = {
    "type": "object",
    "additionalProperties": False,
    "required": [
        "requests", "seed", "servers", "gpus_per_server",
        "serve_seconds", "requests_per_second", "utilization",
        "placements", "identity", "partitioned", "timesliced",
        "certified", "rejections", "shed_no_capacity",
    ],
    "properties": {
        "requests": {"type": "integer", "minimum": 1},
        "seed": {"type": "integer", "minimum": 0},
        "servers": {"type": "integer", "minimum": 1},
        "gpus_per_server": {"type": "integer", "minimum": 1},
        # Wall seconds to serve the whole storm, min over repeats, after
        # any injected slowdown multiplier.
        "serve_seconds": {"type": "number", "minimum": 0},
        "requests_per_second": {"type": "number", "minimum": 0},
        # Deterministic virtual-time facts of the seeded storm.
        "utilization": {"type": "number", "minimum": 0},
        "placements": {"type": "integer", "minimum": 0},
        "identity": {"type": "integer", "minimum": 0},
        "partitioned": {"type": "integer", "minimum": 0},
        "timesliced": {"type": "integer", "minimum": 0},
        "certified": {"type": "integer", "minimum": 0},
        "rejections": {"type": "integer", "minimum": 0},
        "shed_no_capacity": {"type": "integer", "minimum": 0},
    },
}

_CASE_SCHEMA: dict[str, Any] = {
    "type": "object",
    "additionalProperties": False,
    "required": [
        "model", "mode", "gpus", "minibatch", "iterations",
        "search_seconds", "plan_seconds", "run_seconds",
        "trace_seconds", "trace_overhead_seconds",
        "n_feasible", "n_infeasible", "n_tasks",
        "best_estimate", "iteration_time_sim",
    ],
    "properties": {
        "model": {"type": "string"},
        "mode": {"type": "string", "enum": ["pp", "dp"]},
        "gpus": {"type": "integer", "minimum": 1},
        "minibatch": {"type": "integer", "minimum": 1},
        "iterations": {"type": "integer", "minimum": 1},
        # Wall-clock seconds, min over repeats, after any injected
        # slowdown multiplier.
        "search_seconds": {"type": "number", "minimum": 0},
        "plan_seconds": {"type": "number", "minimum": 0},
        "run_seconds": {"type": "number", "minimum": 0},
        "trace_seconds": {"type": "number", "minimum": 0},
        "trace_overhead_seconds": {"type": "number", "minimum": 0},
        # Planner/simulator facts, for sanity-checking that two reports
        # actually measured the same work.
        "n_feasible": {"type": "integer", "minimum": 0},
        "n_infeasible": {"type": "integer", "minimum": 0},
        "n_tasks": {"type": "integer", "minimum": 1},
        "best_estimate": {"type": "number", "minimum": 0},
        "iteration_time_sim": {"type": "number", "minimum": 0},
    },
}

BENCH_SCHEMA: dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "Harmony reproduction benchmark report",
    "type": "object",
    "additionalProperties": False,
    "required": [
        "schema_version", "suite", "repeats", "calibration_seconds",
        "perf_disabled", "search_workers", "host", "cases", "service",
        "fleet",
    ],
    "properties": {
        "schema_version": {"type": "integer", "enum": [SCHEMA_VERSION]},
        "suite": {"type": "string"},
        "repeats": {"type": "integer", "minimum": 1},
        # Wall seconds of the fixed pure-Python calibration loop on the
        # measuring machine; the perf gate divides every timing by this,
        # so baselines compare across machines of different speeds.
        "calibration_seconds": {"type": "number", "minimum": 0},
        "perf_disabled": {"type": "boolean"},
        "search_workers": {"type": "integer", "minimum": 1},
        "injected_slowdown": {"type": "number", "minimum": 0},
        "host": {
            "type": "object",
            "additionalProperties": False,
            "required": ["python", "platform", "cpus"],
            "properties": {
                "python": {"type": "string"},
                "platform": {"type": "string"},
                "cpus": {"type": "integer", "minimum": 1},
            },
        },
        "cases": {"type": "array", "items": _CASE_SCHEMA},
        "service": _SERVICE_SCHEMA,
        "fleet": _FLEET_SCHEMA,
    },
}

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "integer": int,
    "number": (int, float),
}


def validate(instance: Any, schema: dict[str, Any] | None = None,
             path: str = "$") -> list[str]:
    """Validate ``instance`` against ``schema`` (default: BENCH_SCHEMA).

    Returns a list of human-readable error strings; empty means valid.
    Implements the keyword subset the bench schema uses -- intentionally
    not a general JSON-Schema engine (no new dependencies).
    """
    if schema is None:
        schema = BENCH_SCHEMA
    errors: list[str] = []

    expected = schema.get("type")
    if expected is not None:
        py_type = _TYPES[expected]
        ok = isinstance(instance, py_type)
        # bool is an int subclass in Python; JSON tells them apart.
        if ok and expected in ("integer", "number") and isinstance(instance, bool):
            ok = False
        if not ok:
            return [f"{path}: expected {expected}, got {type(instance).__name__}"]

    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not one of {schema['enum']!r}")

    if "minimum" in schema and isinstance(instance, (int, float)) \
            and not isinstance(instance, bool) and instance < schema["minimum"]:
        errors.append(f"{path}: {instance!r} below minimum {schema['minimum']}")

    if expected == "object":
        for req in schema.get("required", ()):
            if req not in instance:
                errors.append(f"{path}: missing required property {req!r}")
        props = schema.get("properties", {})
        if schema.get("additionalProperties", True) is False:
            for key in instance:
                if key not in props:
                    errors.append(f"{path}: unexpected property {key!r}")
        for key, sub in props.items():
            if key in instance:
                errors.extend(validate(instance[key], sub, f"{path}.{key}"))

    if expected == "array" and "items" in schema:
        for i, item in enumerate(instance):
            errors.extend(validate(item, schema["items"], f"{path}[{i}]"))

    return errors


def check_report(report: Any) -> None:
    """Raise ``ValueError`` listing every schema violation in ``report``."""
    errors = validate(report)
    if errors:
        raise ValueError(
            "bench report violates the schema:\n  " + "\n  ".join(errors)
        )
