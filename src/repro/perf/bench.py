"""Benchmark harness: time the planner, the simulator, and tracing.

Measures, per ``model x mode`` case:

- **search_seconds** -- the configuration search alone (Algorithm 1;
  the Table 1 cost the paper reports per model);
- **plan_seconds** -- end-to-end scheduling: decompose + profile +
  search + final graph build;
- **run_seconds** -- wall-clock of executing the planned iteration(s)
  on the simulated server (the discrete-event engine's hot path);
- **trace_seconds / trace_overhead_seconds** -- the same run with the
  trace recorder attached, and its cost over the untraced run.

Plus one report-level ``service`` section: the wall clock of serving a
seeded request storm through :class:`repro.service.PlannerService`
(``serve_seconds`` / ``requests_per_second``) alongside the storm's
deterministic virtual-time facts (cache hit rate, shed rate, p50/p99
virtual latency, breaker trips) so two reports can be checked to have
measured the same storm; and one report-level ``fleet`` section timing
the same service with a :class:`repro.fleet.FleetPlacer` attached (a
mixed-width, mixed-share storm co-placed onto a shared 2-server fleet,
with the storm's deterministic placement/utilization facts).

Every timing is the **minimum over ``repeats``** (the standard
low-noise wall-clock estimator) and each repeat uses a fresh
:class:`~repro.core.harmony.Harmony` so memoized plans never leak
between repeats.  The report also carries a ``calibration_seconds``
reading -- a fixed pure-Python workload timed on the same machine -- so
the perf gate (``scripts/perf_gate.py``) can compare reports taken on
machines of different speeds by normalizing every timing against it.

The emitted report conforms to :data:`repro.perf.schema.BENCH_SCHEMA`
(validated before it is written) and is named ``BENCH_<date>.json`` by
default.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.perf import injected_slowdown, perf_enabled
from repro.perf.schema import SCHEMA_VERSION, check_report


@dataclass(frozen=True)
class BenchCase:
    """One benchmarked configuration."""

    model: str
    mode: str
    gpus: int
    minibatch: int
    iterations: int = 1

    @property
    def key(self) -> str:
        return f"{self.model}|{self.mode}|{self.gpus}|{self.minibatch}"

    def describe(self) -> str:
        return (f"{self.model} {self.mode} x{self.gpus} "
                f"mb{self.minibatch}")


#: Named suites.  ``smoke`` is the CI gate: small enough to run on every
#: push, meaty enough (gpt2, tiny-cnn) that a hot-path regression moves
#: the numbers well past noise.
SUITES: dict[str, tuple[BenchCase, ...]] = {
    "smoke": (
        BenchCase("toy-transformer", "pp", 2, 8),
        BenchCase("tiny-cnn", "dp", 2, 8),
        BenchCase("gpt2", "pp", 4, 32),
    ),
    "zoo": (
        BenchCase("gpt2", "pp", 4, 32),
        BenchCase("gpt2", "dp", 4, 32),
        BenchCase("bert96", "pp", 4, 32),
        BenchCase("vgg416", "pp", 4, 32),
        BenchCase("resnet1k", "pp", 4, 32),
    ),
}


def calibrate(scale: int = 200_000, rounds: int = 3) -> float:
    """Time a fixed pure-Python workload (seconds, min over rounds).

    The workload mixes arithmetic, list building and dict traffic --
    roughly the instruction mix of the scheduler -- so the ratio
    ``case_seconds / calibration_seconds`` is comparable across
    machines.  It is deterministic and allocation-bounded.
    """
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        acc = 0
        table: dict[int, int] = {}
        values = []
        for i in range(scale):
            acc += i * i & 0xFFFF
            if i % 7 == 0:
                table[i & 1023] = acc
            if i % 13 == 0:
                values.append(acc)
        # Consume the results so the loop cannot be dead-code cheated.
        acc += len(table) + len(values)
        best = min(best, time.perf_counter() - t0)
    return best


def _time_case(case: BenchCase, repeats: int,
               search_workers: int = 1) -> dict[str, Any]:
    """Measure one case; returns a schema-shaped case record."""
    from repro.core.harmony import Harmony, HarmonyOptions
    from repro.experiments.common import server_for
    from repro.models.zoo import build_model
    from repro.trace import TraceRecorder

    build_model(case.model)  # warm the lru-cached model builder

    options = HarmonyOptions(mode=case.mode, search_workers=search_workers)
    server = server_for(case.gpus)

    search_s = plan_s = run_s = trace_s = float("inf")
    plan = None
    metrics = None
    for _ in range(repeats):
        harmony = Harmony(case.model, server, case.minibatch, options=options)
        t0 = time.perf_counter()
        plan = harmony.plan()
        plan_s = min(plan_s, time.perf_counter() - t0)
        search_s = min(search_s, plan.search.elapsed_seconds)

        t0 = time.perf_counter()
        report = harmony.run(plan=plan, iterations=case.iterations)
        run_s = min(run_s, time.perf_counter() - t0)
        metrics = report.metrics

        recorder = TraceRecorder()
        t0 = time.perf_counter()
        harmony.run(plan=plan, iterations=case.iterations, trace=recorder)
        trace_s = min(trace_s, time.perf_counter() - t0)

    assert plan is not None and metrics is not None
    factor = injected_slowdown()
    return {
        "model": case.model,
        "mode": case.mode,
        "gpus": case.gpus,
        "minibatch": case.minibatch,
        "iterations": case.iterations,
        "search_seconds": search_s * factor,
        "plan_seconds": plan_s * factor,
        "run_seconds": run_s * factor,
        "trace_seconds": trace_s * factor,
        "trace_overhead_seconds": max(0.0, trace_s - run_s) * factor,
        "n_feasible": plan.search.n_feasible,
        "n_infeasible": plan.search.n_infeasible,
        "n_tasks": len(plan.graph),
        "best_estimate": plan.search.best_estimate,
        "iteration_time_sim": metrics.iteration_time,
    }


#: The storm every report's ``service`` section measures.  Fixed here
#: (not configurable) so service numbers are comparable across reports.
SERVICE_STORM_REQUESTS = 200
SERVICE_STORM_SEED = 0
SERVICE_STORM_INTENSITY = 1.0


def _time_service(repeats: int) -> dict[str, Any]:
    """Serve the fixed seeded chaos storm; returns the ``service`` record.

    ``serve_seconds`` is the min over ``repeats`` of the wall clock of
    ``PlannerService.run`` on a fresh service (fresh cache, fresh
    breaker) each repeat; everything else is a deterministic fact of the
    storm and identical across repeats.
    """
    from repro.service import (
        PlannerService, ServiceChaosSpec, ServiceConfig, ServiceFaultPlan,
        scripted_workload,
    )

    requests = scripted_workload(
        SERVICE_STORM_REQUESTS, seed=SERVICE_STORM_SEED
    )
    chaos = ServiceFaultPlan(
        ServiceChaosSpec.chaos(SERVICE_STORM_INTENSITY),
        seed=SERVICE_STORM_SEED,
    )
    serve_s = float("inf")
    metrics = None
    for _ in range(repeats):
        service = PlannerService(
            ServiceConfig(), chaos=chaos, seed=SERVICE_STORM_SEED
        )
        t0 = time.perf_counter()
        service.run(requests)
        serve_s = min(serve_s, time.perf_counter() - t0)
        metrics = service.metrics

    assert metrics is not None
    factor = injected_slowdown()
    serve_s *= factor
    return {
        "requests": SERVICE_STORM_REQUESTS,
        "seed": SERVICE_STORM_SEED,
        "chaos_intensity": SERVICE_STORM_INTENSITY,
        "serve_seconds": serve_s,
        "requests_per_second": (
            SERVICE_STORM_REQUESTS / serve_s if serve_s > 0 else 0.0
        ),
        "cache_hit_rate": metrics.cache_hit_rate,
        "shed_rate": metrics.shed_rate,
        "p50_latency_virtual": metrics.p50_latency,
        "p99_latency_virtual": metrics.p99_latency,
        "breaker_trips": metrics.breaker_trips,
    }


#: The storm every report's ``fleet`` section measures: a clean
#: mixed-width, mixed-share storm co-placed onto a shared 2-server
#: fleet.  Fixed here so fleet numbers are comparable across reports.
FLEET_STORM_REQUESTS = 120
FLEET_STORM_SEED = 0
FLEET_STORM_SERVERS = 2
FLEET_STORM_GPUS = 4


def _time_fleet(repeats: int) -> dict[str, Any]:
    """Serve the fixed fleet storm; returns the ``fleet`` record.

    ``serve_seconds`` is the min over ``repeats`` of the wall clock of
    a fleet-backed ``PlannerService.run`` on a fresh service + fresh
    placer each repeat (placement arithmetic, bind certification and
    the utilization integral are all on this path); everything else is
    a deterministic fact of the seeded storm.
    """
    from repro.fleet import FleetPlacer, fleet_of
    from repro.service import (
        Outcome, PlannerService, ServiceConfig, scripted_workload,
    )

    requests = scripted_workload(
        FLEET_STORM_REQUESTS, seed=FLEET_STORM_SEED,
        gpus=(2, FLEET_STORM_GPUS), shares=(1.0, 0.5),
    )
    serve_s = float("inf")
    metrics = None
    for _ in range(repeats):
        service = PlannerService(
            ServiceConfig(), seed=FLEET_STORM_SEED,
            fleet=FleetPlacer(fleet_of(FLEET_STORM_SERVERS,
                                       FLEET_STORM_GPUS)),
        )
        t0 = time.perf_counter()
        service.run(requests)
        serve_s = min(serve_s, time.perf_counter() - t0)
        metrics = service.metrics

    assert metrics is not None
    factor = injected_slowdown()
    serve_s *= factor
    return {
        "requests": FLEET_STORM_REQUESTS,
        "seed": FLEET_STORM_SEED,
        "servers": FLEET_STORM_SERVERS,
        "gpus_per_server": FLEET_STORM_GPUS,
        "serve_seconds": serve_s,
        "requests_per_second": (
            FLEET_STORM_REQUESTS / serve_s if serve_s > 0 else 0.0
        ),
        "utilization": metrics.fleet_utilization,
        "placements": metrics.fleet_placements,
        "identity": metrics.fleet_identity,
        "partitioned": metrics.fleet_partitioned,
        "timesliced": metrics.fleet_timesliced,
        "certified": metrics.fleet_certified,
        "rejections": metrics.fleet_rejections,
        "shed_no_capacity": metrics.of(Outcome.SHED_NO_CAPACITY),
    }


def run_bench(suite: str = "smoke", repeats: int = 3,
              search_workers: int = 1,
              cases: Optional[Sequence[BenchCase]] = None) -> dict[str, Any]:
    """Run a suite and return the schema-valid report dict."""
    picked = tuple(cases) if cases is not None else SUITES[suite]
    report: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "suite": suite,
        "repeats": repeats,
        "calibration_seconds": calibrate(),
        "perf_disabled": not perf_enabled(),
        "search_workers": search_workers,
        "injected_slowdown": injected_slowdown(),
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count() or 1,
        },
        "cases": [
            _time_case(case, repeats, search_workers) for case in picked
        ],
        "service": _time_service(repeats),
        "fleet": _time_fleet(repeats),
    }
    check_report(report)
    return report


def default_out_path(date: Optional[str] = None) -> str:
    """``BENCH_<date>.json`` in the current directory."""
    if date is None:
        date = time.strftime("%Y-%m-%d")
    return f"BENCH_{date}.json"


def write_report(report: dict[str, Any], path: str) -> None:
    """Validate and write a report (schema errors abort the write)."""
    check_report(report)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")


def render_report(report: dict[str, Any]) -> str:
    """Human-readable table of one report."""
    header = (f"bench suite {report['suite']!r}: "
              f"{len(report['cases'])} case(s), "
              f"min over {report['repeats']} repeat(s), "
              f"calibration {report['calibration_seconds'] * 1e3:.1f} ms"
              + (", PERF DISABLED" if report["perf_disabled"] else ""))
    rows = [header, "-" * len(header)]
    fmt = "{:<28} {:>9} {:>9} {:>9} {:>9}  {:>7}"
    rows.append(fmt.format("case", "search", "plan", "run", "trace",
                           "configs"))
    for case in report["cases"]:
        label = (f"{case['model']} {case['mode']} x{case['gpus']} "
                 f"mb{case['minibatch']}")
        rows.append(fmt.format(
            label,
            f"{case['search_seconds']:.3f}s",
            f"{case['plan_seconds']:.3f}s",
            f"{case['run_seconds']:.3f}s",
            f"{case['trace_seconds']:.3f}s",
            str(case["n_feasible"]),
        ))
    svc = report.get("service")
    if svc:
        rows.append(
            f"service storm: {svc['requests']} requests in "
            f"{svc['serve_seconds']:.3f}s wall "
            f"({svc['requests_per_second']:.0f} req/s), "
            f"cache hit {svc['cache_hit_rate'] * 100:.0f}%, "
            f"shed {svc['shed_rate'] * 100:.1f}%, "
            f"p99 latency {svc['p99_latency_virtual']:.2f}s virtual, "
            f"{svc['breaker_trips']} breaker trip(s)"
        )
    fleet = report.get("fleet")
    if fleet:
        rows.append(
            f"fleet storm: {fleet['requests']} requests on "
            f"{fleet['servers']}x{fleet['gpus_per_server']} GPUs in "
            f"{fleet['serve_seconds']:.3f}s wall "
            f"({fleet['requests_per_second']:.0f} req/s), "
            f"utilization {fleet['utilization'] * 100:.0f}%, "
            f"{fleet['placements']} placement(s) "
            f"({fleet['identity']}/{fleet['partitioned']}"
            f"/{fleet['timesliced']} id/part/slice), "
            f"{fleet['rejections']} rejection(s), "
            f"{fleet['shed_no_capacity']} capacity shed(s)"
        )
    return "\n".join(rows)


def main(argv: Optional[Sequence[str]] = None) -> int:  # pragma: no cover
    """Standalone entry (same flags as ``repro bench``)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite", choices=sorted(SUITES), default="smoke")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--out", default=None)
    args = parser.parse_args(argv)
    report = run_bench(args.suite, repeats=args.repeats,
                       search_workers=args.workers)
    print(render_report(report))
    out = args.out or default_out_path()
    write_report(report, out)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
