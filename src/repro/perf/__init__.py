"""Performance subsystem: hot-path caches, benchmarks, and the perf gate.

Harmony's scheduler is the heaviest CPU path in this reproduction -- the
paper reports ~1 s configuration searches for transformers but ~32 s for
ResNet1K (Table 1), and the discrete-event engine is re-executed
thousands of times across the test/chaos/elastic suites.  This package
holds the machinery that keeps those paths fast *without changing a
single planned or simulated output*:

- the global enable switch the hot-path caches consult
  (:func:`perf_enabled`, the ``REPRO_PERF_DISABLE=1`` escape hatch);
- the benchmark harness (:mod:`repro.perf.bench`, the ``repro bench``
  CLI) that times planner search, simulated execution and tracing
  overhead per model x mode and emits machine-readable
  ``BENCH_<date>.json``;
- the bench-report schema and validator (:mod:`repro.perf.schema`)
  that ``scripts/perf_gate.py`` and CI check reports against.

Every optimization gated on :func:`perf_enabled` is *bit-identical* to
the naive computation it replaces: integer prefix sums are exact, and
float caches store a value computed once with the very summation order
the naive code used, so a cache hit returns the identical bit pattern.
The regression suite (``tests/perf``) re-plans and re-runs the model zoo
with caches on and off and asserts equality down to the golden traces.
"""

from __future__ import annotations

import os

__all__ = ["perf_enabled", "injected_slowdown"]

#: Environment variable that disables every perf-subsystem cache and the
#: parallel search pool when set to a truthy value ("1", "true", "yes").
DISABLE_ENV = "REPRO_PERF_DISABLE"

#: Test hook for the perf gate: a float multiplier applied to measured
#: bench timings, so the gate's failure path can be exercised without
#: actually making the code slower.
SLOWDOWN_ENV = "REPRO_PERF_INJECT_SLOWDOWN"

_TRUTHY = {"1", "true", "yes", "on"}


def perf_enabled() -> bool:
    """True unless ``REPRO_PERF_DISABLE`` is set to a truthy value.

    Consulted when a cache-bearing object is *constructed* (profiles,
    estimators, searches), never in a hot loop -- flipping the variable
    mid-object does not change that object's behavior.
    """
    return os.environ.get(DISABLE_ENV, "").strip().lower() not in _TRUTHY


def injected_slowdown() -> float:
    """Multiplier the bench harness applies to measured wall times.

    Defaults to 1.0; the perf-gate tests set ``REPRO_PERF_INJECT_SLOWDOWN``
    to demonstrate that the gate actually fails on a regression.
    """
    raw = os.environ.get(SLOWDOWN_ENV, "").strip()
    if not raw:
        return 1.0
    value = float(raw)
    if value <= 0:
        raise ValueError(f"{SLOWDOWN_ENV} must be positive, got {raw!r}")
    return value
