"""Transformer language models as analytic layer chains.

Layer counts follow the paper's scheduling tables (Table 5): BERT96 spans
L0-99, GPT2 spans L0-51.  Costs use the standard dense-transformer
accounting: a block holds ``12 h^2 + 13 h`` parameters and runs
``24 s h^2 + 4 s^2 h`` forward FLOPs per sample; the LM head's logits over
the vocabulary dominate activation size at the tail, which is why the
paper's searched GPT2 backward microbatch size is 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.graph import LayerGraph
from repro.graph.layer import FP32_BYTES, LayerSpec
from repro.models.spec import ModelSpec


@dataclass(frozen=True)
class TransformerConfig:
    """Shape of a dense transformer LM/encoder."""

    name: str
    n_blocks: int
    hidden: int
    seq_len: int
    vocab: int
    n_heads: int
    n_classes: int = 0  # >0: classification head (BERT); 0: LM head (GPT)

    @property
    def block_params(self) -> int:
        return 12 * self.hidden**2 + 13 * self.hidden

    @property
    def approx_parameters(self) -> int:
        head = self.vocab * self.hidden if self.n_classes == 0 else 0
        return (
            self.n_blocks * self.block_params
            + self.vocab * self.hidden  # token embedding
            + head
        )


def _embedding(cfg: TransformerConfig) -> LayerSpec:
    act_out = cfg.seq_len * cfg.hidden * FP32_BYTES
    return LayerSpec(
        index=0,
        name="embedding",
        kind="embedding",
        param_bytes=(cfg.vocab + cfg.seq_len) * cfg.hidden * FP32_BYTES,
        flops_fwd_per_sample=2.0 * cfg.seq_len * cfg.hidden,
        act_in_bytes_per_sample=cfg.seq_len * 8,  # int64 token ids
        act_out_bytes_per_sample=act_out,
        bwd_flops_ratio=1.0,
    )


def _block(cfg: TransformerConfig, index: int) -> LayerSpec:
    h, s = cfg.hidden, cfg.seq_len
    act = s * h * FP32_BYTES
    matmul_flops = 24.0 * s * h * h
    attn_flops = 4.0 * s * s * h
    # The materialized attention-probability matrix dominates workspace on
    # pre-flash-attention GPUs: s*s per head, fp32.
    attn_workspace = cfg.n_heads * s * s * FP32_BYTES
    return LayerSpec(
        index=index,
        name=f"block{index}",
        kind="transformer",
        param_bytes=cfg.block_params * FP32_BYTES,
        flops_fwd_per_sample=matmul_flops + attn_flops,
        act_in_bytes_per_sample=act,
        act_out_bytes_per_sample=act,
        bwd_flops_ratio=2.0,
        workspace_bytes_per_sample=attn_workspace,
    )


def _final_norm(cfg: TransformerConfig, index: int) -> LayerSpec:
    act = cfg.seq_len * cfg.hidden * FP32_BYTES
    return LayerSpec(
        index=index,
        name="final_layernorm",
        kind="layernorm",
        param_bytes=2 * cfg.hidden * FP32_BYTES,
        flops_fwd_per_sample=10.0 * cfg.seq_len * cfg.hidden,
        act_in_bytes_per_sample=act,
        act_out_bytes_per_sample=act,
        bwd_flops_ratio=2.0,
    )


def _lm_head(cfg: TransformerConfig, index: int) -> LayerSpec:
    act_in = cfg.seq_len * cfg.hidden * FP32_BYTES
    logits = cfg.seq_len * cfg.vocab * FP32_BYTES
    return LayerSpec(
        index=index,
        name="lm_head",
        kind="head",
        param_bytes=cfg.vocab * cfg.hidden * FP32_BYTES,
        flops_fwd_per_sample=2.0 * cfg.seq_len * cfg.hidden * cfg.vocab,
        act_in_bytes_per_sample=act_in,
        act_out_bytes_per_sample=logits,
        bwd_flops_ratio=2.0,
    )


def _cls_head(cfg: TransformerConfig, index: int) -> LayerSpec:
    act_in = cfg.seq_len * cfg.hidden * FP32_BYTES
    return LayerSpec(
        index=index,
        name="classifier",
        kind="head",
        param_bytes=(cfg.hidden + 1) * cfg.n_classes * FP32_BYTES,
        flops_fwd_per_sample=2.0 * cfg.hidden * cfg.n_classes,
        act_in_bytes_per_sample=act_in,
        act_out_bytes_per_sample=cfg.n_classes * FP32_BYTES,
        bwd_flops_ratio=2.0,
    )


def _loss(cfg: TransformerConfig, index: int, in_bytes: int) -> LayerSpec:
    return LayerSpec(
        index=index,
        name="loss",
        kind="loss",
        param_bytes=0,
        flops_fwd_per_sample=5.0 * in_bytes / FP32_BYTES,
        act_in_bytes_per_sample=in_bytes,
        act_out_bytes_per_sample=FP32_BYTES,
        bwd_flops_ratio=1.0,
    )


def build_transformer(cfg: TransformerConfig) -> ModelSpec:
    """Assemble the chain: embedding, blocks, final norm, head, loss."""
    layers = [_embedding(cfg)]
    for i in range(cfg.n_blocks):
        layers.append(_block(cfg, len(layers)))
    layers.append(_final_norm(cfg, len(layers)))
    if cfg.n_classes > 0:
        head = _cls_head(cfg, len(layers))
        layers.append(head)
        layers.append(_loss(cfg, len(layers), head.act_out_bytes_per_sample))
    else:
        head = _lm_head(cfg, len(layers))
        layers.append(head)
        layers.append(_loss(cfg, len(layers), head.act_out_bytes_per_sample))
    graph = LayerGraph.chain(cfg.name, layers)
    return ModelSpec(
        name=cfg.name,
        graph=graph,
        optimizer="adam",
        sample_bytes=cfg.seq_len * 8,
        description=(
            f"{cfg.n_blocks}-block transformer, hidden {cfg.hidden}, "
            f"seq {cfg.seq_len}, ~{cfg.approx_parameters / 1e9:.2f}B params"
        ),
    )


# -- the paper's transformer configurations ---------------------------------

BERT_LARGE = TransformerConfig(
    name="bert-large", n_blocks=24, hidden=1024, seq_len=512, vocab=30522,
    n_heads=16, n_classes=2,
)

# 96-block BERT from PipeDream-2BW; with embedding/norm/head/loss the chain
# spans L0-99 as in Table 5.
BERT96 = TransformerConfig(
    name="bert96", n_blocks=96, hidden=1024, seq_len=512, vocab=30522,
    n_heads=16, n_classes=2,
)

# GPT2 1.5B: 48 blocks of hidden 1600; chain spans L0-51 as in Table 5.
GPT2 = TransformerConfig(
    name="gpt2", n_blocks=48, hidden=1600, seq_len=1024, vocab=50257, n_heads=25,
)

GPT2_MEDIUM = TransformerConfig(
    name="gpt2-medium", n_blocks=24, hidden=1024, seq_len=1024, vocab=50257,
    n_heads=16,
)


def custom_gpt2(billions: int) -> TransformerConfig:
    """Customized GPT2 variants of 10-40 B parameters (Section 5.7).

    Width is fixed at 5120 and depth scales with the target size, the same
    recipe ZeRO-Infinity uses for its large-model sweeps.
    """
    if billions not in (10, 20, 30, 40):
        raise ValueError(f"custom GPT2 sizes are 10/20/30/40 B, got {billions}")
    blocks_per_10b = 32  # 32 * 12 * 5120^2 ~= 10.1e9
    return TransformerConfig(
        name=f"gpt2-{billions}b",
        n_blocks=blocks_per_10b * (billions // 10),
        hidden=5120,
        seq_len=1024,
        vocab=50257,
        n_heads=40,
    )


def tiny_transformer(n_blocks: int = 6, hidden: int = 64, seq_len: int = 16) -> ModelSpec:
    """A toy model for unit tests and the Figure 4 walkthrough."""
    cfg = TransformerConfig(
        name=f"toy-transformer-{n_blocks}",
        n_blocks=n_blocks,
        hidden=hidden,
        seq_len=seq_len,
        vocab=1000,
        n_heads=4,
    )
    return build_transformer(cfg)
