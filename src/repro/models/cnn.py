"""CNN benchmarks: VGG416 and ResNet1K.

Both are the deep CNN variants prior GPU-memory-virtualization work
evaluates.  Unlike the transformers they are built through the module
tracer: VGG416 is a plain chain; ResNet1K has residual skip edges that the
Decomposer must sequentialize (Figure 6), so it exercises the full
trace -> sequentialize path.

Layer counts match the paper's scheduling tables: VGG416 spans L0-416 and
ResNet1K spans L0-1029 (Table 5).
"""

from __future__ import annotations

from repro.graph.graph import LayerGraph
from repro.graph.layer import FP32_BYTES, LayerSpec
from repro.graph.sequentialize import sequentialize
from repro.graph.tracer import (
    Add,
    Conv2d,
    Dense,
    Leaf,
    Module,
    Pool2d,
    SymbolicTensor,
    trace,
)
from repro.models.spec import ModelSpec

IMAGENET_SAMPLE_BYTES = 3 * 224 * 224 * FP32_BYTES
IMAGENET_CLASSES = 1000


class _Loss(Leaf):
    """Cross-entropy over class logits; reduces to a scalar."""

    def build_spec(self, index: int, inputs: tuple[SymbolicTensor, ...]) -> LayerSpec:
        (x,) = inputs
        return LayerSpec(
            index=index,
            name=f"loss{index}",
            kind="loss",
            param_bytes=0,
            flops_fwd_per_sample=5.0 * x.bytes_per_sample / FP32_BYTES,
            act_in_bytes_per_sample=x.bytes_per_sample,
            act_out_bytes_per_sample=FP32_BYTES,
            bwd_flops_ratio=1.0,
        )


class _Vgg416(Module):
    """VGG scaled to depth 417 (L0-416): 82 convs per stage, 5 stages.

    82 * 5 convs + 5 pools + fc + classifier = 417 layers.
    """

    STAGES = [
        # (in_channels, out_channels, spatial, n_convs)
        (3, 64, 224, 82),
        (64, 128, 112, 82),
        (128, 256, 56, 82),
        (256, 512, 28, 82),
        (512, 512, 14, 82),
    ]

    def forward(self, x: SymbolicTensor) -> SymbolicTensor:
        for in_ch, out_ch, spatial, n_convs in self.STAGES:
            x = Conv2d(in_ch, out_ch, spatial)(x)
            for _ in range(n_convs - 1):
                x = Conv2d(out_ch, out_ch, spatial)(x)
            x = Pool2d(out_ch, spatial)(x)
        x = Dense(512 * 7 * 7, 4096, name="fc")(x)
        x = Dense(4096, IMAGENET_CLASSES, name="classifier")(x)
        return x


class _ResNet1K(Module):
    """Pre-activation-style ResNet of depth 1030 (L0-1029).

    stem(1) + 3 transitions + 341 basic blocks (x3 layers) + pool + fc +
    loss = 1030 layers.  Every basic block contributes a residual skip
    edge spanning its two convs, so the traced graph branches heavily.
    """

    STAGES = [
        # (channels, spatial, n_blocks)
        (64, 56, 86),
        (128, 28, 85),
        (256, 14, 85),
        (512, 7, 85),
    ]

    def forward(self, x: SymbolicTensor) -> SymbolicTensor:
        x = Conv2d(3, 64, 224, kernel=7, stride=4, name="stem")(x)
        prev_channels = 64
        for channels, spatial, n_blocks in self.STAGES:
            if channels != prev_channels:
                x = Conv2d(prev_channels, channels, spatial * 2, stride=2,
                           name="transition")(x)
                prev_channels = channels
            for _ in range(n_blocks):
                skip = x
                y = Conv2d(channels, channels, spatial)(x)
                y = Conv2d(channels, channels, spatial)(y)
                x = Add()(y, skip)
        x = Pool2d(512, 7, factor=7)(x)
        x = Dense(512, IMAGENET_CLASSES, name="fc")(x)
        x = _Loss()(x)
        return x


def build_vgg416() -> ModelSpec:
    graph = trace(_Vgg416(), IMAGENET_SAMPLE_BYTES, name="vgg416")
    graph = sequentialize(graph)
    return ModelSpec(
        name="vgg416",
        graph=graph,
        optimizer="sgd",
        sample_bytes=IMAGENET_SAMPLE_BYTES,
        description="VGG variant scaled to 417 layers, ImageNet, SGD",
    )


def build_resnet1k() -> ModelSpec:
    graph = trace(_ResNet1K(), IMAGENET_SAMPLE_BYTES, name="resnet1k")
    graph = sequentialize(graph)
    return ModelSpec(
        name="resnet1k",
        graph=graph,
        optimizer="sgd",
        sample_bytes=IMAGENET_SAMPLE_BYTES,
        description="ResNet variant with 1030 layers, ImageNet, SGD",
    )


def tiny_cnn(n_blocks: int = 3) -> ModelSpec:
    """A small residual CNN for unit tests of the tracer/sequentializer."""

    class _Tiny(Module):
        def forward(self, x: SymbolicTensor) -> SymbolicTensor:
            x = Conv2d(3, 8, 32, name="stem")(x)
            for _ in range(n_blocks):
                skip = x
                y = Conv2d(8, 8, 32)(x)
                y = Conv2d(8, 8, 32)(y)
                x = Add()(y, skip)
            x = Pool2d(8, 32, factor=8)(x)
            x = Dense(8 * 4 * 4, 10, name="fc")(x)
            x = _Loss()(x)
            return x

    sample = 3 * 32 * 32 * FP32_BYTES
    graph = sequentialize(trace(_Tiny(), sample, name=f"tiny-cnn-{n_blocks}"))
    return ModelSpec(
        name=f"tiny-cnn-{n_blocks}",
        graph=graph,
        optimizer="sgd",
        sample_bytes=sample,
    )
