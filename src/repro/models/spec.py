"""Model-level metadata wrapping a layer graph."""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.graph import LayerGraph

#: Extra fp32 state per parameter kept by each optimizer (Adam: two
#: moments; SGD with momentum: one velocity buffer).
OPTIMIZER_SLOTS = {"adam": 2, "sgd": 1, "plain-sgd": 0}


@dataclass(frozen=True)
class ModelSpec:
    """A layer graph plus the training metadata scheduling needs."""

    name: str
    graph: LayerGraph
    optimizer: str
    sample_bytes: int  # one input sample (token ids / image), host side
    description: str = ""

    def __post_init__(self) -> None:
        if self.optimizer not in OPTIMIZER_SLOTS:
            raise ValueError(
                f"unknown optimizer {self.optimizer!r}; "
                f"expected one of {sorted(OPTIMIZER_SLOTS)}"
            )

    @property
    def optimizer_slots(self) -> int:
        return OPTIMIZER_SLOTS[self.optimizer]

    @property
    def n_layers(self) -> int:
        return len(self.graph)

    @property
    def n_parameters(self) -> int:
        return self.graph.n_parameters

    @property
    def weight_bytes(self) -> int:
        return self.graph.total_param_bytes

    @property
    def model_state_bytes(self) -> int:
        """Weights + grads + optimizer state: the persistent footprint."""
        return self.graph.model_state_bytes(self.optimizer_slots)

    def summary(self) -> str:
        return (
            f"{self.name}: {self.n_layers} layers, "
            f"{self.n_parameters / 1e9:.2f}B params, "
            f"{self.optimizer} optimizer, "
            f"model state {self.model_state_bytes / 2**30:.1f} GiB"
        )
