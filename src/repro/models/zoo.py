"""Model registry.

``build_model("gpt2")`` returns the :class:`~repro.models.spec.ModelSpec`
for any model the paper evaluates; tests and experiments go through this
single entry point.  Builders are lazy (deep CNNs take a moment to trace)
and results are memoized.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable

from repro.models.cnn import build_resnet1k, build_vgg416, tiny_cnn
from repro.models.spec import ModelSpec
from repro.models.transformer import (
    BERT96,
    BERT_LARGE,
    GPT2,
    GPT2_MEDIUM,
    build_transformer,
    custom_gpt2,
    tiny_transformer,
)

_BUILDERS: dict[str, Callable[[], ModelSpec]] = {
    "bert-large": lambda: build_transformer(BERT_LARGE),
    "bert96": lambda: build_transformer(BERT96),
    "gpt2": lambda: build_transformer(GPT2),
    "gpt2-medium": lambda: build_transformer(GPT2_MEDIUM),
    "gpt2-10b": lambda: build_transformer(custom_gpt2(10)),
    "gpt2-20b": lambda: build_transformer(custom_gpt2(20)),
    "gpt2-30b": lambda: build_transformer(custom_gpt2(30)),
    "gpt2-40b": lambda: build_transformer(custom_gpt2(40)),
    "vgg416": build_vgg416,
    "resnet1k": build_resnet1k,
    "toy-transformer": lambda: tiny_transformer(),
    "tiny-cnn": lambda: tiny_cnn(),
}


def available_models() -> list[str]:
    """Names accepted by :func:`build_model`."""
    return sorted(_BUILDERS)


@lru_cache(maxsize=None)
def build_model(name: str) -> ModelSpec:
    """Build (and memoize) the named model's spec.

    Raises ``KeyError`` with the list of known names on a typo.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(available_models())}"
        ) from None
    return builder()
