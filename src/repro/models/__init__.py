"""Model zoo: the DNNs the paper evaluates, as analytic layer graphs.

- Transformers: BERT-Large, BERT96, GPT2 (1.5B), GPT2-Medium (0.3B) and
  customized GPT2 variants of 10-40 billion parameters (Section 5.7).
- CNNs: VGG416 and ResNet1K, the per-GPU-virtualization benchmarks with
  irregular per-layer profiles.

All are built either directly as chains or via the module tracer plus
branch sequentialization (ResNet), matching how Harmony's Decomposer
handles real model scripts.
"""

from repro.models.spec import ModelSpec
from repro.models.zoo import available_models, build_model

__all__ = ["ModelSpec", "build_model", "available_models"]
