"""Costed state migration: move checkpointed state to a new packing.

After an elastic re-plan the per-layer model state (weights W plus
optimizer state K) sits partitioned according to the *old* packing --
resident on the old owner GPUs, with the pageable host checkpoint as the
backstop -- while the new plan needs each pack's state on its *new*
owner before training can resume.  Teleporting it for free would hide
exactly the cost elasticity is supposed to expose, so migration is
planned here as explicit byte moves and executed over the real simulated
links by :class:`repro.runtime.migration.MigrationExecutor`.

Ownership model:

- a layer's owner is the device of the UPD task covering it (the update
  task is where a layer's W/K must be resident); BWD placement is the
  fallback for graphs without update tasks;
- W always migrates GPU-to-GPU (or host-restore when the old owner died:
  dead hardware cannot source a transfer, so the bytes come from the
  host checkpoint instead);
- K lives where the update runs: on the host for CPU-offloaded updates
  (migrating host->host is free -- host memory is shared), on the owner
  GPU otherwise.

Moves between two live GPUs ride the p2p path when the plan allows p2p,
else the host-staged relay (both legs counted, like the executor's
p2p->swap fallback).  Same-owner layers on a surviving device move
nothing: migration cost is proportional to how much the packing actually
changed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.profiler import ModelProfiles
from repro.core.types import TaskGraph, TaskKind


@dataclass(frozen=True)
class MigrationMove:
    """One aggregated state transfer; ``None`` endpoints mean host memory."""

    src: Optional[int]
    dst: Optional[int]
    nbytes: int
    label: str

    def describe(self) -> str:
        src = "host" if self.src is None else f"gpu{self.src}"
        dst = "host" if self.dst is None else f"gpu{self.dst}"
        return f"{src}->{dst} {self.nbytes / 2**20:.2f} MiB ({self.label})"


def layer_ownership(graph: TaskGraph) -> dict[int, tuple[int, bool]]:
    """Map each layer to ``(owner device, update runs on cpu)``.

    The UPD task covering a layer defines ownership; layers without one
    (ablated graphs) fall back to the first BWD task covering them.
    """
    owners: dict[int, tuple[int, bool]] = {}
    for task in graph.tasks:
        if task.kind is TaskKind.UPD:
            for layer in task.layers:
                owners.setdefault(layer, (task.device, task.on_cpu))
    for task in graph.tasks:
        if task.kind is TaskKind.BWD:
            for layer in task.layers:
                owners.setdefault(layer, (task.device, False))
    return owners


def plan_migration(
    old_graph: TaskGraph,
    new_graph: TaskGraph,
    profiles: ModelProfiles,
    lost: Iterable[int] = (),
) -> list[MigrationMove]:
    """Plan the state moves taking ``old_graph``'s packing to ``new_graph``'s.

    ``lost`` names permanently dead devices: state they owned is restored
    from the host checkpoint instead of sourced p2p.  Moves are
    aggregated per ``(src, dst)`` endpoint pair and returned in a
    deterministic order.
    """
    dead = set(lost)
    old_owners = layer_ownership(old_graph)
    new_owners = layer_ownership(new_graph)
    # (src, dst) -> bytes; None endpoint = host memory
    volume: dict[tuple[Optional[int], Optional[int]], int] = {}

    def add(src: Optional[int], dst: Optional[int], nbytes: int) -> None:
        if nbytes <= 0:
            return
        if src is None and dst is None:
            return  # host -> host: shared memory, nothing moves
        if src == dst and src not in dead:
            return  # already in place on a live device
        volume[(src, dst)] = volume.get((src, dst), 0) + nbytes

    for layer, (new_dev, new_cpu) in sorted(new_owners.items()):
        if layer not in old_owners:
            continue
        old_dev, old_cpu = old_owners[layer]
        w_bytes = profiles.layers[layer].param_bytes
        k_bytes = w_bytes * profiles.optimizer_slots
        w_src: Optional[int] = None if old_dev in dead else old_dev
        add(w_src, new_dev, w_bytes)
        k_src: Optional[int] = (
            None if (old_cpu or old_dev in dead) else old_dev
        )
        k_dst: Optional[int] = None if new_cpu else new_dev
        add(k_src, k_dst, k_bytes)

    moves = []
    for (src, dst), nbytes in sorted(
        volume.items(),
        key=lambda kv: (kv[0][0] is None, kv[0][0] or 0,
                        kv[0][1] is None, kv[0][1] or 0),
    ):
        src_name = "host" if src is None else f"gpu{src}"
        dst_name = "host" if dst is None else f"gpu{dst}"
        moves.append(MigrationMove(
            src=src, dst=dst, nbytes=nbytes,
            label=f"migrate:{src_name}->{dst_name}",
        ))
    return moves


def total_bytes(moves: Iterable[MigrationMove]) -> int:
    return sum(m.nbytes for m in moves)
