"""Elastic re-planning: survive permanent device loss with no spare.

When recovery's cheap tricks run out -- retries exhausted, fallbacks
taken, no idle spare to rebind onto -- this package escalates: re-invoke
the full Harmony scheduler on the surviving device subset
(:mod:`repro.elastic.replanner`), relabel the fresh plan's logical
devices onto the surviving physical GPUs (:mod:`repro.elastic.rebind`),
and migrate the checkpointed model/optimizer state from the old packing
to the new one over the real simulated links
(:mod:`repro.elastic.migration`), so elasticity's cost shows up in the
run metrics instead of being teleported for free.
"""

from repro.elastic.migration import (
    MigrationMove,
    layer_ownership,
    plan_migration,
    total_bytes,
)
from repro.elastic.rebind import rebind_graph, relabel_graph
from repro.elastic.replanner import ElasticPlan, ElasticReplanner

__all__ = [
    "ElasticPlan",
    "ElasticReplanner",
    "MigrationMove",
    "layer_ownership",
    "plan_migration",
    "rebind_graph",
    "relabel_graph",
    "total_bytes",
]
