"""Online re-planning: re-run the Harmony scheduler on the survivors.

PR 2's recovery patches device bindings (1:1 rebind onto an idle spare),
which works precisely because the schedule itself never changes.  When a
device is *gone* and no spare exists, patching cannot help: a plan for N
GPUs fundamentally does not fit N-1 (DAPPLE's observation -- pipeline
plans must be re-derived, not patched, when the device set changes).  The
:class:`ElasticReplanner` therefore re-invokes the full Harmony scheduler
-- configuration search plus packing -- on a *reduced* server spec with
only the surviving GPU count, gates the result through the static
analyzer in strict mode (a re-plan executed under fire gets no less
scrutiny than an offline plan), and relabels the logical device bindings
``0..k-1`` onto the actual surviving physical GPU ids.

A DP plan whose minibatch no longer divides the survivor count falls
back to PP on the same survivors -- Harmony's wrap-around pipeline works
for any device count >= 1 -- and the fallback is reported as a mode
switch so the metrics show the run changed shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.common.errors import SchedulingError
from repro.core.types import TaskGraph
from repro.elastic.rebind import relabel_graph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.harmony import Harmony, HarmonyPlan


@dataclass
class ElasticPlan:
    """A verified re-plan bound to the surviving physical devices."""

    #: the scheduler's plan on the reduced (logical-device) server spec
    plan: "HarmonyPlan"
    #: logical device d executes on physical GPU ``survivors[d]``
    survivors: tuple[int, ...]
    #: the executable graph, relabeled onto physical device ids
    graph: TaskGraph
    #: execution mode of the re-plan ("dp" or "pp")
    mode: str
    #: True when the re-plan had to change mode (e.g. DP -> PP fallback)
    mode_switched: bool

    def describe(self) -> str:
        switch = " (mode switch)" if self.mode_switched else ""
        gpus = ",".join(str(d) for d in self.survivors)
        return (
            f"elastic re-plan: {self.mode}{switch} on "
            f"{len(self.survivors)} survivor(s) [gpu {gpus}]"
        )


class ElasticReplanner:
    """Re-plan a Harmony job on a surviving device subset, verified.

    Holds the :class:`~repro.core.harmony.Harmony` driver so re-plans
    reuse its memoized decomposition and profiles (the model did not
    change -- only the machine shrank) and its plan-per-survivor-count
    memo, which keeps repeated escalations cheap.
    """

    def __init__(self, harmony: "Harmony"):
        self.harmony = harmony

    def replan(self, survivors: Sequence[int]) -> ElasticPlan:
        """Produce a verified plan for the given surviving physical GPUs.

        Raises :class:`SchedulingError` when no survivors remain,
        :class:`~repro.common.errors.InfeasibleConfigError` when the
        model cannot fit the reduced machine under any packing, and
        :class:`~repro.common.errors.ScheduleAnalysisError` if the
        re-planned graph fails strict verification on the reduced spec.
        """
        ordered = tuple(sorted(set(survivors)))
        if not ordered:
            raise SchedulingError(
                "elastic re-plan impossible: no surviving devices"
            )
        n_full = self.harmony.server.n_gpus
        for device in ordered:
            if not 0 <= device < n_full:
                raise SchedulingError(
                    f"survivor gpu{device} outside device range [0, {n_full})"
                )
        plan = self.harmony.plan_for_server(len(ordered))
        self._verify(plan)
        mapping = {logical: physical for logical, physical in enumerate(ordered)}
        graph = relabel_graph(plan.graph, mapping, n_devices=n_full)
        return ElasticPlan(
            plan=plan,
            survivors=ordered,
            graph=graph,
            mode=plan.options.mode,
            mode_switched=plan.options.mode != self.harmony.options.mode,
        )

    def _verify(self, plan: "HarmonyPlan") -> None:
        """Strict static verification against the *reduced* server spec."""
        from repro.analysis import analyze

        report = analyze(
            plan.graph,
            server=plan.server,
            options=plan.options.schedule_options(),
            host_state_bytes=self.harmony.host_state_bytes,
            prefetch=plan.options.prefetch,
        )
        report.raise_if_errors()
