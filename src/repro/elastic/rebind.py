"""Device re-binding primitives (late binding, Section 4.3.2).

A Harmony task graph is valid under *any* device assignment: tasks carry a
device *binding*, not an identity, so changing bindings never touches the
schedule's structure (task order, dependencies, move lists).  Two
validation wrappers live here; the graph rewrite itself is
:func:`repro.virt.apply_device_mapping`, shared with the virtual-device
layer (:mod:`repro.virt`) that subsumed this path:

- :func:`rebind_graph` -- the recovery rebind: map each degraded source
  device onto a healthy target, leaving every other binding alone.  P2P
  moves whose endpoints collapse onto one device become LOCAL (the
  transfer disappears).  Targets are validated: re-binding onto another
  degraded device is refused.
- :func:`relabel_graph` -- the elastic relabel: apply an *injective*
  logical->physical device mapping simultaneously to every binding.  Used
  after an elastic re-plan, where the scheduler plans on logical devices
  ``0..k-1`` and the runtime maps them onto the ``k`` surviving physical
  GPUs (which need not be contiguous).  Unlike the recovery rebind, a
  mapping target may equal another mapping source -- ``{1: 2, 2: 3}`` is
  a legal relabel but an illegal rebind.

Kept free of runtime/scheduler imports so both :mod:`repro.faults` and
:mod:`repro.elastic.replanner` can use it without cycles.
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import GpuDegradedError
from repro.core.types import TaskGraph
from repro.virt.devices import apply_device_mapping


def rebind_graph(graph: TaskGraph, mapping: dict[int, int],
                 n_devices: Optional[int] = None) -> TaskGraph:
    """Re-bind every task on ``mapping``'s source devices to its target.

    Late binding makes this legal: the schedule's structure (task order,
    dependencies, move lists) is untouched; only device bindings change.
    P2P moves whose endpoints land on the same device are converted to
    LOCAL.  Raises :class:`GpuDegradedError` if a target device is itself
    a mapping source (i.e. still degraded) and ``ValueError`` on an
    out-of-range target.
    """
    bound = n_devices if n_devices is not None else graph.n_devices
    for src, dst in mapping.items():
        if not 0 <= dst < bound:
            raise ValueError(
                f"rebind target gpu{dst} outside device range [0, {bound})"
            )
        if dst in mapping:
            raise GpuDegradedError(
                f"cannot re-bind gpu{src} onto gpu{dst}: the target is "
                f"itself degraded", entity=f"gpu{dst}",
            )
    return apply_device_mapping(graph, mapping, bound)


def relabel_graph(graph: TaskGraph, mapping: dict[int, int],
                  n_devices: Optional[int] = None) -> TaskGraph:
    """Relabel logical device bindings onto physical devices.

    ``mapping`` is applied *simultaneously* (a permutation-style relabel):
    every source is rewritten to its target in one step, so a target that
    is also a source -- ``{0: 2, 2: 3}`` -- is legal, unlike in
    :func:`rebind_graph`.  The mapping must be injective: two logical
    devices collapsing onto one physical GPU would double its memory
    load, which the plan's capacity fit never allowed for (deliberate
    time-slice binds go through :class:`repro.virt.DeviceBinding`, which
    re-certifies capacity per physical device).

    ``n_devices`` sets the relabeled graph's device range (defaults to
    the input graph's); pass the physical server's GPU count so the
    relabeled graph slots into per-device metric arrays unchanged.
    """
    bound = n_devices if n_devices is not None else graph.n_devices
    targets = list(mapping.values())
    if len(set(targets)) != len(targets):
        raise ValueError(
            f"relabel mapping is not injective: {mapping}"
        )
    for src, dst in mapping.items():
        if not 0 <= dst < bound:
            raise ValueError(
                f"relabel target gpu{dst} outside device range [0, {bound})"
            )
    return apply_device_mapping(graph, mapping, bound)
