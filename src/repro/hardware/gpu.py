"""GPU device model.

A :class:`GpuSpec` carries the two numbers scheduling cares about --
memory capacity and sustained compute throughput -- plus a memory pool
that enforces the capacity during execution.

The default spec models the paper's GTX-1080Ti: 11 GB of GDDR5X and
11.3 TFLOPS fp32 peak.  Real training kernels sustain well below peak;
``efficiency`` folds that in so profiled layer times land in the same
regime as the paper's measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import GpuOutOfMemoryError
from repro.common.units import GiB


@dataclass(frozen=True)
class GpuSpec:
    """Static description of one GPU model."""

    name: str
    memory_bytes: int
    peak_flops: float
    efficiency: float = 0.45

    @property
    def sustained_flops(self) -> float:
        """Throughput a well-tuned dense kernel actually achieves."""
        return self.peak_flops * self.efficiency

    def compute_time(self, flops: float) -> float:
        """Seconds to execute ``flops`` floating-point operations."""
        if flops < 0:
            raise ValueError(f"negative flops: {flops}")
        return flops / self.sustained_flops


GTX_1080TI = GpuSpec(name="GTX-1080Ti", memory_bytes=11 * GiB, peak_flops=11.34e12)


@dataclass
class GpuMemoryPool:
    """Capacity-enforcing byte allocator for one simulated GPU.

    The runtime's "central memory manager" (Section 4.4) does the actual
    placement bookkeeping; this pool is the hard capacity backstop that
    raises :class:`GpuOutOfMemoryError` if a schedule's working set was
    mis-planned.
    """

    capacity: int
    used: int = 0
    high_water: int = field(default=0, repr=False)

    def alloc(self, nbytes: int, what: str = "tensor") -> None:
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        if self.used + nbytes > self.capacity:
            raise GpuOutOfMemoryError(
                f"allocating {nbytes} B for {what} exceeds GPU capacity "
                f"({self.used}/{self.capacity} B in use)"
            )
        self.used += nbytes
        self.high_water = max(self.high_water, self.used)

    def free(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"negative free: {nbytes}")
        if nbytes > self.used:
            raise GpuOutOfMemoryError(
                f"freeing {nbytes} B but only {self.used} B allocated"
            )
        self.used -= nbytes

    @property
    def available(self) -> int:
        return self.capacity - self.used
