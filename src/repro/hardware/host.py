"""Host (CPU) side of the machine: memory pool and optimizer compute.

Harmony keeps all model state pinned in host memory and can offload weight
updates to CPU cores (Section 4.4, "optimizer offload").  ZeRO-Infinity
does the same but with a larger working set; Figure 15 shows it exhausting
host memory at 40 B parameters while Harmony still trains.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import HostOutOfMemoryError
from repro.common.units import GiB


@dataclass(frozen=True)
class HostSpec:
    """CPU sockets and memory of the server."""

    cores: int
    memory_bytes: int
    # Sustained throughput of the vectorized CPU optimizer step, per core.
    # Adam on AVX2 runs around 2-4 GFLOP/s/core for this access pattern.
    optimizer_flops_per_core: float = 3.0e9
    # Aggregate throughput of *pageable* host staging copies (the path
    # IBM-LMS-style on-demand swapping takes): every pageable transfer is
    # a CPU memcpy through DRAM, shared across all GPUs and directions.
    # Pinned, pre-allocated staging (what Harmony's runtime uses) bypasses
    # this and runs at PCIe line rate.
    pageable_copy_bandwidth: float = 6.0e9

    def optimizer_time(self, flops: float, cores_used: int | None = None) -> float:
        """Seconds for a CPU-offloaded optimizer step of ``flops``."""
        cores = self.cores if cores_used is None else min(cores_used, self.cores)
        if cores <= 0:
            raise ValueError("optimizer must use at least one core")
        return flops / (self.optimizer_flops_per_core * cores)


COMMODITY_XEON_18C = HostSpec(cores=18, memory_bytes=374 * GiB)
COMMODITY_XEON_36C = HostSpec(cores=36, memory_bytes=750 * GiB)


class HostMemoryPool:
    """Byte allocator for host memory; raises when the server runs out.

    This is what fails for ZeRO-Infinity at 40 B parameters in Figure 15.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.used = 0
        self.high_water = 0

    def alloc(self, nbytes: int, what: str = "state") -> None:
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        if self.used + nbytes > self.capacity:
            raise HostOutOfMemoryError(
                f"allocating {nbytes} B for {what} exceeds host memory "
                f"({self.used}/{self.capacity} B in use)"
            )
        self.used += nbytes
        self.high_water = max(self.high_water, self.used)

    def free(self, nbytes: int) -> None:
        if nbytes < 0 or nbytes > self.used:
            raise HostOutOfMemoryError(f"bad free of {nbytes} B ({self.used} B in use)")
        self.used -= nbytes

    @property
    def available(self) -> int:
        return self.capacity - self.used
