"""Machine model: GPUs, host memory, PCIe tree interconnect, server presets.

The paper evaluates on commodity ASUS ESC8000-class servers with four or
eight GTX-1080Ti GPUs behind a PCIe 3.0 tree.  This package parameterizes
that machine so experiments can sweep GPU count, memory capacity, and link
topology.
"""

from repro.hardware.gpu import GpuSpec, GTX_1080TI
from repro.hardware.host import HostSpec, HostMemoryPool
from repro.hardware.interconnect import PcieTree
from repro.hardware.server import (
    ServerSpec,
    SimulatedServer,
    four_gpu_commodity_server,
    eight_gpu_commodity_server,
)

__all__ = [
    "GpuSpec",
    "GTX_1080TI",
    "HostSpec",
    "HostMemoryPool",
    "PcieTree",
    "ServerSpec",
    "SimulatedServer",
    "four_gpu_commodity_server",
    "eight_gpu_commodity_server",
]
