"""Server presets and the instantiated simulated server.

:class:`ServerSpec` is the static description users hand to Harmony's
Scheduler (GPU count/type, host memory, topology); :class:`SimulatedServer`
binds that spec to a simulator instance with live links, streams, and
memory pools for the Runtime to execute against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.gpu import GTX_1080TI, GpuMemoryPool, GpuSpec
from repro.hardware.host import (
    COMMODITY_XEON_18C,
    COMMODITY_XEON_36C,
    HostMemoryPool,
    HostSpec,
)
from repro.hardware.interconnect import PcieTree, TopologySpec
from repro.sim.engine import Simulator
from repro.sim.stream import StreamSet


@dataclass(frozen=True)
class ServerSpec:
    """Static machine description consumed by the Scheduler."""

    n_gpus: int
    gpu: GpuSpec = GTX_1080TI
    host: HostSpec = COMMODITY_XEON_18C
    topology: TopologySpec = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.topology is None:
            object.__setattr__(
                self, "topology", TopologySpec(n_gpus=self.n_gpus)
            )
        if self.topology.n_gpus != self.n_gpus:
            raise ValueError(
                f"topology describes {self.topology.n_gpus} GPUs, "
                f"server has {self.n_gpus}"
            )

    @property
    def collective_gpu_memory(self) -> int:
        return self.n_gpus * self.gpu.memory_bytes

    def describe(self) -> str:
        return (
            f"{self.n_gpus}x {self.gpu.name} "
            f"({self.gpu.memory_bytes // 2**30} GiB each), "
            f"{self.host.cores}-core host with "
            f"{self.host.memory_bytes // 2**30} GiB RAM"
        )


def four_gpu_commodity_server() -> ServerSpec:
    """The paper's main testbed: 4x GTX-1080Ti, 18-core Xeon, 374 GB RAM."""
    return ServerSpec(n_gpus=4, gpu=GTX_1080TI, host=COMMODITY_XEON_18C)


def eight_gpu_commodity_server() -> ServerSpec:
    """The scaling testbed of Section 5.7: 8 GPUs, 36 cores, 750 GB RAM."""
    return ServerSpec(
        n_gpus=8,
        gpu=GTX_1080TI,
        host=COMMODITY_XEON_36C,
        topology=TopologySpec(n_gpus=8, gpus_per_switch=4),
    )


class SimulatedServer:
    """Live server: links, per-GPU stream sets, and memory pools.

    One instance per simulated run; the Runtime executes task graphs
    against it and metrics are read back from streams/links afterwards.
    """

    def __init__(self, sim: Simulator, spec: ServerSpec, binding=None):
        # ``binding`` (a repro.virt.DeviceBinding, duck-typed to avoid an
        # import cycle) rescales per-GPU memory pools for heterogeneous
        # binds; None keeps the spec's uniform capacity.
        if binding is not None and binding.n_physical != spec.n_gpus:
            raise ValueError(
                f"binding targets {binding.n_physical} physical devices, "
                f"server has {spec.n_gpus}"
            )
        self.sim = sim
        self.spec = spec
        self.binding = binding
        self.tree = PcieTree(sim, spec.topology)
        self.streams = [
            StreamSet(sim, f"gpu{g}", device=g) for g in range(spec.n_gpus)
        ]
        capacities = (
            binding.device_memory(spec.gpu.memory_bytes)
            if binding is not None
            else [spec.gpu.memory_bytes] * spec.n_gpus
        )
        self.gpu_memory = [
            GpuMemoryPool(capacity=c) for c in capacities
        ]
        self.host_memory = HostMemoryPool(capacity=spec.host.memory_bytes)
        # Shared pageable-staging engine (a host DRAM memcpy lane) that
        # LMS-style on-demand swaps must traverse; pinned transfers skip it.
        from repro.sim.links import Link

        self.pageable_staging = Link(
            sim, "host-staging", spec.host.pageable_copy_bandwidth
        )

    def compute_time(self, flops: float) -> float:
        return self.spec.gpu.compute_time(flops)

    def swap_in_time(self, gpu: int, nbytes: int) -> float:
        """Uncontended host->GPU transfer time (for estimation)."""
        path = self.tree.host_to_gpu(gpu)
        return nbytes / self.tree.min_bandwidth(path)

    def swap_out_time(self, gpu: int, nbytes: int) -> float:
        path = self.tree.gpu_to_host(gpu)
        return nbytes / self.tree.min_bandwidth(path)

    def p2p_time(self, src: int, dst: int, nbytes: int) -> float:
        path = self.tree.gpu_to_gpu(src, dst)
        if not path:
            return 0.0
        return nbytes / self.tree.min_bandwidth(path)
