"""PCIe tree topology (Figure 2a of the paper).

The commodity server wires GPUs under PCIe switches; each GPU has a
dedicated x16 leaf link, switches share an uplink to the host root complex.
With four GPUs behind one uplink the host link is 4:1 oversubscribed --
the bottleneck that throttles data-parallel swapping in Figure 2(b).

Every hop is modeled as a pair of directed :class:`~repro.sim.links.Link`
objects (PCIe is full duplex), so swap-in and swap-out traffic overlap but
same-direction transfers from sibling GPUs contend.

Paths:

- GPU -> host: leaf up-link, then every switch uplink up to the root.
- host -> GPU: the reverse.
- GPU -> GPU (p2p): up-links to the lowest common ancestor switch, then
  down-links; two GPUs under the same switch never touch the host uplink,
  which is why Harmony's p2p transfers sidestep the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.common.errors import SimulationError
from repro.common.units import GB
from repro.sim.engine import Simulator
from repro.sim.links import Link

# PCIe 3.0 x16 is 16 GB/s raw per direction; DMA/protocol overhead caps
# achievable throughput around 80% of that (the usual measured 12-13 GB/s
# for large pinned transfers).
PCIE3_X16_BW = int(0.8 * 16 * GB)  # effective bytes/s, one direction

# The oversubscribed switch uplink of a single-root quad-GPU box delivers
# markedly less than line rate under concurrent multi-GPU load (root-port
# arbitration, DMA-engine sharing): ~8 GB/s aggregate is the commonly
# measured figure on ESC8000-class servers.
PCIE3_SHARED_UPLINK_BW = 8 * GB

# NVLink 2.0 delivers 25 GB/s per direction per link.  The paper's
# footnote 3 notes NVLink "will only enhance Harmony's advantages due to
# p2p transfers"; the optional NVLink mesh below lets us test that claim.
NVLINK2_BW = 25 * GB


@dataclass(frozen=True)
class TopologySpec:
    """Shape of the PCIe tree.

    ``gpus_per_switch`` controls oversubscription: ``n_gpus`` GPUs behind
    ``ceil(n_gpus / gpus_per_switch)`` switches, each switch with one
    uplink of ``uplink_bandwidth``.
    """

    n_gpus: int
    gpus_per_switch: int = 4
    leaf_bandwidth: float = PCIE3_X16_BW
    uplink_bandwidth: float = PCIE3_SHARED_UPLINK_BW
    # > 0 adds a dedicated all-pairs NVLink mesh for GPU-GPU transfers
    # (DGX-style); swaps to host still ride the PCIe tree.
    nvlink_bandwidth: float = 0.0

    def __post_init__(self) -> None:
        if self.n_gpus < 1:
            raise SimulationError("topology needs at least one GPU")
        if self.gpus_per_switch < 1:
            raise SimulationError("gpus_per_switch must be >= 1")
        if self.nvlink_bandwidth < 0:
            raise SimulationError("nvlink bandwidth cannot be negative")

    @property
    def has_nvlink(self) -> bool:
        return self.nvlink_bandwidth > 0

    @property
    def n_switches(self) -> int:
        return -(-self.n_gpus // self.gpus_per_switch)

    def switch_of(self, gpu: int) -> int:
        if not 0 <= gpu < self.n_gpus:
            raise SimulationError(f"gpu index {gpu} out of range")
        return gpu // self.gpus_per_switch


class PcieTree:
    """Instantiated tree: directed links bound to a simulator."""

    def __init__(self, sim: Simulator, spec: TopologySpec):
        self.sim = sim
        self.spec = spec
        self.leaf_up = [
            Link(sim, f"gpu{g}.up", spec.leaf_bandwidth) for g in range(spec.n_gpus)
        ]
        self.leaf_down = [
            Link(sim, f"gpu{g}.down", spec.leaf_bandwidth) for g in range(spec.n_gpus)
        ]
        self.uplink_up = [
            Link(sim, f"sw{s}.up", spec.uplink_bandwidth)
            for s in range(spec.n_switches)
        ]
        self.uplink_down = [
            Link(sim, f"sw{s}.down", spec.uplink_bandwidth)
            for s in range(spec.n_switches)
        ]
        # Directed NVLink mesh: one link per ordered GPU pair.
        self.nvlink: dict[tuple[int, int], Link] = {}
        if spec.has_nvlink:
            for src in range(spec.n_gpus):
                for dst in range(spec.n_gpus):
                    if src != dst:
                        self.nvlink[(src, dst)] = Link(
                            sim, f"nv{src}->{dst}", spec.nvlink_bandwidth
                        )

    def gpu_to_host(self, gpu: int) -> list[Link]:
        switch = self.spec.switch_of(gpu)
        return [self.leaf_up[gpu], self.uplink_up[switch]]

    def host_to_gpu(self, gpu: int) -> list[Link]:
        switch = self.spec.switch_of(gpu)
        return [self.uplink_down[switch], self.leaf_down[gpu]]

    def gpu_to_gpu(self, src: int, dst: int) -> list[Link]:
        """Peer-to-peer path; NVLink when fitted, else the PCIe tree
        (staying below the host when both sit under one switch)."""
        if src == dst:
            return []
        if (src, dst) in self.nvlink:
            return [self.nvlink[(src, dst)]]
        src_switch = self.spec.switch_of(src)
        dst_switch = self.spec.switch_of(dst)
        if src_switch == dst_switch:
            return [self.leaf_up[src], self.leaf_down[dst]]
        return [
            self.leaf_up[src],
            self.uplink_up[src_switch],
            self.uplink_down[dst_switch],
            self.leaf_down[dst],
        ]

    def min_bandwidth(self, path: Sequence[Link]) -> float:
        if not path:
            raise SimulationError("empty path has no bandwidth")
        return min(link.bandwidth for link in path)

    def total_bytes_moved(self) -> int:
        links = self.leaf_up + self.leaf_down + self.uplink_up + self.uplink_down
        return sum(link.bytes_moved for link in links)
