"""Harmony core: Decomposer, Profiler, Scheduler, and the public facade.

The pipeline mirrors Figure 3 of the paper:

1. :mod:`~repro.core.decomposer` extracts a sequential layer graph and
   per-layer executable units from a model.
2. :mod:`~repro.core.profiler` measures each layer across microbatch sizes
   and fits a regression for unsampled sizes.
3. :mod:`~repro.core.search` (Algorithm 1) sweeps training configurations,
   calling :mod:`~repro.core.packing` (Algorithm 2) for layer packs,
   :mod:`~repro.core.taskgraph` (Algorithm 3) for task graphs, and
   :mod:`~repro.core.estimator` for event-driven runtime estimates.
4. :class:`~repro.core.harmony.Harmony` wires it all together and hands the
   winning task graph to :mod:`repro.runtime` for execution.
"""

from repro.core.types import (
    Channel,
    Move,
    Task,
    TaskGraph,
    TaskKind,
    TensorKind,
)
from repro.core.config import Configuration, Pack

__all__ = [
    "Channel",
    "Move",
    "Task",
    "TaskGraph",
    "TaskKind",
    "TensorKind",
    "Configuration",
    "Pack",
]
