"""Task-graph vocabulary: tensors, channels, moves, tasks.

A *task* is Harmony's unit of execution (Section 4.3.2): a layer pack, a
phase (forward / backward / weight update), a group of microbatches, and a
device binding, plus the explicit list of tensors to move in and out and
the channel each rides on.  Baseline schedules compile to the very same
representation, so one Runtime executes everything and metrics are
directly comparable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Optional


class TaskKind(enum.Enum):
    FWD = "forward"
    BWD = "backward"
    UPD = "update"


class TensorKind(enum.Enum):
    """Tensor roles, following Figure 5(a)."""

    W = "weights"
    DW = "gradients"
    X = "input_activation"
    Y = "output_activation"
    DX = "input_gradient"       # gradient w.r.t. the pack's input
    DY = "output_gradient"      # gradient w.r.t. the pack's output
    K = "optimizer_state"
    CKPT = "checkpoint"         # stashed pack-input for recomputation


class Channel(enum.Enum):
    """Transport for a move (Section 4.3.2 lists these four; LOCAL marks
    tensors already resident so no traffic is generated)."""

    SWAP = "cpu_gpu_swap"
    P2P = "peer_to_peer"
    MSG = "message_passing"     # activation/checkpoint state via host
    SHM = "shared_memory"       # model state via host shared memory
    LOCAL = "local"

    @property
    def crosses_pcie(self) -> bool:
        return self is not Channel.LOCAL

    @property
    def via_host(self) -> bool:
        """True if the bytes traverse a CPU-GPU link (count as swap load)."""
        return self in (Channel.SWAP, Channel.MSG, Channel.SHM)


@dataclass(frozen=True)
class Move:
    """One tensor transfer attached to a task (input or output).

    ``src_task`` names the producing task when the data is generated
    within this iteration (p2p activations, stashed checkpoints); the
    Runtime uses it as an event dependency.  ``peer`` is the remote GPU
    for P2P moves.
    """

    tensor: TensorKind
    nbytes: int
    channel: Channel
    peer: Optional[int] = None
    src_task: Optional[int] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"negative move size: {self.nbytes}")
        if self.channel is Channel.P2P and self.peer is None and self.src_task is None:
            raise ValueError(
                "P2P move needs a peer GPU or a source task to derive it from"
            )


@dataclass
class Task:
    """One schedulable unit; see module docstring."""

    tid: int
    kind: TaskKind
    first_layer: int
    last_layer: int
    device: int                     # owning GPU
    microbatches: tuple[int, ...]   # group of microbatch sizes
    on_cpu: bool = False            # True: runs on the host (offloaded UPD)
    fused: bool = False             # BWD that also runs its forward (jit-compute)
    recompute: bool = True          # BWD rematerializes from a checkpoint
    ins: list[Move] = field(default_factory=list)
    outs: list[Move] = field(default_factory=list)
    compute_flops: float = 0.0      # total for the whole group
    recompute_flops: float = 0.0    # rematerialization before backward
    resident_bytes: int = 0         # planned peak working set on the GPU
    label: str = ""

    @property
    def layers(self) -> range:
        return range(self.first_layer, self.last_layer + 1)

    @property
    def n_layers(self) -> int:
        return self.last_layer - self.first_layer + 1

    @property
    def group_samples(self) -> int:
        return sum(self.microbatches)

    @property
    def total_flops(self) -> float:
        return self.compute_flops + self.recompute_flops

    def moves(self) -> Iterator[tuple[str, Move]]:
        for move in self.ins:
            yield "in", move
        for move in self.outs:
            yield "out", move

    def with_device(self, device: int) -> "Task":
        return replace(self, device=device)


@dataclass
class TaskGraph:
    """All tasks of one training iteration, plus device-ordered views.

    ``pageable_swaps`` marks graphs whose host transfers take the
    on-demand LMS path (pageable staging copies through a shared host
    engine) rather than Harmony's pre-allocated pinned buffers.
    """

    mode: str
    n_devices: int
    tasks: list[Task] = field(default_factory=list)
    pageable_swaps: bool = False

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks)

    def __getitem__(self, tid: int) -> Task:
        task = self.tasks[tid]
        if task.tid != tid:
            raise IndexError(f"task at position {tid} has tid {task.tid}")
        return task

    def add(self, task: Task) -> Task:
        if task.tid != len(self.tasks):
            raise ValueError(
                f"task tids must be dense: expected {len(self.tasks)}, "
                f"got {task.tid}"
            )
        self.tasks.append(task)
        return task

    def per_device(self) -> list[list[Task]]:
        """Tasks grouped by owning device, preserving global order.

        CPU-offloaded tasks stay in their owning GPU's runtime process
        (the paper's 1:1 process-per-GPU model).
        """
        buckets: list[list[Task]] = [[] for _ in range(self.n_devices)]
        for task in self.tasks:
            buckets[task.device].append(task)
        return buckets

    def of_kind(self, kind: TaskKind) -> list[Task]:
        return [t for t in self.tasks if t.kind is kind]

    # -- traffic accounting ---------------------------------------------------

    def swap_bytes_by_gpu(self) -> list[tuple[int, int]]:
        """(swap_in, swap_out) bytes per GPU: traffic on host links only."""
        totals = [[0, 0] for _ in range(self.n_devices)]
        for task in self.tasks:
            for direction, move in task.moves():
                if not move.channel.via_host:
                    continue
                if direction == "in":
                    totals[task.device][0] += move.nbytes
                else:
                    totals[task.device][1] += move.nbytes
        return [tuple(pair) for pair in totals]  # type: ignore[return-value]

    def global_swap_bytes(self) -> int:
        return sum(i + o for i, o in self.swap_bytes_by_gpu())

    def p2p_bytes(self) -> int:
        return sum(
            move.nbytes
            for task in self.tasks
            for direction, move in task.moves()
            if direction == "in" and move.channel is Channel.P2P
        )

    def validate(self) -> None:
        """Certify the graph's structural invariants.

        Delegates to the error-severity structural subset of the static
        analyzer (:func:`repro.analysis.verify_graph`): dense tids, device
        bindings, resolvable move sources, stream-aware deadlock freedom,
        and tensor dataflow sanity.  Raises
        :class:`~repro.common.errors.ScheduleAnalysisError` on violation.
        """
        # Imported lazily: repro.analysis consumes these types at module
        # scope, so a top-level import would be circular.
        from repro.analysis import verify_graph

        verify_graph(self)


def total_bytes(moves: Iterable[Move]) -> int:
    return sum(move.nbytes for move in moves)
