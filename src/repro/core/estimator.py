"""Runtime Estimator (the ``epsilon`` of Algorithm 1).

Estimates one iteration's end-to-end time for a candidate task graph by
event-driven simulation over per-device timelines (compute, swap, p2p,
host optimizer lane), at per-microbatch granularity so pipeline overlap is
captured.

It deliberately differs from the full Runtime in two ways -- it uses the
Profiler's *regressed* layer times rather than true kernel times, and it
ignores cross-GPU link contention -- which is why Figure 14 compares its
estimates against actual (fully simulated) runs and finds them close but
not identical.  Being contention-free and allocation-free, it evaluates a
configuration in microseconds, enabling the sweep of Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.profiler import ModelProfiles
from repro.core.taskgraph import mb_dependency
from repro.core.types import Channel, Move, Task, TaskGraph, TaskKind, TensorKind
from repro.graph.layer import Phase
from repro.hardware.server import ServerSpec
from repro.perf import perf_enabled

_PER_TASK_TENSORS = frozenset({TensorKind.W, TensorKind.DW, TensorKind.K})


@dataclass
class _TaskTimes:
    mb_done: list[float]
    done: float
    outs_flushed: float


class RuntimeEstimator:
    """Estimates iteration time for task graphs on a server spec."""

    def __init__(self, profiles: ModelProfiles, server: ServerSpec,
                 prefetch: bool = True):
        self.profiles = profiles
        self.server = server
        self.prefetch = prefetch
        topo = server.topology
        self._swap_bw = min(topo.leaf_bandwidth, topo.uplink_bandwidth)
        self._p2p_bw = topo.leaf_bandwidth
        self._staging_bw = server.host.pageable_copy_bandwidth
        # Shared cross-configuration task-time cache.  One estimator scores
        # every candidate of a configuration search, and candidates share
        # most of their (pack, u, phase) combinations; the per-layer time
        # sums dominate search CPU time (>75% on deep CNNs).  Entries are
        # computed once with the naive left-to-right summation order, so
        # hits are bit-identical to the uncached path.  The cache is tied
        # to the profiles' ``cache_token``: a profile mutation invalidates
        # every entry (see _sync_cache).
        self._cache_enabled = perf_enabled()
        self._time_cache: dict[tuple, float] = {}
        self._dep_maps: dict[tuple, tuple[int, ...]] = {}
        self._profiles_token = profiles.cache_token

    def _sync_cache(self) -> None:
        """Drop cached task times if the underlying profiles changed."""
        token = self.profiles.cache_token
        if token != self._profiles_token:
            self._time_cache.clear()
            self._profiles_token = token

    # -- task timing from regressed profiles -------------------------------------

    def mb_time(self, task: Task, u: int) -> float:
        if task.kind is TaskKind.FWD:
            key = (TaskKind.FWD, task.first_layer, task.last_layer, u, False)
        elif task.kind is TaskKind.BWD:
            key = (TaskKind.BWD, task.first_layer, task.last_layer, u,
                   task.fused or task.recompute)
        else:
            raise ValueError("update tasks timed separately")
        if self._cache_enabled:
            self._sync_cache()
            cached = self._time_cache.get(key)
            if cached is not None:
                return cached
        value = self._mb_time_uncached(task, u)
        if self._cache_enabled:
            self._time_cache[key] = value
        return value

    def _mb_time_uncached(self, task: Task, u: int) -> float:
        layers = task.layers
        if task.kind is TaskKind.FWD:
            return sum(self.profiles[i].time(Phase.FWD, u) for i in layers)
        bwd = sum(self.profiles[i].time(Phase.BWD, u) for i in layers)
        if task.fused or task.recompute:
            bwd += sum(self.profiles[i].time(Phase.FWD, u) for i in layers)
        return bwd

    def update_time(self, task: Task, n_gpus: int) -> float:
        if task.on_cpu:
            cores = max(1, self.server.host.cores // max(1, n_gpus))
            return self.server.host.optimizer_time(task.compute_flops, cores)
        if not self._cache_enabled:
            return sum(self.profiles[i].time(Phase.UPD, 1) for i in task.layers)
        self._sync_cache()
        key = (TaskKind.UPD, task.first_layer, task.last_layer, 1, False)
        cached = self._time_cache.get(key)
        if cached is None:
            cached = self._time_cache[key] = sum(
                self.profiles[i].time(Phase.UPD, 1) for i in task.layers
            )
        return cached

    def _xfer(self, move: Move, nbytes: int) -> float:
        if move.channel is Channel.LOCAL or nbytes == 0:
            return 0.0
        if move.channel is Channel.MSG and move.src_task is not None:
            # Two PCIe hops plus the host staging copy (a relay).
            return nbytes * (2.0 / self._swap_bw + 1.0 / self._staging_bw)
        bw = self._p2p_bw if move.channel is Channel.P2P else self._swap_bw
        return nbytes / bw

    # -- the estimate -----------------------------------------------------------------

    def estimate(self, graph: TaskGraph) -> float:
        n = graph.n_devices
        compute_free = [0.0] * n
        swap_in_free = [0.0] * n
        swap_out_free = [0.0] * n
        p2p_free = [0.0] * n
        cpu_free = [0.0] * n
        prev_compute_done = [0.0] * n

        times: list[_TaskTimes] = []
        finish = 0.0

        for task in graph.tasks:
            d = task.device
            if task.kind is TaskKind.UPD:
                tt = self._estimate_update(task, times, cpu_free, compute_free)
                times.append(tt)
                finish = max(finish, tt.outs_flushed)
                continue

            fetch_floor = 0.0 if self.prefetch else prev_compute_done[d]

            # Per-task state tensors ride the swap-in lane back-to-back.
            state_bytes = 0
            state_dep = 0.0
            for move in task.ins:
                if move.tensor not in _PER_TASK_TENSORS:
                    continue
                if move.src_task is not None:
                    state_dep = max(state_dep, times[move.src_task].outs_flushed)
                if move.channel is not Channel.LOCAL:
                    state_bytes += move.nbytes
            start = max(swap_in_free[d], state_dep, fetch_floor)
            state_ready = start + state_bytes / self._swap_bw
            swap_in_free[d] = state_ready

            # Per-microbatch chunks.
            mbs = task.microbatches
            input_ready = [state_ready] * len(mbs)
            for move in task.ins:
                if move.tensor in _PER_TASK_TENSORS:
                    continue
                chunk = move.nbytes / len(mbs) if mbs else 0.0
                for i in range(len(mbs)):
                    dep = self._chunk_dep(move, task, i, times)
                    if move.channel is Channel.LOCAL:
                        input_ready[i] = max(input_ready[i], dep)
                        continue
                    lane = p2p_free if move.channel is Channel.P2P else swap_in_free
                    begin = max(lane[d], dep, fetch_floor)
                    end = begin + self._xfer(move, int(chunk))
                    lane[d] = end
                    input_ready[i] = max(input_ready[i], end)

            mb_done = []
            for i, u in enumerate(mbs):
                begin = max(compute_free[d], input_ready[i])
                end = begin + self.mb_time(task, u)
                compute_free[d] = end
                mb_done.append(end)
            done = mb_done[-1]
            prev_compute_done[d] = done

            outs_flushed = done
            for move in task.outs:
                if move.channel is Channel.LOCAL or move.nbytes == 0:
                    continue
                if move.tensor in _PER_TASK_TENSORS:
                    begin = max(swap_out_free[d], done)
                    end = begin + self._xfer(move, move.nbytes)
                else:
                    chunk = move.nbytes / len(mbs)
                    end = swap_out_free[d]
                    for i in range(len(mbs)):
                        begin = max(end, mb_done[i])
                        end = begin + self._xfer(move, int(chunk))
                swap_out_free[d] = end
                outs_flushed = max(outs_flushed, end)

            times.append(_TaskTimes(mb_done, done, outs_flushed))
            finish = max(finish, outs_flushed)

        return finish

    def _chunk_dep(self, move: Move, task: Task, mb_index: int,
                   times: list[_TaskTimes]) -> float:
        if move.src_task is None:
            return 0.0
        producer = times[move.src_task]
        if move.channel is Channel.SWAP:
            return producer.outs_flushed
        src_sizes = self._producer_sizes.get(move.src_task)
        if src_sizes is None or sum(src_sizes) != task.group_samples:
            return producer.done
        # Pure function of the two size tuples; the same producer/consumer
        # granularity pair recurs for every microbatch chunk and across
        # candidate graphs, so memoize the map (bit-identical by purity).
        dep_key = (src_sizes, task.microbatches)
        dep_map = self._dep_maps.get(dep_key)
        if dep_map is None:
            dep_map = self._dep_maps[dep_key] = tuple(
                mb_dependency(src_sizes, task.microbatches)
            )
        return producer.mb_done[dep_map[mb_index]]

    def _estimate_update(self, task: Task, times: list[_TaskTimes],
                         cpu_free: list[float], compute_free: list[float]) -> _TaskTimes:
        d = task.device
        dep = 0.0
        for move in task.ins:
            if move.src_task is not None:
                dep = max(dep, times[move.src_task].outs_flushed)
        duration = self.update_time(task, n_gpus=len(cpu_free))
        if task.on_cpu:
            begin = max(cpu_free[d], dep)
            end = begin + duration
            cpu_free[d] = end
        else:
            swap_bytes = sum(
                m.nbytes for m in task.ins if m.channel.via_host
            )
            out_bytes = sum(
                m.nbytes for m in task.outs if m.channel.via_host
            )
            begin = max(compute_free[d], dep + swap_bytes / self._swap_bw)
            end = begin + duration + out_bytes / self._swap_bw
            compute_free[d] = end
        return _TaskTimes([end], end, end)

    # Populated lazily per estimate() call; kept as an attribute so the
    # chunk-dependency helper stays small.
    @property
    def _producer_sizes(self) -> dict[int, tuple[int, ...]]:
        return self.__dict__.setdefault("_producer_sizes_cache", {})

    def prepare(self, graph: TaskGraph) -> None:
        self.__dict__["_producer_sizes_cache"] = {
            task.tid: task.microbatches for task in graph.tasks
        }

    def estimate_graph(self, graph: TaskGraph) -> float:
        """Public entry: estimate with producer-size context prepared."""
        self.prepare(graph)
        try:
            return self.estimate(graph)
        finally:
            self.__dict__["_producer_sizes_cache"] = {}
