"""Harmony's Decomposer (Section 4.1).

Takes a user model, extracts the layer-granularity graph, sequentializes
any branches by relaying tensors (Figure 6), and emits *per-layer
executable units* so each layer can be invoked individually by the
Profiler and the Runtime.  The minibatch decomposition helper lives here
too.

On this substrate a layer's "code" executes against the machine model: it
reports compute time (with deterministic kernel-level noise, standing in
for real kernel variability) and memory footprint for a given phase and
microbatch size.  The Profiler samples these exactly like it would time
real kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import GraphError
from repro.common.rng import spread
from repro.graph.graph import LayerGraph
from repro.graph.layer import LayerSpec, Phase
from repro.graph.sequentialize import sequentialize
from repro.hardware.gpu import GpuSpec
from repro.models.spec import ModelSpec

#: Relative amplitude of simulated kernel-time variability.  Real kernels
#: deviate from the analytic FLOP model mostly by a per-kernel systematic
#: factor (tiling efficiency, launch overhead) plus a small per-shape
#: jitter; this is what makes the Profiler's regression an approximation
#: rather than an identity, as in the paper.
KERNEL_NOISE = 0.03
SHAPE_JITTER = 0.004


def _noise(seed: int, layer: int, phase: Phase, microbatch: int) -> float:
    """Deterministic multiplicative deviation for one kernel invocation.

    Systematic per-(layer, phase) component of up to ``KERNEL_NOISE`` plus
    a per-microbatch-size jitter of up to ``SHAPE_JITTER``.  Keeping the
    systematic part independent of the microbatch size is what lets the
    Profiler's affine regression recover it ("strikingly accurate",
    Section 4.2) while the jitter keeps estimates from being exact.

    Draws come from :mod:`repro.common.rng`, the package-wide seeding
    scheme, so kernel noise, baseline jitter and chaos fault plans all
    hang off one reproducible seed without correlating.
    """
    systematic = spread(seed, layer, phase.value) * KERNEL_NOISE
    jitter = spread(seed, layer, phase.value, microbatch) * SHAPE_JITTER
    return systematic + jitter


@dataclass(frozen=True)
class LayerUnit:
    """Individually executable code for one layer."""

    spec: LayerSpec
    seed: int = 0

    def run_time(self, gpu: GpuSpec, phase: Phase, microbatch: int) -> float:
        """Wall time of running this layer once (the Profiler's stopwatch)."""
        base = gpu.compute_time(self.spec.flops(phase, microbatch))
        return base * (1.0 + _noise(self.seed, self.spec.index, phase, microbatch))

    def memory_bytes(self, phase: Phase, microbatch: int) -> int:
        if phase is Phase.FWD:
            return self.spec.fwd_memory_bytes(microbatch)
        if phase is Phase.BWD:
            return self.spec.bwd_memory_bytes(microbatch)
        # Weight update touches weights, grads and optimizer state; the
        # state multiplier is applied by the caller who knows the optimizer.
        return 2 * self.spec.param_bytes


@dataclass(frozen=True)
class DecomposedModel:
    """Output of the Decomposer: a chain graph plus per-layer units."""

    model: ModelSpec
    graph: LayerGraph          # guaranteed sequential
    units: tuple[LayerUnit, ...]

    @property
    def n_layers(self) -> int:
        return len(self.graph)


class Decomposer:
    """Graph Creator + Code Generator of Figure 3."""

    def __init__(self, seed: int = 0):
        self.seed = seed

    def decompose(self, model: ModelSpec) -> DecomposedModel:
        graph = model.graph
        if not graph.is_chain():
            graph = sequentialize(graph)
        if len(graph) == 0:
            raise GraphError(f"model {model.name!r} has no layers")
        units = tuple(LayerUnit(spec=layer, seed=self.seed) for layer in graph)
        return DecomposedModel(model=model, graph=graph, units=units)


def split_minibatch(minibatch: int, microbatch: int) -> list[int]:
    """Decompose a minibatch into microbatch sizes (Decomposer's data side)."""
    if minibatch < 1 or microbatch < 1:
        raise GraphError(
            f"bad minibatch split: minibatch={minibatch}, microbatch={microbatch}"
        )
    sizes = [microbatch] * (minibatch // microbatch)
    remainder = minibatch % microbatch
    if remainder:
        sizes.append(remainder)
    return sizes
