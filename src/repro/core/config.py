"""Training configurations: the four-tuple the Scheduler searches.

A configuration is ``(U_F, P_F, U_B, P_B)``: forward microbatch size and
layer packs, backward microbatch size and layer packs (Section 4.3.1).
Users specify only the minibatch size; everything else is found by the
Configuration Search Engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.common.errors import SchedulingError


@dataclass(frozen=True, order=True)
class Pack:
    """A contiguous run of layers, inclusive on both ends."""

    first: int
    last: int

    def __post_init__(self) -> None:
        if self.first < 0 or self.last < self.first:
            raise SchedulingError(f"bad pack [{self.first}, {self.last}]")

    @property
    def n_layers(self) -> int:
        return self.last - self.first + 1

    @property
    def layers(self) -> range:
        return range(self.first, self.last + 1)

    def __str__(self) -> str:
        if self.first == self.last:
            return f"L{self.first}"
        return f"L{self.first}-{self.last}"


def validate_packs(packs: Sequence[Pack], n_layers: int) -> None:
    """Packs must partition layers 0..n_layers-1 contiguously, in order."""
    if not packs:
        raise SchedulingError("empty pack list")
    expected_first = 0
    for pack in packs:
        if pack.first != expected_first:
            raise SchedulingError(
                f"pack {pack} does not start at layer {expected_first}; "
                "packs must tile the chain"
            )
        expected_first = pack.last + 1
    if expected_first != n_layers:
        raise SchedulingError(
            f"packs cover layers 0..{expected_first - 1} but the model has "
            f"{n_layers} layers"
        )


def packs_from_boundaries(boundaries: Iterable[int], n_layers: int) -> tuple[Pack, ...]:
    """Build packs from the sorted list of first-layer indices.

    ``boundaries`` must start with 0; e.g. ``[0, 4, 7]`` with 10 layers
    yields packs L0-3, L4-6, L7-9.
    """
    firsts = list(boundaries)
    if not firsts or firsts[0] != 0:
        raise SchedulingError("pack boundaries must start at layer 0")
    packs = []
    for i, first in enumerate(firsts):
        last = (firsts[i + 1] - 1) if i + 1 < len(firsts) else n_layers - 1
        packs.append(Pack(first, last))
    validate_packs(packs, n_layers)
    return tuple(packs)


def even_packs(n_layers: int, n_packs: int) -> tuple[Pack, ...]:
    """Split layers into ``n_packs`` near-equal contiguous packs."""
    if not 1 <= n_packs <= n_layers:
        raise SchedulingError(
            f"cannot split {n_layers} layers into {n_packs} packs"
        )
    base, extra = divmod(n_layers, n_packs)
    packs = []
    first = 0
    for i in range(n_packs):
        size = base + (1 if i < extra else 0)
        packs.append(Pack(first, first + size - 1))
        first += size
    return tuple(packs)


@dataclass(frozen=True)
class Configuration:
    """The four-tuple ``(U_F, P_F, U_B, P_B)``."""

    u_f: int
    packs_f: tuple[Pack, ...]
    u_b: int
    packs_b: tuple[Pack, ...]

    def __post_init__(self) -> None:
        if self.u_f < 1 or self.u_b < 1:
            raise SchedulingError("microbatch sizes must be >= 1")

    def validate(self, n_layers: int) -> None:
        validate_packs(self.packs_f, n_layers)
        validate_packs(self.packs_b, n_layers)

    @property
    def jit_compute_aligned(self) -> bool:
        """True when the last forward pack equals the last backward pack,
        so the first backward task needs no rematerialization (Alg 1)."""
        return self.packs_f[-1] == self.packs_b[-1]

    def describe(self) -> str:
        return (
            f"U_F={self.u_f} |P_F|={len(self.packs_f)} "
            f"U_B={self.u_b} |P_B|={len(self.packs_b)}"
        )

    def pack_table(self) -> str:
        """Table 5-style rendering of the pack lists."""
        fwd = ", ".join(str(p) for p in self.packs_f)
        bwd = ", ".join(str(p) for p in self.packs_b)
        return f"P_F: {fwd}\nP_B: {bwd}"


def microbatch_group(total: int, size: int) -> tuple[int, ...]:
    """Split ``total`` samples into microbatches of ``size`` (last may be
    smaller), e.g. (10, 4) -> (4, 4, 2)."""
    if total < 1 or size < 1:
        raise SchedulingError(f"bad microbatch split: total={total}, size={size}")
    full, rest = divmod(total, size)
    group = (size,) * full
    if rest:
        group += (rest,)
    return group
