"""Harmony's Profiler (Section 4.2).

Runs each layer individually on a single GPU of the deployment type,
sampling a handful of microbatch sizes, and fits a linear regression per
layer/phase so the Scheduler can interpolate characteristics at any
unsampled microbatch size ("strikingly accurate" per the paper, because
layer cost is affine in the microbatch size to first order).

The resulting :class:`ModelProfiles` is the ``phi`` argument of
Algorithms 1 and 2: per-layer time/memory/activation sizes, plus the
pack-level aggregates (footprints and boundary tensor sizes) the packing
algorithm and task-graph generator consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence, TypeVar

import numpy as np

from repro.common.errors import SchedulingError
from repro.core.config import Pack
from repro.core.decomposer import DecomposedModel
from repro.graph.layer import Phase
from repro.hardware.gpu import GpuSpec
from repro.perf import perf_enabled

_T = TypeVar("_T")

DEFAULT_SAMPLE_SIZES = (1, 2, 4, 8, 16, 32, 64)


@dataclass(frozen=True)
class AffineFit:
    """``value(u) = intercept + slope * u``, fitted by least squares."""

    intercept: float
    slope: float

    def __call__(self, u: int) -> float:
        return self.intercept + self.slope * u

    @classmethod
    def fit(cls, xs: Sequence[float], ys: Sequence[float]) -> "AffineFit":
        if len(xs) != len(ys) or not xs:
            raise SchedulingError("regression needs matching non-empty samples")
        if len(xs) == 1:
            return cls(intercept=0.0, slope=ys[0] / xs[0] if xs[0] else 0.0)
        slope, intercept = np.polyfit(np.asarray(xs, float), np.asarray(ys, float), 1)
        return cls(intercept=float(intercept), slope=float(slope))


@dataclass(frozen=True)
class LayerProfile:
    """Regressed per-layer characteristics (time in s, sizes in bytes)."""

    index: int
    name: str
    param_bytes: int
    time_fwd: AffineFit
    time_bwd: AffineFit
    time_upd: float
    mem_fwd: AffineFit
    mem_bwd: AffineFit
    act_in_per_sample: int
    act_out_per_sample: int
    workspace_per_sample: int = 0

    def time(self, phase: Phase, u: int) -> float:
        if phase is Phase.FWD:
            return max(0.0, self.time_fwd(u))
        if phase is Phase.BWD:
            return max(0.0, self.time_bwd(u))
        return self.time_upd

    def memory(self, phase: Phase, u: int) -> int:
        if phase is Phase.FWD:
            return max(0, int(self.mem_fwd(u)))
        if phase is Phase.BWD:
            return max(0, int(self.mem_bwd(u)))
        return 2 * self.param_bytes

    def act_in_bytes(self, u: int) -> int:
        return self.act_in_per_sample * u

    def act_out_bytes(self, u: int) -> int:
        return self.act_out_per_sample * u

    def saved_for_backward_bytes(self, u: int) -> int:
        """What a no-recompute backward must keep from the forward pass:
        the output activation plus intermediate workspace (e.g. attention
        probabilities) -- the tensors autograd saves."""
        return (self.act_out_per_sample + self.workspace_per_sample) * u


class ModelProfiles:
    """The Scheduler's view of a profiled model (``phi``).

    Pack-level aggregates are the packing algorithm's and the graph
    builder's hot path: Algorithm 2 probes ``pack_memory`` for every
    candidate cut at every microbatch size, which naively re-sums the
    per-layer memory list each time (``O(R)`` per probe, ``O(R^3)`` per
    search for deep CNNs).  When the perf subsystem is enabled (default;
    ``REPRO_PERF_DISABLE=1`` turns it off) the aggregates are served from
    memoized per-``(phase, u)`` tables:

    - **integer** aggregates (memory footprints, parameter bytes) come
      from prefix-sum tables -- Python ints, so the prefix difference is
      *exactly* the naive sum, bit for bit;
    - **float** aggregates (pack times, update FLOPs) are memoized whole:
      the cached value was computed once with the very same left-to-right
      summation order the naive code uses, so a hit returns the identical
      bit pattern (prefix differences would NOT be bit-stable for
      floats, which is why they are only used for ints).

    Mutating a profile after construction must go through
    :meth:`replace_layer` (or be followed by :meth:`invalidate_caches`),
    which clears the tables and bumps :attr:`cache_token` so dependent
    caches (the runtime estimator's) drop their entries too.
    """

    def __init__(
        self,
        layers: Sequence[LayerProfile],
        optimizer_slots: int,
        gpu: GpuSpec,
    ):
        self.layers = list(layers)
        self.optimizer_slots = optimizer_slots
        self.gpu = gpu
        self._memo_enabled = perf_enabled()
        self._memo: dict[Any, Any] = {}
        self._cache_token = 0

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> LayerProfile:
        return self.layers[index]

    # -- memoization -----------------------------------------------------------

    @property
    def cache_token(self) -> int:
        """Bumped on every invalidation; dependent caches compare it."""
        return self._cache_token

    def invalidate_caches(self) -> None:
        """Drop every memoized aggregate (after mutating ``layers``)."""
        self._memo.clear()
        self._cache_token += 1

    def replace_layer(self, index: int, profile: LayerProfile) -> None:
        """Swap one layer's profile and invalidate all derived caches."""
        self.layers[index] = profile
        self.invalidate_caches()

    def memo(self, key: Any, compute: Callable[[], _T]) -> _T:
        """Memoize ``compute()`` under ``key`` (no-op when disabled).

        Shared with :mod:`repro.core.packing` for its per-``(phase, u)``
        scratch lists; keys are namespaced by their first element.
        """
        if not self._memo_enabled:
            return compute()
        try:
            return self._memo[key]
        except KeyError:
            value = self._memo[key] = compute()
            return value

    def _mem_prefix(self, phase: Phase, u: int) -> list[int]:
        """Prefix sums of the per-layer memory list (exact: Python ints)."""

        def build() -> list[int]:
            prefix = [0]
            total = 0
            for layer in self.layers:
                total += layer.memory(phase, u)
                prefix.append(total)
            return prefix

        return self.memo(("memp", phase, u), build)

    def _param_prefix(self) -> list[int]:
        def build() -> list[int]:
            prefix = [0]
            total = 0
            for layer in self.layers:
                total += layer.param_bytes
                prefix.append(total)
            return prefix

        return self.memo(("paramp",), build)

    # -- per-layer lists used by Algorithm 2 ---------------------------------

    def time_list(self, phase: Phase, u: int) -> list[float]:
        times = self.memo(
            ("times", phase, u),
            lambda: tuple(layer.time(phase, u) for layer in self.layers),
        )
        return list(times)

    def memory_list(self, phase: Phase, u: int) -> list[int]:
        prefix = self._mem_prefix(phase, u)
        return [prefix[i + 1] - prefix[i] for i in range(len(self.layers))]

    # -- pack-level aggregates -------------------------------------------------

    def pack_param_bytes(self, pack: Pack) -> int:
        if not self._memo_enabled:
            return sum(self.layers[i].param_bytes for i in pack.layers)
        prefix = self._param_prefix()
        return prefix[pack.last + 1] - prefix[pack.first]

    def pack_time(self, phase: Phase, pack: Pack, u: int) -> float:
        return self.memo(
            ("ptime", phase, pack.first, pack.last, u),
            lambda: sum(self.layers[i].time(phase, u) for i in pack.layers),
        )

    def pack_fwd_memory(self, pack: Pack, u: int) -> int:
        """Footprint of a forward task, following Algorithm 2 line 13:
        the *sum* of the per-layer forward memory list over the pack
        (``m[p].Sum()``).  Summing is conservative -- it charges every
        layer's live activations at once -- and is exactly what keeps the
        paper's packs fine-grained enough for the pipeline to balance."""
        if not self._memo_enabled:
            return sum(self.layers[i].memory(Phase.FWD, u) for i in pack.layers)
        prefix = self._mem_prefix(Phase.FWD, u)
        return prefix[pack.last + 1] - prefix[pack.first]

    def pack_bwd_memory(self, pack: Pack, u: int) -> int:
        """Footprint of a backward task: the sum of the per-layer backward
        memory list (weights + grads + recomputed stash + transients per
        layer), per Algorithm 2."""
        if not self._memo_enabled:
            return sum(self.layers[i].memory(Phase.BWD, u) for i in pack.layers)
        prefix = self._mem_prefix(Phase.BWD, u)
        return prefix[pack.last + 1] - prefix[pack.first]

    def pack_memory(self, phase: Phase, pack: Pack, u: int) -> int:
        if phase is Phase.FWD:
            return self.pack_fwd_memory(pack, u)
        if phase is Phase.BWD:
            return self.pack_bwd_memory(pack, u)
        # Per-layer products are ints, so distributing the factor over the
        # parameter prefix sum is exact.
        return (2 + self.optimizer_slots) * self.pack_param_bytes(pack)

    def pack_memory_naive(self, phase: Phase, pack: Pack, u: int) -> int:
        """The original O(pack) summation, kept as the oracle the property
        tests compare the prefix-sum tables against."""
        if phase is Phase.UPD:
            return sum(
                (2 + self.optimizer_slots) * self.layers[i].param_bytes
                for i in pack.layers
            )
        return sum(self.layers[i].memory(phase, u) for i in pack.layers)

    # -- boundary tensors --------------------------------------------------------

    def boundary_in_bytes(self, pack: Pack, u: int) -> int:
        """Size of the pack's input activation for one microbatch."""
        return self.layers[pack.first].act_in_bytes(u)

    def boundary_out_bytes(self, pack: Pack, u: int) -> int:
        return self.layers[pack.last].act_out_bytes(u)

    def pack_optimizer_bytes(self, pack: Pack) -> int:
        return self.pack_param_bytes(pack) * self.optimizer_slots

    def pack_update_flops(self, pack: Pack) -> float:
        """FLOPs of the optimizer step over the pack's parameters."""
        return self.memo(
            ("uflops", pack.first, pack.last),
            lambda: sum(
                10.0 * self.layers[i].param_bytes / 4 for i in pack.layers
            ),
        )

    @property
    def total_param_bytes(self) -> int:
        return sum(layer.param_bytes for layer in self.layers)


class Profiler:
    """Times each layer unit at sampled microbatch sizes, fits regressions.

    ``sample_sizes`` defaults to powers of two up to 64; brute-force
    profiling of every size is impractical (Section 4.2), and the affine
    regression interpolates the rest.
    """

    def __init__(self, gpu: GpuSpec, sample_sizes: Sequence[int] = DEFAULT_SAMPLE_SIZES):
        if not sample_sizes or any(s < 1 for s in sample_sizes):
            raise SchedulingError("profiler sample sizes must be positive")
        self.gpu = gpu
        self.sample_sizes = tuple(sorted(set(sample_sizes)))

    def profile(self, decomposed: DecomposedModel) -> ModelProfiles:
        profiles = []
        for unit in decomposed.units:
            xs = list(self.sample_sizes)
            spec = unit.spec
            profiles.append(
                LayerProfile(
                    index=spec.index,
                    name=spec.name,
                    param_bytes=spec.param_bytes,
                    time_fwd=AffineFit.fit(
                        xs, [unit.run_time(self.gpu, Phase.FWD, u) for u in xs]
                    ),
                    time_bwd=AffineFit.fit(
                        xs, [unit.run_time(self.gpu, Phase.BWD, u) for u in xs]
                    ),
                    time_upd=unit.run_time(self.gpu, Phase.UPD, 1),
                    mem_fwd=AffineFit.fit(
                        xs, [unit.memory_bytes(Phase.FWD, u) for u in xs]
                    ),
                    mem_bwd=AffineFit.fit(
                        xs, [unit.memory_bytes(Phase.BWD, u) for u in xs]
                    ),
                    act_in_per_sample=spec.act_in_bytes_per_sample,
                    act_out_per_sample=spec.act_out_bytes_per_sample,
                    workspace_per_sample=spec.workspace_bytes_per_sample,
                )
            )
        return ModelProfiles(
            profiles,
            optimizer_slots=decomposed.model.optimizer_slots,
            gpu=self.gpu,
        )
