"""The public Harmony facade.

Users hand Harmony a model (by name or spec), a server, and a minibatch
size -- the illusion of a single virtual device with unbounded memory --
and Harmony decomposes, profiles, searches configurations, and executes:

    >>> from repro import Harmony, four_gpu_commodity_server
    >>> h = Harmony("gpt2", four_gpu_commodity_server(), minibatch=16)
    >>> report = h.run()  # doctest: +SKIP
    >>> report.metrics.throughput  # samples/sec  # doctest: +SKIP

``plan()`` runs the Scheduler only (Table 1 reports its timing); ``run()``
executes the planned task graph on the simulated server and returns both
the plan and the measured iteration metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Union

from repro.core.config import Configuration
from repro.core.decomposer import DecomposedModel, Decomposer
from repro.core.estimator import RuntimeEstimator
from repro.core.profiler import ModelProfiles, Profiler
from repro.core.search import (
    ConfigurationSearch,
    Explored,
    SearchResult,
    SearchSettings,
)
from repro.core.taskgraph import HarmonyGraphBuilder, ScheduleOptions
from repro.core.types import TaskGraph
from repro.hardware.server import ServerSpec, SimulatedServer
from repro.models.spec import ModelSpec
from repro.models.zoo import build_model
from repro.runtime.executor import DEFAULT_MAX_STEPS, Executor
from repro.runtime.metrics import RunMetrics
from repro.runtime.timemodel import TrueTimeModel
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class HarmonyOptions:
    """Everything tunable about a Harmony run (defaults match the paper)."""

    mode: str = "pp"                  # "pp" (wrap-around pipeline) or "dp"
    grouping: bool = True
    jit: bool = True
    p2p: bool = True
    offload_optimizer: bool = True
    prefetch: bool = True
    u_fmax: int = 64
    u_bmax: int = 64
    capacity_fraction: float = 0.45
    exhaustive_search: bool = False
    equi_fb: bool = False
    # Configuration-search candidate evaluators: 1 is serial; > 1 fans the
    # candidate estimates over a forked worker pool (bit-identical result,
    # see SearchSettings.workers).
    search_workers: int = 1
    seed: int = 0
    # Static schedule verification before execution: "off" skips it,
    # "warn" prints diagnostics to stderr, "strict" refuses to run a
    # schedule with error-severity findings.
    analyze: str = "off"

    def __post_init__(self) -> None:
        if self.analyze not in ("off", "warn", "strict"):
            raise ValueError(
                f"analyze must be 'off', 'warn' or 'strict', "
                f"got {self.analyze!r}"
            )

    def schedule_options(self) -> ScheduleOptions:
        return ScheduleOptions(
            mode=self.mode,
            grouping=self.grouping,
            jit=self.jit,
            p2p=self.p2p,
            offload_optimizer=self.offload_optimizer,
            prefetch=self.prefetch,
        )

    def search_settings(self) -> SearchSettings:
        return SearchSettings(
            u_fmax=self.u_fmax,
            u_bmax=self.u_bmax,
            capacity_fraction=self.capacity_fraction,
            exhaustive=self.exhaustive_search,
            equi_fb=self.equi_fb,
            workers=self.search_workers,
        )

    def without(self, optimization: str) -> "HarmonyOptions":
        """Turn one optimization off (for the Figure 13 ablations)."""
        known = {
            "grouping": {"grouping": False},
            "jit": {"jit": False},
            "p2p": {"p2p": False},
            "offload_optimizer": {"offload_optimizer": False},
            "prefetch": {"prefetch": False},
        }
        if optimization not in known:
            raise ValueError(
                f"unknown optimization {optimization!r}; "
                f"expected one of {sorted(known)}"
            )
        return replace(self, **known[optimization])


@dataclass
class HarmonyPlan:
    """Output of the Scheduler: everything needed to execute."""

    model: ModelSpec
    server: ServerSpec
    minibatch: int
    options: HarmonyOptions
    decomposed: DecomposedModel
    profiles: ModelProfiles
    search: SearchResult
    graph: TaskGraph

    @property
    def config(self) -> Configuration:
        return self.search.best

    def describe(self) -> str:
        return (
            f"Harmony {self.options.mode.upper()} plan for {self.model.name} "
            f"(minibatch {self.minibatch}) on {self.server.describe()}:\n"
            f"  {self.search.describe()}\n"
            f"  {len(self.graph)} tasks, "
            f"static swap {self.graph.global_swap_bytes() / 2**30:.2f} GiB/iter"
        )


@dataclass
class HarmonyReport:
    """A plan plus the metrics of actually running it."""

    plan: HarmonyPlan
    metrics: RunMetrics

    def describe(self) -> str:
        return self.plan.describe() + "\n" + self.metrics.describe()


class Harmony:
    """End-to-end driver: decompose -> profile -> schedule -> execute."""

    def __init__(
        self,
        model: Union[str, ModelSpec],
        server: ServerSpec,
        minibatch: int,
        options: HarmonyOptions = HarmonyOptions(),
    ):
        self.model = build_model(model) if isinstance(model, str) else model
        self.server = server
        self.minibatch = minibatch
        self.options = options
        self._plan: Optional[HarmonyPlan] = None
        self._plan_options: Optional[HarmonyOptions] = None
        self._plan_server: Optional[ServerSpec] = None
        # Elastic re-plans memoized by (surviving GPU count, mode, search
        # + schedule settings): the logical plan depends only on how many
        # devices survive, never on *which* -- relabeling onto physical
        # ids is the runtime's job.  The settings are part of the key so
        # a re-plan requested after an options override (e.g. an elastic
        # policy tightening the capacity fraction or capping microbatch
        # sizes mid-incident) never reuses a plan searched under the old
        # settings.
        self._subset_plans: dict[tuple, HarmonyPlan] = {}

    @property
    def host_state_bytes(self) -> int:
        """Host-resident state the runtime pins: model state + input batch."""
        return (
            self.model.model_state_bytes
            + self.minibatch * self.model.sample_bytes
        )

    # -- scheduling -------------------------------------------------------------

    def plan(self, config: Optional[Configuration] = None) -> HarmonyPlan:
        """Run Decomposer, Profiler and Scheduler; memoized.

        Passing ``config`` skips the search and plans that configuration
        verbatim (used by the ablation and estimator-accuracy experiments).
        """
        if (self._plan is not None and config is None
                and self._plan_options == self.options
                and self._plan_server == self.server):
            return self._plan
        decomposed = Decomposer(seed=self.options.seed).decompose(self.model)
        profiles = Profiler(self.server.gpu).profile(decomposed)
        schedule_options = self.options.schedule_options()
        builder = HarmonyGraphBuilder(
            profiles, self.server.n_gpus, self.minibatch, schedule_options
        )
        if config is None:
            search = ConfigurationSearch(
                profiles, self.server, self.minibatch, schedule_options,
                self.options.search_settings(),
            ).search()
        else:
            graph = builder.build(config)
            estimator = RuntimeEstimator(profiles, self.server,
                                         prefetch=schedule_options.prefetch)
            estimate = estimator.estimate_graph(graph)
            search = SearchResult(
                best=config, best_estimate=estimate,
                explored=[Explored(config, estimate)],
            )
        graph = builder.build(search.best)
        plan = HarmonyPlan(
            model=self.model,
            server=self.server,
            minibatch=self.minibatch,
            options=self.options,
            decomposed=decomposed,
            profiles=profiles,
            search=search,
            graph=graph,
        )
        if config is None:
            self._plan = plan
            self._plan_options = self.options
            self._plan_server = self.server
        return plan

    # -- elastic re-planning ------------------------------------------------------

    def reduced_server(self, n_gpus: int) -> ServerSpec:
        """The same machine with only ``n_gpus`` GPUs left.

        Per-GPU and host specs are unchanged; the PCIe tree keeps its
        shape (switch fan-out, link bandwidths) with fewer leaves -- the
        surviving devices still sit behind the same class of switches.
        """
        if not 1 <= n_gpus <= self.server.n_gpus:
            raise ValueError(
                f"reduced server needs 1..{self.server.n_gpus} GPUs, "
                f"got {n_gpus}"
            )
        topology = self.server.topology
        return ServerSpec(
            n_gpus=n_gpus,
            gpu=self.server.gpu,
            host=self.server.host,
            topology=replace(topology, n_gpus=n_gpus),
        )

    def plan_for_server(self, n_gpus: int,
                        mode: Optional[str] = None) -> HarmonyPlan:
        """Re-run the Scheduler for a reduced GPU count; memoized.

        This is the online re-planning entry point the elastic runtime
        calls under fire (:class:`repro.elastic.ElasticReplanner`): the
        model's decomposition and profiles are reused from the memoized
        full plan (the model did not change -- the machine shrank), only
        the configuration search and packing run again, against
        :meth:`reduced_server`.  A DP plan whose minibatch cannot divide
        the survivor count falls back to PP on the same survivors.
        """
        from repro.common.errors import InfeasibleConfigError, SchedulingError

        from repro.virt.devices import server_fingerprint

        mode = mode if mode is not None else self.options.mode
        options = replace(self.options, mode=mode)
        # Settings are part of the memo key (regression: an elastic
        # re-plan after a settings override must not reuse a stale plan),
        # and so is the physical server fingerprint (regression: a plan
        # searched against one hardware mix must never be served after
        # the server spec changes, e.g. a rebind onto different GPUs).
        key = (n_gpus, mode, options.search_settings(),
               options.schedule_options(), server_fingerprint(self.server))
        if key in self._subset_plans:
            return self._subset_plans[key]
        if n_gpus == self.server.n_gpus and mode == self.options.mode:
            plan = self.plan()
            self._subset_plans[key] = plan
            return plan
        base = self.plan()
        server = self.reduced_server(n_gpus)
        schedule_options = options.schedule_options()
        try:
            search = ConfigurationSearch(
                base.profiles, server, self.minibatch, schedule_options,
                options.search_settings(),
            ).search()
            builder = HarmonyGraphBuilder(
                base.profiles, n_gpus, self.minibatch, schedule_options
            )
            graph = builder.build(search.best)
        except (InfeasibleConfigError, SchedulingError):
            if mode != "dp":
                raise
            # DP cannot split this minibatch across the survivors; the
            # wrap-around pipeline works for any device count >= 1.
            plan = self.plan_for_server(n_gpus, mode="pp")
            self._subset_plans[key] = plan
            return plan
        plan = HarmonyPlan(
            model=self.model,
            server=server,
            minibatch=self.minibatch,
            options=options,
            decomposed=base.decomposed,
            profiles=base.profiles,
            search=search,
            graph=graph,
        )
        self._subset_plans[key] = plan
        return plan

    # -- binding -----------------------------------------------------------------

    def bind(self, binding: object, plan: Optional[HarmonyPlan] = None,
             verify: bool = True):
        """Map a logical plan onto physical hardware (``repro.virt``).

        ``binding`` is a :class:`repro.virt.DeviceBinding`; the plan's
        device ids are treated as *logical* and rewritten onto the
        binding's physical topology -- identity (bit-identical
        execution), fewer devices (time-slice multiplexing), or a
        heterogeneous FLOPs/memory mix.  The bound graph is re-certified
        by the strict analyzer against per-physical-device memory before
        it is returned (``verify=False`` skips that, for callers that
        re-check themselves).  Returns a :class:`repro.virt.BoundPlan`
        accepted by :meth:`run`.
        """
        from repro.virt.bind import bind as bind_plan

        return bind_plan(plan or self.plan(), binding,  # type: ignore[arg-type]
                         verify=verify)

    # -- execution ---------------------------------------------------------------

    def run(self, plan: Optional[HarmonyPlan] = None,
            iterations: int = 1,
            fault_plan: Optional[object] = None,
            recovery: Optional[object] = None,
            max_steps: Optional[int] = DEFAULT_MAX_STEPS,
            horizon: Optional[float] = None,
            trace: Optional[object] = None,
            binding: Optional[object] = None) -> HarmonyReport:
        """Execute training iterations on a fresh simulated server.

        ``iterations > 1`` runs back-to-back iterations (flush-separated,
        preserving synchronous SGD) and reports per-iteration averages.

        ``fault_plan`` (a :class:`repro.faults.FaultPlan`) turns the run
        into a chaos run: faults are injected per the plan and recovered
        per ``recovery`` (a :class:`repro.faults.RecoveryPolicy`, default
        policy if omitted).  A plan with every fault disabled takes the
        plain path and is bit-identical to no plan at all.  ``max_steps``
        and ``horizon`` bound the simulator watchdog: a schedule that
        stops making progress raises
        :class:`~repro.common.errors.SimulationError` naming the pending
        work instead of spinning forever.

        ``trace`` (a :class:`repro.trace.TraceRecorder`) records the run
        as a structured execution trace; the returned metrics carry the
        derived timeline analytics (``metrics.trace``) and the recorder
        holds the raw events for export.  Recording never consumes
        virtual time: a traced run's schedule is bit-identical to an
        untraced one.

        ``plan`` may be a :class:`repro.virt.BoundPlan` (from
        :meth:`bind`), or ``binding`` a
        :class:`repro.virt.DeviceBinding` applied to the logical plan
        here; either way the run executes the *bound* graph on the
        binding's physical machine -- scaled task times and per-device
        memory pools for heterogeneous mixes, deterministic time-slice
        multiplexing when several logical devices share one physical
        GPU.  An identity binding is bit-identical to no binding at all.
        """
        from repro.virt.bind import BoundPlan
        from repro.virt.timemodel import ScaledTimeModel

        bound: Optional[BoundPlan] = None
        if isinstance(plan, BoundPlan):
            if binding is not None:
                raise ValueError(
                    "pass either a BoundPlan or a binding, not both"
                )
            bound = plan
            plan = bound.plan
        elif binding is not None:
            bound = self.bind(binding, plan=plan)
            plan = bound.plan
        else:
            plan = plan or self.plan()
        exec_spec = bound.server if bound is not None else self.server
        graph = bound.graph if bound is not None else plan.graph
        time_model: object = TrueTimeModel(
            plan.decomposed, exec_spec.gpu, exec_spec.host,
            n_gpus=exec_spec.n_gpus,
        )
        if bound is not None and not bound.binding.topology.is_uniform:
            time_model = ScaledTimeModel(time_model, bound.binding)
        host_state = self.host_state_bytes
        if self.options.analyze != "off" and bound is None:
            # Bound plans were already strictly certified by bind().
            self._analyze(plan, host_state)
        if fault_plan is not None and getattr(fault_plan, "enabled", False):
            # Imported lazily: repro.faults pulls in the runner (and thus
            # this module's dependencies) at package scope.
            from repro.elastic import ElasticReplanner
            from repro.faults.runner import FaultTolerantRunner

            elastic_on = recovery is None or getattr(recovery, "elastic", True)
            if bound is not None and exec_spec.n_gpus != self.server.n_gpus:
                # The elastic replanner plans in the logical universe
                # (this Harmony's server); under a count-changing bind
                # its relabel targets would not match the physical
                # device range, so escalation stops at rebind/restart.
                elastic_on = False
            runner = FaultTolerantRunner(
                exec_spec, time_model, fault_plan,  # type: ignore[arg-type]
                policy=recovery,  # type: ignore[arg-type]
                prefetch=self.options.prefetch,
                host_state_bytes=host_state,
                max_steps=max_steps,
                horizon=horizon,
                replanner=ElasticReplanner(self) if elastic_on else None,
                trace=trace,
                binding=bound.binding if bound is not None else None,
            )
            metrics = runner.run(graph, iterations=iterations)
            self._attach_analytics(metrics, trace, n_devices=graph.n_devices)
            return HarmonyReport(plan=plan, metrics=metrics)
        sim = Simulator()
        sim.trace = trace
        live = SimulatedServer(
            sim, exec_spec,
            binding=bound.binding if bound is not None else None,
        )
        executor = Executor(
            live, time_model,
            prefetch=self.options.prefetch,
            host_state_bytes=host_state,
            max_steps=max_steps,
            horizon=horizon,
        )
        metrics = executor.run(graph, iterations=iterations)
        self._attach_analytics(metrics, trace, n_devices=graph.n_devices)
        return HarmonyReport(plan=plan, metrics=metrics)

    def _attach_analytics(self, metrics: RunMetrics,
                          trace: Optional[object],
                          n_devices: Optional[int] = None) -> None:
        """Fold a recorder's derived timeline analytics into the metrics."""
        if trace is None:
            return
        from repro.trace import analyze_trace

        metrics.trace = analyze_trace(
            trace.events,  # type: ignore[attr-defined]
            n_devices=n_devices if n_devices is not None
            else self.server.n_gpus,
            total_time=trace.extent,  # type: ignore[attr-defined]
            dropped=trace.dropped,  # type: ignore[attr-defined]
        )

    def _analyze(self, plan: HarmonyPlan, host_state: int) -> None:
        """Run the static schedule verifier per ``options.analyze``."""
        from repro.analysis import analyze

        report = analyze(
            plan.graph,
            server=self.server,
            options=self.options.schedule_options(),
            host_state_bytes=host_state,
            host_input_bytes=self.minibatch * self.model.sample_bytes,
            prefetch=self.options.prefetch,
        )
        if self.options.analyze == "strict":
            report.raise_if_errors()
        elif report.diagnostics:
            import sys

            print(report.describe(), file=sys.stderr)
