"""Configuration Search Engine (Algorithm 1).

Sweeps backward microbatch sizes, derives backward packs (Algorithm 2),
then sweeps forward microbatch sizes with forward packs constrained so the
last forward pack equals the last backward pack (jit-compute); every
candidate four-tuple is turned into a task graph (Algorithm 3) and scored
by the Runtime Estimator.  The minimum-estimate configuration wins.

The paper sweeps every integer microbatch size up to ``U_MAX``; by default
we sweep divisors of the minibatch plus powers of two (a documented knob
-- ``exhaustive=True`` restores the full integer sweep), which preserves
the found optima on every model we evaluate while keeping Python-side
search times close to the paper's reported seconds.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import InfeasibleConfigError, SchedulingError
from repro.core.config import Configuration
from repro.core.estimator import RuntimeEstimator
from repro.core.packing import balanced_time_packing
from repro.core.profiler import ModelProfiles
from repro.core.taskgraph import HarmonyGraphBuilder, ScheduleOptions
from repro.graph.layer import Phase
from repro.hardware.server import ServerSpec
from repro.perf import perf_enabled


@dataclass(frozen=True)
class SearchSettings:
    """Knobs of the search engine."""

    u_fmax: int = 64
    u_bmax: int = 64
    # Fraction of physical GPU memory the scheduler plans against; the
    # remainder is headroom for the prefetch double buffer and allocator
    # fragmentation (the Runtime keeps two tasks in flight).
    capacity_fraction: float = 0.45
    exhaustive: bool = False
    # Equi-FB (Table 4): reuse the backward packs and microbatch size for
    # the forward pass instead of searching them independently.
    equi_fb: bool = False
    # Candidate evaluators: 1 evaluates serially in-process; > 1 fans the
    # per-(U, P) candidate graph builds and estimates out over a forked
    # process pool with a deterministic (submission-order) reduce, so the
    # winner is bit-identical to the serial sweep.  Ignored (serial) when
    # REPRO_PERF_DISABLE is set or the platform cannot fork.
    workers: int = 1


@dataclass
class Explored:
    """One evaluated configuration with its estimated iteration time."""

    config: Configuration
    estimate: float


@dataclass
class SearchResult:
    best: Configuration
    best_estimate: float
    explored: list[Explored] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    n_feasible: int = 0
    n_infeasible: int = 0

    def describe(self) -> str:
        return (
            f"best {self.best.describe()} "
            f"(est. {self.best_estimate:.3f}s/iter; "
            f"{self.n_feasible} feasible / {self.n_infeasible} infeasible "
            f"configs in {self.elapsed_seconds:.1f}s)"
        )


def _candidate_sizes(limit: int, total: int, exhaustive: bool) -> list[int]:
    """Microbatch sizes to sweep: all of 1..limit when exhaustive, else
    divisors of the (per-GPU) minibatch plus powers of two."""
    cap = min(limit, total)
    if exhaustive:
        return list(range(1, cap + 1))
    sizes = {u for u in range(1, cap + 1) if total % u == 0}
    u = 1
    while u <= cap:
        sizes.add(u)
        u *= 2
    return sorted(sizes)


class ConfigurationSearch:
    """Algorithm 1, bound to a profiled model and a server."""

    def __init__(
        self,
        profiles: ModelProfiles,
        server: ServerSpec,
        minibatch: int,
        options: ScheduleOptions,
        settings: SearchSettings = SearchSettings(),
    ):
        if minibatch < 1:
            raise SchedulingError("minibatch must be positive")
        self.profiles = profiles
        self.server = server
        self.minibatch = minibatch
        self.options = options
        self.settings = settings
        self.capacity = int(server.gpu.memory_bytes * settings.capacity_fraction)
        self.builder = HarmonyGraphBuilder(
            profiles, server.n_gpus, minibatch, options
        )
        self.estimator = RuntimeEstimator(profiles, server,
                                          prefetch=options.prefetch)

    def _backward_candidates(self, u_b: int):
        """Backward packings to evaluate for one microbatch size.

        The Algorithm 2 default (largest balanced packs) plus, for the
        wrap-around pipeline, the same split rounded up to the next
        multiple of the GPU count -- a finer packing with no leftover-pack
        straggler.  The estimator arbitrates between them.
        """
        candidates = []
        try:
            default = balanced_time_packing(
                Phase.BWD, u_b, self.profiles, self.capacity
            )
            candidates.append(default)
        except InfeasibleConfigError:
            return []
        if self.options.mode == "pp":
            n = self.server.n_gpus
            rounded = -(-len(default) // n) * n
            if rounded != len(default):
                try:
                    candidates.append(balanced_time_packing(
                        Phase.BWD, u_b, self.profiles, self.capacity,
                        min_packs=rounded,
                    ))
                except InfeasibleConfigError:
                    pass
        return candidates

    def _forward_candidates(self, u_f: int, packs_b):
        """Forward packings for one microbatch size, constrained by the
        backward packs (jit-compute tail).  Offers the default plus a
        variant sized so the joint wrap-around list divides evenly over
        the GPUs."""
        if self.settings.equi_fb:
            return [packs_b]
        candidates = []
        try:
            default = balanced_time_packing(
                Phase.FWD, u_f, self.profiles, self.capacity,
                backward_packs=packs_b,
            )
            candidates.append(default)
        except InfeasibleConfigError:
            return []
        if self.options.mode == "pp":
            n = self.server.n_gpus
            # Joint wrap list: forward packs minus the fused tail, plus the
            # backward packs.
            joint = len(default) - 1 + len(packs_b)
            want = len(default) + (-joint) % n
            if want != len(default):
                try:
                    variant = balanced_time_packing(
                        Phase.FWD, u_f, self.profiles, self.capacity,
                        backward_packs=packs_b,
                        min_packs=want - 1,  # the forced tail adds one
                    )
                    if len(variant) == want:
                        candidates.append(variant)
                except InfeasibleConfigError:
                    pass
        return candidates

    def _enumerate_candidates(self) -> list[Configuration]:
        """Lines 1-8 of Algorithm 1: the deduplicated candidate four-tuples,
        in the exact order the original nested sweep visited them.  Packing
        (Algorithm 2) runs here, serially and memoized; only the expensive
        per-candidate graph build + estimate is fanned out."""
        local = self.minibatch
        if self.options.mode == "dp":
            if self.minibatch % self.server.n_gpus:
                raise SchedulingError(
                    "DP minibatch must divide evenly across GPUs"
                )
            local = self.minibatch // self.server.n_gpus

        u_bs = _candidate_sizes(self.settings.u_bmax, local,
                                self.settings.exhaustive)
        u_fs = _candidate_sizes(self.settings.u_fmax, local,
                                self.settings.exhaustive)

        candidates: list[Configuration] = []
        seen: set[tuple] = set()
        for u_b in u_bs:
            for packs_b in self._backward_candidates(u_b):
                forward_candidates = [u_b] if self.settings.equi_fb else u_fs
                for u_f in forward_candidates:
                    for packs_f in self._forward_candidates(u_f, packs_b):
                        key = (u_f, packs_f, u_b, packs_b)
                        if key in seen:
                            continue
                        seen.add(key)
                        candidates.append(Configuration(
                            u_f=u_f, packs_f=packs_f,
                            u_b=u_b, packs_b=packs_b,
                        ))
        return candidates

    def _evaluate_one(self, config: Configuration) -> Optional[float]:
        """Build + estimate one candidate; None when infeasible."""
        try:
            graph = self.builder.build(config)
            return self.estimator.estimate_graph(graph)
        except InfeasibleConfigError:
            return None

    def _evaluate_serial(
        self, candidates: list[Configuration]
    ) -> list[Optional[float]]:
        return [self._evaluate_one(config) for config in candidates]

    def _evaluate_parallel(
        self, candidates: list[Configuration], workers: int
    ) -> list[Optional[float]]:
        """Fan candidate evaluation over a forked process pool.

        Each worker builds its own graph builder + estimator from the
        shared profiles (sent once, at pool init); a candidate's estimate
        is a pure function of (profiles, server, options, candidate), so
        the value computed in a worker is bit-identical to the serial
        path no matter which worker ran it or in what order.  ``map``
        returns results in submission order, so the reduce below is the
        deterministic serial reduce.
        """
        ctx = multiprocessing.get_context("fork")
        chunk = max(1, len(candidates) // (4 * workers))
        with ProcessPoolExecutor(
            max_workers=min(workers, len(candidates)),
            mp_context=ctx,
            initializer=_init_eval_worker,
            initargs=(self.profiles, self.server, self.minibatch,
                      self.options),
        ) as pool:
            return list(pool.map(_eval_candidate, candidates, chunksize=chunk))

    def search(self) -> SearchResult:
        start = time.perf_counter()
        candidates = self._enumerate_candidates()

        workers = self.settings.workers
        use_pool = (
            workers > 1
            and len(candidates) > 1
            and perf_enabled()
            and "fork" in multiprocessing.get_all_start_methods()
        )
        if use_pool:
            estimates = self._evaluate_parallel(candidates, workers)
        else:
            estimates = self._evaluate_serial(candidates)

        # Deterministic reduce in enumeration order: the first strict
        # minimum wins, exactly as the serial sweep picked it.
        best: Optional[Explored] = None
        explored: list[Explored] = []
        infeasible = 0
        for config, estimate in zip(candidates, estimates):
            if estimate is None:
                infeasible += 1
                continue
            entry = Explored(config=config, estimate=estimate)
            explored.append(entry)
            if best is None or estimate < best.estimate:
                best = entry

        if best is None:
            raise InfeasibleConfigError(
                f"no feasible configuration for minibatch {self.minibatch} "
                f"on {self.server.describe()}"
            )
        return SearchResult(
            best=best.config,
            best_estimate=best.estimate,
            explored=explored,
            elapsed_seconds=time.perf_counter() - start,
            n_feasible=len(explored),
            n_infeasible=infeasible,
        )


# -- process-pool plumbing --------------------------------------------------------
#
# Workers rebuild the graph builder and estimator once per process (pool
# initializer) and then evaluate candidates sent over the pipe.  Module-level
# by necessity: ProcessPoolExecutor requires picklable (or fork-inherited)
# callables.

_EVAL_STATE: Optional[tuple[HarmonyGraphBuilder, RuntimeEstimator]] = None


def _init_eval_worker(
    profiles: ModelProfiles,
    server: ServerSpec,
    minibatch: int,
    options: ScheduleOptions,
) -> None:
    global _EVAL_STATE
    builder = HarmonyGraphBuilder(profiles, server.n_gpus, minibatch, options)
    estimator = RuntimeEstimator(profiles, server, prefetch=options.prefetch)
    _EVAL_STATE = (builder, estimator)


def _eval_candidate(config: Configuration) -> Optional[float]:
    assert _EVAL_STATE is not None, "worker used before initialization"
    builder, estimator = _EVAL_STATE
    try:
        graph = builder.build(config)
        return estimator.estimate_graph(graph)
    except InfeasibleConfigError:
        return None
