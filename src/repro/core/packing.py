"""Layer packing (Algorithm 2: Balanced Time Packing).

Given a phase, a microbatch size and the profiled per-layer time/memory
lists, find contiguous layer packs that (a) fit GPU memory and (b) have
near-equal compute time -- avoiding the stragglers that greedy
memory-maximal packing creates (Figure 7).

The search loops over the number of packs ``S`` starting from the memory
lower bound (largest feasible packs first, maximizing average pack size),
splits the layer chain at the balanced time quantiles via binary search on
the prefix-sum of layer times, and returns the first split whose packs all
fit in memory.  Worst-case ``O(R^2)`` as stated in the paper.

Forward packing can be constrained by an existing backward pack list: the
last forward pack is forced equal to the last backward pack (the
jit-compute optimization of Algorithm 1), so the first backward task needs
no rematerialization.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.common.errors import InfeasibleConfigError
from repro.core.config import Pack, packs_from_boundaries, validate_packs
from repro.core.profiler import ModelProfiles
from repro.graph.layer import Phase


def _essential_bytes(profiles: ModelProfiles, phase: Phase, layer: int, u: int) -> int:
    """Irreducible residency a layer contributes to its pack's footprint,
    used only for the pack-count lower bound ``S_min``."""
    params = profiles[layer].param_bytes
    if phase is Phase.FWD:
        return params
    return 2 * params + profiles[layer].act_out_bytes(u)


def _split_packs(times: Sequence[float], n_packs: int) -> Optional[tuple[Pack, ...]]:
    """Split layers into ``n_packs`` contiguous packs of near-equal time.

    Implements lines 7-11 of Algorithm 2: compute the average per-pack
    time ``c``, binary-search the accumulated pack times ``[c, 2c, ...]``
    into the prefix sums of layer times, and cut there.  Returns ``None``
    when cuts collide (a single layer exceeds the quantile step), in which
    case the caller tries more packs.
    """
    n_layers = len(times)
    if n_packs == 1:
        return (Pack(0, n_layers - 1),)
    prefix = np.cumsum(np.asarray(times, dtype=float))
    total = prefix[-1]
    targets = np.arange(1, n_packs) * (total / n_packs)
    cuts = np.searchsorted(prefix, targets, side="left") + 1
    cuts = np.clip(cuts, 1, n_layers - 1)
    boundaries = [0] + sorted(set(int(c) for c in cuts))
    if len(boundaries) != n_packs:
        return None
    boundaries = _refine_boundaries(prefix, boundaries)
    return packs_from_boundaries(boundaries, n_layers)


def _refine_boundaries(prefix: np.ndarray, boundaries: list[int]) -> list[int]:
    """Local search shaving the longest pack: nudge each cut one layer at a
    time while it reduces the maximum pack time.  Quantile cuts land within
    one layer of optimal; this removes that rounding (a straggler pack is a
    straggler *pipeline stage*, so the last layer matters)."""
    n_layers = len(prefix)

    def pack_time(first: int, last_exclusive: int) -> float:
        left = prefix[first - 1] if first > 0 else 0.0
        return float(prefix[last_exclusive - 1] - left)

    improved = True
    while improved:
        improved = False
        for i in range(1, len(boundaries)):
            lo = boundaries[i - 1] + 1
            hi = boundaries[i + 1] - 1 if i + 1 < len(boundaries) else n_layers - 1
            cur = boundaries[i]
            left_first = boundaries[i - 1]
            right_end = boundaries[i + 1] if i + 1 < len(boundaries) else n_layers
            best_cut, best_cost = cur, max(
                pack_time(left_first, cur), pack_time(cur, right_end)
            )
            for cut in (cur - 1, cur + 1):
                if not lo <= cut <= hi:
                    continue
                cost = max(pack_time(left_first, cut), pack_time(cut, right_end))
                if cost < best_cost - 1e-12:
                    best_cut, best_cost = cut, cost
            if best_cut != cur:
                boundaries[i] = best_cut
                improved = True
    return boundaries


def balanced_time_packing(
    phase: Phase,
    u: int,
    profiles: ModelProfiles,
    capacity: int,
    n_layers: Optional[int] = None,
    backward_packs: Optional[Sequence[Pack]] = None,
    min_packs: int = 1,
) -> tuple[Pack, ...]:
    """Algorithm 2.  Returns packs with balanced time and maximal size.

    ``backward_packs`` triggers the forward-packing mode: only the layers
    before the last backward pack are packed, and that last backward pack
    is appended verbatim as the final forward pack (jit-compute).

    ``min_packs`` raises the starting pack count; the search engine uses it
    to also evaluate pack counts rounded to a multiple of the GPU count,
    where the wrap-around pipeline has no leftover-pack straggler.

    The search engine re-requests the same packing many times (every
    forward microbatch size is paired with every backward candidate, but
    the forward split depends only on the forced tail, not on which
    backward sweep asked); results -- including the infeasible outcome --
    are memoized on ``profiles`` under the full argument key, so a repeat
    call is a dict hit.  The returned tuple is immutable and safe to
    share.
    """
    forced_tail = backward_packs[-1] if backward_packs is not None else None
    key = ("btp", phase, u, capacity, n_layers, forced_tail, min_packs)

    def compute() -> tuple[bool, object]:
        try:
            return (True, _balanced_time_packing(
                phase, u, profiles, capacity,
                n_layers=n_layers, forced_tail=forced_tail,
                min_packs=min_packs,
            ))
        except InfeasibleConfigError as exc:
            return (False, exc)

    ok, value = profiles.memo(key, compute)
    if not ok:
        raise value  # type: ignore[misc]
    return value  # type: ignore[return-value]


def _balanced_time_packing(
    phase: Phase,
    u: int,
    profiles: ModelProfiles,
    capacity: int,
    n_layers: Optional[int],
    forced_tail: Optional[Pack],
    min_packs: int,
) -> tuple[Pack, ...]:
    total_layers = len(profiles) if n_layers is None else n_layers

    if forced_tail is not None:
        total_layers = forced_tail.first  # pack only layers before it
        if total_layers == 0:
            return (forced_tail,)

    # Per-layer scratch lists are identical across the many (n_packs,
    # min_packs) probes of one search sweep; serve them from the profile
    # memo (keyed on phase and u) instead of rebuilding them per call.
    times = profiles.time_list(phase, u)[:total_layers]
    essential_total = profiles.memo(
        ("esssum", phase, u, total_layers),
        lambda: sum(
            _essential_bytes(profiles, phase, i, u)
            for i in range(total_layers)
        ),
    )
    s_min = max(min_packs, 1, -(-essential_total // capacity))

    for n_packs in range(s_min, total_layers + 1):
        packs = _split_packs(times, n_packs)
        if packs is None:
            continue
        if all(
            profiles.pack_memory(phase, pack, u) <= capacity for pack in packs
        ):
            if forced_tail is not None:
                packs = packs + (forced_tail,)
                validate_packs(packs, forced_tail.last + 1)
            return packs

    raise InfeasibleConfigError(
        f"no {phase.value} packing fits {capacity} B at microbatch {u}; "
        "even single-layer packs exceed GPU memory"
    )


def greedy_memory_packing(
    phase: Phase,
    u: int,
    profiles: ModelProfiles,
    capacity: int,
) -> tuple[Pack, ...]:
    """The strawman of Figure 7: grow each pack to the memory limit.

    Produces the largest packs that fit, ignoring time balance -- fewer,
    coarser tasks whose unequal runtimes create pipeline stragglers.
    """
    packs: list[Pack] = []
    first = 0
    n_layers = len(profiles)
    while first < n_layers:
        last = first
        while last + 1 < n_layers and (
            profiles.pack_memory(phase, Pack(first, last + 1), u) <= capacity
        ):
            last += 1
        if profiles.pack_memory(phase, Pack(first, last), u) > capacity:
            raise InfeasibleConfigError(
                f"layer {first} alone exceeds capacity at microbatch {u}"
            )
        packs.append(Pack(first, last))
        first = last + 1
    return tuple(packs)


def pack_imbalance(profiles: ModelProfiles, phase: Phase, packs: Sequence[Pack], u: int) -> float:
    """Max/mean pack-time ratio; 1.0 is perfectly balanced."""
    times = [profiles.pack_time(phase, pack, u) for pack in packs]
    mean = sum(times) / len(times)
    if mean == 0:
        return 1.0
    return max(times) / mean
