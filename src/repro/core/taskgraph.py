"""Task graph generation (Algorithm 3) for Harmony DP and Harmony PP.

Given a configuration four-tuple, this module unrolls one training
iteration into an explicit task graph: forward tasks for ``P_F``, backward
plus jit-update tasks for ``reverse(P_B)``, with the wrap-around
round-robin device binding ``pack i -> GPU (i mod N)`` and every tensor
move (weights in, activations p2p, checkpoints stashed, gradients out)
spelled out per Figure 5(a).

Each of Harmony's optimizations is an explicit switch so the Figure 13
ablations can turn them off one at a time:

- ``grouping``   -- input-batch grouping: one task runs all microbatches
  back-to-back so pack state is swapped once per task, not once per
  microbatch.  Off: one task per (pack, microbatch), each re-swapping
  the pack's weights.
- ``jit``        -- just-in-time scheduling: weight update fused right
  after each backward task, and the last forward pack fused into the
  first backward task (jit-compute), avoiding its checkpoint stash and
  rematerialization.  Off: updates run at the end of the iteration and
  the last pack is treated like every other.
- ``p2p``        -- adjacent-task activations ride GPU-GPU links; off they
  bounce through host memory (message passing).
- ``offload_optimizer`` -- weight update executes on the CPU against
  host-resident state, so optimizer state never crosses PCIe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import SchedulingError
from repro.core.config import Configuration, Pack, microbatch_group
from repro.core.profiler import ModelProfiles
from repro.core.types import Channel, Move, Task, TaskGraph, TaskKind, TensorKind


@dataclass(frozen=True)
class ScheduleOptions:
    """Mode plus the optimization switches (defaults: everything on)."""

    mode: str = "pp"                   # "pp" (wrap-around pipeline) or "dp"
    grouping: bool = True
    jit: bool = True
    p2p: bool = True
    offload_optimizer: bool = True
    prefetch: bool = True              # consumed by the Runtime
    # Fraction of GPU memory the DP planner may devote to keeping a whole
    # local batch's boundary activation resident between consecutive packs
    # before spilling it to host.
    resident_boundary_frac: float = 0.25

    def __post_init__(self) -> None:
        if self.mode not in ("pp", "dp"):
            raise SchedulingError(f"unknown Harmony mode {self.mode!r}")


@dataclass(frozen=True)
class _Producers:
    """Who produced the current chain-head activation: the task (or, with
    grouping off, the per-microbatch tasks) and their microbatch sizes."""

    tids: tuple[int, ...]
    sizes: tuple[int, ...]  # one entry per task: that task's sample count

    def covering(self, first_sample: int, last_sample: int) -> int:
        """The producer task whose completion covers samples up to
        ``last_sample`` (exclusive)."""
        produced = 0
        for tid, size in zip(self.tids, self.sizes):
            produced += size
            if produced >= last_sample:
                return tid
        raise SchedulingError(
            f"producers cover only {produced} samples, need {last_sample}"
        )


def mb_dependency(producer_sizes: tuple[int, ...], consumer_sizes: tuple[int, ...]) -> list[int]:
    """For each consumer microbatch, the producer microbatch index whose
    completion makes the consumer's samples fully available.

    Used by the Runtime where forward (``U_F``) and backward (``U_B``)
    granularities meet inside a grouped task pair.
    """
    if sum(producer_sizes) != sum(consumer_sizes):
        raise SchedulingError(
            f"producer covers {sum(producer_sizes)} samples, consumer "
            f"{sum(consumer_sizes)}"
        )
    deps = []
    produced = 0
    producer_idx = -1
    needed = 0
    for size in consumer_sizes:
        needed += size
        while produced < needed:
            producer_idx += 1
            produced += producer_sizes[producer_idx]
        deps.append(producer_idx)
    return deps


class HarmonyGraphBuilder:
    """Generates the task graph for one iteration (the ``rho`` of Alg 1)."""

    def __init__(
        self,
        profiles: ModelProfiles,
        n_gpus: int,
        minibatch: int,
        options: ScheduleOptions,
    ):
        if n_gpus < 1:
            raise SchedulingError("need at least one GPU")
        if minibatch < 1:
            raise SchedulingError("minibatch must be positive")
        self.profiles = profiles
        self.n_gpus = n_gpus
        self.minibatch = minibatch
        self.options = options

    # -- public entry ----------------------------------------------------------

    def build(self, config: Configuration) -> TaskGraph:
        config.validate(len(self.profiles))
        if self.options.mode == "pp":
            graph = self._build_pp(config)
        else:
            graph = self._build_dp(config)
        self._graph = None
        return graph

    # -- shared emission helpers -------------------------------------------------

    def _act_channel(self) -> Channel:
        """Channel for adjacent-task activations (p2p unless ablated)."""
        return Channel.P2P if self.options.p2p else Channel.MSG

    def _emit_pass(
        self,
        graph: TaskGraph,
        kind: TaskKind,
        pack: Pack,
        device: int,
        total_samples: int,
        u: int,
        label: str,
        fused: bool = False,
    ) -> list[Task]:
        """Create the task(s) running ``pack`` over ``total_samples``.

        One grouped task normally; one singleton task per microbatch when
        input-batch grouping is ablated.
        """
        sizes = microbatch_group(total_samples, u)
        groups = [sizes] if self.options.grouping else [(s,) for s in sizes]
        tasks = []
        for group in groups:
            tasks.append(graph.add(Task(
                tid=len(graph.tasks),
                kind=kind,
                first_layer=pack.first,
                last_layer=pack.last,
                device=device,
                microbatches=group,
                fused=fused,
                label=label,
            )))
        return tasks

    def _link_chain(
        self,
        tasks: list[Task],
        producers: Optional[_Producers],
        tensor: TensorKind,
        bytes_per_sample: int,
        channel: Channel,
        label: str,
    ) -> None:
        """Attach the chain-head activation in-move to each consumer task,
        resolving which producer task covers its samples.

        Host-routed chains (message passing: the p2p ablation, or a DP
        boundary spilled to host) are executed by the Runtime as a two-hop
        relay -- producer GPU to host staging to consumer GPU -- so the
        activation crosses PCIe twice and pays the host copy.
        """
        offset = 0
        for task in tasks:
            samples = task.group_samples
            src = None
            if producers is not None:
                src = producers.covering(offset, offset + samples)
            task.ins.append(Move(
                tensor=tensor,
                nbytes=bytes_per_sample * samples,
                channel=channel,
                src_task=src,
                label=label,
            ))
            offset += samples

    @staticmethod
    def _as_producers(tasks: list[Task]) -> _Producers:
        return _Producers(
            tids=tuple(t.tid for t in tasks),
            sizes=tuple(t.group_samples for t in tasks),
        )

    # -- Harmony PP --------------------------------------------------------------

    def _build_pp(self, config: Configuration) -> TaskGraph:
        opts = self.options
        graph = TaskGraph(mode="harmony-pp", n_devices=self.n_gpus)
        self._graph = graph

        fuse_last = opts.jit and config.jit_compute_aligned
        fwd_packs = list(config.packs_f[:-1] if fuse_last else config.packs_f)
        bwd_packs = list(config.packs_b)
        bwd_starts = {pack.first for pack in bwd_packs}

        wrap = 0  # wrap-around device index, advances once per pack
        stash_by_boundary: dict[int, _Producers] = {}
        prev_act: Optional[_Producers] = None

        for pack in fwd_packs:
            tasks = self._emit_pass(
                graph, TaskKind.FWD, pack, wrap % self.n_gpus,
                self.minibatch, config.u_f, f"F{pack}",
            )
            wrap += 1
            self._attach_fwd_moves(tasks, pack, bwd_starts, prev_act,
                                   chain_channel=self._act_channel())
            for boundary in self._stash_boundaries(pack, bwd_starts):
                stash_by_boundary[boundary] = self._as_producers(tasks)
            prev_act = self._as_producers(tasks)

        prev_bwd: Optional[_Producers] = None
        update_specs: list[tuple[Pack, int, int]] = []  # (pack, src_bwd, device)
        for pos, pack in enumerate(reversed(bwd_packs)):
            fused = fuse_last and pos == 0
            tasks = self._emit_pass(
                graph, TaskKind.BWD, pack, wrap % self.n_gpus,
                self.minibatch, config.u_b, ("FB" if fused else "B") + str(pack),
                fused=fused,
            )
            wrap += 1
            self._attach_bwd_moves(
                tasks, pack, fused, prev_act, prev_bwd, stash_by_boundary,
                chain_channel=self._act_channel(),
            )
            prev_bwd = self._as_producers(tasks)
            update_specs.append((pack, tasks[-1].tid, tasks[-1].device))
            if opts.jit:
                self._add_update_task(graph, pack, src_bwd=tasks[-1].tid,
                                      device=tasks[-1].device)
        if not opts.jit:
            for pack, src_bwd, device in update_specs:
                self._add_update_task(graph, pack, src_bwd=src_bwd, device=device)
        graph.validate()
        return graph

    # -- Harmony DP --------------------------------------------------------------

    def _build_dp(self, config: Configuration) -> TaskGraph:
        opts = self.options
        if self.minibatch % self.n_gpus != 0:
            raise SchedulingError(
                f"DP needs the minibatch ({self.minibatch}) divisible by the "
                f"GPU count ({self.n_gpus})"
            )
        share = self.minibatch // self.n_gpus
        graph = TaskGraph(mode="harmony-dp", n_devices=self.n_gpus)
        self._graph = graph

        fuse_last = opts.jit and config.jit_compute_aligned
        fwd_packs = list(config.packs_f[:-1] if fuse_last else config.packs_f)
        bwd_packs = list(config.packs_b)
        bwd_starts = {pack.first for pack in bwd_packs}
        budget = int(self.profiles.gpu.memory_bytes * opts.resident_boundary_frac)

        bwd_tail: dict[tuple[int, int], list[int]] = {}  # (gpu, pack pos) -> tid
        for gpu in range(self.n_gpus):
            stash_by_boundary: dict[int, _Producers] = {}
            prev_act: Optional[_Producers] = None
            prev_spilled = False
            for pack in fwd_packs:
                spill = self.profiles.boundary_out_bytes(pack, 1) * share > budget
                tasks = self._emit_pass(
                    graph, TaskKind.FWD, pack, gpu, share, config.u_f,
                    f"F{pack}@g{gpu}",
                )
                chain = Channel.MSG if prev_spilled else Channel.LOCAL
                self._attach_fwd_moves(tasks, pack, bwd_starts, prev_act,
                                       chain_channel=chain)
                for boundary in self._stash_boundaries(pack, bwd_starts):
                    stash_by_boundary[boundary] = self._as_producers(tasks)
                prev_act = self._as_producers(tasks)
                prev_spilled = spill

            prev_bwd: Optional[_Producers] = None
            for pos, pack in enumerate(reversed(bwd_packs)):
                fused = fuse_last and pos == 0
                tasks = self._emit_pass(
                    graph, TaskKind.BWD, pack, gpu, share, config.u_b,
                    ("FB" if fused else "B") + f"{pack}@g{gpu}",
                    fused=fused,
                )
                fused_chain = Channel.MSG if prev_spilled else Channel.LOCAL
                self._attach_bwd_moves(
                    tasks, pack, fused, prev_act, prev_bwd, stash_by_boundary,
                    chain_channel=Channel.LOCAL, fused_channel=fused_chain,
                )
                prev_bwd = self._as_producers(tasks)
                bwd_tail[(gpu, pos)] = tasks[-1].tid

        # One (reduced) weight update per pack, spread across runtimes.
        for pos, pack in enumerate(reversed(bwd_packs)):
            deps = [bwd_tail[(g, pos)] for g in range(self.n_gpus)]
            self._add_update_task(
                graph, pack, src_bwd=deps[-1], device=pos % self.n_gpus,
                extra_deps=deps[:-1],
            )
        graph.validate()
        return graph

    # -- move attachment -----------------------------------------------------------

    def _stash_boundaries(self, pack: Pack, bwd_starts: set[int]) -> list[int]:
        """Backward-pack boundaries inside ``pack`` whose input activation
        the forward pass must checkpoint (layer 0's input is the host-held
        input data and needs no stash)."""
        return [
            b for b in sorted(bwd_starts)
            if b != 0 and pack.first <= b <= pack.last
        ]

    def _attach_fwd_moves(
        self,
        tasks: list[Task],
        pack: Pack,
        bwd_starts: set[int],
        prev_act: Optional[_Producers],
        chain_channel: Channel,
    ) -> None:
        profiles = self.profiles
        for task in tasks:
            task.ins.append(Move(
                tensor=TensorKind.W,
                nbytes=profiles.pack_param_bytes(pack),
                channel=Channel.SHM,
                label=f"W{pack}",
            ))
        in_per_sample = profiles.boundary_in_bytes(pack, 1)
        if pack.first == 0:
            for task in tasks:
                task.ins.append(Move(
                    tensor=TensorKind.X,
                    nbytes=in_per_sample * task.group_samples,
                    channel=Channel.SWAP,
                    label="input",
                ))
        else:
            self._link_chain(tasks, prev_act, TensorKind.X, in_per_sample,
                             chain_channel, f"X{pack}")
        for boundary in self._stash_boundaries(pack, bwd_starts):
            per_sample = profiles[boundary].act_in_bytes(1)
            for task in tasks:
                task.outs.append(Move(
                    tensor=TensorKind.CKPT,
                    nbytes=per_sample * task.group_samples,
                    channel=Channel.MSG,
                    label=f"ckpt@L{boundary}",
                ))
        for task in tasks:
            task.resident_bytes = profiles.pack_fwd_memory(
                pack, max(task.microbatches)
            )

    def _attach_bwd_moves(
        self,
        tasks: list[Task],
        pack: Pack,
        fused: bool,
        prev_act: Optional[_Producers],
        prev_bwd: Optional[_Producers],
        stash_by_boundary: dict[int, _Producers],
        chain_channel: Channel,
        fused_channel: Optional[Channel] = None,
    ) -> None:
        profiles = self.profiles
        for task in tasks:
            task.ins.append(Move(
                tensor=TensorKind.W,
                nbytes=profiles.pack_param_bytes(pack),
                channel=Channel.SHM,
                label=f"W{pack}",
            ))
        in_per_sample = profiles.boundary_in_bytes(pack, 1)
        out_per_sample = profiles.boundary_out_bytes(pack, 1)

        if fused:
            # jit-compute: runs forward+backward; input is the previous
            # forward pack's output (or the host dataloader when the fused
            # pack is the whole model).
            if pack.first == 0 or prev_act is None:
                for task in tasks:
                    task.ins.append(Move(
                        tensor=TensorKind.X,
                        nbytes=in_per_sample * task.group_samples,
                        channel=Channel.SWAP,
                        label="input",
                    ))
            else:
                self._link_chain(
                    tasks, prev_act, TensorKind.X, in_per_sample,
                    fused_channel if fused_channel is not None else chain_channel,
                    f"X{pack}",
                )
        else:
            stash = stash_by_boundary.get(pack.first)
            self._link_chain(tasks, stash, TensorKind.CKPT, in_per_sample,
                             Channel.SWAP, f"ckpt{pack}")
            if prev_bwd is not None:
                self._link_chain(tasks, prev_bwd, TensorKind.DY, out_per_sample,
                                 chain_channel, f"dY{pack}")

        # Gradients leave for the host optimizer (or for the late update
        # when jit is off); with a GPU-side jit update they stay resident.
        if self.options.offload_optimizer or not self.options.jit:
            for task in tasks:
                task.outs.append(Move(
                    tensor=TensorKind.DW,
                    nbytes=profiles.pack_param_bytes(pack),
                    channel=Channel.SWAP,
                    label=f"dW{pack}",
                ))
        for task in tasks:
            task.resident_bytes = profiles.pack_bwd_memory(
                pack, max(task.microbatches)
            )

    def _add_update_task(
        self,
        graph: TaskGraph,
        pack: Pack,
        src_bwd: int,
        device: int,
        extra_deps: Optional[list[int]] = None,
    ) -> None:
        opts = self.options
        profiles = self.profiles
        on_cpu = opts.offload_optimizer
        task = Task(
            tid=len(graph.tasks),
            kind=TaskKind.UPD,
            first_layer=pack.first,
            last_layer=pack.last,
            device=device,
            microbatches=(1,),
            on_cpu=on_cpu,
            compute_flops=profiles.pack_update_flops(pack),
            label=f"U{pack}",
        )
        for dep in [src_bwd] + list(extra_deps or []):
            task.ins.append(Move(
                tensor=TensorKind.DW, nbytes=0, channel=Channel.LOCAL,
                src_task=dep, label=f"dep:b{dep}",
            ))
        if not on_cpu:
            if not opts.jit:
                # Weights and gradients were evicted since backward; the
                # late update must swap everything back in (the paper's
                # "unnecessary swaps").
                task.ins.append(Move(
                    tensor=TensorKind.W,
                    nbytes=profiles.pack_param_bytes(pack),
                    channel=Channel.SHM, label=f"W{pack}",
                ))
                task.ins.append(Move(
                    tensor=TensorKind.DW,
                    nbytes=profiles.pack_param_bytes(pack),
                    channel=Channel.SWAP, src_task=src_bwd, label=f"dW{pack}",
                ))
            task.ins.append(Move(
                tensor=TensorKind.K,
                nbytes=profiles.pack_optimizer_bytes(pack),
                channel=Channel.SWAP, label=f"K{pack}",
            ))
            task.outs.append(Move(
                tensor=TensorKind.W,
                nbytes=profiles.pack_param_bytes(pack),
                channel=Channel.SWAP, label=f"W'{pack}",
            ))
            task.outs.append(Move(
                tensor=TensorKind.K,
                nbytes=profiles.pack_optimizer_bytes(pack),
                channel=Channel.SWAP, label=f"K'{pack}",
            ))
            task.resident_bytes = (
                (2 + profiles.optimizer_slots) * profiles.pack_param_bytes(pack)
            )
        graph.add(task)
