"""Reproduction of *Harmony* (VLDB 2022).

Harmony trains DNN models whose memory footprint exceeds the collective GPU
memory of a commodity multi-GPU server.  This package reproduces the full
system on a discrete-event simulated server substrate:

- :mod:`repro.sim` -- discrete-event engine with CUDA-stream/event analogs.
- :mod:`repro.hardware` -- machine model (GPUs, PCIe tree, host memory).
- :mod:`repro.graph` / :mod:`repro.models` -- layer graphs and the model zoo.
- :mod:`repro.core` -- Harmony itself: Decomposer, Profiler, Scheduler
  (configuration search, balanced-time packing, task-graph generation,
  runtime estimation) and the public :class:`~repro.core.harmony.Harmony`
  facade.
- :mod:`repro.runtime` -- executes task graphs on the simulated server.
- :mod:`repro.baselines` -- DP Swap, GPipe Swap(+R), PipeDream-2BW Swap(+R)
  and a ZeRO-Infinity analog.
- :mod:`repro.numeric` -- a small float64 autograd engine used to validate
  that Harmony's schedules preserve synchronous-SGD semantics.
- :mod:`repro.theory` -- the NP-hardness reduction of Appendix A.
- :mod:`repro.experiments` -- one module per paper table/figure.
"""

from repro.core.harmony import Harmony, HarmonyOptions, HarmonyReport
from repro.hardware.server import (
    ServerSpec,
    four_gpu_commodity_server,
    eight_gpu_commodity_server,
)
from repro.models.zoo import build_model, available_models

__version__ = "1.0.0"

__all__ = [
    "Harmony",
    "HarmonyOptions",
    "HarmonyReport",
    "ServerSpec",
    "four_gpu_commodity_server",
    "eight_gpu_commodity_server",
    "build_model",
    "available_models",
]
