"""Exception hierarchy for the reproduction package.

Every error raised by the package derives from :class:`ReproError` so
applications can catch package failures with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GpuOutOfMemoryError(ReproError):
    """A (simulated) GPU allocation exceeded the device's memory capacity."""


class HostOutOfMemoryError(ReproError):
    """The host (CPU) memory pool could not satisfy an allocation.

    Raised e.g. when ZeRO-Infinity's working set exceeds the server's CPU
    memory (Figure 15 of the paper).
    """


class InfeasibleConfigError(ReproError):
    """A training configuration cannot fit the machine under any packing."""


class GraphError(ReproError):
    """Malformed layer graph (cycles, dangling branches, bad indices)."""


class SchedulingError(ReproError):
    """The scheduler produced or was given an inconsistent task graph."""


class ScheduleAnalysisError(SchedulingError):
    """The static schedule analyzer rejected a task graph.

    Raised by :func:`repro.analysis.check` (and by
    :meth:`~repro.core.types.TaskGraph.validate`, which delegates to the
    analyzer's error-severity subset).  Subclasses
    :class:`SchedulingError` so callers that guarded against malformed
    graphs before the analyzer existed keep working.
    """


class SimulationError(ReproError):
    """Internal discrete-event simulation invariant violated.

    Also raised by the simulator watchdog (step budget / virtual-time
    horizon exceeded) -- a leaked process surfaces as a typed error
    naming the pending work, never as an infinite loop.
    """


class FaultError(ReproError):
    """Base class for injected faults surfaced to the runtime.

    ``entity`` names the faulted schedule entity with the same
    ``t<tid>`` / ``gpu<d>.<stream>`` identifier scheme the static
    analyzer and the runtime's deadlock reports use, so chaos-run
    failures line up with every other diagnostic in the system.
    """

    def __init__(self, message: str, entity: str = ""):
        super().__init__(message)
        self.entity = entity


class TransferFaultError(FaultError):
    """A swap/p2p transfer attempt failed in flight (transient by default;
    the runtime's retry/fallback policy decides whether it stays that way)."""


class TaskCrashError(FaultError):
    """A task's compute attempt crashed (spurious kernel/process failure)."""


class GpuDegradedError(FaultError):
    """A GPU is persistently degraded beyond the recovery policy's
    tolerance; its tasks should be re-bound to a healthy device."""


class GpuLostError(FaultError):
    """A GPU permanently died (hardware loss, not a slowdown).

    Never retryable within an iteration attempt: the device is gone for
    the rest of the run, so recovery means re-binding its tasks to a
    spare or, when no spare exists, re-planning the whole schedule on
    the surviving device subset (:mod:`repro.elastic`)."""


class UnrecoveredFaultError(FaultError):
    """An injected fault exhausted every recovery policy (retries,
    fallback, restarts) and the run cannot make progress."""


class ServerLostError(FaultError):
    """A whole server permanently crashed (the cluster-level analog of
    :class:`GpuLostError`).  Recovery means re-planning the pipeline on
    the surviving servers and restoring the lost stage's state from its
    replica (:mod:`repro.cluster`)."""


class NetworkPartitionError(FaultError):
    """A cross-server transfer was attempted while its endpoints sit in
    disconnected partition components.  Transient: the cluster runner
    stalls until the partition window heals (or escalates to
    :class:`ClusterFaultError` when the wait budget runs out)."""


class ClusterFaultError(FaultError):
    """A cluster-level fault exhausted every recovery rung (replan
    budget, partition wait budget, replica loss) and the cluster run
    cannot make progress -- the cluster analog of
    :class:`UnrecoveredFaultError`."""
