"""Centralized retry/backoff policy: one formula for every retry loop.

Before this module, each retrying subsystem carried its own backoff
constants: the runtime executor's transfer-retry loop hard-wired
``base * factor ** attempt`` through :class:`~repro.faults.policy.
RecoveryPolicy`, and the fault-tolerant runner restarted iterations
back-to-back with no wait at all.  The planning service adds two more
retry sites (planner attempts, circuit-breaker cooldowns), which is the
point where "every module rolls its own exponential" stops scaling.

This module is now the single source of the formula:

- :func:`exponential` -- the deterministic schedule
  ``base * factor ** attempt``, bit-identical to what the executor has
  always computed (regression-pinned by the golden traces);
- :class:`BackoffPolicy` -- the frozen, validated policy object: base,
  factor, cap, retry budget, and *seeded jitter*.  Jitter decorrelates
  retry storms (every queued request retrying at the same instant is
  exactly the thundering herd the service must not produce), but it is
  derived from :mod:`repro.common.rng`'s stateless hash draws -- a
  ``(seed, labels, attempt)`` tuple always yields the same delay, so a
  jittered run is still reproducible from its seed alone.  With
  ``jitter=0`` (the default everywhere pre-existing code migrated to
  this module) the delay is *exactly* :func:`exponential`'s value: the
  executor's timing is bit-identical to the pre-refactor runtime.

Kept free of package imports beyond :mod:`repro.common.rng` so the
executor, the faults runner and the service can all use it without
cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import spread

__all__ = [
    "DEFAULT_TRANSFER_RETRIES",
    "DEFAULT_BACKOFF_BASE",
    "DEFAULT_BACKOFF_FACTOR",
    "exponential",
    "BackoffPolicy",
]

#: The executor's historical transfer-retry constants, extracted from
#: :class:`repro.faults.policy.RecoveryPolicy` (which now re-imports
#: them, so the defaults cannot drift apart).
DEFAULT_TRANSFER_RETRIES = 3
DEFAULT_BACKOFF_BASE = 0.002
DEFAULT_BACKOFF_FACTOR = 2.0


def exponential(attempt: int, base: float,
                factor: float = DEFAULT_BACKOFF_FACTOR) -> float:
    """Deterministic backoff before retry ``attempt + 1`` (0-indexed).

    Exactly ``base * factor ** attempt`` -- the formula the runtime
    executor has used since the fault subsystem landed; the golden-trace
    suite pins its values, so this function must never change shape.
    """
    return base * factor ** attempt


@dataclass(frozen=True)
class BackoffPolicy:
    """A retry budget plus its (optionally jittered) delay schedule.

    ``delay(attempt, *labels)`` is the virtual-time wait before retry
    ``attempt + 1``.  With ``jitter == 0`` it equals
    :func:`exponential` bit-for-bit.  With ``jitter > 0`` the
    deterministic delay is scaled by a seeded factor in
    ``[1 - jitter, 1 + jitter)`` drawn statelessly from
    ``(seed, "backoff", *labels, attempt)`` -- order-independent and
    reproducible, like every other draw in the package.  ``cap``
    bounds the delay (0 = uncapped) so a deep retry chain cannot wait
    past any deadline budget.
    """

    max_retries: int = DEFAULT_TRANSFER_RETRIES
    base: float = DEFAULT_BACKOFF_BASE
    factor: float = DEFAULT_BACKOFF_FACTOR
    jitter: float = 0.0
    cap: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base < 0:
            raise ValueError("base must be >= 0")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.cap < 0:
            raise ValueError("cap must be >= 0")

    def exhausted(self, attempt: int) -> bool:
        """True when retry ``attempt`` is past the budget (0-indexed)."""
        return attempt >= self.max_retries

    def delay(self, attempt: int, *labels: object) -> float:
        """Virtual seconds to wait before retry ``attempt + 1``.

        ``labels`` scope the jitter draw (request id, device, stream --
        whatever identifies the retrying actor) so concurrent retriers
        decorrelate instead of marching in lockstep.
        """
        value = exponential(attempt, self.base, self.factor)
        if self.jitter > 0.0:
            swing = spread(self.seed, "backoff", *labels, attempt)
            value *= 1.0 + self.jitter * swing
        if self.cap > 0.0:
            value = min(value, self.cap)
        return value
