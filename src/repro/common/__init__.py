"""Shared helpers: units, errors, seeding and tiny utilities used across
subsystems."""

from repro.common.units import KiB, MiB, GiB, KB, MB, GB, fmt_bytes, fmt_time
from repro.common.rng import seeded_rng, spread, unit
from repro.common.errors import (
    ReproError,
    GpuOutOfMemoryError,
    HostOutOfMemoryError,
    InfeasibleConfigError,
    GraphError,
    SchedulingError,
    FaultError,
    TransferFaultError,
    TaskCrashError,
    GpuDegradedError,
    UnrecoveredFaultError,
)

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "KB",
    "MB",
    "GB",
    "fmt_bytes",
    "fmt_time",
    "seeded_rng",
    "spread",
    "unit",
    "ReproError",
    "GpuOutOfMemoryError",
    "HostOutOfMemoryError",
    "InfeasibleConfigError",
    "GraphError",
    "SchedulingError",
    "FaultError",
    "TransferFaultError",
    "TaskCrashError",
    "GpuDegradedError",
    "UnrecoveredFaultError",
]
