"""Shared helpers: units, errors and tiny utilities used across subsystems."""

from repro.common.units import KiB, MiB, GiB, KB, MB, GB, fmt_bytes, fmt_time
from repro.common.errors import (
    ReproError,
    GpuOutOfMemoryError,
    HostOutOfMemoryError,
    InfeasibleConfigError,
    GraphError,
    SchedulingError,
)

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "KB",
    "MB",
    "GB",
    "fmt_bytes",
    "fmt_time",
    "ReproError",
    "GpuOutOfMemoryError",
    "HostOutOfMemoryError",
    "InfeasibleConfigError",
    "GraphError",
    "SchedulingError",
]
