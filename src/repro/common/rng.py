"""One reproducibility scheme for every stochastic knob in the package.

Everything that "rolls dice" -- the Decomposer's simulated kernel noise,
baseline microbatch jitter, and the fault injector's chaos plans -- derives
its randomness from here, so a single integer seed pins down an entire
run and two subsystems can never accidentally correlate by sharing Python's
global RNG state.

Two primitives:

- :func:`unit` -- a *stateless* hash draw: ``unit(seed, *labels)`` maps a
  seed plus any hashable labels to a deterministic float in ``[0, 1)``.
  Stateless draws are order-independent, which is what makes fault plans
  reproducible regardless of the order the simulator happens to consume
  decisions in.
- :func:`seeded_rng` -- a :class:`random.Random` whose state is derived
  from the same label scheme, for call sites that want a stream of draws.

The digest construction (md5 over ``":"``-joined ``str()`` forms) is the
scheme the Decomposer has used since the seed commit; centralizing it here
must not change any derived value, so profiles, estimates and regression
baselines stay bit-identical.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["unit", "seeded_rng", "spread"]


def _digest(parts: tuple[object, ...]) -> bytes:
    return hashlib.md5(":".join(str(p) for p in parts).encode()).digest()


def unit(*parts: object) -> float:
    """Deterministic stateless hash of ``parts`` -> ``[0, 1)``."""
    return int.from_bytes(_digest(parts)[:8], "big") / 2**64


def spread(*parts: object) -> float:
    """Like :func:`unit` but mapped to ``[-1, 1)`` (symmetric noise)."""
    return 2.0 * unit(*parts) - 1.0


def seeded_rng(seed: int, *labels: object) -> random.Random:
    """A :class:`random.Random` deterministically derived from the label set.

    Distinct label tuples give independent streams; the same tuple always
    gives the same stream.
    """
    return random.Random(int.from_bytes(_digest((seed, *labels)), "big"))
