"""Byte/time unit constants and human-readable formatting.

All sizes in the package are plain ``int`` bytes and all durations plain
``float`` seconds; these helpers exist so call sites read naturally
(``11 * GiB``) and reports print nicely.
"""

from __future__ import annotations

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

# Decimal variants, used for link bandwidths which vendors quote in GB/s.
KB = 1000
MB = 1000 * KB
GB = 1000 * MB

_BYTE_STEPS = [(GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")]
_TIME_STEPS = [(1.0, "s"), (1e-3, "ms"), (1e-6, "us")]


def fmt_bytes(nbytes: float) -> str:
    """Render a byte count with a binary suffix, e.g. ``fmt_bytes(3 * GiB)``
    -> ``"3.00 GiB"``."""
    if nbytes < 0:
        return "-" + fmt_bytes(-nbytes)
    for step, suffix in _BYTE_STEPS:
        if nbytes >= step:
            return f"{nbytes / step:.2f} {suffix}"
    return f"{nbytes:.0f} B"


def fmt_time(seconds: float) -> str:
    """Render a duration with an appropriate suffix, e.g. ``"12.3 ms"``."""
    if seconds < 0:
        return "-" + fmt_time(-seconds)
    for step, suffix in _TIME_STEPS:
        if seconds >= step:
            return f"{seconds / step:.3g} {suffix}"
    return f"{seconds * 1e9:.3g} ns"
