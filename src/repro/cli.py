"""Command-line interface.

Subcommands:

- ``plan``  -- run the Scheduler for a model and print the searched
  configuration (the Table 1 view);
- ``run``   -- plan and execute one iteration, printing throughput and
  swap metrics (a Figure 9 cell);
- ``check`` -- plan, then statically verify the schedule (deadlocks,
  dataflow, capacity, topology, ablation consistency) without executing;
  exits nonzero when the analyzer reports errors;
- ``bind``  -- late-bind the logical plan onto a physical topology
  (:mod:`repro.virt`): identity, fewer devices (``--physical``,
  deterministic time-slice multiplexing) or a heterogeneous FLOPs/memory
  mix (``--hetero`` / ``--memory-scales``); the bound schedule is
  re-certified by the strict analyzer against per-physical-device memory
  (nonzero exit when rejected) and ``--run`` also executes it;
- ``experiment`` -- regenerate one of the paper's tables/figures by name;
- ``trace`` -- execute with the trace recorder attached, validate the
  recorded timeline against the runtime invariants, and export it as
  Chrome/Perfetto ``trace_event`` JSON and/or an ASCII timeline;
- ``chaos`` -- run a fault-injection sweep: execute the planned schedule
  under a seeded chaos fault plan for a range of seeds, reporting per-seed
  outcomes (completed + recovery counters, or the typed error) and a
  summary; exits nonzero if any seed hangs the watchdog or breaks byte
  accounting.  ``--devices-lost`` scripts permanent GPU losses on top of
  the chaos mix to exercise elastic re-planning; ``--servers N`` (N > 1)
  switches to the cluster chaos sweep -- whole-server crashes, network
  partitions, NIC/switch flapping over a simulated multi-server fabric
  (``--servers-lost`` / ``--partition-at`` script those deterministically)
  -- recovered by replica restore, cross-server re-planning and pipeline
  stage shrinking; ``--json`` writes the sweep as a machine-readable
  report (cluster sweeps include per-category fault counts and recovery
  outcomes per seed).
- ``bench`` -- time planner search, simulated execution and tracing for a
  benchmark suite and write a schema-valid ``BENCH_<date>.json`` report;
  ``scripts/perf_gate.py`` compares such reports against the committed
  baseline and fails on regressions.
- ``serve`` -- drive a seeded scripted request storm through the hardened
  planning service (:mod:`repro.service`): admission control, deadlines,
  retry/backoff, circuit breaker and the graceful-degradation ladder,
  optionally under service-level chaos.  Prints the per-outcome counts
  and latency quantiles; ``--json`` writes the deterministic metrics
  snapshot, ``--check-determinism`` runs the storm twice and fails on
  any metric mismatch, ``--max-shed-rate`` turns an excessive shed rate
  into a nonzero exit.

Examples::

    python -m repro.cli plan gpt2 --minibatch 64 --mode pp
    python -m repro.cli run bert96 --minibatch 32 --mode dp --gpus 4
    python -m repro.cli check gpt2 --minibatch 64 --mode pp
    python -m repro.cli check gpt2 --minibatch 64 --inject cycle
    python -m repro.cli bind toy-transformer --minibatch 16 --gpus 4 \\
        --hetero 1.5,1.5,0.75,0.75 --run --json bind-hetero.json
    python -m repro.cli bind toy-transformer --minibatch 16 --gpus 4 \\
        --physical 2 --run
    python -m repro.cli experiment fig09 --fast
    python -m repro.cli trace toy-transformer --minibatch 8 --gpus 2 \\
        --out trace.json --text
    python -m repro.cli chaos gpt2 --minibatch 32 --seeds 10 --intensity 1.5
    python -m repro.cli chaos gpt2 --minibatch 16 --gpus 4 --seeds 5 \\
        --devices-lost 1 --iterations 3 --json chaos-elastic.json
    python -m repro.cli chaos toy-transformer --minibatch 8 --gpus 2 \\
        --servers 3 --seeds 5 --servers-lost 1 --iterations 3 \\
        --json cluster-chaos.json
    python -m repro.cli bench --suite smoke --repeats 3 --out BENCH_smoke.json
    python -m repro.cli serve --requests 500 --chaos --intensity 1.0 \\
        --check-determinism --max-shed-rate 0.35 --json serve.json
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import Optional, Sequence

from repro.analysis import INJECTIONS, analyze, inject
from repro.core.harmony import Harmony, HarmonyOptions
from repro.experiments.common import render, server_for
from repro.models.zoo import available_models

EXPERIMENTS = {
    "fig01": "fig01_growth",
    "fig02": "fig02_bottleneck",
    "fig07": "fig07_packing",
    "fig08": "fig08_memory",
    "fig09": "fig09_throughput",
    "fig10": "fig10_swapload",
    "fig11": "fig11_zero",
    "fig12": "fig12_correctness",
    "fig13": "fig13_ablation",
    "fig14": "fig14_estimator",
    "fig15": "fig15_massive",
    "fig16": "fig16_scaling",
    "tab01": "tab01_search",
    "tab04": "tab04_equifb",
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Harmony (VLDB 2022) reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_model_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("model", choices=available_models())
        p.add_argument("--minibatch", type=int, default=32)
        p.add_argument("--mode", choices=("dp", "pp"), default="pp")
        p.add_argument("--gpus", type=int, default=4, choices=(1, 2, 4, 8))

    plan = sub.add_parser("plan", help="run the Scheduler only")
    add_model_args(plan)

    run = sub.add_parser("run", help="plan and execute one iteration")
    add_model_args(run)

    check = sub.add_parser(
        "check", help="statically verify the planned schedule"
    )
    add_model_args(check)
    check.add_argument(
        "--inject", choices=sorted(INJECTIONS), default=None,
        help="seed one defect into the plan first, to see the analyzer "
             "catch it (exits nonzero)",
    )
    check.add_argument(
        "--races", action="store_true",
        help="run only the happens-before race passes (plus any other "
             "pass-subset flags given)",
    )
    check.add_argument(
        "--lifetime", action="store_true",
        help="run only the tensor-lifetime passes (plus any other "
             "pass-subset flags given)",
    )
    check.add_argument(
        "--parametric", action="store_true",
        help="run only the parametric capacity certificates (plus any "
             "other pass-subset flags given)",
    )
    check.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the diagnostics, per-pass outcomes and "
             "parametric capacity certificates as JSON",
    )

    bind = sub.add_parser(
        "bind", help="late-bind the logical plan onto a physical topology"
    )
    add_model_args(bind)
    bind.add_argument("--physical", type=int, default=None,
                      help="physical GPU count (default: the logical "
                           "count); fewer than --gpus time-slices several "
                           "logical devices per physical GPU")
    bind.add_argument("--hetero", metavar="SCALES", default=None,
                      help="comma-separated per-physical-device FLOPs "
                           "scales, e.g. 1.5,1.5,0.75,0.75 (sets the "
                           "physical count; overrides --physical)")
    bind.add_argument("--memory-scales", metavar="SCALES", default=None,
                      help="comma-separated per-physical-device memory "
                           "scales (default: 1.0 each)")
    bind.add_argument("--run", action="store_true",
                      help="also execute the bound schedule")
    bind.add_argument("--iterations", type=int, default=1,
                      help="iterations for --run (default 1)")
    bind.add_argument("--json", metavar="PATH", default=None,
                      help="write the binding, analyzer verdict and (with "
                           "--run) metrics as JSON")

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))
    experiment.add_argument("--fast", action="store_true",
                            help="shrunk sweep for a quick look")

    trace = sub.add_parser(
        "trace",
        help="execute with the trace recorder on and export the timeline",
    )
    add_model_args(trace)
    trace.add_argument("--iterations", type=int, default=1,
                       help="iterations to record (default 1)")
    trace.add_argument("--out", metavar="PATH", default=None,
                       help="write Chrome/Perfetto trace_event JSON here "
                            "(load in chrome://tracing or ui.perfetto.dev)")
    trace.add_argument("--text", action="store_true",
                       help="also print the per-lane ASCII timeline")
    trace.add_argument("--ring", type=int, default=None,
                       help="bounded-memory mode: keep only the newest N "
                            "events (accounting checks are skipped once "
                            "events drop)")
    trace.add_argument("--chaos-seed", type=int, default=None,
                       help="additionally inject chaos faults from this "
                            "seed, so the trace shows faults and recovery")
    trace.add_argument("--intensity", type=float, default=1.0,
                       help="chaos intensity when --chaos-seed is given")

    chaos = sub.add_parser(
        "chaos", help="execute under fault injection across a seed sweep"
    )
    add_model_args(chaos)
    chaos.add_argument("--seeds", type=int, default=5,
                       help="number of fault seeds to sweep (default 5)")
    chaos.add_argument("--seed-base", type=int, default=0,
                       help="first fault seed of the sweep")
    chaos.add_argument("--intensity", type=float, default=1.0,
                       help="chaos intensity multiplier (default 1.0)")
    chaos.add_argument("--iterations", type=int, default=2,
                       help="iterations per run (default 2, so iteration-"
                            "boundary recovery gets exercised)")
    chaos.add_argument("--transfer-rate", type=float, default=None,
                       help="override the transfer fault rate")
    chaos.add_argument("--crash-rate", type=float, default=None,
                       help="override the task crash rate")
    chaos.add_argument("--devices-lost", type=int, default=0,
                       help="permanently kill this many in-use GPUs per "
                            "seed (victims rotate with the seed; always "
                            "leaves at least one survivor) -- exercises "
                            "elastic re-planning + state migration")
    chaos.add_argument("--lose-at", type=int, default=1,
                       help="iteration at which the losses strike "
                            "(default 1; needs --iterations > this)")
    chaos.add_argument("--servers", type=int, default=1,
                       help="run on a simulated cluster of this many "
                            "servers (>1 switches to the cluster chaos "
                            "sweep: whole-server crashes, partitions, "
                            "NIC/switch flaps; --mode picks dp or a "
                            "stage-per-server pipeline)")
    chaos.add_argument("--servers-lost", type=int, default=0,
                       help="with --servers > 1: permanently crash this "
                            "many servers per seed at --lose-at (victims "
                            "rotate with the seed; always leaves a "
                            "survivor) -- exercises replica restore + "
                            "cross-server re-planning")
    chaos.add_argument("--partition-at", type=float, default=None,
                       help="with --servers > 1: script a network "
                            "partition window opening at this virtual "
                            "time, isolating one seed-rotated server")
    chaos.add_argument("--partition-for", type=float, default=0.02,
                       help="scripted partition window length in virtual "
                            "seconds (default 0.02)")
    chaos.add_argument("--hetero", metavar="SCALES", default=None,
                       help="run the sweep on a heterogeneous bind of the "
                            "plan: comma-separated per-device FLOPs "
                            "scales, one per --gpus (single-server sweeps "
                            "only)")
    chaos.add_argument("--json", metavar="PATH", default=None,
                       help="also write per-seed outcomes, recovery "
                            "counters and elastic re-plan counts as JSON "
                            "(cluster sweeps add per-category cluster "
                            "fault counts and recovery outcomes)")

    from repro.perf.bench import SUITES

    bench = sub.add_parser(
        "bench",
        help="time planner/simulator/tracing and write BENCH_<date>.json",
    )
    bench.add_argument("--suite", choices=sorted(SUITES), default="smoke",
                       help="benchmark suite (default smoke)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="repeats per case; the minimum is reported "
                            "(default 3)")
    bench.add_argument("--workers", type=int, default=1,
                       help="search candidate evaluators (default 1 = "
                            "serial; >1 forks a worker pool)")
    bench.add_argument("--out", metavar="PATH", default=None,
                       help="report path (default BENCH_<date>.json)")

    serve = sub.add_parser(
        "serve",
        help="drive a seeded request storm through the planning service",
    )
    serve.add_argument("--requests", type=int, default=200,
                       help="storm size (default 200)")
    serve.add_argument("--seed", type=int, default=0,
                       help="workload + chaos + jitter seed (default 0)")
    serve.add_argument("--duration", type=float, default=120.0,
                       help="virtual seconds the arrivals span "
                            "(default 120)")
    serve.add_argument("--tenants", type=int, default=4,
                       help="distinct tenants in the storm (default 4)")
    serve.add_argument("--deadline", type=float, default=45.0,
                       help="per-request deadline budget in virtual "
                            "seconds (default 45)")
    serve.add_argument("--execute-fraction", type=float, default=0.0,
                       help="fraction of requests that also run one "
                            "simulated iteration (default 0)")
    serve.add_argument("--workers", type=int, default=2,
                       help="service worker processes (default 2)")
    serve.add_argument("--queue-limit", type=int, default=16,
                       help="admission queue bound (default 16)")
    serve.add_argument("--quota", type=int, default=8,
                       help="per-tenant in-flight quota, 0 = unlimited "
                            "(default 8)")
    serve.add_argument("--fleet-servers", type=int, default=0,
                       help="co-place requests onto a shared fleet of "
                            "this many simulated servers (0 = no fleet); "
                            "the storm then mixes 2- and 4-GPU jobs at "
                            "full and half memory shares and sheds "
                            "placement misses with a typed reason")
    serve.add_argument("--fleet-gpus", type=int, default=4,
                       help="GPUs per fleet server (default 4)")
    serve.add_argument("--chaos", action="store_true",
                       help="inject service-level chaos (slow planners, "
                            "planner crashes, poisoned requests)")
    serve.add_argument("--intensity", type=float, default=1.0,
                       help="chaos intensity when --chaos is given "
                            "(default 1.0)")
    serve.add_argument("--check-determinism", action="store_true",
                       help="serve the storm twice on fresh services and "
                            "fail unless the metrics snapshots are "
                            "identical")
    serve.add_argument("--max-shed-rate", type=float, default=None,
                       help="exit nonzero if the shed fraction exceeds "
                            "this bound")
    serve.add_argument("--json", metavar="PATH", default=None,
                       help="write the deterministic metrics snapshot "
                            "and per-request outcomes as JSON")
    return parser


def _harmony(args: argparse.Namespace) -> Harmony:
    return Harmony(
        args.model,
        server_for(args.gpus),
        args.minibatch,
        options=HarmonyOptions(mode=args.mode),
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "plan":
        plan = _harmony(args).plan()
        print(plan.describe())
        print(plan.config.pack_table())
        return 0
    if args.command == "run":
        report = _harmony(args).run()
        print(report.describe())
        return 0
    if args.command == "check":
        return _check(args)
    if args.command == "bind":
        return _bind(args)
    if args.command == "experiment":
        module = importlib.import_module(
            f"repro.experiments.{EXPERIMENTS[args.name]}"
        )
        rows = module.run(fast=args.fast)
        print(render(rows))
        return 0
    if args.command == "trace":
        return _trace(args)
    if args.command == "chaos":
        return _chaos(args)
    if args.command == "bench":
        return _bench(args)
    if args.command == "serve":
        return _serve(args)
    return 2  # pragma: no cover - argparse enforces the choices


def _check(args: argparse.Namespace) -> int:
    """The ``check`` subcommand: static verification, optional JSON."""
    harmony = _harmony(args)
    plan = harmony.plan()
    options = plan.options.schedule_options()
    if args.inject:
        options, expected = inject(args.inject, plan.graph, options)
        print(f"injected defect {args.inject!r} "
              f"(should trip {', '.join(expected)})")
    subset = [
        name
        for name, wanted in (
            ("hb", args.races),
            ("lifetime", args.lifetime),
            ("parametric", args.parametric),
        )
        if wanted
    ]
    report = analyze(
        plan.graph,
        server=harmony.server,
        options=options,
        host_state_bytes=harmony.host_state_bytes,
        host_input_bytes=harmony.minibatch * harmony.model.sample_bytes,
        prefetch=options.prefetch,
        passes=subset or None,
    )
    print(report.describe())
    certificates = []
    if not subset or "parametric" in subset:
        from repro.analysis import capacity_certificates
        from repro.analysis.context import AnalysisContext

        certificates = capacity_certificates(AnalysisContext(
            plan.graph,
            server=harmony.server,
            options=options,
            host_state_bytes=harmony.host_state_bytes,
            host_input_bytes=harmony.minibatch * harmony.model.sample_bytes,
            prefetch=options.prefetch,
        ))
        for cert in certificates:
            print(f"  certificate: {cert.describe()}")
    if args.json:
        import dataclasses
        import json

        payload = {
            "model": args.model,
            "mode": args.mode,
            "gpus": args.gpus,
            "minibatch": args.minibatch,
            "injected": args.inject,
            "passes": [
                {
                    "name": result.name,
                    "skipped": result.skipped,
                    "suppressed": result.suppressed,
                    "diagnostics": len(result.diagnostics),
                }
                for result in report.results
            ],
            "diagnostics": [
                {
                    "rule": d.rule,
                    "severity": d.severity.name.lower(),
                    "message": d.message,
                    "task": d.task,
                    "device": d.device,
                    "move": d.move,
                    "hint": d.hint,
                }
                for d in report.diagnostics
            ],
            "certificates": [
                {
                    **dataclasses.asdict(cert),
                    "smallest_violating_n": cert.smallest_violating_n(),
                    "safe_for_all": cert.safe_for_all,
                }
                for cert in certificates
            ],
            "ok": report.ok,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0 if report.ok else 1


def _bench(args: argparse.Namespace) -> int:
    """Run a benchmark suite and write the schema-valid JSON report."""
    from repro.perf.bench import (
        default_out_path,
        render_report,
        run_bench,
        write_report,
    )

    report = run_bench(args.suite, repeats=args.repeats,
                       search_workers=args.workers)
    print(render_report(report))
    out = args.out or default_out_path()
    write_report(report, out)
    print(f"wrote {out}")
    return 0


def _serve(args: argparse.Namespace) -> int:
    """The ``serve`` subcommand: one seeded storm through the service.

    Everything the storm produces is a deterministic function of the
    seed, so ``--check-determinism`` (serve twice on fresh services,
    compare the full metrics snapshots) is a real bit-identity check,
    not a flakiness lottery.  The exit code is nonzero when determinism
    fails, when ``--max-shed-rate`` is exceeded, or when the service
    leaves a request unresolved (which raises out of ``run``).
    """
    import json as json_module

    from repro.service import (
        PlannerService,
        ServiceChaosSpec,
        ServiceConfig,
        ServiceFaultPlan,
        scripted_workload,
    )

    fleet_on = args.fleet_servers > 0
    workload_kwargs: dict = {}
    if fleet_on:
        # The fleet storm mixes widths and memory shares so every
        # placement rung (identity / partition / time-slice) is live.
        workload_kwargs = {
            "gpus": (2, args.fleet_gpus),
            "shares": (1.0, 0.5),
        }
    requests = scripted_workload(
        args.requests,
        seed=args.seed,
        duration=args.duration,
        tenants=args.tenants,
        deadline=args.deadline,
        execute_fraction=args.execute_fraction,
        **workload_kwargs,
    )
    spec = (ServiceChaosSpec.chaos(args.intensity) if args.chaos
            else ServiceChaosSpec.none())
    config = ServiceConfig(
        workers=args.workers,
        queue_limit=args.queue_limit,
        tenant_quota=args.quota,
    )

    def storm() -> PlannerService:
        fleet = None
        if fleet_on:
            from repro.fleet import FleetPlacer, fleet_of

            fleet = FleetPlacer(fleet_of(args.fleet_servers,
                                         args.fleet_gpus))
        service = PlannerService(
            config,
            chaos=ServiceFaultPlan(spec, seed=args.seed),
            seed=args.seed,
            fleet=fleet,
        )
        service.run(requests)
        return service

    service = storm()
    metrics = service.metrics
    print(f"served {args.requests} request(s), seed {args.seed}"
          + (f", chaos intensity {args.intensity} ({spec.describe()})"
             if args.chaos else ", no chaos")
          + (f", fleet of {args.fleet_servers} server(s) x "
             f"{args.fleet_gpus} GPUs" if fleet_on else ""))
    print(service.run_metrics().describe())
    if fleet_on and service.fleet is not None:
        print(service.fleet.describe())

    failures = []
    if args.check_determinism:
        again = storm().metrics.snapshot()
        if again == metrics.snapshot():
            print("determinism check: two runs bit-identical")
        else:
            failures.append("determinism check FAILED: metrics snapshots "
                            "differ between two identically-seeded runs")
    if args.max_shed_rate is not None:
        if metrics.shed_rate <= args.max_shed_rate:
            print(f"shed rate {metrics.shed_rate:.3f} within bound "
                  f"{args.max_shed_rate}")
        else:
            failures.append(f"shed rate {metrics.shed_rate:.3f} exceeds "
                            f"bound {args.max_shed_rate}")
    if args.json:
        payload = {
            "requests": args.requests,
            "seed": args.seed,
            "chaos": spec.describe() if args.chaos else None,
            "intensity": args.intensity if args.chaos else 0.0,
            "fleet": (service.fleet.snapshot()
                      if fleet_on and service.fleet is not None else None),
            "metrics": metrics.snapshot(),
            "breaker": service.breaker.describe(),
            "results": [r.describe() for r in service.results],
            "ok": not failures,
            "failures": failures,
        }
        with open(args.json, "w") as fh:
            json_module.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")
    for failure in failures:
        print(failure)
    return 1 if failures else 0


def _parse_scales(text: str) -> list[float]:
    """``"1.5,0.75"`` -> ``[1.5, 0.75]``; rejects empties and <= 0."""
    try:
        scales = [float(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise SystemExit(f"malformed scale list {text!r}; expected "
                         f"comma-separated numbers like 1.5,0.75")
    if not scales or any(s <= 0 for s in scales):
        raise SystemExit(f"scales must be positive numbers, got {text!r}")
    return scales


def _bind(args: argparse.Namespace) -> int:
    """The ``bind`` subcommand: late-bind a logical plan onto hardware.

    Plans for ``--gpus`` *logical* devices, builds the requested physical
    topology (identity / time-sliced / heterogeneous), re-certifies the
    bound schedule with the strict analyzer against per-physical-device
    memory, and optionally executes it.  Exits 1 when the analyzer
    rejects the bind (e.g. a memory scale the schedule cannot fit).
    """
    import json as json_module

    from repro.common.errors import ScheduleAnalysisError
    from repro.virt import DeviceBinding, VirtualTopology

    harmony = _harmony(args)
    plan = harmony.plan()
    print(plan.describe())
    flops = _parse_scales(args.hetero) if args.hetero else None
    memory = (_parse_scales(args.memory_scales)
              if args.memory_scales else None)
    if flops is None:
        n_physical = (args.physical if args.physical is not None
                      else args.gpus)
        flops = [1.0] * n_physical
    if memory is None:
        memory = [1.0] * len(flops)
    try:
        topology = VirtualTopology.heterogeneous(flops, memory)
    except ValueError as exc:
        # e.g. --memory-scales length disagreeing with the physical
        # device count: a usage error, not a traceback.
        raise SystemExit(f"bad topology: {exc}")
    binding = DeviceBinding.pack(args.gpus, topology)
    payload: dict = {
        "model": args.model,
        "mode": args.mode,
        "minibatch": args.minibatch,
        "logical_gpus": args.gpus,
        "physical_gpus": topology.n_physical,
        "assignment": list(binding.assignment),
        "flops_scales": flops,
        "memory_scales": memory,
        "fingerprint": binding.fingerprint(),
    }

    def write_json() -> None:
        if args.json:
            with open(args.json, "w") as fh:
                json_module.dump(payload, fh, indent=2)
                fh.write("\n")
            print(f"wrote JSON report to {args.json}")

    try:
        bound = harmony.bind(binding, plan=plan)
    except ScheduleAnalysisError as exc:
        print(f"bind REJECTED by the analyzer:\n{exc}")
        payload.update(ok=False, error=str(exc))
        write_json()
        return 1
    print(bound.describe())
    print(f"analyzer: clean on {bound.server.describe()}")
    payload.update(
        ok=True,
        device_memory_bytes=binding.device_memory(
            bound.server.gpu.memory_bytes
        ),
    )
    if args.run:
        report = harmony.run(plan=bound, iterations=args.iterations)
        print(report.metrics.describe())
        payload.update(
            iteration_time=report.metrics.iteration_time,
            throughput=report.metrics.throughput,
        )
    write_json()
    return 0


def _trace(args: argparse.Namespace) -> int:
    """Record one traced run and export/validate the timeline.

    The recorded trace is validated against the runtime invariants
    (stream FIFO/exclusivity, dependency order, byte and busy-time
    reconciliation) before anything is written -- the exporter refuses to
    ship a timeline the runtime itself contradicts.  Chaos runs keep the
    structural checks only: restart-discarded attempts are on the trace
    but not in the averaged metrics, by design.
    """
    from repro.trace import (
        TraceRecorder,
        check_trace,
        dump_chrome_trace,
        to_text_timeline,
    )

    harmony = _harmony(args)
    plan = harmony.plan()
    recorder = TraceRecorder(ring=args.ring)
    fault_plan = None
    if args.chaos_seed is not None:
        from repro.faults import FaultPlan, FaultSpec

        fault_plan = FaultPlan(FaultSpec.chaos(args.intensity),
                               seed=args.chaos_seed)
    report = harmony.run(plan=plan, iterations=args.iterations,
                         fault_plan=fault_plan, trace=recorder)
    fault_free = fault_plan is None
    check_trace(
        recorder.events,
        graph=plan.graph if fault_free else None,
        metrics=report.metrics if fault_free else None,
        iterations=args.iterations,
        dropped=recorder.dropped,
    )
    print(plan.describe())
    print(report.metrics.describe())
    if args.out:
        dump_chrome_trace(recorder.events, args.out)
        print(f"wrote {len(recorder.events)} events to {args.out} "
              f"(trace_event JSON; load in ui.perfetto.dev)")
    if args.text:
        print(to_text_timeline(recorder.events))
    return 0


def _loss_victims(graph, n: int, seed: int) -> list[int]:
    """Pick ``n`` distinct loss victims for one chaos seed.

    Victims come from the devices that *own state* (UPD task placement)
    so the elastic migration phase has bytes to move; the pick rotates
    with the seed so a sweep kills different devices.  Always leaves at
    least one in-use device alive -- a chaos sweep probes recovery, not
    the trivially unrecoverable zero-survivor case.
    """
    from repro.core.types import TaskKind

    used = sorted({t.device for t in graph.tasks})
    owners = sorted({
        t.device for t in graph.tasks if t.kind is TaskKind.UPD
    }) or used
    k = max(0, min(n, len(used) - 1, len(owners)))
    if k == 0:
        return []
    start = seed % len(owners)
    rotated = owners[start:] + owners[:start]
    return sorted(rotated[:k])


def _chaos(args: argparse.Namespace) -> int:
    """Seed-sweep fault injection over one planned schedule.

    Three per-seed outcomes: *completed* (recovery won -- byte invariants
    were audited inside the runner), *typed failure* (faults exhausted the
    recovery policy; an acceptable chaos outcome, reported with the fault's
    entity), and *hard failure* (watchdog trip or broken byte accounting
    -- a runtime bug).  Only hard failures make the exit code nonzero.

    ``--devices-lost`` additionally scripts permanent GPU losses on top of
    the seeded chaos mix, driving the elastic escalation ladder (re-bind
    -> re-plan -> state migration); ``--json`` writes the sweep's per-seed
    outcomes and counters for machines (CI artifacts, dashboards).
    """
    import json as json_module
    from dataclasses import asdict, replace

    from repro.common.errors import FaultError, SimulationError
    from repro.faults import FaultPlan, FaultSpec, ScriptedFaultPlan

    if args.servers > 1:
        if args.hetero:
            raise SystemExit("--hetero applies to single-server sweeps")
        return _cluster_chaos(args)
    spec = FaultSpec.chaos(args.intensity)
    if args.transfer_rate is not None:
        spec = replace(spec, transfer_fault_rate=args.transfer_rate)
    if args.crash_rate is not None:
        spec = replace(spec, task_crash_rate=args.crash_rate)
    harmony = _harmony(args)
    plan = harmony.plan()
    binding = None
    if args.hetero:
        from repro.virt import DeviceBinding

        scales = _parse_scales(args.hetero)
        if len(scales) != args.gpus:
            raise SystemExit(f"--hetero needs one scale per GPU "
                             f"({args.gpus}), got {len(scales)}")
        binding = DeviceBinding.heterogeneous(scales)
        # One strict-analyzer certification up front; the sweep reuses
        # the bound plan across seeds.
        plan = harmony.bind(binding, plan=plan)
    print(plan.describe() if binding is None else plan.plan.describe())
    print(f"chaos sweep: {args.seeds} seed(s) from {args.seed_base}, "
          f"{spec.describe()}"
          + (f", {args.devices_lost} device(s) lost at iteration "
             f"{args.lose_at}" if args.devices_lost else "")
          + (f", heterogeneous bind x{args.hetero}" if args.hetero else ""))
    completed = failed = hard = 0
    records = []
    for seed in range(args.seed_base, args.seed_base + args.seeds):
        if args.devices_lost:
            victims = _loss_victims(plan.graph, args.devices_lost, seed)
            fault_plan: FaultPlan = ScriptedFaultPlan(
                losses={d: args.lose_at for d in victims},
                spec=spec, seed=seed,
            )
        else:
            fault_plan = FaultPlan(spec, seed=seed)
        record: dict = {"seed": seed}
        try:
            report = harmony.run(plan=plan, iterations=args.iterations,
                                 fault_plan=fault_plan)
        except FaultError as exc:
            failed += 1
            entity = f" [{exc.entity}]" if exc.entity else ""
            print(f"  seed {seed}: FAILED {type(exc).__name__}{entity}: {exc}")
            record.update(outcome="failed", error_type=type(exc).__name__,
                          entity=exc.entity, message=str(exc))
        except SimulationError as exc:
            hard += 1
            print(f"  seed {seed}: HARD FAILURE {type(exc).__name__}: {exc}")
            record.update(outcome="hard_failure",
                          error_type=type(exc).__name__, message=str(exc))
        else:
            completed += 1
            metrics = report.metrics
            line = (f"  seed {seed}: completed, iteration "
                    f"{metrics.iteration_time:.4f}s, "
                    f"{metrics.recovery.describe()}")
            if metrics.elastic.any:
                line += f"; {metrics.elastic.describe()}"
            print(line)
            record.update(
                outcome="completed",
                iteration_time=metrics.iteration_time,
                throughput=metrics.throughput,
                recovery=asdict(metrics.recovery),
                elastic=asdict(metrics.elastic),
            )
        records.append(record)
    print(f"chaos summary: {completed} completed, {failed} failed with a "
          f"typed fault, {hard} hard failure(s) "
          f"({'runtime bug' if hard else 'byte accounting intact, no hangs'})")
    if args.json:
        payload = {
            "model": args.model,
            "mode": args.mode,
            "gpus": args.gpus,
            "minibatch": args.minibatch,
            "iterations": args.iterations,
            "intensity": args.intensity,
            "devices_lost": args.devices_lost,
            "hetero": args.hetero,
            "seed_base": args.seed_base,
            "seeds": args.seeds,
            "spec": spec.describe(),
            "results": records,
            "summary": {
                "completed": completed,
                "failed": failed,
                "hard_failures": hard,
                "replans": sum(
                    r.get("elastic", {}).get("replans", 0) for r in records
                ),
            },
        }
        with open(args.json, "w") as fh:
            json_module.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote JSON report to {args.json}")
    return 1 if hard else 0


def _cluster_chaos(args: argparse.Namespace) -> int:
    """Seed-sweep cluster chaos: failure domains above one machine.

    Same outcome taxonomy as the single-server sweep -- *completed*
    (the server-level recovery ladder won: replica restore, cross-server
    re-plan, stage shrink), *typed failure* (an acceptable
    :class:`~repro.common.errors.ClusterFaultError` or inner fault), and
    *hard failure* (watchdog trip or broken byte accounting, including
    the per-network-link reconciliation).  Only hard failures exit
    nonzero.  Plans are memoized across the sweep (placements do not
    depend on the fault seed), so the sweep re-searches nothing.
    """
    import json as json_module
    from dataclasses import asdict, replace

    from repro.cluster import (
        ClusterFaultPlan,
        ClusterFaultSpec,
        ClusterPlanner,
        ClusterRunner,
        PartitionWindow,
        ScriptedClusterFaultPlan,
        homogeneous_cluster,
    )
    from repro.common.errors import FaultError, SimulationError

    n = args.servers
    spec = ClusterFaultSpec.cluster_chaos(args.intensity)
    inner = spec.inner
    if args.transfer_rate is not None:
        inner = replace(inner, transfer_fault_rate=args.transfer_rate)
    if args.crash_rate is not None:
        inner = replace(inner, task_crash_rate=args.crash_rate)
    spec = replace(spec, inner=inner)
    cluster = homogeneous_cluster(n, server_for(args.gpus))
    planner = ClusterPlanner(args.model, cluster, args.minibatch,
                             mode=args.mode)
    plan = planner.plan_for(tuple(range(n)))
    print(plan.describe())
    scripted_losses = min(args.servers_lost, n - 1)
    scripted = scripted_losses > 0 or args.partition_at is not None
    line = (f"cluster chaos sweep: {n} server(s), {args.seeds} seed(s) "
            f"from {args.seed_base}, {spec.describe()}")
    if scripted_losses:
        line += (f", {scripted_losses} server(s) lost at iteration "
                 f"{args.lose_at}")
    if args.partition_at is not None:
        line += (f", partition at t={args.partition_at:g} "
                 f"for {args.partition_for:g}s")
    print(line)
    completed = failed = hard = 0
    records = []
    for seed in range(args.seed_base, args.seed_base + args.seeds):
        if scripted:
            # Scripted losses are the only whole-server crashes (mirrors
            # --devices-lost one level down): stacking seeded crashes on
            # top would kill owner+buddy pairs on most seeds.
            crashes = {(seed + i) % n: args.lose_at
                       for i in range(scripted_losses)}
            partitions = []
            if args.partition_at is not None:
                partitions.append(PartitionWindow(
                    args.partition_at,
                    args.partition_at + args.partition_for,
                    frozenset({seed % n}),
                ))
            fault_plan: ClusterFaultPlan = ScriptedClusterFaultPlan(
                crashes=crashes, partitions=partitions,
                spec=replace(spec, server_crash_rate=0.0), seed=seed,
            )
        else:
            fault_plan = ClusterFaultPlan(spec, seed=seed)
        runner = ClusterRunner(planner, fault_plan)
        record: dict = {"seed": seed}
        try:
            metrics = runner.run(args.iterations)
        except FaultError as exc:
            failed += 1
            entity = f" [{exc.entity}]" if exc.entity else ""
            print(f"  seed {seed}: FAILED {type(exc).__name__}{entity}: "
                  f"{exc}")
            record.update(outcome="failed", error_type=type(exc).__name__,
                          entity=exc.entity, message=str(exc))
        except SimulationError as exc:
            hard += 1
            print(f"  seed {seed}: HARD FAILURE {type(exc).__name__}: {exc}")
            record.update(outcome="hard_failure",
                          error_type=type(exc).__name__, message=str(exc))
        else:
            completed += 1
            cl = metrics.cluster
            assert cl is not None
            line = (f"  seed {seed}: completed, iteration "
                    f"{metrics.iteration_time:.4f}s, "
                    f"{metrics.recovery.describe()}")
            if cl.any:
                line += f"; {cl.describe()}"
            print(line)
            record.update(
                outcome="completed",
                iteration_time=metrics.iteration_time,
                recovery=asdict(metrics.recovery),
                elastic=asdict(metrics.elastic),
            )
        # Cluster counters exist for failed runs too (faults delivered,
        # recovery attempted before the ladder gave out).
        cl = runner.metrics
        record["cluster"] = {
            "fault_counts": cl.fault_counts(),
            "servers_lost": cl.servers_lost,
            "servers_retired": cl.servers_retired,
            "cluster_replans": cl.cluster_replans,
            "stage_shrinks": cl.stage_shrinks,
            "state_restores": cl.state_restores,
            "partition_stalls": cl.partition_stalls,
            "network_bytes": cl.network_bytes,
            "replication_bytes": cl.replication_bytes,
            "migration_network_bytes": cl.migration_network_bytes,
        }
        records.append(record)
    print(f"cluster chaos summary: {completed} completed, {failed} failed "
          f"with a typed fault, {hard} hard failure(s) "
          f"({'runtime bug' if hard else 'byte accounting intact, no hangs'})")
    if args.json:
        payload = {
            "model": args.model,
            "mode": args.mode,
            "gpus": args.gpus,
            "servers": n,
            "minibatch": args.minibatch,
            "iterations": args.iterations,
            "intensity": args.intensity,
            "servers_lost": scripted_losses,
            "partition_at": args.partition_at,
            "partition_for": args.partition_for,
            "seed_base": args.seed_base,
            "seeds": args.seeds,
            "spec": spec.describe(),
            "results": records,
            "summary": {
                "completed": completed,
                "failed": failed,
                "hard_failures": hard,
                "cluster_replans": sum(
                    r["cluster"]["cluster_replans"] for r in records
                ),
                "state_restores": sum(
                    r["cluster"]["state_restores"] for r in records
                ),
                "migration_network_bytes": sum(
                    r["cluster"]["migration_network_bytes"] for r in records
                ),
            },
        }
        with open(args.json, "w") as fh:
            json_module.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote JSON report to {args.json}")
    return 1 if hard else 0


if __name__ == "__main__":
    sys.exit(main())
