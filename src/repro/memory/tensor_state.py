"""Tensor lifetime state machine.

Harmony's Runtime "maintains a state machine tracking the lifetime of all
tensors used" (Section 3).  A tensor is *homed* on the host (model state
lives in pinned CPU memory) and may additionally be materialized on one or
more GPUs; moves between homes are what the schedule's channels transport.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import SimulationError


class TensorHome(enum.Enum):
    """Where the authoritative copy of a tensor currently lives."""

    HOST = "host"
    DEVICE = "device"
    NOWHERE = "nowhere"  # not yet produced this iteration


@dataclass
class TensorRecord:
    """One tracked tensor: identity, size, and placement."""

    key: str
    nbytes: int
    home: TensorHome = TensorHome.HOST
    device_copies: set[int] = field(default_factory=set)
    dirty_on: int | None = None  # GPU holding a newer version than host

    def materialize(self, gpu: int) -> None:
        self.device_copies.add(gpu)

    def evict(self, gpu: int) -> None:
        if gpu not in self.device_copies:
            raise SimulationError(f"evicting {self.key} from GPU {gpu} "
                                  "where it is not resident")
        self.device_copies.discard(gpu)

    def mark_dirty(self, gpu: int) -> None:
        """GPU ``gpu`` modified the tensor; other copies become stale."""
        if gpu not in self.device_copies:
            raise SimulationError(f"{self.key} modified on GPU {gpu} without "
                                  "a resident copy")
        self.dirty_on = gpu
        self.device_copies = {gpu}

    def writeback(self) -> None:
        """Host copy refreshed from the dirty GPU (swap-out completed)."""
        self.dirty_on = None
        self.home = TensorHome.HOST

    def resident_on(self, gpu: int) -> bool:
        return gpu in self.device_copies


class TensorTable:
    """All tensors of one training run, keyed by a stable string id.

    Keys follow ``kind:layer[:microbatch]`` (e.g. ``"W:17"``,
    ``"X:3:mb5"``), which makes logs and tests readable.
    """

    def __init__(self) -> None:
        self._records: dict[str, TensorRecord] = {}

    def declare(self, key: str, nbytes: int, home: TensorHome = TensorHome.HOST) -> TensorRecord:
        if key in self._records:
            raise SimulationError(f"tensor {key!r} declared twice")
        record = TensorRecord(key=key, nbytes=nbytes, home=home)
        self._records[key] = record
        return record

    def get(self, key: str) -> TensorRecord:
        try:
            return self._records[key]
        except KeyError:
            raise SimulationError(f"unknown tensor {key!r}") from None

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def resident_bytes(self, gpu: int) -> int:
        return sum(
            record.nbytes
            for record in self._records.values()
            if record.resident_on(gpu)
        )
