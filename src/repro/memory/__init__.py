"""GPU memory virtualization substrate.

- :mod:`~repro.memory.tensor_state` -- the tensor-lifetime state machine
  the Runtime's memory manager maintains (Section 4.4).
- :mod:`~repro.memory.swap_manager` -- per-GPU LRU virtualization in the
  style of IBM-LMS; this is what the *baseline* schemes use and whose
  repeated/unnecessary/CPU-only/unbalanced swaps Section 2 dissects.
"""

from repro.memory.tensor_state import TensorHome, TensorRecord, TensorTable
from repro.memory.swap_manager import LruSwapManager, SwapDecision

__all__ = [
    "TensorHome",
    "TensorRecord",
    "TensorTable",
    "LruSwapManager",
    "SwapDecision",
]
