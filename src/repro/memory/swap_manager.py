"""Per-GPU LRU memory virtualization (the IBM-LMS stand-in).

This is the mechanism the *baselines* rely on: each GPU, in isolation,
transparently swaps tensors to host memory when its working set exceeds
capacity.  Given the sequence of tensor touches a schedule performs, the
manager decides -- deterministically -- which touches hit residency and
which require a swap-in (plus evictions to make room).

Running a schedule's touch trace through this policy is how the baseline
planners derive their swap moves; it reproduces the four inefficiencies of
Section 2 (repeated, unnecessary, CPU-only, and unbalanced swaps) without
hand-coding the volumes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.common.errors import GpuOutOfMemoryError


@dataclass(frozen=True)
class SwapDecision:
    """Outcome of touching one tensor.

    ``swap_in_bytes`` is what must come over PCIe for this touch; evicted
    tensors that were dirty add ``swap_out_bytes`` of write-back traffic.
    """

    key: str
    hit: bool
    swap_in_bytes: int
    swap_out_bytes: int
    evicted: tuple[str, ...] = ()


@dataclass
class _Resident:
    nbytes: int
    dirty: bool = False
    pinned: bool = False


class LruSwapManager:
    """Least-recently-used virtualization of one GPU's memory.

    ``writeback_clean=True`` emulates IBM-LMS, which *moves* evicted
    tensors to host rather than dropping clean copies -- the behaviour
    behind the paper's ``(4m+2)N|W|`` DP-Swap weight volume.
    """

    def __init__(self, capacity: int, writeback_clean: bool = False):
        if capacity <= 0:
            raise GpuOutOfMemoryError("swap manager needs positive capacity")
        self.writeback_clean = writeback_clean
        self.capacity = capacity
        self.used = 0
        self._lru: OrderedDict[str, _Resident] = OrderedDict()
        self.total_swap_in = 0
        self.total_swap_out = 0
        self.hits = 0
        self.misses = 0

    # -- policy --------------------------------------------------------------

    def touch(self, key: str, nbytes: int, write: bool = False,
              pin: bool = False) -> SwapDecision:
        """Access tensor ``key``; swap it in (evicting LRU victims) if absent.

        ``write=True`` marks the resident copy dirty, so evicting it later
        costs a write-back.  ``pin=True`` protects it from eviction until
        :meth:`unpin`.
        """
        if nbytes > self.capacity:
            raise GpuOutOfMemoryError(
                f"tensor {key!r} ({nbytes} B) exceeds GPU capacity "
                f"({self.capacity} B); no virtualization can help"
            )
        if key in self._lru:
            entry = self._lru[key]
            self._lru.move_to_end(key)
            entry.dirty = entry.dirty or write
            entry.pinned = entry.pinned or pin
            self.hits += 1
            return SwapDecision(key=key, hit=True, swap_in_bytes=0, swap_out_bytes=0)

        evicted, out_bytes = self._make_room(nbytes)
        self._lru[key] = _Resident(nbytes=nbytes, dirty=write, pinned=pin)
        self.used += nbytes
        self.misses += 1
        self.total_swap_in += nbytes
        return SwapDecision(
            key=key,
            hit=False,
            swap_in_bytes=nbytes,
            swap_out_bytes=out_bytes,
            evicted=tuple(evicted),
        )

    def produce(self, key: str, nbytes: int) -> SwapDecision:
        """A tensor freshly created on the GPU (no swap-in cost), dirty."""
        if key in self._lru:
            self.discard(key)
        evicted, out_bytes = self._make_room(nbytes)
        self._lru[key] = _Resident(nbytes=nbytes, dirty=True)
        self.used += nbytes
        return SwapDecision(
            key=key, hit=True, swap_in_bytes=0, swap_out_bytes=out_bytes,
            evicted=tuple(evicted),
        )

    def discard(self, key: str) -> None:
        """Drop a tensor without write-back (it is dead, e.g. freed grad)."""
        entry = self._lru.pop(key, None)
        if entry is not None:
            self.used -= entry.nbytes

    def flush(self, key: str) -> int:
        """Write a dirty tensor back to host; returns bytes moved."""
        entry = self._lru.get(key)
        if entry is None or not entry.dirty:
            return 0
        entry.dirty = False
        self.total_swap_out += entry.nbytes
        return entry.nbytes

    def unpin(self, key: str) -> None:
        entry = self._lru.get(key)
        if entry is not None:
            entry.pinned = False

    def resident(self, key: str) -> bool:
        return key in self._lru

    # -- internals -------------------------------------------------------------

    def _make_room(self, nbytes: int) -> tuple[list[str], int]:
        evicted: list[str] = []
        out_bytes = 0
        while self.used + nbytes > self.capacity:
            victim = self._next_victim()
            entry = self._lru.pop(victim)
            self.used -= entry.nbytes
            if entry.dirty or self.writeback_clean:
                out_bytes += entry.nbytes
                self.total_swap_out += entry.nbytes
            evicted.append(victim)
        return evicted, out_bytes

    def _next_victim(self) -> str:
        for key, entry in self._lru.items():
            if not entry.pinned:
                return key
        raise GpuOutOfMemoryError(
            "all resident tensors are pinned; working set cannot fit"
        )
