"""Identity-relay sequentialization (Figure 6 of the paper).

Fine-grained layer execution struggles with branches: a tensor produced by
layer *i* and consumed by layer *j > i+1* is alive while the layers in
between run, possibly on other GPUs.  Harmony prefers relaying such branch
tensors hop-by-hop over p2p rather than bouncing them through host memory.
The paper realizes the relay with explicit identity nodes; here the
identity hop is fused into the skipped-over layers as a carried payload,
which produces the same chain structure and the same p2p traffic without
renumbering layers.

After this pass each edge (i, i+1) carries the mainline tensor plus any
in-flight branch tensors, reflected by inflating the act-in/act-out sizes
of every layer inside the skipped-over region.
"""

from __future__ import annotations

from dataclasses import replace

from repro.common.errors import GraphError
from repro.graph.graph import Edge, LayerGraph
from repro.graph.layer import LayerSpec


def sequentialize(graph: LayerGraph) -> LayerGraph:
    """Return a chain graph equivalent to ``graph``.

    Branch tensors (edges skipping over layers) are relayed: for every edge
    ``(src, dst)`` with ``dst > src + 1``, the bytes of ``src``'s output are
    added to the carried payload of every layer strictly between them.  The
    result consumes only predecessor outputs, so it validates as a chain.

    Graphs that are already chains are returned unchanged (same object).
    """
    if graph.is_chain():
        return graph

    n = len(graph)
    if n == 0:
        raise GraphError("cannot sequentialize an empty graph")

    # extra bytes per sample that must be carried across the edge (i, i+1)
    carried = [0] * n
    for edge in graph.edges:
        if edge.dst > edge.src + 1:
            payload = graph[edge.src].act_out_bytes_per_sample
            for i in range(edge.src + 1, edge.dst):
                carried[i] += payload

    new_layers: list[LayerSpec] = []
    for layer in graph.layers:
        extra_in = carried[layer.index - 1] if layer.index > 0 else 0
        extra_out = carried[layer.index]
        if extra_in or extra_out:
            layer = replace(
                layer,
                act_in_bytes_per_sample=layer.act_in_bytes_per_sample + extra_in,
                act_out_bytes_per_sample=layer.act_out_bytes_per_sample + extra_out,
            )
        new_layers.append(layer)

    indexed = [layer.with_index(i) for i, layer in enumerate(new_layers)]
    edges = [Edge(i, i + 1) for i in range(len(indexed) - 1)]
    chain = LayerGraph(name=graph.name, layers=indexed, edges=edges)
    if not chain.is_chain():
        raise GraphError("sequentialization failed to produce a chain")
    return chain
