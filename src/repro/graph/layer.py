"""Per-layer analytic cost model.

A layer is the unit the Decomposer extracts and the Profiler measures:
linear layers, transformer blocks, conv+bn+relu triples, residual adds,
identity relays.  Scheduling only consumes four per-layer quantities --
compute time, memory footprint, input size, output size -- each a function
of phase (forward/backward/update) and microbatch size.  Costs here are
affine in the microbatch size (``fixed + per_sample * u``), which is also
what lets the Profiler's linear regression interpolate unsampled sizes so
accurately (Section 4.2).

Sizes are bytes; compute is FLOPs (the hardware model converts to time).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

FP32_BYTES = 4


class Phase(enum.Enum):
    """The three execution phases of a layer within one iteration."""

    FWD = "forward"
    BWD = "backward"
    UPD = "update"


@dataclass(frozen=True)
class LayerSpec:
    """Analytic description of one layer.

    ``flops_bwd_*`` defaults to twice the forward cost (the usual dgrad +
    wgrad pair); CNN layers override the ratio where the paper notes
    fwd/bwd asymmetry of 2-3x.
    """

    index: int
    name: str
    kind: str
    param_bytes: int
    flops_fwd_per_sample: float
    act_in_bytes_per_sample: int
    act_out_bytes_per_sample: int
    flops_fwd_fixed: float = 0.0
    bwd_flops_ratio: float = 2.0
    workspace_bytes_per_sample: int = 0

    def with_index(self, index: int) -> "LayerSpec":
        return replace(self, index=index)

    # -- state sizes -------------------------------------------------------

    @property
    def grad_bytes(self) -> int:
        """Gradient buffer is the same shape as the weights."""
        return self.param_bytes

    def optimizer_state_bytes(self, slots: int) -> int:
        """Adam keeps two fp32 moments per parameter (``slots == 2``)."""
        return self.param_bytes * slots

    # -- per-phase compute -------------------------------------------------

    def flops(self, phase: Phase, microbatch: int) -> float:
        if microbatch < 0:
            raise ValueError(f"negative microbatch: {microbatch}")
        fwd = self.flops_fwd_fixed + self.flops_fwd_per_sample * microbatch
        if phase is Phase.FWD:
            return fwd
        if phase is Phase.BWD:
            return fwd * self.bwd_flops_ratio
        # Weight update touches each parameter a small constant number of
        # times (Adam: ~10 flops/param).
        return 10.0 * self.param_bytes / FP32_BYTES

    # -- activation sizes ----------------------------------------------------

    def act_in_bytes(self, microbatch: int) -> int:
        return self.act_in_bytes_per_sample * microbatch

    def act_out_bytes(self, microbatch: int) -> int:
        return self.act_out_bytes_per_sample * microbatch

    # -- memory footprints ---------------------------------------------------

    def fwd_memory_bytes(self, microbatch: int) -> int:
        """Resident bytes while this layer's forward kernel runs."""
        return (
            self.param_bytes
            + self.act_in_bytes(microbatch)
            + self.act_out_bytes(microbatch)
            + self.workspace_bytes_per_sample * microbatch
        )

    def bwd_memory_bytes(self, microbatch: int) -> int:
        """Resident bytes during backward: weights + grads + stash + d-acts.

        The stashed (or recomputed) output activation and the incoming
        output-gradient are both alive, as is the produced input-gradient;
        this is why backward footprints run 2-3x forward (Section 4.3.1).
        """
        return (
            self.param_bytes
            + self.grad_bytes
            + self.act_in_bytes(microbatch)
            + 2 * self.act_out_bytes(microbatch)
            + self.act_in_bytes(microbatch)  # produced dX
            + self.workspace_bytes_per_sample * microbatch
        )

    def is_identity(self) -> bool:
        return self.kind == "identity"


def identity_layer(index: int, carried_bytes_per_sample: int, name: str = "") -> LayerSpec:
    """An identity relay node inserted by the sequentializer (Figure 6).

    It carries a branch tensor one hop downstream over p2p with no compute
    and no parameters.
    """
    return LayerSpec(
        index=index,
        name=name or f"identity{index}",
        kind="identity",
        param_bytes=0,
        flops_fwd_per_sample=0.0,
        act_in_bytes_per_sample=carried_bytes_per_sample,
        act_out_bytes_per_sample=carried_bytes_per_sample,
        bwd_flops_ratio=0.0,
    )
