"""The layer-level DAG.

Nodes are :class:`~repro.graph.layer.LayerSpec`; edges carry activations
from producer to consumer.  A *chain* graph (every node consumes only its
predecessor) is what the Scheduler packs; branching graphs must first go
through :func:`~repro.graph.sequentialize.sequentialize`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.common.errors import GraphError
from repro.graph.layer import LayerSpec


@dataclass(frozen=True)
class Edge:
    """Activation flow from layer ``src`` to layer ``dst``."""

    src: int
    dst: int


@dataclass
class LayerGraph:
    """A DAG of layers, indexed 0..R-1 in topological (definition) order."""

    name: str
    layers: list[LayerSpec] = field(default_factory=list)
    edges: list[Edge] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.validate()

    # -- construction --------------------------------------------------------

    @classmethod
    def chain(cls, name: str, layers: Sequence[LayerSpec]) -> "LayerGraph":
        """Build a pure chain graph from an ordered layer list."""
        indexed = [layer.with_index(i) for i, layer in enumerate(layers)]
        edges = [Edge(i, i + 1) for i in range(len(indexed) - 1)]
        return cls(name=name, layers=indexed, edges=edges)

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        for i, layer in enumerate(self.layers):
            if layer.index != i:
                raise GraphError(
                    f"layer at position {i} has index {layer.index}; graphs "
                    "must be indexed densely in topological order"
                )
        n = len(self.layers)
        seen = set()
        for edge in self.edges:
            if not (0 <= edge.src < n and 0 <= edge.dst < n):
                raise GraphError(f"edge {edge} references a missing layer")
            if edge.src >= edge.dst:
                raise GraphError(
                    f"edge {edge} is not forward; layer order must be "
                    "topological"
                )
            if (edge.src, edge.dst) in seen:
                raise GraphError(f"duplicate edge {edge}")
            seen.add((edge.src, edge.dst))

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterator[LayerSpec]:
        return iter(self.layers)

    def __getitem__(self, index: int) -> LayerSpec:
        return self.layers[index]

    def predecessors(self, index: int) -> list[int]:
        return [e.src for e in self.edges if e.dst == index]

    def successors(self, index: int) -> list[int]:
        return [e.dst for e in self.edges if e.src == index]

    def is_chain(self) -> bool:
        """True if every layer consumes exactly its predecessor's output."""
        expected = {(i, i + 1) for i in range(len(self.layers) - 1)}
        return {(e.src, e.dst) for e in self.edges} == expected

    # -- aggregate stats -----------------------------------------------------

    @property
    def total_param_bytes(self) -> int:
        return sum(layer.param_bytes for layer in self.layers)

    @property
    def n_parameters(self) -> int:
        return self.total_param_bytes // 4  # fp32

    def model_state_bytes(self, optimizer_slots: int) -> int:
        """Weights + gradients + optimizer state, the persistent footprint."""
        return self.total_param_bytes * (2 + optimizer_slots)

    def summary(self) -> str:
        return (
            f"{self.name}: {len(self.layers)} layers, "
            f"{self.n_parameters / 1e9:.2f} B params, "
            f"{self.total_param_bytes / 2**30:.1f} GiB weights"
        )


def subchain_layers(graph: LayerGraph, first: int, last: int) -> list[LayerSpec]:
    """Layers ``first..last`` inclusive, with bounds checking."""
    if not (0 <= first <= last < len(graph)):
        raise GraphError(f"bad subchain [{first}, {last}] of {len(graph)} layers")
    return graph.layers[first : last + 1]


def iter_packs(boundaries: Iterable[tuple[int, int]]) -> Iterator[tuple[int, int]]:
    """Validate a pack list is contiguous and ordered; yields it unchanged."""
    prev_last = -1
    for first, last in boundaries:
        if first != prev_last + 1:
            raise GraphError(
                f"pack ({first}, {last}) does not start right after layer "
                f"{prev_last}; packs must partition the chain contiguously"
            )
        if last < first:
            raise GraphError(f"pack ({first}, {last}) is empty")
        prev_last = last
        yield first, last
