"""Layer-granularity model graphs.

Harmony's Decomposer extracts a *layer-level* graph (not operator-level)
from the user's model via module pre/post hooks, then sequentializes any
branches by relaying tensors through identity nodes (Figure 6).  This
package provides:

- :class:`~repro.graph.layer.LayerSpec` -- one layer's analytic cost model
  (parameters, FLOPs, activation sizes, per phase and microbatch size).
- :class:`~repro.graph.graph.LayerGraph` -- the DAG plus validation.
- :func:`~repro.graph.sequentialize.sequentialize` -- the identity-relay
  pass that turns a branching graph into a chain.
- :mod:`~repro.graph.tracer` -- a tiny module system with hooks, the
  analog of tracing an imperative PyTorch script.
"""

from repro.graph.layer import LayerSpec, Phase
from repro.graph.graph import LayerGraph
from repro.graph.sequentialize import sequentialize

__all__ = ["LayerSpec", "Phase", "LayerGraph", "sequentialize"]
