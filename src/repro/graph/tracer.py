"""A tiny module system with pre/post hooks -- the Decomposer's front end.

The paper extracts layer graphs from imperative PyTorch scripts using
module pre/post hooks (like PipeDream).  This module reproduces that
mechanism for our substrate: users compose :class:`Module` objects and
call them imperatively in ``forward``; running the model once under
:func:`trace` records every leaf invocation plus the tensor data flow
between them, yielding a :class:`~repro.graph.graph.LayerGraph`.

Tensors during tracing are :class:`SymbolicTensor` -- just a byte size and
a producer id -- so tracing a 40-billion-parameter model is instant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.common.errors import GraphError
from repro.graph.graph import Edge, LayerGraph
from repro.graph.layer import FP32_BYTES, LayerSpec


@dataclass(frozen=True)
class SymbolicTensor:
    """Placeholder tensor: per-sample byte size plus who produced it."""

    bytes_per_sample: int
    producer: Optional[int] = None  # layer index; None == graph input


class _Tracer:
    """Accumulates layers and edges while the model's forward runs."""

    def __init__(self) -> None:
        self.layers: list[LayerSpec] = []
        self.edges: set[tuple[int, int]] = set()

    def record(
        self,
        build_spec: Callable[[int], LayerSpec],
        inputs: tuple[SymbolicTensor, ...],
    ) -> SymbolicTensor:
        index = len(self.layers)
        spec = build_spec(index)
        self.layers.append(spec)
        for tensor in inputs:
            if tensor.producer is not None:
                self.edges.add((tensor.producer, index))
        return SymbolicTensor(
            bytes_per_sample=spec.act_out_bytes_per_sample, producer=index
        )


_ACTIVE_TRACER: Optional[_Tracer] = None


class Module:
    """Base class: containers override ``forward`` and call submodules."""

    def forward(self, *inputs: SymbolicTensor) -> SymbolicTensor:
        raise NotImplementedError

    def __call__(self, *inputs: SymbolicTensor) -> SymbolicTensor:
        return self.forward(*inputs)


class Leaf(Module):
    """A leaf module records itself as one layer when invoked.

    Subclasses implement :meth:`build_spec`, mapping the (already known)
    input tensor sizes to a :class:`LayerSpec`.
    """

    def build_spec(self, index: int, inputs: tuple[SymbolicTensor, ...]) -> LayerSpec:
        raise NotImplementedError

    def forward(self, *inputs: SymbolicTensor) -> SymbolicTensor:
        if _ACTIVE_TRACER is None:
            raise GraphError(
                "leaf modules can only run under trace(); wrap the call in "
                "repro.graph.tracer.trace"
            )
        return _ACTIVE_TRACER.record(
            lambda index: self.build_spec(index, inputs), inputs
        )


class Dense(Leaf):
    """A dense layer: ``out = act(x @ W + b)`` on flattened features."""

    def __init__(self, in_features: int, out_features: int, name: str = "dense"):
        self.in_features = in_features
        self.out_features = out_features
        self.name = name

    def build_spec(self, index: int, inputs: tuple[SymbolicTensor, ...]) -> LayerSpec:
        (x,) = inputs
        params = (self.in_features + 1) * self.out_features * FP32_BYTES
        return LayerSpec(
            index=index,
            name=f"{self.name}{index}",
            kind="dense",
            param_bytes=params,
            flops_fwd_per_sample=2.0 * self.in_features * self.out_features,
            act_in_bytes_per_sample=x.bytes_per_sample,
            act_out_bytes_per_sample=self.out_features * FP32_BYTES,
        )


class Conv2d(Leaf):
    """Conv + BN + ReLU treated as one layer (the usual fusion)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        spatial: int,
        kernel: int = 3,
        stride: int = 1,
        name: str = "conv",
    ):
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.spatial = spatial  # input H == W
        self.kernel = kernel
        self.stride = stride
        self.name = name

    @property
    def out_spatial(self) -> int:
        return max(1, self.spatial // self.stride)

    def build_spec(self, index: int, inputs: tuple[SymbolicTensor, ...]) -> LayerSpec:
        (x,) = inputs
        out_hw = self.out_spatial * self.out_spatial
        flops = 2.0 * self.kernel**2 * self.in_channels * self.out_channels * out_hw
        params = (self.kernel**2 * self.in_channels + 2) * self.out_channels
        return LayerSpec(
            index=index,
            name=f"{self.name}{index}",
            kind="conv",
            param_bytes=params * FP32_BYTES,
            flops_fwd_per_sample=flops,
            act_in_bytes_per_sample=x.bytes_per_sample,
            act_out_bytes_per_sample=self.out_channels * out_hw * FP32_BYTES,
            bwd_flops_ratio=2.0,
        )


class Add(Leaf):
    """Residual addition of two branch tensors."""

    def build_spec(self, index: int, inputs: tuple[SymbolicTensor, ...]) -> LayerSpec:
        if len(inputs) != 2:
            raise GraphError(f"Add expects 2 inputs, got {len(inputs)}")
        out_bytes = max(t.bytes_per_sample for t in inputs)
        return LayerSpec(
            index=index,
            name=f"add{index}",
            kind="add",
            param_bytes=0,
            flops_fwd_per_sample=out_bytes / FP32_BYTES,
            act_in_bytes_per_sample=sum(t.bytes_per_sample for t in inputs),
            act_out_bytes_per_sample=out_bytes,
            bwd_flops_ratio=1.0,
        )


class Pool2d(Leaf):
    """Max/avg pooling halving the spatial extent."""

    def __init__(self, channels: int, in_spatial: int, factor: int = 2):
        self.channels = channels
        self.in_spatial = in_spatial
        self.factor = factor

    @property
    def out_spatial(self) -> int:
        return max(1, self.in_spatial // self.factor)

    def build_spec(self, index: int, inputs: tuple[SymbolicTensor, ...]) -> LayerSpec:
        (x,) = inputs
        out_bytes = self.channels * self.out_spatial**2 * FP32_BYTES
        return LayerSpec(
            index=index,
            name=f"pool{index}",
            kind="pool",
            param_bytes=0,
            flops_fwd_per_sample=x.bytes_per_sample / FP32_BYTES,
            act_in_bytes_per_sample=x.bytes_per_sample,
            act_out_bytes_per_sample=out_bytes,
            bwd_flops_ratio=1.0,
        )


def trace(model: Module, input_bytes_per_sample: int, name: str) -> LayerGraph:
    """Run ``model`` once on a symbolic input and return its layer graph.

    The returned graph may branch (e.g. residual skips); pass it through
    :func:`repro.graph.sequentialize.sequentialize` before scheduling.
    """
    global _ACTIVE_TRACER
    if _ACTIVE_TRACER is not None:
        raise GraphError("trace() is not reentrant")
    tracer = _Tracer()
    _ACTIVE_TRACER = tracer
    try:
        output = model(SymbolicTensor(bytes_per_sample=input_bytes_per_sample))
    finally:
        _ACTIVE_TRACER = None
    if output.producer is None:
        raise GraphError("model produced no layers")
    edges = [Edge(src, dst) for src, dst in sorted(tracer.edges)]
    return LayerGraph(name=name, layers=tracer.layers, edges=edges)
