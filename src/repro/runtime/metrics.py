"""Execution metrics collected by the Runtime.

Everything the paper's figures plot comes from here: iteration time (and
thus throughput), per-GPU swap-in/out volume, global swap volume, p2p
volume, per-stream busy time, and memory high-water marks.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class GpuMetrics:
    """Per-GPU counters for one iteration."""

    swap_in_bytes: int = 0
    swap_out_bytes: int = 0
    p2p_in_bytes: int = 0
    compute_busy: float = 0.0
    cpu_busy: float = 0.0
    peak_resident_bytes: int = 0

    @property
    def swap_bytes(self) -> int:
        return self.swap_in_bytes + self.swap_out_bytes


@dataclass
class RunMetrics:
    """One iteration's results."""

    mode: str
    minibatch: int
    iteration_time: float
    gpus: list[GpuMetrics] = field(default_factory=list)
    host_peak_bytes: int = 0

    @property
    def throughput(self) -> float:
        """Samples per second."""
        if self.iteration_time <= 0:
            return 0.0
        return self.minibatch / self.iteration_time

    @property
    def global_swap_bytes(self) -> int:
        """Aggregate CPU<->GPU traffic across all GPUs (Figure 10c)."""
        return sum(g.swap_bytes for g in self.gpus)

    @property
    def global_p2p_bytes(self) -> int:
        return sum(g.p2p_in_bytes for g in self.gpus)

    def idle_fraction(self, gpu: int) -> float:
        if self.iteration_time <= 0:
            return 0.0
        busy = self.gpus[gpu].compute_busy
        return max(0.0, 1.0 - busy / self.iteration_time)

    def describe(self) -> str:
        lines = [
            f"{self.mode}: iteration {self.iteration_time:.3f}s, "
            f"{self.throughput:.2f} samples/s, "
            f"global swap {self.global_swap_bytes / 2**30:.2f} GiB, "
            f"p2p {self.global_p2p_bytes / 2**30:.2f} GiB"
        ]
        for i, g in enumerate(self.gpus):
            lines.append(
                f"  gpu{i}: swap in {g.swap_in_bytes / 2**30:.2f} GiB / "
                f"out {g.swap_out_bytes / 2**30:.2f} GiB, "
                f"idle {self.idle_fraction(i) * 100:.0f}%"
            )
        return "\n".join(lines)
