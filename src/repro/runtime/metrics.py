"""Execution metrics collected by the Runtime.

Everything the paper's figures plot comes from here: iteration time (and
thus throughput), per-GPU swap-in/out volume, global swap volume, p2p
volume, per-stream busy time, and memory high-water marks.  Fault-tolerant
runs additionally report recovery counters (retries, p2p->swap fallbacks,
re-binds, restarts) through :class:`RecoveryMetrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.service.metrics import ServiceMetrics
    from repro.trace.analytics import TraceAnalytics


@dataclass
class GpuMetrics:
    """Per-GPU counters for one iteration."""

    swap_in_bytes: int = 0
    swap_out_bytes: int = 0
    p2p_in_bytes: int = 0
    compute_busy: float = 0.0
    cpu_busy: float = 0.0
    #: wall time the swap engine was occupied (queueing + link holds)
    swap_busy: float = 0.0
    #: wall time the p2p engine was occupied (queueing + link holds)
    p2p_busy: float = 0.0
    peak_resident_bytes: int = 0

    @property
    def swap_bytes(self) -> int:
        return self.swap_in_bytes + self.swap_out_bytes

    def accumulate(self, other: "GpuMetrics") -> None:
        """Fold another iteration's counters into this one (summing)."""
        self.swap_in_bytes += other.swap_in_bytes
        self.swap_out_bytes += other.swap_out_bytes
        self.p2p_in_bytes += other.p2p_in_bytes
        self.compute_busy += other.compute_busy
        self.cpu_busy += other.cpu_busy
        self.swap_busy += other.swap_busy
        self.p2p_busy += other.p2p_busy
        self.peak_resident_bytes = max(
            self.peak_resident_bytes, other.peak_resident_bytes
        )


@dataclass
class RecoveryMetrics:
    """Every recovery action a fault-tolerant run took, by mechanism.

    ``faults_injected`` counts fault deliveries by the chaos engine
    (transfer faults, crashes, degraded-link path acquisitions, straggler
    GPUs, pressure epochs); the remaining counters say what the runtime
    did about them.  ``faults_fatal`` counts fault escalations that killed
    a whole iteration attempt (each one pairs with a restart, except the
    last when the run ultimately failed).
    """

    transfer_retries: int = 0
    compute_retries: int = 0
    p2p_fallbacks: int = 0
    fallback_bytes: int = 0
    rebinds: int = 0
    restarts: int = 0
    faults_injected: int = 0
    faults_fatal: int = 0

    @property
    def total_actions(self) -> int:
        return (
            self.transfer_retries + self.compute_retries + self.p2p_fallbacks
            + self.rebinds + self.restarts
        )

    @property
    def any(self) -> bool:
        return self.total_actions > 0 or self.faults_injected > 0

    def accumulate(self, other: "RecoveryMetrics") -> None:
        self.transfer_retries += other.transfer_retries
        self.compute_retries += other.compute_retries
        self.p2p_fallbacks += other.p2p_fallbacks
        self.fallback_bytes += other.fallback_bytes
        self.rebinds += other.rebinds
        self.restarts += other.restarts
        self.faults_injected += other.faults_injected
        self.faults_fatal += other.faults_fatal

    def describe(self) -> str:
        return (
            f"faults {self.faults_injected} injected / "
            f"{self.faults_fatal} fatal; recovery: "
            f"{self.transfer_retries} transfer retries, "
            f"{self.compute_retries} compute retries, "
            f"{self.p2p_fallbacks} p2p->swap fallbacks "
            f"({self.fallback_bytes / 2**20:.2f} MiB), "
            f"{self.rebinds} rebinds, {self.restarts} restarts"
        )


@dataclass
class ElasticMetrics:
    """Every elastic action a run took: re-plans and state migration.

    All zeros unless the escalation ladder actually reached a re-plan --
    the bit-identity guarantee for fault-free (and spare-rescued) runs
    depends on this staying pay-for-use.
    """

    #: full scheduler re-invocations on a reduced device set
    replans: int = 0
    #: devices permanently lost during the run
    devices_lost: int = 0
    #: re-plans that had to change execution mode (e.g. DP -> PP)
    mode_switches: int = 0
    #: aggregated migration moves executed across all re-plans
    migrations: int = 0
    #: virtual seconds spent migrating state (included in total run time)
    migration_time: float = 0.0
    #: migration bytes that rode surviving p2p paths
    migration_p2p_bytes: int = 0
    #: migration bytes that rode host links (restores, spills, relays)
    migration_host_bytes: int = 0

    @property
    def migration_bytes(self) -> int:
        return self.migration_p2p_bytes + self.migration_host_bytes

    @property
    def any(self) -> bool:
        return (
            self.replans > 0 or self.devices_lost > 0
            or self.migrations > 0
        )

    def accumulate(self, other: "ElasticMetrics") -> None:
        self.replans += other.replans
        self.devices_lost += other.devices_lost
        self.mode_switches += other.mode_switches
        self.migrations += other.migrations
        self.migration_time += other.migration_time
        self.migration_p2p_bytes += other.migration_p2p_bytes
        self.migration_host_bytes += other.migration_host_bytes

    def describe(self) -> str:
        switches = (
            f" ({self.mode_switches} mode switch(es))"
            if self.mode_switches else ""
        )
        return (
            f"elastic: {self.devices_lost} device(s) lost, "
            f"{self.replans} re-plan(s){switches}; migration "
            f"{self.migrations} moves, {self.migration_time:.3f}s, "
            f"p2p {self.migration_p2p_bytes / 2**20:.2f} MiB, "
            f"host {self.migration_host_bytes / 2**20:.2f} MiB"
        )


@dataclass
class ClusterMetrics:
    """Every cluster-level fault and recovery action a run took.

    Pay-for-use like :class:`ElasticMetrics`: all zeros on a single-server
    run (the field stays ``None`` on :class:`RunMetrics` there), and the
    per-category fault counters double as the ``--json`` chaos report's
    cluster section.
    """

    #: servers permanently crashed (injected whole-server loss)
    servers_lost: int = 0
    #: servers retired by the server health monitor (struck out)
    servers_retired: int = 0
    #: cluster-level re-plans (stage remap / reshard on the survivors)
    cluster_replans: int = 0
    #: re-plans that reduced the pipeline stage count
    stage_shrinks: int = 0
    #: comm phases stalled waiting for a partition window to heal
    partition_stalls: int = 0
    #: virtual seconds spent stalled on partitions (in total run time)
    partition_stall_time: float = 0.0
    #: cross-server bytes moved (activations, gradients, allreduce,
    #: replication) over the network fabric
    network_bytes: int = 0
    #: subset of ``network_bytes`` that was buddy checkpoint replication
    replication_bytes: int = 0
    #: state-migration moves executed over network links after re-plans
    migration_moves: int = 0
    #: migration bytes that rode the network fabric
    migration_network_bytes: int = 0
    #: virtual seconds spent in cross-server state migration
    migration_time: float = 0.0
    #: stage states restored from a buddy replica (owner was dead)
    state_restores: int = 0
    # -- injected cluster faults, by category (the chaos report's counts) --
    server_crashes: int = 0
    partition_epochs: int = 0
    nic_degrade_epochs: int = 0
    switch_flap_epochs: int = 0

    @property
    def any(self) -> bool:
        return (
            self.servers_lost > 0 or self.servers_retired > 0
            or self.cluster_replans > 0 or self.partition_stalls > 0
            or self.network_bytes > 0 or self.migration_moves > 0
            or self.server_crashes > 0 or self.partition_epochs > 0
            or self.nic_degrade_epochs > 0 or self.switch_flap_epochs > 0
        )

    def fault_counts(self) -> dict[str, int]:
        """Injected cluster faults by category (for the chaos report)."""
        return {
            "server_crash": self.server_crashes,
            "partition": self.partition_epochs,
            "nic_degrade": self.nic_degrade_epochs,
            "switch_flap": self.switch_flap_epochs,
        }

    def accumulate(self, other: "ClusterMetrics") -> None:
        self.servers_lost += other.servers_lost
        self.servers_retired += other.servers_retired
        self.cluster_replans += other.cluster_replans
        self.stage_shrinks += other.stage_shrinks
        self.partition_stalls += other.partition_stalls
        self.partition_stall_time += other.partition_stall_time
        self.network_bytes += other.network_bytes
        self.replication_bytes += other.replication_bytes
        self.migration_moves += other.migration_moves
        self.migration_network_bytes += other.migration_network_bytes
        self.migration_time += other.migration_time
        self.state_restores += other.state_restores
        self.server_crashes += other.server_crashes
        self.partition_epochs += other.partition_epochs
        self.nic_degrade_epochs += other.nic_degrade_epochs
        self.switch_flap_epochs += other.switch_flap_epochs

    def describe(self) -> str:
        return (
            f"cluster: {self.servers_lost} server(s) lost "
            f"(+{self.servers_retired} retired), "
            f"{self.cluster_replans} cluster re-plan(s) "
            f"({self.stage_shrinks} stage shrink(s), "
            f"{self.state_restores} replica restore(s)); "
            f"network {self.network_bytes / 2**20:.2f} MiB "
            f"(repl {self.replication_bytes / 2**20:.2f} MiB), migration "
            f"{self.migration_moves} moves / "
            f"{self.migration_network_bytes / 2**20:.2f} MiB / "
            f"{self.migration_time:.3f}s; "
            f"{self.partition_stalls} partition stall(s) "
            f"({self.partition_stall_time:.3f}s); faults "
            f"{self.server_crashes} crash, {self.partition_epochs} "
            f"partition, {self.nic_degrade_epochs} nic, "
            f"{self.switch_flap_epochs} switch epochs"
        )


@dataclass
class RunMetrics:
    """One iteration's results."""

    mode: str
    minibatch: int
    iteration_time: float
    gpus: list[GpuMetrics] = field(default_factory=list)
    host_peak_bytes: int = 0
    recovery: RecoveryMetrics = field(default_factory=RecoveryMetrics)
    elastic: ElasticMetrics = field(default_factory=ElasticMetrics)
    #: Derived timeline analytics, present when the run was traced
    #: (:mod:`repro.trace`).  When set, the fraction accessors below use
    #: exact interval arithmetic over the trace instead of aggregate
    #: counters.
    trace: Optional["TraceAnalytics"] = None
    #: Service-level counters, present when these metrics describe a
    #: :class:`repro.service.PlannerService` run (mode ``"service"``:
    #: ``minibatch`` is the request count, ``iteration_time`` the
    #: makespan, so ``throughput`` reads requests per virtual second).
    service: Optional["ServiceMetrics"] = None
    #: Cluster-level counters, present when these metrics describe a
    #: multi-server :class:`repro.cluster.ClusterRunner` run.
    cluster: Optional[ClusterMetrics] = None

    @property
    def throughput(self) -> float:
        """Samples per second.  0.0 on a degenerate (zero-duration) run."""
        if self.iteration_time <= 0:
            return 0.0
        return self.minibatch / self.iteration_time

    @property
    def global_swap_bytes(self) -> int:
        """Aggregate CPU<->GPU traffic across all GPUs (Figure 10c)."""
        return sum(g.swap_bytes for g in self.gpus)

    @property
    def global_p2p_bytes(self) -> int:
        return sum(g.p2p_in_bytes for g in self.gpus)

    def idle_fraction(self, gpu: int) -> float:
        """Fraction of the iteration ``gpu`` spent idle.

        With trace analytics attached this is exact (the complement of
        the measure of the union of the device's compute spans over the
        traced window); otherwise it falls back to the aggregate busy
        counter, which agrees on any run where attempts never overlap --
        i.e. always, since the compute lane is serial; the trace test
        suite asserts the two paths coincide on fault-free runs.

        0.0 on a degenerate run (no virtual time elapsed): an idle
        fraction of an instantaneous run is meaningless, and callers
        plotting it want a finite number, not a ZeroDivisionError.
        """
        if self.trace is not None and gpu < self.trace.n_devices:
            return self.trace.idle_fraction(gpu)
        if self.iteration_time <= 0:
            return 0.0
        busy = self.gpus[gpu].compute_busy
        return max(0.0, 1.0 - busy / self.iteration_time)

    def overlap_fraction(self, gpu: int) -> float:
        """Fraction of ``gpu``'s swap/p2p engine time hidden under compute.

        This is the number Harmony's double-buffered prefetch exists to
        maximize.  Exact (measure of compute spans intersect swap holds,
        over the swap hold time) when trace analytics are attached;
        without a trace only an upper bound is computable from
        aggregates -- ``min(compute_busy, swap_busy) / swap_busy`` --
        and that bound is returned.
        """
        if self.trace is not None and gpu < self.trace.n_devices:
            return self.trace.overlap_fraction(gpu)
        g = self.gpus[gpu]
        if g.swap_busy <= 0:
            return 0.0
        return min(g.compute_busy, g.swap_busy) / g.swap_busy

    def describe(self) -> str:
        lines = [
            f"{self.mode}: iteration {self.iteration_time:.3f}s, "
            f"{self.throughput:.2f} samples/s, "
            f"global swap {self.global_swap_bytes / 2**30:.2f} GiB, "
            f"p2p {self.global_p2p_bytes / 2**30:.2f} GiB"
        ]
        for i, g in enumerate(self.gpus):
            lines.append(
                f"  gpu{i}: swap in {g.swap_in_bytes / 2**30:.2f} GiB / "
                f"out {g.swap_out_bytes / 2**30:.2f} GiB, "
                f"idle {self.idle_fraction(i) * 100:.0f}%"
            )
        if self.recovery.any:
            lines.append(f"  {self.recovery.describe()}")
        if self.elastic.any:
            lines.append(f"  {self.elastic.describe()}")
        if self.cluster is not None and self.cluster.any:
            lines.append(f"  {self.cluster.describe()}")
        if self.trace is not None:
            lines.extend(
                "  " + line for line in self.trace.describe().splitlines()
            )
        if self.service is not None:
            lines.extend(
                "  " + line for line in self.service.describe().splitlines()
            )
        return "\n".join(lines)
