"""Ground-truth task timing for the Runtime.

The Scheduler estimates with regressed profiles; the Runtime executes with
the *true* per-layer kernel times (including the deterministic kernel
noise), which is exactly the estimated-vs-actual gap Figure 14 measures.
"""

from __future__ import annotations

from repro.core.decomposer import DecomposedModel
from repro.core.types import Task, TaskKind
from repro.graph.layer import Phase
from repro.hardware.gpu import GpuSpec
from repro.hardware.host import HostSpec


class TrueTimeModel:
    """Computes what a task's kernels actually take on the machine."""

    def __init__(self, decomposed: DecomposedModel, gpu: GpuSpec, host: HostSpec,
                 n_gpus: int):
        self.units = decomposed.units
        self.gpu = gpu
        self.host = host
        self.cores_per_runtime = max(1, host.cores // max(1, n_gpus))

    def _pack_time(self, task: Task, phase: Phase, u: int) -> float:
        return sum(
            self.units[i].run_time(self.gpu, phase, u) for i in task.layers
        )

    def microbatch_time(self, task: Task, u: int) -> float:
        """Wall time of one microbatch of ``task`` on the GPU."""
        if task.kind is TaskKind.FWD:
            return self._pack_time(task, Phase.FWD, u)
        if task.kind is TaskKind.BWD:
            bwd = self._pack_time(task, Phase.BWD, u)
            if task.fused:
                # jit-compute: forward runs here instead of a separate task;
                # no rematerialization needed.
                return self._pack_time(task, Phase.FWD, u) + bwd
            if task.recompute:
                return self._pack_time(task, Phase.FWD, u) + bwd
            return bwd
        raise ValueError(f"update tasks are timed via update_time: {task.label}")

    def update_time(self, task: Task) -> float:
        """Weight-update wall time (CPU-offloaded or on the GPU)."""
        if task.kind is not TaskKind.UPD:
            raise ValueError(f"not an update task: {task.label}")
        if task.on_cpu:
            return self.host.optimizer_time(
                task.compute_flops, cores_used=self.cores_per_runtime
            )
        return sum(
            self.units[i].run_time(self.gpu, Phase.UPD, 1) for i in task.layers
        )

    def task_compute_time(self, task: Task) -> float:
        """Total compute across the task's microbatch group."""
        if task.kind is TaskKind.UPD:
            return self.update_time(task)
        return sum(self.microbatch_time(task, u) for u in task.microbatches)
