"""Executes a planned state migration over the real simulated links.

The moves come from :func:`repro.elastic.migration.plan_migration`; this
module spends the virtual time.  Every move runs as its own simulator
process, so migrations contend with each other on shared hops (several
survivors restoring from the host checkpoint all squeeze through the
oversubscribed switch uplinks -- the same bottleneck training traffic
fights over), and the reported migration time is the makespan of the
whole phase, not a sum of uncontended transfer times.

Routing mirrors the training executor's conventions:

- host -> GPU (checkpoint restore) rides the host-to-GPU tree path;
- GPU -> host (state spill) rides the GPU-to-host path plus the pageable
  staging engine, like every pageable swap;
- GPU -> GPU rides the p2p path when the plan allows p2p, else the
  host-staged relay (both legs counted as host traffic, exactly like the
  executor's p2p->swap fallback accounting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Iterable, Optional

from repro.common.errors import SimulationError
from repro.elastic.migration import MigrationMove
from repro.hardware.server import ServerSpec, SimulatedServer
from repro.sim.engine import Simulator
from repro.sim.links import transfer

#: Watchdog for the migration phase: a handful of bulk transfers needs
#: a few thousand events at most; runaway growth means a broken move.
MIGRATION_MAX_STEPS = 1_000_000


@dataclass
class MigrationReport:
    """What one migration phase cost."""

    time: float = 0.0
    p2p_bytes: int = 0
    host_bytes: int = 0
    n_moves: int = 0

    def describe(self) -> str:
        return (
            f"migration: {self.n_moves} moves in {self.time:.3f}s, "
            f"p2p {self.p2p_bytes / 2**20:.2f} MiB, "
            f"host {self.host_bytes / 2**20:.2f} MiB"
        )


class MigrationExecutor:
    """Run a migration move list on a fresh simulated server.

    ``trace`` (a :class:`~repro.trace.recorder.TraceRecorder`) attaches to
    the phase's private simulator; every move lands as one ``migration``
    span (its transfer legs as ``xfer`` spans on the ``migration`` lane,
    so they never pollute training swap/p2p accounting) and the phase
    advances the recorder's global timeline by its makespan.
    """

    def __init__(self, spec: ServerSpec, p2p: bool = True, trace=None):
        self.spec = spec
        self.p2p = p2p
        self.trace = trace

    def _move_op(self, live: SimulatedServer, sim: Simulator,
                 move: MigrationMove,
                 report: MigrationReport) -> Generator:
        tree = live.tree
        start = sim.now
        device = move.dst if move.dst is not None else move.src
        if device is None:
            raise SimulationError(
                f"host->host migration move should have been elided: {move}"
            )
        if move.src is None:
            # Checkpoint restore: host -> surviving GPU.
            yield from transfer(sim, tree.host_to_gpu(move.dst), move.nbytes,
                                label=move.label, device=device,
                                lane="migration")
            report.host_bytes += move.nbytes
        elif move.dst is None:
            # State spill: GPU -> host (pageable, so staging throttles).
            path = tree.gpu_to_host(move.src) + [live.pageable_staging]
            yield from transfer(sim, path, move.nbytes, label=move.label,
                                device=device, lane="migration")
            report.host_bytes += move.nbytes
        elif self.p2p:
            yield from transfer(
                sim, tree.gpu_to_gpu(move.src, move.dst), move.nbytes,
                label=move.label, device=device, lane="migration",
            )
            report.p2p_bytes += move.nbytes
        else:
            # No p2p allowed: host-staged relay, both legs real traffic.
            up = tree.gpu_to_host(move.src) + [live.pageable_staging]
            yield from transfer(sim, up, move.nbytes, label=move.label,
                                device=device, lane="migration")
            report.host_bytes += move.nbytes
            yield from transfer(sim, tree.host_to_gpu(move.dst), move.nbytes,
                                label=f"{move.label}^", device=device,
                                lane="migration")
            report.host_bytes += move.nbytes
        trace = sim.trace
        if trace is not None:
            trace.span("migration", move.label, start, sim.now,
                       device=device, lane="migration", nbytes=move.nbytes,
                       src=-1 if move.src is None else move.src,
                       dst=-1 if move.dst is None else move.dst)

    def run(self, moves: Iterable[MigrationMove],
            max_steps: Optional[int] = MIGRATION_MAX_STEPS) -> MigrationReport:
        """Execute all moves concurrently; returns the phase's cost."""
        report = MigrationReport()
        todo = list(moves)
        if not todo:
            return report
        sim = Simulator()
        sim.trace = self.trace
        live = SimulatedServer(sim, self.spec)
        for i, move in enumerate(todo):
            sim.process(
                self._move_op(live, sim, move, report),
                name=f"{move.label}#{i}",
            )
        sim.run(max_steps=max_steps)
        report.time = sim.now
        report.n_moves = len(todo)
        if self.trace is not None:
            self.trace.advance(sim.now)
        return report


@dataclass(frozen=True)
class NetworkMove:
    """One cross-server state move: ``nbytes`` from server ``src`` to ``dst``."""

    src: int
    dst: int
    nbytes: int
    label: str = "net-move"

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise SimulationError(
                f"negative network move size: {self.nbytes} ({self.label})"
            )


class NetworkMigrationExecutor:
    """Run cross-server state moves over a cluster's real network fabric.

    The cluster analog of :class:`MigrationExecutor`: every move is its own
    simulator process, so simultaneous restores contend on the shared
    switch link and the reported time is the phase makespan.  The caller
    supplies ``fabric_factory(sim)`` returning an object with
    ``route(src, dst)`` (a list of :class:`~repro.sim.links.NetworkLink`
    hops) and ``bytes_by_link()`` -- normally a
    :class:`~repro.cluster.fabric.ClusterFabric` bound to the phase's
    private simulator, optionally pre-armed with fault degradation.

    After :meth:`run`, ``link_bytes`` holds the per-link byte counters the
    phase produced, for the runner's network byte reconciliation.
    """

    def __init__(self, fabric_factory: Callable[[Simulator], object],
                 trace=None):
        self.fabric_factory = fabric_factory
        self.trace = trace
        self.link_bytes: dict = {}

    def _move_op(self, fabric, sim: Simulator, move: NetworkMove,
                 report: MigrationReport) -> Generator:
        start = sim.now
        path = fabric.route(move.src, move.dst)
        yield from transfer(sim, path, move.nbytes, label=move.label,
                            device=-1, lane="cluster")
        report.host_bytes += move.nbytes
        trace = sim.trace
        if trace is not None:
            # cat "cluster", not "migration": the fault-event invariant
            # pairs "migration" spans 1:1 with per-server elastic counters,
            # and cross-server moves are counted separately in
            # ClusterMetrics.migration_moves.
            trace.span("cluster", move.label, start, sim.now,
                       device=-1, lane="cluster", nbytes=move.nbytes,
                       kind_="migration", src=move.src, dst=move.dst)

    def run(self, moves: Iterable[NetworkMove],
            max_steps: Optional[int] = MIGRATION_MAX_STEPS) -> MigrationReport:
        """Execute all moves concurrently; returns the phase's cost."""
        report = MigrationReport()
        todo = [m for m in moves if m.src != m.dst and m.nbytes > 0]
        self.link_bytes = {}
        if not todo:
            return report
        sim = Simulator()
        sim.trace = self.trace
        fabric = self.fabric_factory(sim)
        for i, move in enumerate(todo):
            sim.process(
                self._move_op(fabric, sim, move, report),
                name=f"{move.label}#{i}",
            )
        sim.run(max_steps=max_steps)
        report.time = sim.now
        report.n_moves = len(todo)
        self.link_bytes = dict(fabric.bytes_by_link())
        if self.trace is not None:
            self.trace.advance(sim.now)
        return report
