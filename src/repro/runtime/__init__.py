"""Harmony's Runtime (Section 4.4), on the simulated server.

One runtime process per GPU, five CUDA streams each (compute, swap-in,
swap-out, p2p-in, p2p-out), prefetch with double buffering, CPU-offloaded
weight updates, and a central memory accounting pass.  The same executor
runs Harmony task graphs and every baseline's, so throughput and swap
metrics are directly comparable.
"""

from repro.runtime.executor import Executor, run_task_graph
from repro.runtime.metrics import GpuMetrics, RunMetrics
from repro.runtime.timemodel import TrueTimeModel

__all__ = [
    "Executor",
    "run_task_graph",
    "GpuMetrics",
    "RunMetrics",
    "TrueTimeModel",
]
