"""The Runtime executor: runs a task graph on the simulated server.

Execution model (Section 4.4 of the paper):

- one runtime process per GPU, each owning five streams (compute, swap-in,
  swap-out, p2p-in, p2p-out) plus a host-side lane for CPU-offloaded
  weight updates;
- prefetch with double buffering: a task's inputs are fetched while the
  previous task computes, throttled by fetch "slots" (two with prefetch
  enabled, one without);
- per-microbatch pipelining: a task's microbatch *i* computes as soon as
  its input chunk *i* has arrived, which is what makes the wrap-around
  pipeline actually pipeline;
- receiver-driven p2p: the consuming GPU pulls activation chunks over the
  PCIe tree, contending on shared links with everyone else's swaps.

State tensors (weights, gradients, optimizer state) move once per task;
activation-family tensors (X/Y/DY/CKPT) move per microbatch.

Fault tolerance: when a :class:`~repro.faults.injector.FaultInjector` is
attached, every transfer and compute attempt first asks it for an injected
fault.  Transient transfer faults retry with exponential backoff; a p2p
path that stays faulted degrades to a host-staged swap route (the bytes
re-accounted as swap traffic, riding the same contended links real swaps
use); crashed compute attempts retry from their still-resident inputs.
Faults that exhaust the :class:`~repro.faults.policy.RecoveryPolicy`
propagate as typed :class:`~repro.common.errors.FaultError` through the
simulator's failure machinery -- never as a hang, which the simulator
watchdog (``max_steps`` / ``horizon``) additionally enforces.  With no
injector attached the fault hooks are never consulted and execution is
bit-identical to the pre-fault runtime.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, Optional, Sequence

from repro.analysis.diagnostics import stream_ref, task_ref
from repro.common.errors import (
    HostOutOfMemoryError,
    SchedulingError,
    SimulationError,
    TransferFaultError,
)
from repro.core.taskgraph import mb_dependency
from repro.core.types import Channel, Move, Task, TaskGraph, TaskKind, TensorKind
from repro.hardware.server import SimulatedServer
from repro.runtime.metrics import GpuMetrics, RecoveryMetrics, RunMetrics
from repro.runtime.timemodel import TrueTimeModel
from repro.sim.engine import Resource, SimEvent, Simulator
from repro.sim.links import Link, transfer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.faults.injector import FaultInjector
    from repro.faults.policy import RecoveryPolicy

_PER_TASK_TENSORS = frozenset({TensorKind.W, TensorKind.DW, TensorKind.K})

#: Watchdog default: generous enough that no legitimate schedule in the
#: repository comes within two orders of magnitude, small enough that a
#: leaked process surfaces as a typed error in bounded wall time.
DEFAULT_MAX_STEPS = 50_000_000


def _is_per_task(move: Move) -> bool:
    return move.tensor in _PER_TASK_TENSORS


def _chunk_sizes(nbytes: int, microbatches: tuple[int, ...]) -> list[int]:
    """Split a per-microbatch move's bytes proportionally to the group."""
    total = sum(microbatches)
    if total == 0:
        return [0 for _ in microbatches]
    chunks = [nbytes * u // total for u in microbatches]
    chunks[-1] += nbytes - sum(chunks)
    return chunks


class _TaskRuntime:
    """Live bookkeeping for one task: its synchronization events."""

    __slots__ = ("task", "mb_done", "done", "outs_flushed", "state_ready",
                 "input_ready")

    def __init__(self, sim: Simulator, task: Task):
        self.task = task
        ref = task_ref(task.tid)
        self.mb_done = [
            SimEvent(sim, name=f"{ref}.mb{i}_done")
            for i in range(len(task.microbatches))
        ]
        self.done = SimEvent(sim, name=f"{ref}.done")
        self.outs_flushed = SimEvent(sim, name=f"{ref}.outs_flushed")
        self.state_ready: Optional[SimEvent] = None
        self.input_ready: list[SimEvent] = []


class Executor:
    """Executes one iteration of a task graph and reports metrics."""

    def __init__(
        self,
        server: SimulatedServer,
        time_model: TrueTimeModel,
        prefetch: bool = True,
        host_state_bytes: int = 0,
        faults: Optional["FaultInjector"] = None,
        recovery: Optional["RecoveryPolicy"] = None,
        max_steps: Optional[int] = DEFAULT_MAX_STEPS,
        horizon: Optional[float] = None,
    ):
        self.server = server
        self.sim = server.sim
        self.time_model = time_model
        self.prefetch = prefetch
        self.host_state_bytes = host_state_bytes
        self.faults = faults if (faults is not None and faults.enabled) else None
        if self.faults is not None:
            self.faults.attach_sim(self.sim)
        if self.faults is not None and recovery is None:
            from repro.faults.policy import RecoveryPolicy as _Policy

            recovery = _Policy()
        self.policy = recovery
        self.max_steps = max_steps
        self.horizon = horizon

    # -- public -----------------------------------------------------------------

    def run(self, graph: TaskGraph, iterations: int = 1) -> RunMetrics:
        """Execute ``iterations`` back-to-back training iterations.

        Synchronous SGD requires iteration ``i+1``'s forward pass to see
        iteration ``i``'s updated weights, so consecutive iterations are
        separated by a flush barrier on the final weight-update tasks --
        matching the paper's per-iteration pipeline flush.  The reported
        ``iteration_time`` is the steady-state average.
        """
        if iterations < 1:
            raise SchedulingError("need at least one iteration")
        if graph.n_devices > self.server.spec.n_gpus:
            raise SchedulingError(
                f"graph targets {graph.n_devices} GPUs, server has "
                f"{self.server.spec.n_gpus}"
            )
        self._check_host_memory(graph)

        sim = self.sim
        self._pageable = graph.pageable_swaps
        self.metrics = [GpuMetrics() for _ in range(graph.n_devices)]
        self.recovery = RecoveryMetrics()
        self._resident = [0] * graph.n_devices

        slots = [
            Resource(sim, capacity=2 if self.prefetch else 1, name=f"slots{d}")
            for d in range(graph.n_devices)
        ]
        barrier: Optional[SimEvent] = None
        for _iteration in range(iterations):
            self.runtimes = [_TaskRuntime(sim, task) for task in graph.tasks]
            for device, tasks in enumerate(graph.per_device()):
                sim.process(
                    self._driver(device, tasks, slots[device], barrier),
                    name=f"runtime{device}",
                )
            update_flushes = [
                self.runtimes[t.tid].outs_flushed
                for t in graph.tasks
                if t.kind is TaskKind.UPD
            ]
            barrier = sim.all_of(update_flushes or
                                 [rt.outs_flushed for rt in self.runtimes],
                                 name="iteration-barrier")
            sim.run(max_steps=self.max_steps, horizon=self.horizon)
            self._check_completion()

        end_time = sim.now
        if iterations > 1:
            # Report per-iteration figures (counters accumulated over the
            # whole run).
            for g in self.metrics:
                g.swap_in_bytes //= iterations
                g.swap_out_bytes //= iterations
                g.p2p_in_bytes //= iterations
                g.compute_busy /= iterations
                g.cpu_busy /= iterations
                g.swap_busy /= iterations
                g.p2p_busy /= iterations
        if self.faults is not None:
            self.recovery.faults_injected += self.faults.total_injected
        run = RunMetrics(
            mode=graph.mode,
            minibatch=self._minibatch_of(graph),
            iteration_time=end_time / iterations,
            gpus=self.metrics,
            host_peak_bytes=self._host_peak,
            recovery=self.recovery,
        )
        return run

    def _check_completion(self) -> None:
        """Every task must have run to completion when the event heap drains.

        A drained simulator with unfinished tasks means the schedule
        deadlocked (a fetch or compute waited on an event that can never
        fire).  The error names the stalled tasks and streams with the
        same ``t<tid>`` / ``gpu<d>.<stream>`` identifiers the static
        analyzer's diagnostics use, so the two reports line up.
        """
        stuck = [rt for rt in self.runtimes if not rt.done.fired]
        if not stuck:
            return
        details = []
        for rt in stuck[:6]:
            task = rt.task
            fetch_stuck = (
                rt.state_ready is not None and not rt.state_ready.fired
            ) or any(not event.fired for event in rt.input_ready)
            if fetch_stuck:
                stream = (
                    "p2p_in"
                    if any(
                        m.channel is Channel.P2P and m.nbytes > 0
                        for m in task.ins
                    ) and not any(m.channel.via_host and m.nbytes > 0
                                  for m in task.ins)
                    else "swap_in"
                )
                where = f"fetching inputs on {stream_ref(task.device, stream)}"
            else:
                where = f"computing on {stream_ref(task.device, 'compute')}"
            details.append(f"{task_ref(task.tid)} stalled {where}")
        more = len(stuck) - len(details)
        if more > 0:
            details.append(f"+{more} more")
        raise SimulationError(
            f"schedule deadlocked: {len(stuck)} task(s) never completed "
            f"({'; '.join(details)}); run the static analyzer "
            "(repro.analysis) on this graph to locate the cycle"
        )

    # -- host memory -------------------------------------------------------------

    def _check_host_memory(self, graph: TaskGraph) -> None:
        """Model state plus all live checkpoint stash must fit host RAM.

        This is the bound that fails ZeRO-Infinity at 40B parameters in
        Figure 15 while Harmony, with its leaner working set, trains on.
        """
        stash = sum(
            move.nbytes
            for task in graph.tasks
            for direction, move in task.moves()
            if direction == "out" and move.tensor is TensorKind.CKPT
        )
        peak = self.host_state_bytes + stash
        capacity = self.server.spec.host.memory_bytes
        if peak > capacity:
            raise HostOutOfMemoryError(
                f"host working set {peak / 2**30:.1f} GiB exceeds CPU memory "
                f"{capacity / 2**30:.1f} GiB"
            )
        self._host_peak = peak
        self.server.host_memory.alloc(self.host_state_bytes, "model state")
        self.server.host_memory.free(self.host_state_bytes)

    @staticmethod
    def _minibatch_of(graph: TaskGraph) -> int:
        fwd_like = [
            t for t in graph.tasks
            if t.kind is TaskKind.BWD
        ]
        if not fwd_like:
            return 0
        last = max(t.last_layer for t in fwd_like)
        return sum(
            t.group_samples for t in fwd_like if t.last_layer == last
        )

    @staticmethod
    def _chain(source: SimEvent, target: SimEvent,
               notify: Optional[Callable[[], None]] = None) -> None:
        """Fire ``target`` when ``source`` fires, propagating failure.

        A bare ``add_callback(lambda _v: target.succeed())`` would mask a
        failed source (the callback receives the exception as its value),
        silently completing work that actually died -- exactly the hang-
        or-lie failure mode the fault machinery must never produce.

        ``notify`` (trace hooks) runs just before the success relay; it
        rides the relay callback that exists anyway, so attaching it never
        changes which events have waiters (and therefore never converts an
        unhandled failure into a handled one).
        """

        def relay(_value: object) -> None:
            if source.failed:
                target.fail(source.exception)
            else:
                if notify is not None:
                    notify()
                target.succeed()

        source.add_callback(relay)

    def _task_tick(self, device: int, tid: int, name: str) -> Optional[
            Callable[[], None]]:
        """A ``task``-lifecycle instant emitter, or None when untraced.

        Resolved lazily (at fire time) so a recorder attached after
        executor construction still sees the ticks.
        """

        def tick() -> None:
            trace = self.sim.trace
            if trace is not None:
                trace.instant("task", name, self.sim.now,
                              device=device, lane="compute", tid=tid)

        return tick

    # -- per-device driver ---------------------------------------------------------

    def _driver(self, device: int, tasks: list[Task], slots: Resource,
                barrier: Optional[SimEvent] = None) -> Generator:
        if barrier is not None:
            yield barrier  # previous iteration's weight updates visible
        for task in tasks:
            yield slots.request()
            rt = self.runtimes[task.tid]
            self._track_alloc(device, task)
            self._submit_fetch(device, rt)
            self._submit_compute(device, rt)
            rt.done.add_callback(lambda _v, s=slots, d=device, t=task: (
                s.release(), self._track_free(d, t)
            ))
            self._submit_outs(device, rt)

    def _track_alloc(self, device: int, task: Task) -> None:
        self._resident[device] += task.resident_bytes
        metrics = self.metrics[device]
        metrics.peak_resident_bytes = max(
            metrics.peak_resident_bytes, self._resident[device]
        )

    def _track_free(self, device: int, task: Task) -> None:
        self._resident[device] -= task.resident_bytes

    # -- fault-aware transfer -----------------------------------------------------

    def _transfer(self, path: Sequence[Link], nbytes: int, device: int,
                  stream: str, label: str) -> Generator:
        """One logical transfer, retried per the recovery policy.

        Without an injector this is exactly :func:`repro.sim.links.transfer`
        (zero overhead when faults are off).  With one, each attempt asks
        the injector for a fault; transient faults back off exponentially
        and retry, and a fault on the last permitted attempt propagates as
        :class:`TransferFaultError` for the caller (p2p fallback, or the
        simulator's failure machinery) to handle.

        The occupied wall time (queueing plus hold, success or not) is
        accounted per device as ``swap_busy`` / ``p2p_busy`` so overlap
        analytics have an aggregate to reconcile against.
        """
        start = self.sim.now
        try:
            if self.faults is None:
                yield from transfer(self.sim, path, nbytes, label=label,
                                    device=device, lane=stream)
                return
            attempt = 0
            while True:
                fault = self.faults.transfer_fault(
                    device, stream, label, attempt
                )
                try:
                    yield from transfer(self.sim, path, nbytes, fault=fault,
                                        label=label, device=device,
                                        lane=stream)
                    return
                except TransferFaultError:
                    assert self.policy is not None
                    if attempt >= self.policy.max_transfer_retries:
                        raise
                    self.recovery.transfer_retries += 1
                    trace = self.sim.trace
                    if trace is not None:
                        trace.instant("retry", "transfer", self.sim.now,
                                      device=device, lane=stream, label=label,
                                      attempt=attempt)
                    backoff = self.policy.backoff(attempt, device, stream,
                                                  label)
                    if backoff > 0:
                        yield self.sim.timeout(backoff)
                    attempt += 1
        finally:
            held = self.sim.now - start
            busy = self.metrics[device]
            if stream.startswith("p2p"):
                busy.p2p_busy += held
            else:
                busy.swap_busy += held

    def _host_staged_paths(self, src_device: int,
                           dst_device: int) -> tuple[list[Link], list[Link]]:
        """The two legs of a GPU->host->GPU relay (the MSG channel route)."""
        down = self.server.tree.gpu_to_host(src_device) + [
            self.server.pageable_staging
        ]
        up = self.server.tree.host_to_gpu(dst_device)
        return down, up

    # -- fetch side -------------------------------------------------------------------

    def _dep_event(self, move: Move, consumer: Task, mb_index: Optional[int]) -> Optional[SimEvent]:
        """The event that makes ``move``'s data available at its source."""
        if move.src_task is None:
            return None
        producer = self.runtimes[move.src_task]
        if consumer.on_cpu or move.channel is Channel.SWAP:
            # Stashed state read back from host: wait until the producer
            # flushed its outputs.  (Message-passing chains still pipeline
            # per microbatch -- the relay is streamed, not batched.)
            return producer.outs_flushed
        if mb_index is None:
            return producer.done
        if producer.task.group_samples != consumer.group_samples:
            return producer.done
        dep_map = mb_dependency(producer.task.microbatches, consumer.microbatches)
        return producer.mb_done[dep_map[mb_index]]

    def _p2p_source(self, device: int, move: Move) -> int:
        src_device = (
            self.runtimes[move.src_task].task.device
            if move.src_task is not None else move.peer
        )
        if src_device is None:
            raise SchedulingError(f"p2p move {move.label!r} has no source")
        return src_device

    def _swap_in_path(self, device: int) -> list[Link]:
        path = self.server.tree.host_to_gpu(device)
        if self._pageable:
            path = path + [self.server.pageable_staging]
        return path

    def _fetch_op(self, device: int, move: Move, nbytes: int,
                  dep: Optional[SimEvent], label: str = "") -> Generator:
        label = label or move.label
        if dep is not None:
            yield dep
        if move.channel is Channel.LOCAL or nbytes == 0:
            return
        if move.channel is Channel.MSG and move.src_task is not None:
            # Message passing: relay GPU -> host staging -> GPU.  Pays both
            # PCIe hops plus the host-side copy.
            src_device = self.runtimes[move.src_task].task.device
            down, up = self._host_staged_paths(src_device, device)
            yield from self._transfer(down, nbytes, device, "swap_in", label)
            yield from self._transfer(up, nbytes, device, "swap_in",
                                      f"{label}^")
            self.metrics[src_device].swap_out_bytes += nbytes
            self.metrics[device].swap_in_bytes += nbytes
            return
        if move.channel is Channel.P2P:
            src_device = self._p2p_source(device, move)
            path = self.server.tree.gpu_to_gpu(src_device, device)
            try:
                yield from self._transfer(path, nbytes, device, "p2p_in",
                                          label)
            except TransferFaultError:
                assert self.policy is not None
                if not self.policy.p2p_fallback:
                    raise
                # Graceful degradation: stage the chunk through host memory
                # on the swap route.  Bytes are re-accounted as swap traffic
                # on both endpoints (they now ride the contended host links)
                # and no longer count as p2p.
                yield from self._p2p_fallback_op(src_device, device, label,
                                                nbytes)
                return
            self.metrics[device].p2p_in_bytes += nbytes
            return
        path = self._swap_in_path(device)
        yield from self._transfer(path, nbytes, device, "swap_in", label)
        self.metrics[device].swap_in_bytes += nbytes

    def _p2p_fallback_op(self, src_device: int, device: int, label: str,
                         nbytes: int) -> Generator:
        down, up = self._host_staged_paths(src_device, device)
        yield from self._transfer(down, nbytes, device, "swap_in",
                                  f"{label}~fallback")
        yield from self._transfer(up, nbytes, device, "swap_in",
                                  f"{label}~fallback^")
        self.metrics[src_device].swap_out_bytes += nbytes
        self.metrics[device].swap_in_bytes += nbytes
        self.recovery.p2p_fallbacks += 1
        self.recovery.fallback_bytes += nbytes
        trace = self.sim.trace
        if trace is not None:
            trace.instant("fallback", "p2p", self.sim.now, device=device,
                          lane="swap_in", label=label, nbytes=nbytes,
                          src=src_device)

    def _submit_fetch(self, device: int, rt: _TaskRuntime) -> None:
        task = rt.task
        streams = self.server.streams[device]
        state_events: list[SimEvent] = []
        mb_events: list[list[SimEvent]] = [[] for _ in task.microbatches]

        for move in task.ins:
            if _is_per_task(move):
                dep = self._dep_event(move, task, None)
                if move.channel is Channel.LOCAL or move.nbytes == 0:
                    event = SimEvent(self.sim)
                    if dep is None:
                        event.succeed()
                    else:
                        self._chain(dep, event)
                    state_events.append(event)
                    continue
                state_events.append(streams.swap_in.submit(
                    self._fetch_op(device, move, move.nbytes, dep),
                    label=move.label,
                ))
            else:
                chunks = _chunk_sizes(move.nbytes, task.microbatches)
                for i, chunk in enumerate(chunks):
                    dep = self._dep_event(move, task, i)
                    if move.channel is Channel.LOCAL:
                        event = SimEvent(self.sim)
                        if dep is None:
                            event.succeed()
                        else:
                            self._chain(dep, event)
                        mb_events[i].append(event)
                        continue
                    stream = (
                        streams.p2p_in if move.channel is Channel.P2P
                        else streams.swap_in
                    )
                    mb_events[i].append(stream.submit(
                        self._fetch_op(device, move, chunk, dep,
                                       label=f"{move.label}#{i}"),
                        label=f"{move.label}#{i}",
                    ))

        rt.state_ready = self.sim.all_of(state_events)
        rt.input_ready = [
            self.sim.all_of([rt.state_ready] + events) for events in mb_events
        ]

    # -- compute side ------------------------------------------------------------------

    def _compute_attempt(self, device: int, rt: _TaskRuntime, index: int,
                         duration: float) -> Generator:
        """Run one microbatch's kernels, retrying injected crashes.

        A crash wastes a fraction of the attempt's compute time (counted
        as busy -- the GPU really ran those kernels) and retries from the
        task's inputs, which are still resident on the device.  A crash on
        the final permitted attempt raises :class:`TaskCrashError`.
        """
        task = rt.task
        attempt = 0
        while self.faults is not None:
            crash = self.faults.crash_fault(task.tid, device, index, attempt)
            if crash is None:
                break
            start = self.sim.now
            yield self.sim.timeout(duration * crash.fraction)
            self.metrics[device].compute_busy += self.sim.now - start
            trace = self.sim.trace
            if trace is not None:
                trace.span("compute", f"{task.label}#{index}", start,
                           self.sim.now, device=device, lane="compute",
                           tid=task.tid, mb=index, attempt=attempt,
                           crashed=1)
            assert self.policy is not None
            if attempt >= self.policy.max_task_retries:
                raise crash.error
            self.recovery.compute_retries += 1
            if trace is not None:
                trace.instant("retry", "compute", self.sim.now,
                              device=device, lane="compute", tid=task.tid,
                              mb=index, attempt=attempt)
            attempt += 1
        start = self.sim.now
        yield self.sim.timeout(duration)
        self.metrics[device].compute_busy += self.sim.now - start
        trace = self.sim.trace
        if trace is not None:
            trace.span("compute", f"{task.label}#{index}", start,
                       self.sim.now, device=device, lane="compute",
                       tid=task.tid, mb=index, attempt=attempt)

    def _submit_compute(self, device: int, rt: _TaskRuntime) -> None:
        task = rt.task
        streams = self.server.streams[device]
        if task.kind is TaskKind.UPD:
            self._submit_update(device, rt)
            return

        def mb_op(index: int, u: int) -> Generator:
            yield rt.input_ready[index]
            duration = self.time_model.microbatch_time(task, u)
            if self.faults is not None:
                lost = self.faults.lost_fault(device)
                if lost is not None:
                    # Dead hardware: the kernel launch surfaces the loss.
                    # Not retryable on this device -- escalation (rebind,
                    # elastic re-plan) happens above the iteration.
                    raise lost
                duration *= self.faults.compute_multiplier(device)
            yield from self._compute_attempt(device, rt, index, duration)
            trace = self.sim.trace
            if trace is not None:
                trace.instant("task", f"mb{index}", self.sim.now,
                              device=device, lane="compute", tid=task.tid)
            rt.mb_done[index].succeed()

        for i, u in enumerate(task.microbatches):
            streams.compute.submit(mb_op(i, u), label=f"{task.label}#{i}")
        self._chain(self.sim.all_of(rt.mb_done), rt.done,
                    notify=self._task_tick(device, task.tid, "done"))

    def _submit_update(self, device: int, rt: _TaskRuntime) -> None:
        task = rt.task
        streams = self.server.streams[device]
        duration = self.time_model.update_time(task)
        if self.faults is not None and not task.on_cpu:
            duration *= self.faults.compute_multiplier(device)

        def op() -> Generator:
            yield rt.input_ready[0] if rt.input_ready else rt.state_ready
            if self.faults is not None and not task.on_cpu:
                # CPU-offloaded updates survive a dead GPU (the host
                # process is fine); on-GPU updates cannot run on a corpse.
                lost = self.faults.lost_fault(device)
                if lost is not None:
                    raise lost
            start = self.sim.now
            yield self.sim.timeout(duration)
            if task.on_cpu:
                self.metrics[device].cpu_busy += self.sim.now - start
            else:
                self.metrics[device].compute_busy += self.sim.now - start
            trace = self.sim.trace
            if trace is not None:
                lane = "cpu" if task.on_cpu else "compute"
                trace.span("compute", task.label, start, self.sim.now,
                           device=device, lane=lane, tid=task.tid,
                           mb=0, attempt=0)
                for i in range(len(rt.mb_done)):
                    trace.instant("task", f"mb{i}", self.sim.now,
                                  device=device, lane=lane, tid=task.tid)
                trace.instant("task", "done", self.sim.now,
                              device=device, lane=lane, tid=task.tid)
            for event in rt.mb_done:
                event.succeed()
            rt.done.succeed()

        # CPU updates run off the GPU's compute stream so they overlap GPU
        # work; on-GPU updates occupy the compute stream like any kernel.
        if task.on_cpu:
            self.sim.process(op(), name=f"cpu-upd{task.tid}")
        else:
            streams.compute.submit(op(), label=task.label)

    # -- output side --------------------------------------------------------------------

    def _out_op(self, device: int, move: Move, nbytes: int,
                after: SimEvent, label: str = "") -> Generator:
        yield after
        if move.channel is Channel.LOCAL or nbytes == 0:
            return
        path = self.server.tree.gpu_to_host(device)
        if self._pageable:
            path = path + [self.server.pageable_staging]
        yield from self._transfer(path, nbytes, device, "swap_out",
                                  label or move.label)
        self.metrics[device].swap_out_bytes += nbytes

    def _submit_outs(self, device: int, rt: _TaskRuntime) -> None:
        task = rt.task
        streams = self.server.streams[device]
        events: list[SimEvent] = []
        for move in task.outs:
            if _is_per_task(move):
                events.append(streams.swap_out.submit(
                    self._out_op(device, move, move.nbytes, rt.done),
                    label=move.label,
                ))
            else:
                chunks = _chunk_sizes(move.nbytes, task.microbatches)
                for i, chunk in enumerate(chunks):
                    events.append(streams.swap_out.submit(
                        self._out_op(device, move, chunk, rt.mb_done[i],
                                     label=f"{move.label}#{i}"),
                        label=f"{move.label}#{i}",
                    ))
        gate = self.sim.all_of(events + [rt.done])
        self._chain(gate, rt.outs_flushed,
                    notify=self._task_tick(device, task.tid, "flushed"))


def run_task_graph(
    server: SimulatedServer,
    graph: TaskGraph,
    time_model: TrueTimeModel,
    prefetch: bool = True,
    host_state_bytes: int = 0,
    analyze: str = "off",
    faults: Optional["FaultInjector"] = None,
    recovery: Optional["RecoveryPolicy"] = None,
    max_steps: Optional[int] = DEFAULT_MAX_STEPS,
    horizon: Optional[float] = None,
) -> RunMetrics:
    """Convenience wrapper: execute ``graph`` once and return metrics.

    ``analyze`` gates the static schedule verifier: ``"warn"`` prints
    diagnostics to stderr, ``"strict"`` raises
    :class:`~repro.common.errors.ScheduleAnalysisError` instead of
    executing an unsafe schedule.  ``faults`` attaches a chaos injector
    (see :mod:`repro.faults`); ``max_steps`` / ``horizon`` bound the
    simulator watchdog.
    """
    if analyze not in ("off", "warn", "strict"):
        raise ValueError(
            f"analyze must be 'off', 'warn' or 'strict', got {analyze!r}"
        )
    if analyze != "off":
        from repro.analysis import analyze as run_analysis

        report = run_analysis(
            graph,
            server=server.spec,
            host_state_bytes=host_state_bytes or None,
            prefetch=prefetch,
        )
        if analyze == "strict":
            report.raise_if_errors()
        elif report.diagnostics:
            import sys

            print(report.describe(), file=sys.stderr)
    executor = Executor(
        server, time_model, prefetch=prefetch, host_state_bytes=host_state_bytes,
        faults=faults, recovery=recovery, max_steps=max_steps, horizon=horizon,
    )
    return executor.run(graph)
