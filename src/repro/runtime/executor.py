"""The Runtime executor: runs a task graph on the simulated server.

Execution model (Section 4.4 of the paper):

- one runtime process per GPU, each owning five streams (compute, swap-in,
  swap-out, p2p-in, p2p-out) plus a host-side lane for CPU-offloaded
  weight updates;
- prefetch with double buffering: a task's inputs are fetched while the
  previous task computes, throttled by fetch "slots" (two with prefetch
  enabled, one without);
- per-microbatch pipelining: a task's microbatch *i* computes as soon as
  its input chunk *i* has arrived, which is what makes the wrap-around
  pipeline actually pipeline;
- receiver-driven p2p: the consuming GPU pulls activation chunks over the
  PCIe tree, contending on shared links with everyone else's swaps.

State tensors (weights, gradients, optimizer state) move once per task;
activation-family tensors (X/Y/DY/CKPT) move per microbatch.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.analysis.diagnostics import stream_ref, task_ref
from repro.common.errors import (
    HostOutOfMemoryError,
    SchedulingError,
    SimulationError,
)
from repro.core.taskgraph import mb_dependency
from repro.core.types import Channel, Move, Task, TaskGraph, TaskKind, TensorKind
from repro.hardware.server import SimulatedServer
from repro.runtime.metrics import GpuMetrics, RunMetrics
from repro.runtime.timemodel import TrueTimeModel
from repro.sim.engine import Resource, SimEvent, Simulator
from repro.sim.links import transfer

_PER_TASK_TENSORS = frozenset({TensorKind.W, TensorKind.DW, TensorKind.K})


def _is_per_task(move: Move) -> bool:
    return move.tensor in _PER_TASK_TENSORS


def _chunk_sizes(nbytes: int, microbatches: tuple[int, ...]) -> list[int]:
    """Split a per-microbatch move's bytes proportionally to the group."""
    total = sum(microbatches)
    if total == 0:
        return [0 for _ in microbatches]
    chunks = [nbytes * u // total for u in microbatches]
    chunks[-1] += nbytes - sum(chunks)
    return chunks


class _TaskRuntime:
    """Live bookkeeping for one task: its synchronization events."""

    __slots__ = ("task", "mb_done", "done", "outs_flushed", "state_ready",
                 "input_ready")

    def __init__(self, sim: Simulator, task: Task):
        self.task = task
        ref = task_ref(task.tid)
        self.mb_done = [
            SimEvent(sim, name=f"{ref}.mb{i}_done")
            for i in range(len(task.microbatches))
        ]
        self.done = SimEvent(sim, name=f"{ref}.done")
        self.outs_flushed = SimEvent(sim, name=f"{ref}.outs_flushed")
        self.state_ready: Optional[SimEvent] = None
        self.input_ready: list[SimEvent] = []


class Executor:
    """Executes one iteration of a task graph and reports metrics."""

    def __init__(
        self,
        server: SimulatedServer,
        time_model: TrueTimeModel,
        prefetch: bool = True,
        host_state_bytes: int = 0,
    ):
        self.server = server
        self.sim = server.sim
        self.time_model = time_model
        self.prefetch = prefetch
        self.host_state_bytes = host_state_bytes

    # -- public -----------------------------------------------------------------

    def run(self, graph: TaskGraph, iterations: int = 1) -> RunMetrics:
        """Execute ``iterations`` back-to-back training iterations.

        Synchronous SGD requires iteration ``i+1``'s forward pass to see
        iteration ``i``'s updated weights, so consecutive iterations are
        separated by a flush barrier on the final weight-update tasks --
        matching the paper's per-iteration pipeline flush.  The reported
        ``iteration_time`` is the steady-state average.
        """
        if iterations < 1:
            raise SchedulingError("need at least one iteration")
        if graph.n_devices > self.server.spec.n_gpus:
            raise SchedulingError(
                f"graph targets {graph.n_devices} GPUs, server has "
                f"{self.server.spec.n_gpus}"
            )
        self._check_host_memory(graph)

        sim = self.sim
        self._pageable = graph.pageable_swaps
        self.metrics = [GpuMetrics() for _ in range(graph.n_devices)]
        self._resident = [0] * graph.n_devices

        slots = [
            Resource(sim, capacity=2 if self.prefetch else 1, name=f"slots{d}")
            for d in range(graph.n_devices)
        ]
        barrier: Optional[SimEvent] = None
        for _iteration in range(iterations):
            self.runtimes = [_TaskRuntime(sim, task) for task in graph.tasks]
            for device, tasks in enumerate(graph.per_device()):
                sim.process(
                    self._driver(device, tasks, slots[device], barrier),
                    name=f"runtime{device}",
                )
            update_flushes = [
                self.runtimes[t.tid].outs_flushed
                for t in graph.tasks
                if t.kind is TaskKind.UPD
            ]
            barrier = sim.all_of(update_flushes or
                                 [rt.outs_flushed for rt in self.runtimes],
                                 name="iteration-barrier")
            sim.run()
            self._check_completion()

        end_time = sim.now
        if iterations > 1:
            # Report per-iteration figures (counters accumulated over the
            # whole run).
            for g in self.metrics:
                g.swap_in_bytes //= iterations
                g.swap_out_bytes //= iterations
                g.p2p_in_bytes //= iterations
                g.compute_busy /= iterations
                g.cpu_busy /= iterations
        run = RunMetrics(
            mode=graph.mode,
            minibatch=self._minibatch_of(graph),
            iteration_time=end_time / iterations,
            gpus=self.metrics,
            host_peak_bytes=self._host_peak,
        )
        return run

    def _check_completion(self) -> None:
        """Every task must have run to completion when the event heap drains.

        A drained simulator with unfinished tasks means the schedule
        deadlocked (a fetch or compute waited on an event that can never
        fire).  The error names the stalled tasks and streams with the
        same ``t<tid>`` / ``gpu<d>.<stream>`` identifiers the static
        analyzer's diagnostics use, so the two reports line up.
        """
        stuck = [rt for rt in self.runtimes if not rt.done.fired]
        if not stuck:
            return
        details = []
        for rt in stuck[:6]:
            task = rt.task
            fetch_stuck = (
                rt.state_ready is not None and not rt.state_ready.fired
            ) or any(not event.fired for event in rt.input_ready)
            if fetch_stuck:
                stream = (
                    "p2p_in"
                    if any(
                        m.channel is Channel.P2P and m.nbytes > 0
                        for m in task.ins
                    ) and not any(m.channel.via_host and m.nbytes > 0
                                  for m in task.ins)
                    else "swap_in"
                )
                where = f"fetching inputs on {stream_ref(task.device, stream)}"
            else:
                where = f"computing on {stream_ref(task.device, 'compute')}"
            details.append(f"{task_ref(task.tid)} stalled {where}")
        more = len(stuck) - len(details)
        if more > 0:
            details.append(f"+{more} more")
        raise SimulationError(
            f"schedule deadlocked: {len(stuck)} task(s) never completed "
            f"({'; '.join(details)}); run the static analyzer "
            "(repro.analysis) on this graph to locate the cycle"
        )

    # -- host memory -------------------------------------------------------------

    def _check_host_memory(self, graph: TaskGraph) -> None:
        """Model state plus all live checkpoint stash must fit host RAM.

        This is the bound that fails ZeRO-Infinity at 40B parameters in
        Figure 15 while Harmony, with its leaner working set, trains on.
        """
        stash = sum(
            move.nbytes
            for task in graph.tasks
            for direction, move in task.moves()
            if direction == "out" and move.tensor is TensorKind.CKPT
        )
        peak = self.host_state_bytes + stash
        capacity = self.server.spec.host.memory_bytes
        if peak > capacity:
            raise HostOutOfMemoryError(
                f"host working set {peak / 2**30:.1f} GiB exceeds CPU memory "
                f"{capacity / 2**30:.1f} GiB"
            )
        self._host_peak = peak
        self.server.host_memory.alloc(self.host_state_bytes, "model state")
        self.server.host_memory.free(self.host_state_bytes)

    @staticmethod
    def _minibatch_of(graph: TaskGraph) -> int:
        fwd_like = [
            t for t in graph.tasks
            if t.kind is TaskKind.BWD
        ]
        if not fwd_like:
            return 0
        last = max(t.last_layer for t in fwd_like)
        return sum(
            t.group_samples for t in fwd_like if t.last_layer == last
        )

    # -- per-device driver ---------------------------------------------------------

    def _driver(self, device: int, tasks: list[Task], slots: Resource,
                barrier: Optional[SimEvent] = None) -> Generator:
        if barrier is not None:
            yield barrier  # previous iteration's weight updates visible
        for task in tasks:
            yield slots.request()
            rt = self.runtimes[task.tid]
            self._track_alloc(device, task)
            self._submit_fetch(device, rt)
            self._submit_compute(device, rt)
            rt.done.add_callback(lambda _v, s=slots, d=device, t=task: (
                s.release(), self._track_free(d, t)
            ))
            self._submit_outs(device, rt)

    def _track_alloc(self, device: int, task: Task) -> None:
        self._resident[device] += task.resident_bytes
        metrics = self.metrics[device]
        metrics.peak_resident_bytes = max(
            metrics.peak_resident_bytes, self._resident[device]
        )

    def _track_free(self, device: int, task: Task) -> None:
        self._resident[device] -= task.resident_bytes

    # -- fetch side -------------------------------------------------------------------

    def _dep_event(self, move: Move, consumer: Task, mb_index: Optional[int]) -> Optional[SimEvent]:
        """The event that makes ``move``'s data available at its source."""
        if move.src_task is None:
            return None
        producer = self.runtimes[move.src_task]
        if consumer.on_cpu or move.channel is Channel.SWAP:
            # Stashed state read back from host: wait until the producer
            # flushed its outputs.  (Message-passing chains still pipeline
            # per microbatch -- the relay is streamed, not batched.)
            return producer.outs_flushed
        if mb_index is None:
            return producer.done
        if producer.task.group_samples != consumer.group_samples:
            return producer.done
        dep_map = mb_dependency(producer.task.microbatches, consumer.microbatches)
        return producer.mb_done[dep_map[mb_index]]

    def _in_path(self, device: int, move: Move):
        if move.channel is Channel.P2P:
            src_device = (
                self.runtimes[move.src_task].task.device
                if move.src_task is not None else move.peer
            )
            if src_device is None:
                raise SchedulingError(f"p2p move {move.label!r} has no source")
            return self.server.tree.gpu_to_gpu(src_device, device)
        path = self.server.tree.host_to_gpu(device)
        if self._pageable:
            path = path + [self.server.pageable_staging]
        return path

    def _fetch_op(self, device: int, move: Move, nbytes: int,
                  dep: Optional[SimEvent]) -> Generator:
        if dep is not None:
            yield dep
        if move.channel is Channel.LOCAL or nbytes == 0:
            return
        if move.channel is Channel.MSG and move.src_task is not None:
            # Message passing: relay GPU -> host staging -> GPU.  Pays both
            # PCIe hops plus the host-side copy.
            src_device = self.runtimes[move.src_task].task.device
            down = self.server.tree.gpu_to_host(src_device) + [
                self.server.pageable_staging
            ]
            up = self.server.tree.host_to_gpu(device)
            yield from transfer(self.sim, down, nbytes)
            yield from transfer(self.sim, up, nbytes)
            self.metrics[src_device].swap_out_bytes += nbytes
            self.metrics[device].swap_in_bytes += nbytes
            return
        path = self._in_path(device, move)
        yield from transfer(self.sim, path, nbytes)
        if move.channel is Channel.P2P:
            self.metrics[device].p2p_in_bytes += nbytes
        else:
            self.metrics[device].swap_in_bytes += nbytes

    def _submit_fetch(self, device: int, rt: _TaskRuntime) -> None:
        task = rt.task
        streams = self.server.streams[device]
        state_events: list[SimEvent] = []
        mb_events: list[list[SimEvent]] = [[] for _ in task.microbatches]

        for move in task.ins:
            if _is_per_task(move):
                dep = self._dep_event(move, task, None)
                if move.channel is Channel.LOCAL or move.nbytes == 0:
                    event = SimEvent(self.sim)
                    if dep is None:
                        event.succeed()
                    else:
                        dep.add_callback(lambda _v, e=event: e.succeed())
                    state_events.append(event)
                    continue
                state_events.append(streams.swap_in.submit(
                    self._fetch_op(device, move, move.nbytes, dep),
                    label=move.label,
                ))
            else:
                chunks = _chunk_sizes(move.nbytes, task.microbatches)
                for i, chunk in enumerate(chunks):
                    dep = self._dep_event(move, task, i)
                    if move.channel is Channel.LOCAL:
                        event = SimEvent(self.sim)
                        if dep is None:
                            event.succeed()
                        else:
                            dep.add_callback(lambda _v, e=event: e.succeed())
                        mb_events[i].append(event)
                        continue
                    stream = (
                        streams.p2p_in if move.channel is Channel.P2P
                        else streams.swap_in
                    )
                    mb_events[i].append(stream.submit(
                        self._fetch_op(device, move, chunk, dep),
                        label=f"{move.label}#{i}",
                    ))

        rt.state_ready = self.sim.all_of(state_events)
        rt.input_ready = [
            self.sim.all_of([rt.state_ready] + events) for events in mb_events
        ]

    # -- compute side ------------------------------------------------------------------

    def _submit_compute(self, device: int, rt: _TaskRuntime) -> None:
        task = rt.task
        streams = self.server.streams[device]
        if task.kind is TaskKind.UPD:
            self._submit_update(device, rt)
            return

        def mb_op(index: int, u: int) -> Generator:
            yield rt.input_ready[index]
            duration = self.time_model.microbatch_time(task, u)
            start = self.sim.now
            yield self.sim.timeout(duration)
            self.metrics[device].compute_busy += self.sim.now - start
            rt.mb_done[index].succeed()

        for i, u in enumerate(task.microbatches):
            streams.compute.submit(mb_op(i, u), label=f"{task.label}#{i}")
        self.sim.all_of(rt.mb_done).add_callback(
            lambda _v: rt.done.succeed()
        )

    def _submit_update(self, device: int, rt: _TaskRuntime) -> None:
        task = rt.task
        streams = self.server.streams[device]
        duration = self.time_model.update_time(task)

        def op() -> Generator:
            yield rt.input_ready[0] if rt.input_ready else rt.state_ready
            start = self.sim.now
            yield self.sim.timeout(duration)
            if task.on_cpu:
                self.metrics[device].cpu_busy += self.sim.now - start
            else:
                self.metrics[device].compute_busy += self.sim.now - start
            for event in rt.mb_done:
                event.succeed()
            rt.done.succeed()

        # CPU updates run off the GPU's compute stream so they overlap GPU
        # work; on-GPU updates occupy the compute stream like any kernel.
        if task.on_cpu:
            self.sim.process(op(), name=f"cpu-upd{task.tid}")
        else:
            streams.compute.submit(op(), label=task.label)

    # -- output side --------------------------------------------------------------------

    def _out_op(self, device: int, move: Move, nbytes: int,
                after: SimEvent) -> Generator:
        yield after
        if move.channel is Channel.LOCAL or nbytes == 0:
            return
        path = self.server.tree.gpu_to_host(device)
        if self._pageable:
            path = path + [self.server.pageable_staging]
        yield from transfer(self.sim, path, nbytes)
        self.metrics[device].swap_out_bytes += nbytes

    def _submit_outs(self, device: int, rt: _TaskRuntime) -> None:
        task = rt.task
        streams = self.server.streams[device]
        events: list[SimEvent] = []
        for move in task.outs:
            if _is_per_task(move):
                events.append(streams.swap_out.submit(
                    self._out_op(device, move, move.nbytes, rt.done),
                    label=move.label,
                ))
            else:
                chunks = _chunk_sizes(move.nbytes, task.microbatches)
                for i, chunk in enumerate(chunks):
                    events.append(streams.swap_out.submit(
                        self._out_op(device, move, chunk, rt.mb_done[i]),
                        label=f"{move.label}#{i}",
                    ))
        gate = self.sim.all_of(events + [rt.done])
        gate.add_callback(lambda _v: rt.outs_flushed.succeed())


def run_task_graph(
    server: SimulatedServer,
    graph: TaskGraph,
    time_model: TrueTimeModel,
    prefetch: bool = True,
    host_state_bytes: int = 0,
    analyze: str = "off",
) -> RunMetrics:
    """Convenience wrapper: execute ``graph`` once and return metrics.

    ``analyze`` gates the static schedule verifier: ``"warn"`` prints
    diagnostics to stderr, ``"strict"`` raises
    :class:`~repro.common.errors.ScheduleAnalysisError` instead of
    executing an unsafe schedule.
    """
    if analyze not in ("off", "warn", "strict"):
        raise ValueError(
            f"analyze must be 'off', 'warn' or 'strict', got {analyze!r}"
        )
    if analyze != "off":
        from repro.analysis import analyze as run_analysis

        report = run_analysis(
            graph,
            server=server.spec,
            host_state_bytes=host_state_bytes or None,
            prefetch=prefetch,
        )
        if analyze == "strict":
            report.raise_if_errors()
        elif report.diagnostics:
            import sys

            print(report.describe(), file=sys.stderr)
    executor = Executor(
        server, time_model, prefetch=prefetch, host_state_bytes=host_state_bytes
    )
    return executor.run(graph)
